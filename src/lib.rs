//! Umbrella crate for the RIOT reproduction.
//!
//! RIOT (Trimberger & Rowson, DAC 1982) is an interactive graphical chip
//! *assembly* tool: it composes previously-designed leaf cells into larger
//! composition cells and whole chips using three connection primitives —
//! abutment, river routing and stretching.
//!
//! This crate re-exports every subsystem of the reproduction so examples
//! and downstream users can depend on a single crate:
//!
//! * [`geom`] — shared low-level geometry objects
//! * [`cif`] — Caltech Intermediate Form reader/writer (+ connector extension)
//! * [`sticks`] — the Sticks symbolic-layout format
//! * [`rest`] — the REST-style constraint-graph compactor used for stretching
//! * [`route`] — the multi-layer river router
//! * [`graphics`] — the graphics package (framebuffer, devices, plotter)
//! * [`core`] — Riot proper: cells, instances, connections, replay
//! * [`cells`] — leaf-cell generators standing in for Bristle Blocks / LAP
//! * [`ui`] — the textual and graphical command interfaces
//! * [`extract`] — connectivity extraction and switch-level simulation
//! * [`drc`] — design-rule checking over flattened mask geometry
//! * [`trace`] — structured spans, metrics registry, trace exporters
//! * [`serve`] — headless multi-session server (RIOTSRV1 wire protocol,
//!   WAL-backed durability, backpressure)
//!
//! # Quickstart
//!
//! ```
//! use riot::core::{Editor, Library};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let sr = lib.add_sticks_cell(riot::cells::shift_register())?;
//! let mut ed = Editor::open(&mut lib, "TOP")?;
//! let a = ed.create_instance(sr)?;
//! let b = ed.create_instance(sr)?;
//! ed.translate_instance(b, riot::geom::Point::new(9000, 0))?;
//! ed.connect(b, "SI", a, "SO")?;
//! ed.abut(Default::default())?;
//! ed.finish()?;
//! # Ok(())
//! # }
//! ```

pub mod filter;

pub use riot_cells as cells;
pub use riot_cif as cif;
pub use riot_core as core;
pub use riot_drc as drc;
pub use riot_extract as extract;
pub use riot_geom as geom;
pub use riot_graphics as graphics;
pub use riot_rest as rest;
pub use riot_route as route;
pub use riot_serve as serve;
pub use riot_sticks as sticks;
pub use riot_trace as trace;
pub use riot_ui as ui;
