//! The paper's worked example: the four-bit sequential logical filter.
//!
//! "The chip being assembled in this example is a four-bit sequential
//! logical filter … A rough initial floorplan is shown in figure 7 …
//! The first step is to generate the shift register array. The array
//! elements abut, making the shift register chain connections as well
//! as power and ground connections. Next, two stages of NAND gates
//! provide the ANDing of the constant terms and the first level of ORs,
//! then routing is done to the OR gate. Connections to these gates are
//! routed in figure 9a. Alternatively, the designer may save area by
//! stretching the gates, eliminating the routing area (figure 9b)."
//!
//! [`build_logic`] assembles the filter's logic block either way;
//! [`build_chip`] adds the I/O pads (figure 10). Both return the
//! [`Library`] holding the finished composition so callers can measure,
//! render or export it.

use riot_core::measure::{measure, AreaReport};
use riot_core::{AbutOptions, Editor, Library, RiotError, RouteOptions, StretchOptions};
use riot_geom::{Point, Side, LAMBDA};

/// How gate rows connect to the row below (paper figure 9a vs 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicStyle {
    /// River-route every inter-row connection (figure 9a).
    Routed,
    /// Stretch each gate to its inputs and abut (figure 9b).
    Stretched,
}

impl LogicStyle {
    /// Short name used in reports and file names.
    pub fn name(self) -> &'static str {
        match self {
            LogicStyle::Routed => "routed",
            LogicStyle::Stretched => "stretched",
        }
    }
}

/// A finished logic block plus its measurements.
#[derive(Debug)]
pub struct FilterLogic {
    /// The library holding `logic` and every cell it references.
    pub lib: Library,
    /// Name of the finished composition cell.
    pub cell: String,
    /// The figure-9 measurements.
    pub report: AreaReport,
}

/// Assembles the filter's logic block: a `bits`-stage shift-register
/// array, a row of NAND gates pairing adjacent taps, reduction rows,
/// and the final OR, connected per `style`.
///
/// `bits` must be a power of two, at least 4.
///
/// # Errors
///
/// Any [`RiotError`] the assembly hits; with the stock cells none
/// occur for valid `bits`.
///
/// # Panics
///
/// Panics when `bits` is not a power of two or below 4.
pub fn build_logic(bits: usize, style: LogicStyle) -> Result<FilterLogic, RiotError> {
    assert!(
        bits >= 4 && bits.is_power_of_two(),
        "bits must be a power of two >= 4"
    );
    let mut lib = Library::new();
    lib.add_sticks_cell(riot_cells::shift_register())?;
    lib.add_sticks_cell(riot_cells::nand2())?;
    lib.add_sticks_cell(riot_cells::or2())?;
    let cell = format!("logic_{}", style.name());
    assemble_logic(&mut lib, &cell, bits, style)?;
    let report = measure(&lib, &cell)?;
    Ok(FilterLogic {
        lib,
        cell: cell.clone(),
        report,
    })
}

/// Assembles the logic block into an existing library (cells
/// `shiftcell`, `nand2`, `or2` must be present).
///
/// # Errors
///
/// As [`build_logic`].
pub fn assemble_logic(
    lib: &mut Library,
    cell_name: &str,
    bits: usize,
    style: LogicStyle,
) -> Result<(), RiotError> {
    let sr_cell = lib
        .find("shiftcell")
        .ok_or(RiotError::UnknownCell("shiftcell".into()))?;
    let nand_cell = lib
        .find("nand2")
        .ok_or(RiotError::UnknownCell("nand2".into()))?;
    let or_cell = lib
        .find("or2")
        .ok_or(RiotError::UnknownCell("or2".into()))?;

    let mut ed = Editor::open(lib, cell_name)?;

    // 1. The shift-register array: elements connect by abutment.
    let sr = ed.create_instance(sr_cell)?;
    ed.replicate_instance(sr, bits as u32, 1)?;

    // 2. Gate rows, halving until one pair remains; the final row is
    //    the OR gate.
    //    Row r takes its inputs from `below`: (instance, connector) of
    //    each signal, left to right, all on one top edge.
    let mut below: Vec<(riot_core::InstanceId, String)> =
        (0..bits).map(|i| (sr, format!("TAP[{i},0]"))).collect();
    let mut row = 0usize;
    while below.len() >= 2 {
        let gate_cell = if below.len() == 2 { or_cell } else { nand_cell };
        let mut outputs = Vec::new();
        let gates = below.len() / 2;
        let mut prev_gate: Option<riot_core::InstanceId> = None;
        for g in 0..gates {
            let inst = ed.create_instance(gate_cell)?;
            // Park the new gate above everything so its connectors face
            // down at the row below.
            let parking = ed.current_extent()?;
            ed.translate_instance(
                inst,
                Point::new((g as i64) * 40 * LAMBDA, parking.y1 + 20 * LAMBDA),
            )?;
            ed.connect(inst, "A", below[2 * g].0, &below[2 * g].1)?;
            ed.connect(inst, "B", below[2 * g + 1].0, &below[2 * g + 1].1)?;
            match style {
                LogicStyle::Routed => {
                    if let Some(prev) = prev_gate {
                        // Later gates in a row share the channel the
                        // first gate opened: abut to the previous gate
                        // first, then route in place.
                        let keep = ed.pending().to_vec();
                        ed.clear_pending();
                        ed.connect(inst, "PWRL", prev, "PWRR")?;
                        ed.abut(AbutOptions::default())?;
                        for p in keep {
                            ed.connect(p.from, &p.from_connector, p.to, &p.to_connector)?;
                        }
                        ed.route(RouteOptions {
                            move_from: false,
                            ..RouteOptions::default()
                        })?;
                    } else {
                        ed.route(RouteOptions::default())?;
                    }
                }
                LogicStyle::Stretched => {
                    ed.stretch(StretchOptions::default())?;
                }
            }
            prev_gate = Some(inst);
            outputs.push((inst, "OUT".to_owned()));
        }
        below = outputs;
        row += 1;
        let _ = row;
    }

    // 3. Bring the final output up to the cell boundary and finish.
    let (top_gate, out) = below.pop().expect("one output remains");
    ed.bring_out(top_gate, &[&out], Side::Top)?;
    ed.finish()?;
    Ok(())
}

/// The finished chip of figure 10: the logic block with serial-in and
/// serial-out pads routed to it.
#[derive(Debug)]
pub struct FilterChip {
    /// Library holding the chip and everything below it.
    pub lib: Library,
    /// Name of the chip composition cell.
    pub cell: String,
    /// The chip measurements.
    pub report: AreaReport,
}

/// Builds the full chip: logic block plus an input pad routed to the
/// shift register's serial input and an output pad routed from its
/// serial output ("pad routing is done in pieces with Riot's routing
/// command").
///
/// # Errors
///
/// As [`build_logic`].
///
/// # Panics
///
/// As [`build_logic`].
pub fn build_chip(bits: usize, style: LogicStyle) -> Result<FilterChip, RiotError> {
    let FilterLogic { mut lib, cell, .. } = build_logic(bits, style)?;
    lib.load_cif(&riot_cells::pads_cif())?;
    let chip_name = format!("chip_{}", style.name());
    {
        let logic_cell = lib.find(&cell).expect("logic cell exists");
        let padin = lib.find("padin").expect("pad library loaded");
        let padout = lib.find("padout").expect("pad library loaded");
        let mut ed = Editor::open(&mut lib, &chip_name)?;
        let logic = ed.create_instance(logic_cell)?;
        // Pads sit left and right of the logic block.
        let lb = ed.instance_bbox(logic)?;
        let pin = ed.create_instance(padin)?;
        ed.translate_instance(pin, Point::new(lb.x0 - 160 * LAMBDA, 0))?;
        let pout = ed.create_instance(padout)?;
        ed.translate_instance(pout, Point::new(lb.x1 + 60 * LAMBDA, 0))?;
        // Serial input: route the input pad's OUT to the SR chain SI.
        let si = find_connector(&ed, logic, "SI[")?;
        ed.connect(pin, "OUT", logic, &si)?;
        ed.route(RouteOptions::default())?;
        // Serial output: route the pad (it moves) from the SR SO.
        let so = find_connector(&ed, logic, "SO[")?;
        ed.connect(pout, "IN", logic, &so)?;
        ed.route(RouteOptions::default())?;
        ed.finish()?;
    }
    let report = measure(&lib, &chip_name)?;
    Ok(FilterChip {
        lib,
        cell: chip_name,
        report,
    })
}

fn find_connector(
    ed: &Editor<'_>,
    inst: riot_core::InstanceId,
    prefix: &str,
) -> Result<String, RiotError> {
    ed.world_connectors(inst)?
        .into_iter()
        .map(|c| c.name)
        .find(|n| n.starts_with(prefix))
        .ok_or_else(|| RiotError::UnknownConnector {
            instance: format!("{inst}"),
            connector: prefix.to_owned(),
        })
}
