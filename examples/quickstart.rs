//! Quickstart: load cells, place instances, connect by abutment and
//! routing, export CIF.
//!
//! Run with `cargo run --example quickstart`.

use riot::core::{AbutOptions, Editor, Library, RouteOptions};
use riot::geom::{Point, LAMBDA};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The cell menu: a shift-register stage and a NAND gate.
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register())?;
    let nand = lib.add_sticks_cell(riot::cells::nand2())?;

    // An editing session on a new composition cell.
    let mut ed = Editor::open(&mut lib, "DEMO")?;

    // Two shift-register stages: chain them by abutment. The serial
    // output of the first meets the serial input of the second.
    let s0 = ed.create_instance(sr)?;
    let s1 = ed.create_instance(sr)?;
    ed.translate_instance(s1, Point::new(40 * LAMBDA, 5 * LAMBDA))?;
    ed.connect(s1, "SI", s0, "SO")?;
    ed.abut(AbutOptions::default())?;
    println!(
        "abutted: stage 1 now at {}",
        ed.instance_bbox(s1)?.lower_left()
    );

    // A NAND above, connected to the taps by river routing. Riot makes
    // the route cell, places it, and moves the NAND against it.
    let g = ed.create_instance(nand)?;
    ed.translate_instance(g, Point::new(0, 60 * LAMBDA))?;
    ed.connect(g, "A", s0, "TAP")?;
    ed.connect(g, "B", s1, "TAP")?;
    let (route_cell, _) = ed.route(RouteOptions::default())?;
    println!(
        "routed through new cell `{}`",
        ed.library().cell(route_cell)?.name
    );

    for w in ed.take_warnings() {
        println!("warning: {w}");
    }

    // Finish the cell: its boundary connectors come from the instances.
    let promoted = ed.finish()?;
    println!("finished DEMO with {promoted} boundary connectors");
    drop(ed); // release the library borrow (the editor dumps RIOT_TRACE on drop)

    // Export mask geometry.
    let cif = riot::core::export::to_cif(&lib, "DEMO")?;
    let text = riot::cif::to_text(&cif);
    std::fs::create_dir_all("out")?;
    std::fs::write("out/quickstart.cif", &text)?;
    println!("wrote out/quickstart.cif ({} bytes)", text.len());
    Ok(())
}
