//! REPLAY: record an editing session, change a leaf cell's shape, and
//! re-run the journal — the connections are re-made at the new
//! positions, by name.
//!
//! Run with `cargo run --example replay_session`.

use riot::core::{replay, Editor, Journal, Library, RouteOptions, StretchOptions};
use riot::geom::{Point, LAMBDA};

const RECEIVER: &str = "\
sticks receiver
bbox 0 0 12 24
pin A left NP 0 6 2
pin B left NP 0 12 2
wire NP 2 0 6 8 6
wire NP 2 0 12 8 12
end
";

fn driver(separation: i64) -> String {
    format!(
        "sticks driver\nbbox 0 0 10 {h}\npin X right NP 10 6 2\npin Y right NP 10 {y} 2\nwire NP 2 0 6 10 6\nwire NP 2 0 {y} 10 {y}\nend\n",
        h = separation + 12,
        y = 6 + separation
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record a session against the original driver (pins 8λ apart).
    let journal: Journal = {
        let mut lib = Library::new();
        lib.load_sticks(&driver(8))?;
        lib.load_sticks(RECEIVER)?;
        let d_cell = lib.find("driver").unwrap();
        let r_cell = lib.find("receiver").unwrap();
        let mut ed = Editor::open(&mut lib, "TOP")?;
        let d = ed.create_instance(d_cell)?;
        let r = ed.create_instance(r_cell)?;
        ed.translate_instance(r, Point::new(40 * LAMBDA, 0))?;
        ed.connect(r, "A", d, "X")?;
        ed.connect(r, "B", d, "Y")?;
        ed.stretch(StretchOptions::default())?;
        ed.finish()?;
        let _ = d;
        ed.journal().clone()
    };
    let text = journal.to_text();
    println!("recorded journal:\n{text}");

    // The leaf cell changes: driver pins move to 16λ apart. Without
    // REPLAY "the user is forced to re-edit major portions of the chip
    // by hand"; with it, one command re-makes everything.
    let mut lib = Library::new();
    lib.load_sticks(&driver(16))?;
    lib.load_sticks(RECEIVER)?;
    let warnings = replay(&Journal::parse(&text)?, &mut lib)?;
    println!("replayed with {} warnings", warnings.len());

    let ed = Editor::open(&mut lib, "TOP")?;
    let d = ed.find_instance("I0").unwrap();
    let r = ed.find_instance("I1").unwrap();
    for (from, to) in [("A", "X"), ("B", "Y")] {
        let f = ed.world_connector(r, from)?;
        let t = ed.world_connector(d, to)?;
        assert_eq!(f.location, t.location, "{from}-{to} re-made");
        println!("{from} meets {to} at {}", f.location);
    }

    // The stretch was recomputed: the receiver's pins now sit 16λ
    // apart, not the recorded 8λ.
    let a = ed.world_connector(r, "A")?;
    let b = ed.world_connector(r, "B")?;
    println!(
        "receiver pin separation after replay: {}λ",
        (b.location.y - a.location.y) / LAMBDA
    );
    assert_eq!((b.location.y - a.location.y) / LAMBDA, 16);

    // Routing replays too.
    let journal2: Journal = {
        let mut lib = Library::new();
        lib.load_sticks(&driver(8))?;
        lib.load_sticks(RECEIVER)?;
        let d_cell = lib.find("driver").unwrap();
        let r_cell = lib.find("receiver").unwrap();
        let mut ed = Editor::open(&mut lib, "TOP")?;
        let d = ed.create_instance(d_cell)?;
        let r = ed.create_instance(r_cell)?;
        ed.translate_instance(r, Point::new(40 * LAMBDA, 7 * LAMBDA))?;
        ed.connect(r, "A", d, "X")?;
        ed.route(RouteOptions::default())?;
        ed.finish()?;
        let _ = d;
        ed.journal().clone()
    };
    let mut lib2 = Library::new();
    lib2.load_sticks(&driver(20))?;
    lib2.load_sticks(RECEIVER)?;
    replay(&journal2, &mut lib2)?;
    println!("route journal replayed against the re-shaped driver");
    Ok(())
}
