//! Pad hookup with pipe fittings: "Pre-defined pipe fittings aid
//! complex routes for power, ground and clock lines. Pad routing is
//! done in pieces with Riot's routing command."
//!
//! Builds the filter chip, then turns the input pad's ground line
//! around a corner with a pipe fitting and carries it along the chip
//! bottom — the power-distribution idiom of the era.
//!
//! Run with `cargo run --example pad_ring`.

use riot::core::{AbutOptions, Editor};
use riot::filter::{build_chip, LogicStyle};
use riot::geom::Layer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let chip = build_chip(4, LogicStyle::Stretched)?;
    let mut lib = chip.lib;

    // The pipe fitting joins a left-entering metal line to a
    // bottom-leaving one; rotations give the other corners.
    let pipe_cell = lib.add_sticks_cell(riot::cells::pipe_corner(Layer::Metal, 3))?;

    let mut ed = Editor::open(&mut lib, &chip.cell)?;
    let padin = ed
        .instances()
        .into_iter()
        .find(|(_, i)| {
            ed.instance_cell(ed.find_instance(&i.name).unwrap())
                .map(|c| c.name == "padin")
                .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .expect("input pad placed by build_chip");

    // Corner 1: pipe's left port takes the pad's ground stub.
    let pipe = ed.create_instance(pipe_cell)?;
    ed.connect(pipe, "A", padin, "GND")?;
    ed.abut(AbutOptions::default())?;
    let a = ed.world_connector(pipe, "A")?;
    let gnd = ed.world_connector(padin, "GND")?;
    assert_eq!(a.location, gnd.location);
    println!(
        "pipe corner placed at {}; ground now turns down at {}",
        ed.instance_bbox(pipe)?.lower_left(),
        ed.world_connector(pipe, "B")?.location
    );

    // Corner 2: a mirrored pipe catches the line at the far end,
    // turning it back up toward the output pad's ground stub.
    let pipe2 = ed.create_instance(pipe_cell)?;
    ed.orient_instance(pipe2, riot::geom::Orientation::MX)?;
    let padout = ed
        .instances()
        .into_iter()
        .find(|(_, i)| {
            ed.instance_cell(ed.find_instance(&i.name).unwrap())
                .map(|c| c.name == "padout")
                .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .expect("output pad placed");
    // The mirrored pipe's A faces right: connect it to the output
    // pad's left-side ground.
    ed.connect(pipe2, "A", padout, "GND")?;
    ed.abut(AbutOptions::default())?;
    println!(
        "second corner at {}; both ground stubs turned toward the chip bottom",
        ed.instance_bbox(pipe2)?.lower_left()
    );

    for w in ed.take_warnings() {
        println!("warning: {w}");
    }
    ed.finish()?;

    // Render the padded chip with its fittings.
    let list = riot::ui::render::editor_ops(&ed, Default::default())?;
    std::fs::write("out/pad_ring.svg", riot::graphics::svg::to_svg(&list))?;
    println!("wrote out/pad_ring.svg");
    Ok(())
}
