//! Arrays and power sharing: replicate a cell into an abutting array,
//! inspect its exposed connectors, and overlap-abut a neighbour to
//! share a power rail — the paper's "frequently used to share power or
//! ground lines in adjacent instances".
//!
//! Run with `cargo run --example array_assembly`.

use riot::core::{AbutOptions, Editor, Library};
use riot::geom::{Point, LAMBDA};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = Library::new();
    let sr = lib.add_sticks_cell(riot::cells::shift_register())?;
    let nand = lib.add_sticks_cell(riot::cells::nand2())?;

    let mut ed = Editor::open(&mut lib, "ARRAYS")?;

    // An 8-stage shift register: one instance, replicated. Default
    // spacing equals the cell width, so "array elements must connect
    // properly by abutment" — the chain and the rails connect for free.
    let row = ed.create_instance(sr)?;
    ed.replicate_instance(row, 8, 1)?;
    let conns = ed.world_connectors(row)?;
    println!("8x1 array exposes {} connectors:", conns.len());
    for c in &conns {
        println!(
            "  {:<10} {:>7} layer {} side {:?}",
            c.name,
            c.location,
            c.layer,
            c.side.map(|s| s.to_string())
        );
    }
    // Interior connectors (SO of column 0..6) are hidden: only the
    // outside edges show.
    assert!(conns
        .iter()
        .all(|c| !c.name.starts_with("SO[0") || c.name == "SO[7,0]"));

    // A 2x2 array of NAND gates shows gridding and suffixed names.
    let grid = ed.create_instance(nand)?;
    ed.replicate_instance(grid, 2, 2)?;
    ed.translate_instance(grid, Point::new(0, 60 * LAMBDA))?;
    println!(
        "\n2x2 NAND array bbox: {} ({} exposed connectors)",
        ed.instance_bbox(grid)?,
        ed.world_connectors(grid)?.len()
    );

    // Power sharing: abut a single NAND onto the grid with the overlap
    // option, connecting rail to rail.
    let extra = ed.create_instance(nand)?;
    ed.translate_instance(extra, Point::new(80 * LAMBDA, 60 * LAMBDA))?;
    ed.connect(extra, "PWRL", grid, "PWRR[1,0]")?;
    ed.abut(AbutOptions { overlap: true })?;
    let pl = ed.world_connector(extra, "PWRL")?;
    let pr = ed.world_connector(grid, "PWRR[1,0]")?;
    assert_eq!(pl.location, pr.location);
    println!("shared rail at {}", pl.location);

    for w in ed.take_warnings() {
        println!("warning: {w}");
    }
    ed.finish()?;
    println!("\nfinished ARRAYS: bbox {}", ed.cell().bbox);
    Ok(())
}
