//! A scripted interactive session on the simulated workstation:
//! figure 2's screen organization, menu picks, editing-area clicks, and
//! hardcopy on both terminals and the pen plotter.
//!
//! Run with `cargo run --example interactive_session`. Screens land in
//! `out/`.

use riot::core::{Editor, Library};
use riot::geom::{Point, LAMBDA};
use riot::ui::{GraphicalCommand, InteractiveSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let mut lib = Library::new();
    lib.add_sticks_cell(riot::cells::shift_register())?;
    lib.add_sticks_cell(riot::cells::nand2())?;
    lib.add_sticks_cell(riot::cells::or2())?;

    let ed = Editor::open(&mut lib, "SESSION")?;
    // The Charles terminal's resolution.
    let mut s = InteractiveSession::new(ed, 512, 480);

    // Point at the cell menu, then CREATE, then place two gates.
    s.click_cell("nand2")?;
    println!("> {}", s.status());
    s.click_command(GraphicalCommand::Create)?;
    println!("> {}", s.status());
    s.click_world(Point::new(10 * LAMBDA, 10 * LAMBDA))?;
    println!("> {}", s.status());
    s.click_world(Point::new(60 * LAMBDA, 10 * LAMBDA))?;
    println!("> {}", s.status());

    // Connect the two gates by pointing at their connectors, then ABUT.
    s.click_command(GraphicalCommand::Connect)?;
    let i0 = s.editor().find_instance("I0").unwrap();
    let i1 = s.editor().find_instance("I1").unwrap();
    let from = s.editor().world_connector(i1, "PWRL")?.location;
    let to = s.editor().world_connector(i0, "PWRR")?.location;
    s.click_world(from)?;
    println!("> {}", s.status());
    s.click_world(to)?;
    println!("> {}", s.status());
    s.click_command(GraphicalCommand::Abut)?;
    println!("> {}", s.status());

    // Figure 3: instance view with names on.
    s.click_command(GraphicalCommand::Names)?;
    s.fit_view();
    let fb = s.render();
    std::fs::write("out/fig2_screen.ppm", fb.to_ppm())?;
    println!(
        "wrote out/fig2_screen.ppm ({}x{}, {} lit pixels)",
        fb.width(),
        fb.height(),
        fb.lit_pixels()
    );

    // The same editing area on the low-cost GIGI terminal.
    let list = riot::ui::render::editor_ops(
        s.editor(),
        riot::ui::render::RenderOptions {
            cell_names: true,
            connector_names: false,
        },
    )?;
    let gigi = riot::graphics::device::gigi();
    std::fs::write("out/fig1_gigi.ppm", gigi.render(&list).to_ppm())?;
    println!(
        "wrote out/fig1_gigi.ppm ({}, {} colors)",
        gigi.name(),
        gigi.palette().len()
    );

    // Hardcopy on the HP 7221A.
    let plot = riot::graphics::plotter::plot(&list);
    std::fs::write("out/session.hpgl", &plot.commands)?;
    println!(
        "plotted {} strokes, {} cµ of pen travel",
        plot.strokes_per_pen.iter().sum::<usize>(),
        plot.pen_travel
    );

    s.editor_mut().finish()?;
    println!("finished SESSION: bbox {}", s.editor().cell().bbox);
    Ok(())
}
