//! The paper's worked example (figures 7–10): the four-bit sequential
//! logical filter, assembled with routing (figure 9a) and with
//! stretching (figure 9b), then finished into a padded chip
//! (figure 10).
//!
//! Run with `cargo run --example logical_filter`. Renders land in
//! `out/`.

use riot::core::Editor;
use riot::filter::{build_chip, build_logic, LogicStyle};
use riot::graphics::svg::to_svg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;

    println!("figure 9: filter logic connected two ways (4 bits)");
    println!(
        "{:<11} {:>9} {:>9} {:>13} {:>9}",
        "style", "width/λ", "height/λ", "area/λ²", "routing%"
    );
    let mut reports = Vec::new();
    for style in [LogicStyle::Routed, LogicStyle::Stretched] {
        let logic = build_logic(4, style)?;
        let r = &logic.report;
        let lambda = riot::geom::LAMBDA;
        println!(
            "{:<11} {:>9} {:>9} {:>13} {:>8.1}%",
            style.name(),
            r.bbox.width() / lambda,
            r.bbox.height() / lambda,
            r.total_area / (lambda as i128 * lambda as i128),
            100.0 * r.routing_fraction()
        );
        // Figure 9a/9b renders.
        let mut lib = logic.lib;
        let ed = Editor::open(&mut lib, &logic.cell)?;
        let list = riot::ui::render::editor_ops(&ed, Default::default())?;
        let path = format!("out/fig9_{}.svg", style.name());
        std::fs::write(&path, to_svg(&list))?;
        println!("  wrote {path}");
        reports.push((style, r.clone()));
    }
    let (rt, st) = (&reports[0].1, &reports[1].1);
    println!(
        "stretching saves {:.1}% of the area ({:.1}% of the height)",
        100.0 * (1.0 - st.total_area as f64 / rt.total_area as f64),
        100.0 * (1.0 - st.bbox.height() as f64 / rt.bbox.height() as f64)
    );

    println!("\nfigure 10: the completed chip (logic + pads)");
    let chip = build_chip(4, LogicStyle::Stretched)?;
    let (w, h) = chip.report.size_microns();
    println!(
        "chip `{}`: {:.0} x {:.0} microns, {} instances",
        chip.cell, w, h, chip.report.instances
    );
    // Full mask plot from the flattened CIF.
    let cif = riot::core::export::to_cif(&chip.lib, &chip.cell)?;
    std::fs::write("out/fig10_chip.cif", riot::cif::to_text(&cif))?;
    let flat = riot::cif::flatten(&cif)?;
    let list = riot::ui::render::flat_cif_ops(&flat);
    std::fs::write("out/fig10_chip.svg", to_svg(&list))?;
    println!(
        "wrote out/fig10_chip.cif and out/fig10_chip.svg ({} shapes)",
        flat.len()
    );
    Ok(())
}
