//! A tiny zero-dependency scoped worker pool.
//!
//! The geometry pipeline (DRC layer checks, flatten instantiation,
//! per-band rendering) wants data parallelism without pulling `rayon`
//! into an offline workspace. This module provides just enough: scoped
//! fork/join over slices using [`std::thread::scope`], honoring the
//! `RIOT_THREADS` environment variable (or a programmatic override for
//! benchmarks), and falling back to plain serial loops for small
//! inputs where thread spawn latency would dominate.
//!
//! Threads are spawned per call and joined before returning — there is
//! no long-lived pool, so no shutdown protocol, no channels, and
//! worker panics propagate to the caller exactly like serial panics.
//!
//! # Choosing an entry point
//!
//! * [`map`] — per-item map over a slice; runs serially below
//!   [`SERIAL_CUTOFF`] items. Use when per-item work is small.
//! * [`map_heavy`] — same, but parallelizes any input with more than
//!   one item. Use when each item is a large independent job (a whole
//!   DRC layer, a band of the framebuffer).
//! * [`for_each_mut`] — indexed in-place visit of `&mut [T]`, heavy
//!   semantics. Use when results are written into the items.
//!
//! # Example
//!
//! ```
//! let squares = riot_geom::par::map(&(0..2048).collect::<Vec<i64>>(), |&x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs shorter than this are mapped serially by [`map`]: spawning a
/// thread costs tens of microseconds, which per-item work only
/// amortizes on larger batches.
pub const SERIAL_CUTOFF: usize = 2048;

/// Programmatic thread-count override; 0 means "use the environment".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count, overriding `RIOT_THREADS` (benchmarks use
/// this to sweep 1/2/4 threads in one process). `0` restores
/// environment-driven behavior.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count: the [`set_threads`] override if any, else the
/// `RIOT_THREADS` environment variable, else the machine parallelism.
/// Always at least 1; capped at 64.
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    let n = if forced > 0 {
        forced
    } else {
        std::env::var("RIOT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    };
    n.clamp(1, 64)
}

/// Maps `f` over `items`, preserving order. Serial below
/// [`SERIAL_CUTOFF`] items or when [`threads`] is 1; otherwise the
/// slice is split into one contiguous chunk per worker.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() < SERIAL_CUTOFF {
        return items.iter().map(f).collect();
    }
    map_heavy(items, f)
}

/// Maps `f` over `items`, preserving order, parallelizing whenever
/// there is more than one item and more than one worker. The caller
/// asserts each item is a substantial unit of work.
pub fn map_heavy<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    riot_trace::registry()
        .gauge("geom.par.threads")
        .set(workers as i64);
    let _sp = riot_trace::span!(
        "geom.par.map",
        items = items.len() as u64,
        workers = workers as u64
    );
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Visits every item of `items` in place, passing its index. Heavy
/// semantics: parallel whenever both the item count and the worker
/// count exceed one. Chunks are contiguous, so each worker touches a
/// disjoint region of the slice.
pub fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    riot_trace::registry()
        .gauge("geom.par.threads")
        .set(workers as i64);
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (ci, c) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (j, item) in c.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
        // `scope` joins all workers and re-raises any worker panic.
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the global thread override and
    /// restores it even when the closure panics (the propagation test
    /// relies on both).
    fn with_forced_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                set_threads(0);
            }
        }
        let _reset = Reset;
        set_threads(n);
        f()
    }

    #[test]
    fn map_preserves_order_serial_and_parallel() {
        let items: Vec<i64> = (0..10_000).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * 3).collect();
        for t in [1, 2, 4, 7] {
            let got = with_forced_threads(t, || map(&items, |&x| x * 3));
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn map_heavy_parallelizes_tiny_inputs() {
        let counted = AtomicU64::new(0);
        let got = with_forced_threads(3, || {
            map_heavy(&[10u64, 20, 30], |&x| {
                counted.fetch_add(1, Ordering::Relaxed);
                x + 1
            })
        });
        assert_eq!(got, vec![11, 21, 31]);
        assert_eq!(counted.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn for_each_mut_writes_in_place() {
        let mut items = vec![0usize; 5000];
        with_forced_threads(4, || for_each_mut(&mut items, |i, v| *v = i * 2));
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let r: Vec<u8> = map(&[], |x: &u8| *x);
        assert!(r.is_empty());
        let mut nothing: [u8; 0] = [];
        for_each_mut(&mut nothing, |_, _| unreachable!());
    }

    #[test]
    fn threads_reads_override() {
        with_forced_threads(5, || assert_eq!(threads(), 5));
    }

    #[test]
    fn threads_is_clamped() {
        with_forced_threads(1000, || assert_eq!(threads(), 64));
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate() {
        with_forced_threads(2, || {
            let items: Vec<u32> = (0..10).collect();
            let _ = map_heavy(&items, |&x| {
                if x == 7 {
                    panic!("worker exploded");
                }
                x
            });
        });
    }
}
