//! Sides of a bounding box, used to express *opposed* connectors.
//!
//! Riot "checks that the connectors to be joined are on the same layer
//! and that they are opposed. That is, that they connect top to bottom or
//! left to right."

use crate::point::Point;
use std::fmt;

/// One side of a cell bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The left (x0) edge.
    Left,
    /// The right (x1) edge.
    Right,
    /// The bottom (y0) edge.
    Bottom,
    /// The top (y1) edge.
    Top,
}

impl Side {
    /// All four sides.
    pub const ALL: [Side; 4] = [Side::Left, Side::Right, Side::Bottom, Side::Top];

    /// The opposite side — the one a connector here may legally join.
    ///
    /// ```
    /// use riot_geom::Side;
    /// assert_eq!(Side::Left.opposite(), Side::Right);
    /// assert_eq!(Side::Top.opposite(), Side::Bottom);
    /// ```
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
            Side::Bottom => Side::Top,
            Side::Top => Side::Bottom,
        }
    }

    /// True when `other` is this side's opposite (i.e. connectors on the
    /// two sides are *opposed* in Riot's sense).
    pub fn opposes(self, other: Side) -> bool {
        self.opposite() == other
    }

    /// True for [`Side::Left`] and [`Side::Right`].
    pub fn is_vertical(self) -> bool {
        matches!(self, Side::Left | Side::Right)
    }

    /// True for [`Side::Bottom`] and [`Side::Top`].
    pub fn is_horizontal(self) -> bool {
        !self.is_vertical()
    }

    /// Outward unit normal of the side.
    pub fn normal(self) -> Point {
        match self {
            Side::Left => Point::new(-1, 0),
            Side::Right => Point::new(1, 0),
            Side::Bottom => Point::new(0, -1),
            Side::Top => Point::new(0, 1),
        }
    }

    /// The axis along which connectors on this side are ordered: `x`
    /// for top/bottom edges, `y` for left/right edges. Returns the
    /// relevant coordinate of `p`.
    pub fn along(self, p: Point) -> i64 {
        if self.is_vertical() {
            p.y
        } else {
            p.x
        }
    }

    /// The perpendicular coordinate of `p` (the one fixed on this side).
    pub fn across(self, p: Point) -> i64 {
        if self.is_vertical() {
            p.x
        } else {
            p.y
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Side::Left => "left",
            Side::Right => "right",
            Side::Bottom => "bottom",
            Side::Top => "top",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Side {
    type Err = ParseSideError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "left" | "l" => Ok(Side::Left),
            "right" | "r" => Ok(Side::Right),
            "bottom" | "b" => Ok(Side::Bottom),
            "top" | "t" => Ok(Side::Top),
            _ => Err(ParseSideError {
                found: s.to_owned(),
            }),
        }
    }
}

/// Error returned when parsing a [`Side`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSideError {
    found: String,
}

impl fmt::Display for ParseSideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown side `{}`", self.found)
    }
}

impl std::error::Error for ParseSideError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_involution() {
        for s in Side::ALL {
            assert_eq!(s.opposite().opposite(), s);
            assert!(s.opposes(s.opposite()));
            assert!(!s.opposes(s));
        }
    }

    #[test]
    fn orientation_classes() {
        assert!(Side::Left.is_vertical());
        assert!(Side::Top.is_horizontal());
        let verts = Side::ALL.iter().filter(|s| s.is_vertical()).count();
        assert_eq!(verts, 2);
    }

    #[test]
    fn normals_are_unit_outward() {
        for s in Side::ALL {
            let n = s.normal();
            assert_eq!(n.x.abs() + n.y.abs(), 1);
            assert_eq!(s.opposite().normal(), -n);
        }
    }

    #[test]
    fn along_across() {
        let p = Point::new(3, 7);
        assert_eq!(Side::Left.along(p), 7);
        assert_eq!(Side::Left.across(p), 3);
        assert_eq!(Side::Top.along(p), 3);
        assert_eq!(Side::Top.across(p), 7);
    }

    #[test]
    fn parse() {
        assert_eq!("left".parse::<Side>().unwrap(), Side::Left);
        assert_eq!("T".parse::<Side>().unwrap(), Side::Top);
        assert!("middle".parse::<Side>().is_err());
    }
}
