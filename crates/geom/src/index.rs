//! An immutable spatial index over rectangles: a bucketed uniform grid.
//!
//! The geometry hot paths (DRC spacing, connected-component discovery,
//! per-band render clipping) all ask the same question — *which
//! rectangles are near this one?* — and until this module existed they
//! all answered it with an all-pairs scan. [`SpatialIndex`] answers it
//! in roughly O(k) per query after an O(n log n) build: rectangles are
//! binned into a √n × √n grid of buckets (CSR layout, two-pass build,
//! no per-bucket allocation), and a query gathers the buckets its
//! window overlaps, deduplicates, and filters exactly.
//!
//! The index is **immutable** once built and contains only plain data
//! plus atomic counters, so shared references can be queried freely
//! from worker threads (see [`crate::par`]).
//!
//! # Example
//!
//! ```
//! use riot_geom::{index::SpatialIndex, Rect};
//!
//! let rects = vec![
//!     Rect::new(0, 0, 10, 10),
//!     Rect::new(100, 100, 110, 110),
//!     Rect::new(12, 0, 20, 10),
//! ];
//! let idx = SpatialIndex::build(&rects);
//! // Touching the first rectangle only:
//! let hits: Vec<usize> = idx.query(Rect::new(5, 5, 9, 9)).collect();
//! assert_eq!(hits, vec![0]);
//! // Within 2 centimicrons of it: the gap-2 neighbor appears too.
//! let near: Vec<usize> = idx.within(Rect::new(0, 0, 10, 10), 2).collect();
//! assert_eq!(near, vec![0, 2]);
//! ```

use crate::point::Point;
use crate::rect::Rect;
use std::sync::Arc;

/// An immutable bucketed-grid index over a fixed set of [`Rect`]s.
///
/// Built once with [`SpatialIndex::build`]; queries never mutate the
/// structure (the only interior mutability is a metrics counter), so a
/// `&SpatialIndex` is freely shareable across threads.
#[derive(Debug)]
pub struct SpatialIndex {
    rects: Vec<Rect>,
    bounds: Rect,
    cols: usize,
    rows: usize,
    cell_w: i64,
    cell_h: i64,
    /// CSR bucket layout: ids of rects overlapping bucket `b` live in
    /// `entries[bucket_start[b]..bucket_start[b + 1]]`.
    bucket_start: Vec<u32>,
    entries: Vec<u32>,
    queries: Arc<riot_trace::Counter>,
}

impl SpatialIndex {
    /// Builds an index over `rects`. Ids handed back by queries are
    /// indices into this slice (also retrievable via [`Self::rect`]).
    ///
    /// Cost is O(n log n)-ish: one pass to bound, two passes to fill
    /// the CSR buckets (a rect spanning many buckets is inserted into
    /// each, so extremely elongated rects cost proportionally more).
    pub fn build(rects: &[Rect]) -> SpatialIndex {
        let _sp = riot_trace::span!("geom.index.build", rects = rects.len() as u64);
        let registry = riot_trace::registry();
        registry.counter("geom.index.builds").inc();
        registry.counter("geom.index.rects").add(rects.len() as u64);
        let queries = registry.counter("geom.index.queries");

        let n = rects.len();
        let bounds = rects
            .iter()
            .copied()
            .reduce(|a, b| a.union(b))
            .unwrap_or_default();
        // Target roughly one rect per bucket: a side of ceil(sqrt(n)).
        let side = (n as f64).sqrt().ceil().max(1.0) as usize;
        let cols = side;
        let rows = side;
        let cell_w = div_ceil_i64(bounds.width().max(1), cols as i64).max(1);
        let cell_h = div_ceil_i64(bounds.height().max(1), rows as i64).max(1);

        // Two-pass CSR fill: count, prefix-sum, then place.
        let mut bucket_start = vec![0u32; cols * rows + 1];
        let mut spans = Vec::with_capacity(n);
        for r in rects {
            let s = bucket_span(bounds, cell_w, cell_h, cols, rows, *r);
            for row in s.1 .0..=s.1 .1 {
                for col in s.0 .0..=s.0 .1 {
                    bucket_start[row * cols + col + 1] += 1;
                }
            }
            spans.push(s);
        }
        for b in 1..bucket_start.len() {
            bucket_start[b] += bucket_start[b - 1];
        }
        let mut cursor = bucket_start.clone();
        let mut entries = vec![0u32; bucket_start[cols * rows] as usize];
        for (id, s) in spans.iter().enumerate() {
            for row in s.1 .0..=s.1 .1 {
                for col in s.0 .0..=s.0 .1 {
                    let b = row * cols + col;
                    entries[cursor[b] as usize] = id as u32;
                    cursor[b] += 1;
                }
            }
        }

        SpatialIndex {
            rects: rects.to_vec(),
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
            bucket_start,
            entries,
            queries,
        }
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when the index holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The rectangle behind an id returned by a query.
    pub fn rect(&self, id: usize) -> Rect {
        self.rects[id]
    }

    /// All indexed rectangles, in id order.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Bounding box of everything indexed (`Rect::default()` when empty).
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Ids of all rectangles that touch `window` (boundary contact
    /// counts, matching [`Rect::touches`]), in ascending id order.
    pub fn query(&self, window: Rect) -> impl Iterator<Item = usize> + '_ {
        let ids = self.candidates(window);
        ids.into_iter()
            .filter(move |&id| self.rects[id].touches(window))
    }

    /// Ids of all rectangles whose axis gap to `window` is at most
    /// `dist` on **both** axes — the neighborhood a spacing rule of
    /// `dist + 1` must inspect. `within(r, 0)` equals `query(r)`.
    ///
    /// # Panics
    ///
    /// Panics if `dist` is negative.
    pub fn within(&self, window: Rect, dist: i64) -> impl Iterator<Item = usize> + '_ {
        assert!(dist >= 0, "within() needs a non-negative distance");
        let grown = window.inflated(dist);
        self.query(grown)
    }

    /// The id and L∞ gap of the rectangle nearest to `p` (0 when `p`
    /// is inside one), or `None` for an empty index. Ties resolve to
    /// the lowest id.
    pub fn nearest(&self, p: Point) -> Option<(usize, i64)> {
        if self.rects.is_empty() {
            return None;
        }
        self.queries.inc();
        let (pc, pr) = self.bucket_of(p);
        let mut best: Option<(usize, i64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once a candidate is in hand, stop as soon as every
            // unvisited bucket lies farther than the best gap: the
            // frame of visited buckets encloses `p` by at least
            // `enclosure` world units on every side.
            if let Some((_, gap)) = best {
                let enclosure = self.frame_enclosure(pc, pr, ring, p);
                if enclosure > gap {
                    break;
                }
            }
            for (col, row) in ring_buckets(pc, pr, ring, self.cols, self.rows) {
                let b = row * self.cols + col;
                let lo = self.bucket_start[b] as usize;
                let hi = self.bucket_start[b + 1] as usize;
                for &id in &self.entries[lo..hi] {
                    let gap = rect_point_gap(self.rects[id as usize], p);
                    let cand = (id as usize, gap);
                    best = Some(match best {
                        Some(b) if (b.1, b.0) <= (cand.1, cand.0) => b,
                        _ => cand,
                    });
                }
            }
        }
        best
    }

    /// Candidate ids from every bucket overlapping `window`, sorted
    /// ascending and deduplicated (a rect spanning several buckets
    /// appears once).
    fn candidates(&self, window: Rect) -> Vec<usize> {
        self.queries.inc();
        if self.rects.is_empty() || !self.bounds.touches(window) {
            return Vec::new();
        }
        let ((c0, c1), (r0, r1)) = bucket_span(
            self.bounds,
            self.cell_w,
            self.cell_h,
            self.cols,
            self.rows,
            window,
        );
        let mut ids = Vec::new();
        for row in r0..=r1 {
            for col in c0..=c1 {
                let b = row * self.cols + col;
                let lo = self.bucket_start[b] as usize;
                let hi = self.bucket_start[b + 1] as usize;
                ids.extend(self.entries[lo..hi].iter().map(|&id| id as usize));
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The bucket containing `p`, clamped into the grid.
    fn bucket_of(&self, p: Point) -> (usize, usize) {
        let col = ((p.x - self.bounds.x0) / self.cell_w).clamp(0, self.cols as i64 - 1) as usize;
        let row = ((p.y - self.bounds.y0) / self.cell_h).clamp(0, self.rows as i64 - 1) as usize;
        (col, row)
    }

    /// How far, in world units, `p` is from the outside of the square
    /// frame of buckets `ring` wide around `(pc, pr)`. Anything in an
    /// unvisited bucket is at least this far away.
    fn frame_enclosure(&self, pc: usize, pr: usize, ring: usize, p: Point) -> i64 {
        let r = ring as i64;
        let fx0 = self.bounds.x0 + (pc as i64 - r) * self.cell_w;
        let fx1 = self.bounds.x0 + (pc as i64 + r + 1) * self.cell_w;
        let fy0 = self.bounds.y0 + (pr as i64 - r) * self.cell_h;
        let fy1 = self.bounds.y0 + (pr as i64 + r + 1) * self.cell_h;
        (p.x - fx0).min(fx1 - p.x).min(p.y - fy0).min(fy1 - p.y)
    }
}

/// The L∞ gap from a point to a rectangle: 0 inside/on the boundary.
fn rect_point_gap(r: Rect, p: Point) -> i64 {
    let dx = (r.x0 - p.x).max(p.x - r.x1).max(0);
    let dy = (r.y0 - p.y).max(p.y - r.y1).max(0);
    dx.max(dy)
}

/// Buckets on the Chebyshev ring `ring` around `(pc, pr)`, clipped to
/// the grid.
fn ring_buckets(
    pc: usize,
    pr: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> Vec<(usize, usize)> {
    let (pc, pr, ring) = (pc as i64, pr as i64, ring as i64);
    let mut out = Vec::new();
    let mut push = |c: i64, r: i64| {
        if c >= 0 && r >= 0 && c < cols as i64 && r < rows as i64 {
            out.push((c as usize, r as usize));
        }
    };
    if ring == 0 {
        push(pc, pr);
        return out;
    }
    for c in (pc - ring)..=(pc + ring) {
        push(c, pr - ring);
        push(c, pr + ring);
    }
    for r in (pr - ring + 1)..(pr + ring) {
        push(pc - ring, r);
        push(pc + ring, r);
    }
    out
}

/// The inclusive `(col, row)` bucket ranges a rectangle overlaps.
#[allow(clippy::type_complexity)]
fn bucket_span(
    bounds: Rect,
    cell_w: i64,
    cell_h: i64,
    cols: usize,
    rows: usize,
    r: Rect,
) -> ((usize, usize), (usize, usize)) {
    let c0 = ((r.x0 - bounds.x0) / cell_w).clamp(0, cols as i64 - 1) as usize;
    let c1 = ((r.x1 - bounds.x0) / cell_w).clamp(0, cols as i64 - 1) as usize;
    let r0 = ((r.y0 - bounds.y0) / cell_h).clamp(0, rows as i64 - 1) as usize;
    let r1 = ((r.y1 - bounds.y0) / cell_h).clamp(0, rows as i64 - 1) as usize;
    ((c0, c1), (r0, r1))
}

fn div_ceil_i64(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_rects(cols: i64, rows: i64, size: i64, pitch: i64) -> Vec<Rect> {
        let mut v = Vec::new();
        for c in 0..cols {
            for r in 0..rows {
                v.push(Rect::new(
                    c * pitch,
                    r * pitch,
                    c * pitch + size,
                    r * pitch + size,
                ));
            }
        }
        v
    }

    /// Reference all-pairs query the index must agree with.
    fn naive_touching(rects: &[Rect], window: Rect) -> Vec<usize> {
        rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.touches(window))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = SpatialIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.query(Rect::new(0, 0, 10, 10)).count(), 0);
        assert_eq!(idx.nearest(Point::new(0, 0)), None);
    }

    #[test]
    fn query_matches_naive_on_grid() {
        let rects = grid_rects(13, 9, 8, 20);
        let idx = SpatialIndex::build(&rects);
        for window in [
            Rect::new(0, 0, 5, 5),
            Rect::new(-100, -100, -50, -50),
            Rect::new(0, 0, 260, 180),
            Rect::new(35, 35, 37, 37),
            Rect::new(19, 19, 21, 21), // straddles pitch boundaries
        ] {
            let got: Vec<usize> = idx.query(window).collect();
            assert_eq!(got, naive_touching(&rects, window), "window {window}");
        }
    }

    #[test]
    fn query_matches_naive_on_soup() {
        // Deterministic pseudo-random soup without external crates.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rects: Vec<Rect> = (0..500)
            .map(|_| {
                let x = (next() % 10_000) as i64;
                let y = (next() % 10_000) as i64;
                let w = (next() % 400) as i64 + 1;
                let h = (next() % 400) as i64 + 1;
                Rect::new(x, y, x + w, y + h)
            })
            .collect();
        let idx = SpatialIndex::build(&rects);
        for i in (0..rects.len()).step_by(17) {
            let got: Vec<usize> = idx.query(rects[i]).collect();
            assert_eq!(got, naive_touching(&rects, rects[i]), "rect {i}");
        }
    }

    #[test]
    fn within_expands_the_neighborhood() {
        let rects = vec![Rect::new(0, 0, 10, 10), Rect::new(15, 0, 25, 10)];
        let idx = SpatialIndex::build(&rects);
        let near0: Vec<usize> = idx.within(rects[0], 4).collect();
        assert_eq!(near0, vec![0]); // gap is 5 > 4
        let near1: Vec<usize> = idx.within(rects[0], 5).collect();
        assert_eq!(near1, vec![0, 1]);
    }

    #[test]
    fn within_is_query_at_zero() {
        let rects = grid_rects(5, 5, 8, 20);
        let idx = SpatialIndex::build(&rects);
        for &r in &rects {
            let a: Vec<usize> = idx.query(r).collect();
            let b: Vec<usize> = idx.within(r, 0).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn nearest_finds_the_closest_rect() {
        let rects = grid_rects(10, 10, 8, 100);
        let idx = SpatialIndex::build(&rects);
        // Inside rect (3, 4) => id 3 * 10 + 4, gap 0.
        assert_eq!(idx.nearest(Point::new(304, 402)), Some((34, 0)));
        // Just right of rect (0, 0): gap 2.
        assert_eq!(idx.nearest(Point::new(10, 4)), Some((0, 2)));
        // Far outside the grid: the corner rect wins.
        let (id, gap) = idx.nearest(Point::new(2000, 2000)).unwrap();
        assert_eq!(id, 99);
        assert_eq!(gap, 2000 - 908);
    }

    #[test]
    fn nearest_agrees_with_naive_scan() {
        let rects = grid_rects(7, 3, 10, 37);
        let idx = SpatialIndex::build(&rects);
        for p in [
            Point::new(0, 0),
            Point::new(-50, 80),
            Point::new(300, 50),
            Point::new(130, 130),
            Point::new(36, 36),
        ] {
            let naive = rects
                .iter()
                .enumerate()
                .map(|(i, &r)| (rect_point_gap(r, p), i))
                .min()
                .map(|(g, i)| (i, g));
            assert_eq!(idx.nearest(p), naive, "point {p}");
        }
    }

    #[test]
    fn degenerate_rects_are_indexed() {
        let rects = vec![Rect::new(5, 5, 5, 5), Rect::new(5, 0, 5, 10)];
        let idx = SpatialIndex::build(&rects);
        let got: Vec<usize> = idx.query(Rect::new(5, 5, 5, 5)).collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn query_counter_ticks() {
        let before = riot_trace::registry().counter("geom.index.queries").get();
        let idx = SpatialIndex::build(&[Rect::new(0, 0, 1, 1)]);
        let _ = idx.query(Rect::new(0, 0, 2, 2)).count();
        let after = riot_trace::registry().counter("geom.index.queries").get();
        assert!(after > before);
    }
}
