//! Shared low-level geometry objects for the RIOT reproduction.
//!
//! The 1982 Riot paper describes a "shared low-level objects package
//! (500 lines)" under the tool. This crate is that package: integer
//! coordinates in CIF centimicrons, axis-aligned rectangles, the eight
//! Manhattan orientations (the dihedral group D4, i.e. 90° rotations and
//! mirrorings), rigid transforms, mask layers for the NMOS process Riot's
//! cells were drawn in, and the four box sides used to express *opposed*
//! connectors.
//!
//! Beyond the paper's 500 lines, this crate also hosts the two shared
//! performance primitives of the reproduction: an immutable bucketed
//! spatial index over rectangles ([`index`]) and a tiny scoped worker
//! pool ([`par`]) honoring `RIOT_THREADS`. They live here because every
//! geometry hot path (DRC, flatten, render) builds on them.
//!
//! # Units
//!
//! All coordinates are integers in **centimicrons** (1/100 µm), the CIF
//! unit. Symbolic (Sticks) layout is drawn on a **lambda** grid; the
//! conversion lives in [`units`].
//!
//! # Example
//!
//! ```
//! use riot_geom::{Point, Rect, Orientation, Transform};
//!
//! let r = Rect::new(0, 0, 400, 200);
//! let t = Transform::new(Orientation::R90, Point::new(1000, 0));
//! let moved = t.apply_rect(r);
//! assert_eq!(moved, Rect::new(800, 0, 1000, 400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod layer;
pub mod orientation;
pub mod par;
pub mod path;
pub mod point;
pub mod rect;
pub mod side;
pub mod transform;
pub mod units;

pub use index::SpatialIndex;
pub use layer::Layer;
pub use orientation::Orientation;
pub use path::Path;
pub use point::{Coord, Point};
pub use rect::Rect;
pub use side::Side;
pub use transform::Transform;
pub use units::{CentiMicron, Lambda, LAMBDA};
