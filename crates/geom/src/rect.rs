//! Axis-aligned rectangles.

use crate::point::{Coord, Point};
use crate::side::Side;
use std::fmt;

/// An axis-aligned rectangle, stored as its lower-left and upper-right
/// corners. Every cell bounding box, connector cross extent and mask box
/// in the system is a `Rect`.
///
/// A `Rect` is kept **normalized**: `x0 <= x1` and `y0 <= y1`. Degenerate
/// (zero-width or zero-height) rectangles are allowed; they arise as the
/// bounding boxes of single wires.
///
/// # Example
///
/// ```
/// use riot_geom::Rect;
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 5, 20, 8);
/// assert_eq!(a.union(b), Rect::new(0, 0, 20, 10));
/// assert_eq!(a.intersection(b), Some(Rect::new(5, 5, 10, 8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x0: Coord,
    /// Bottom edge.
    pub y0: Coord,
    /// Right edge.
    pub x1: Coord,
    /// Top edge.
    pub y1: Coord,
}

impl Rect {
    /// Creates a rectangle from any two opposite corners; the result is
    /// normalized so ordering of the arguments does not matter.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from two corner points.
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a rectangle from a CIF-style center, length (x extent) and
    /// width (y extent).
    ///
    /// # Panics
    ///
    /// Panics if `length` or `width` is negative.
    pub fn from_center(center: Point, length: Coord, width: Coord) -> Self {
        assert!(length >= 0 && width >= 0, "negative box extent");
        Rect::new(
            center.x - length / 2,
            center.y - width / 2,
            center.x - length / 2 + length,
            center.y - width / 2 + width,
        )
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn at_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Width (x extent). Always non-negative.
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Height (y extent). Always non-negative.
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// Area in square centimicrons.
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// The center point, rounded toward the lower-left on odd extents.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// Lower-left corner.
    pub fn lower_left(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }

    /// True if `other` lies entirely inside or on the boundary of `self`.
    pub fn contains_rect(&self, other: Rect) -> bool {
        self.x0 <= other.x0 && other.x1 <= self.x1 && self.y0 <= other.y0 && other.y1 <= self.y1
    }

    /// True if the two rectangles share any point (boundary contact counts).
    pub fn touches(&self, other: Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// True if the two rectangles share interior area (boundary contact
    /// does **not** count).
    pub fn overlaps(&self, other: Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Extends the rectangle to cover `p`.
    pub fn union_point(&self, p: Point) -> Rect {
        self.union(Rect::at_point(p))
    }

    /// The overlap region, or `None` when the rectangles do not touch.
    pub fn intersection(&self, other: Rect) -> Option<Rect> {
        if !self.touches(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// Returns the rectangle translated by `d`.
    pub fn translated(&self, d: Point) -> Rect {
        Rect {
            x0: self.x0 + d.x,
            y0: self.y0 + d.y,
            x1: self.x1 + d.x,
            y1: self.y1 + d.y,
        }
    }

    /// Returns the rectangle grown outward by `margin` on every side
    /// (shrunk when negative).
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    pub fn inflated(&self, margin: Coord) -> Rect {
        assert!(
            2 * margin >= -self.width() && 2 * margin >= -self.height(),
            "margin {margin} inverts rectangle"
        );
        Rect {
            x0: self.x0 - margin,
            y0: self.y0 - margin,
            x1: self.x1 + margin,
            y1: self.y1 + margin,
        }
    }

    /// The coordinate of one edge: `x` for left/right, `y` for bottom/top.
    pub fn edge(&self, side: Side) -> Coord {
        match side {
            Side::Left => self.x0,
            Side::Right => self.x1,
            Side::Bottom => self.y0,
            Side::Top => self.y1,
        }
    }

    /// Which side of this rectangle the point sits on, if it lies exactly
    /// on the boundary. Corners report the vertical side (left/right).
    pub fn side_of(&self, p: Point) -> Option<Side> {
        if !self.contains(p) {
            return None;
        }
        if p.x == self.x0 {
            Some(Side::Left)
        } else if p.x == self.x1 {
            Some(Side::Right)
        } else if p.y == self.y0 {
            Some(Side::Bottom)
        } else if p.y == self.y1 {
            Some(Side::Top)
        } else {
            None
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}, {}..{}]", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect::new(0, 5, 10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
    }

    #[test]
    fn from_center_even_and_odd() {
        let r = Rect::from_center(Point::new(0, 0), 4, 2);
        assert_eq!(r, Rect::new(-2, -1, 2, 1));
        let r = Rect::from_center(Point::new(0, 0), 5, 3);
        assert_eq!(r.width(), 5);
        assert_eq!(r.height(), 3);
    }

    #[test]
    fn union_and_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, -5, 15, 5);
        assert_eq!(a.union(b), Rect::new(0, -5, 15, 10));
        assert_eq!(a.intersection(b), Some(Rect::new(5, 0, 10, 5)));
        let far = Rect::new(100, 100, 110, 110);
        assert_eq!(a.intersection(far), None);
    }

    #[test]
    fn touch_vs_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10); // shares an edge
        assert!(a.touches(b));
        assert!(!a.overlaps(b));
        let c = Rect::new(9, 0, 20, 10);
        assert!(a.overlaps(c));
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 10)));
        assert!(r.contains(Point::new(5, 5)));
        assert!(!r.contains(Point::new(-1, 5)));
        assert!(r.contains_rect(Rect::new(0, 0, 10, 10)));
        assert!(!r.contains_rect(Rect::new(0, 0, 11, 10)));
    }

    #[test]
    fn sides() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.side_of(Point::new(0, 5)), Some(Side::Left));
        assert_eq!(r.side_of(Point::new(10, 5)), Some(Side::Right));
        assert_eq!(r.side_of(Point::new(5, 0)), Some(Side::Bottom));
        assert_eq!(r.side_of(Point::new(5, 10)), Some(Side::Top));
        assert_eq!(r.side_of(Point::new(5, 5)), None);
        assert_eq!(r.edge(Side::Top), 10);
    }

    #[test]
    fn inflate() {
        let r = Rect::new(0, 0, 10, 10).inflated(5);
        assert_eq!(r, Rect::new(-5, -5, 15, 15));
        assert_eq!(r.inflated(-5), Rect::new(0, 0, 10, 10));
    }

    #[test]
    #[should_panic]
    fn inflate_inversion_panics() {
        let _ = Rect::new(0, 0, 4, 4).inflated(-3);
    }

    #[test]
    fn area_large() {
        // A 1 m x 1 m rectangle in centimicrons does not overflow.
        let r = Rect::new(0, 0, 100_000_000, 100_000_000);
        assert_eq!(r.area(), 10_000_000_000_000_000i128);
    }
}
