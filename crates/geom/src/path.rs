//! Manhattan wire paths.

use crate::point::{Coord, Point};
use crate::rect::Rect;
use std::fmt;

/// A polyline wire centerline, as used by CIF `W` (wire) commands and by
/// the river router's output.
///
/// Paths in this system are **Manhattan**: every segment is horizontal or
/// vertical. [`Path::push`] enforces this.
///
/// # Example
///
/// ```
/// use riot_geom::{Path, Point};
/// let mut p = Path::new(Point::new(0, 0));
/// p.push(Point::new(0, 50)).unwrap();
/// p.push(Point::new(30, 50)).unwrap();
/// assert_eq!(p.length(), 80);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    points: Vec<Point>,
}

impl Path {
    /// Starts a path at `start`.
    pub fn new(start: Point) -> Self {
        Path {
            points: vec![start],
        }
    }

    /// Builds a path from a point list.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] if the list is empty or any segment is
    /// diagonal.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Result<Self, PathError> {
        let mut it = points.into_iter();
        let first = it.next().ok_or(PathError::Empty)?;
        let mut path = Path::new(first);
        for p in it {
            path.push(p)?;
        }
        Ok(path)
    }

    /// Appends a vertex.
    ///
    /// Collinear repeats are merged; a repeated identical point is
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Diagonal`] if the new segment is neither
    /// horizontal nor vertical.
    pub fn push(&mut self, p: Point) -> Result<(), PathError> {
        let last = *self.points.last().expect("path is never empty");
        if p == last {
            return Ok(());
        }
        if p.x != last.x && p.y != last.y {
            return Err(PathError::Diagonal { from: last, to: p });
        }
        // Merge collinear continuation.
        if self.points.len() >= 2 {
            let prev = self.points[self.points.len() - 2];
            let collinear = (prev.x == last.x
                && last.x == p.x
                && (p.y - last.y).signum() == (last.y - prev.y).signum())
                || (prev.y == last.y
                    && last.y == p.y
                    && (p.x - last.x).signum() == (last.x - prev.x).signum());
            if collinear {
                *self.points.last_mut().expect("nonempty") = p;
                return Ok(());
            }
        }
        self.points.push(p);
        Ok(())
    }

    /// The vertices, in order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// First vertex.
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// Last vertex.
    pub fn end(&self) -> Point {
        *self.points.last().expect("path is never empty")
    }

    /// Number of segments (vertices - 1).
    pub fn segment_count(&self) -> usize {
        self.points.len() - 1
    }

    /// Total Manhattan length of the centerline.
    pub fn length(&self) -> Coord {
        self.points.windows(2).map(|w| w[0].manhattan(w[1])).sum()
    }

    /// Number of direction changes (corners).
    pub fn corner_count(&self) -> usize {
        self.segment_count().saturating_sub(1)
    }

    /// Bounding box of the centerline inflated by half the wire `width`
    /// (the painted extent of a CIF wire, which has round/extended ends).
    pub fn bounding_box(&self, width: Coord) -> Rect {
        let mut bb = Rect::at_point(self.points[0]);
        for &p in &self.points[1..] {
            bb = bb.union_point(p);
        }
        bb.inflated(width / 2)
    }

    /// Iterates over the `(from, to)` segments of the path.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }

    /// Returns the path with every vertex translated by `d`.
    pub fn translated(&self, d: Point) -> Path {
        Path {
            points: self.points.iter().map(|&p| p + d).collect(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Error building a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A path needs at least one vertex.
    Empty,
    /// The segment from `from` to `to` is diagonal.
    Diagonal {
        /// Segment start.
        from: Point,
        /// Offending segment end.
        to: Point,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => f.write_str("path has no vertices"),
            PathError::Diagonal { from, to } => {
                write!(f, "diagonal path segment from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_diagonal() {
        let mut p = Path::new(Point::new(0, 0));
        assert!(matches!(
            p.push(Point::new(5, 5)),
            Err(PathError::Diagonal { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Path::from_points(Vec::new()), Err(PathError::Empty));
    }

    #[test]
    fn merges_collinear() {
        let p = Path::from_points([
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(20, 0),
            Point::new(20, 5),
        ])
        .unwrap();
        assert_eq!(p.points().len(), 3);
        assert_eq!(p.length(), 25);
        assert_eq!(p.corner_count(), 1);
    }

    #[test]
    fn ignores_duplicate_point() {
        let mut p = Path::new(Point::new(0, 0));
        p.push(Point::new(0, 0)).unwrap();
        p.push(Point::new(0, 7)).unwrap();
        assert_eq!(p.segment_count(), 1);
    }

    #[test]
    fn direction_reversal_not_merged() {
        // Going right then back left is a reversal, not a collinear
        // continuation; both vertices must be preserved.
        let p = Path::from_points([Point::new(0, 0), Point::new(10, 0), Point::new(5, 0)]).unwrap();
        assert_eq!(p.points().len(), 3);
        assert_eq!(p.length(), 15);
    }

    #[test]
    fn bounding_box_with_width() {
        let p = Path::from_points([Point::new(0, 0), Point::new(0, 100)]).unwrap();
        assert_eq!(p.bounding_box(40), Rect::new(-20, -20, 20, 120));
    }

    #[test]
    fn translated_preserves_shape() {
        let p =
            Path::from_points([Point::new(0, 0), Point::new(0, 10), Point::new(8, 10)]).unwrap();
        let t = p.translated(Point::new(100, 200));
        assert_eq!(t.length(), p.length());
        assert_eq!(t.start(), Point::new(100, 200));
        assert_eq!(t.end(), Point::new(108, 210));
    }

    #[test]
    fn ends_and_counts() {
        let p = Path::from_points([Point::new(1, 1), Point::new(1, 9), Point::new(5, 9)]).unwrap();
        assert_eq!(p.start(), Point::new(1, 1));
        assert_eq!(p.end(), Point::new(5, 9));
        assert_eq!(p.segment_count(), 2);
        assert_eq!(p.segments().count(), 2);
    }
}
