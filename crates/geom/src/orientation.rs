//! The eight Manhattan orientations (dihedral group D4).
//!
//! Riot lets the user rotate instances by multiples of 90 degrees and
//! mirror them, so an instance orientation is one of the eight elements
//! of D4. Orientations compose (instance-in-instance transforms) and
//! invert (hit testing back into cell coordinates).

use crate::point::Point;
use std::fmt;

/// One of the eight Manhattan orientations.
///
/// The mirrored variants mirror about the **y axis first** (negating x),
/// then rotate counter-clockwise; e.g. [`Orientation::MX90`] is "mirror in
/// x, then rotate 90°".
///
/// # Example
///
/// ```
/// use riot_geom::{Orientation, Point};
/// let p = Point::new(2, 1);
/// assert_eq!(Orientation::R90.apply(p), Point::new(-1, 2));
/// assert_eq!(Orientation::MX.apply(p), Point::new(-2, 1));
/// let o = Orientation::R90.then(Orientation::R270);
/// assert_eq!(o, Orientation::R0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// Rotate 90° counter-clockwise.
    R90,
    /// Rotate 180°.
    R180,
    /// Rotate 270° counter-clockwise.
    R270,
    /// Mirror about the y axis (x := -x).
    MX,
    /// Mirror about the y axis, then rotate 90° counter-clockwise.
    MX90,
    /// Mirror about the x axis (y := -y); equal to MX followed by R180.
    MY,
    /// Mirror about the x axis, then rotate 90° counter-clockwise.
    MY90,
}

/// 2x2 signed-permutation matrix (row-major: `[a, b, c, d]` maps
/// `(x, y)` to `(a x + b y, c x + d y)`).
type Mat = [i8; 4];

impl Orientation {
    /// All eight orientations, identity first.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MX90,
        Orientation::MY,
        Orientation::MY90,
    ];

    fn matrix(self) -> Mat {
        match self {
            Orientation::R0 => [1, 0, 0, 1],
            Orientation::R90 => [0, -1, 1, 0],
            Orientation::R180 => [-1, 0, 0, -1],
            Orientation::R270 => [0, 1, -1, 0],
            Orientation::MX => [-1, 0, 0, 1],
            Orientation::MX90 => [0, -1, -1, 0],
            Orientation::MY => [1, 0, 0, -1],
            Orientation::MY90 => [0, 1, 1, 0],
        }
    }

    fn from_matrix(m: Mat) -> Orientation {
        for o in Orientation::ALL {
            if o.matrix() == m {
                return o;
            }
        }
        unreachable!("matrix {m:?} is not a signed permutation from D4")
    }

    /// Applies the orientation to a point about the origin.
    pub fn apply(self, p: Point) -> Point {
        let [a, b, c, d] = self.matrix();
        Point::new(
            a as i64 * p.x + b as i64 * p.y,
            c as i64 * p.x + d as i64 * p.y,
        )
    }

    /// The orientation equivalent to applying `self` first, then `next`.
    pub fn then(self, next: Orientation) -> Orientation {
        let s = self.matrix();
        let n = next.matrix();
        // next * self, row-major multiply.
        Orientation::from_matrix([
            n[0] * s[0] + n[1] * s[2],
            n[0] * s[1] + n[1] * s[3],
            n[2] * s[0] + n[3] * s[2],
            n[2] * s[1] + n[3] * s[3],
        ])
    }

    /// The inverse orientation: `o.then(o.inverse()) == Orientation::R0`.
    pub fn inverse(self) -> Orientation {
        let [a, b, c, d] = self.matrix();
        // Signed permutation matrices are orthogonal: inverse = transpose.
        Orientation::from_matrix([a, c, b, d])
    }

    /// True for the four mirrored orientations.
    pub fn is_mirrored(self) -> bool {
        let [a, b, c, d] = self.matrix();
        // Determinant -1 means a reflection.
        a * d - b * c == -1
    }

    /// True when the orientation exchanges the x and y axes (so a cell's
    /// width and height swap).
    pub fn swaps_axes(self) -> bool {
        self.matrix()[0] == 0
    }

    /// Rotate a further 90° counter-clockwise (the Riot `ROTATE` command).
    pub fn rotated_ccw(self) -> Orientation {
        self.then(Orientation::R90)
    }

    /// Mirror in x on top of the current orientation (the Riot `MIRROR`
    /// command).
    pub fn mirrored_x(self) -> Orientation {
        self.then(Orientation::MX)
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MX => "MX",
            Orientation::MX90 => "MX90",
            Orientation::MY => "MY",
            Orientation::MY90 => "MY90",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Orientation {
    type Err = ParseOrientationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "R0" => Ok(Orientation::R0),
            "R90" => Ok(Orientation::R90),
            "R180" => Ok(Orientation::R180),
            "R270" => Ok(Orientation::R270),
            "MX" => Ok(Orientation::MX),
            "MX90" => Ok(Orientation::MX90),
            "MY" => Ok(Orientation::MY),
            "MY90" => Ok(Orientation::MY90),
            _ => Err(ParseOrientationError {
                found: s.to_owned(),
            }),
        }
    }
}

/// Error returned when parsing an [`Orientation`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOrientationError {
    found: String,
}

impl fmt::Display for ParseOrientationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown orientation `{}`", self.found)
    }
}

impl std::error::Error for ParseOrientationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_closure_and_identity() {
        for a in Orientation::ALL {
            assert_eq!(a.then(Orientation::R0), a);
            assert_eq!(Orientation::R0.then(a), a);
            for b in Orientation::ALL {
                // then() must always land on one of the eight (no panic).
                let _ = a.then(b);
            }
        }
    }

    #[test]
    fn inverses() {
        for o in Orientation::ALL {
            assert_eq!(o.then(o.inverse()), Orientation::R0, "{o}");
            assert_eq!(o.inverse().then(o), Orientation::R0, "{o}");
        }
    }

    #[test]
    fn rotation_cycle() {
        let mut o = Orientation::R0;
        for _ in 0..4 {
            o = o.rotated_ccw();
        }
        assert_eq!(o, Orientation::R0);
        assert_eq!(Orientation::R0.rotated_ccw(), Orientation::R90);
    }

    #[test]
    fn mirror_involution() {
        for o in Orientation::ALL {
            assert_eq!(o.mirrored_x().mirrored_x(), o);
        }
    }

    #[test]
    fn apply_matches_composition() {
        let p = Point::new(3, 5);
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                assert_eq!(a.then(b).apply(p), b.apply(a.apply(p)), "{a} then {b}");
            }
        }
    }

    #[test]
    fn mirrored_detection() {
        assert!(!Orientation::R90.is_mirrored());
        assert!(Orientation::MX.is_mirrored());
        assert!(Orientation::MY90.is_mirrored());
        let mirrored: Vec<_> = Orientation::ALL
            .iter()
            .filter(|o| o.is_mirrored())
            .collect();
        assert_eq!(mirrored.len(), 4);
    }

    #[test]
    fn axis_swap() {
        assert!(Orientation::R90.swaps_axes());
        assert!(Orientation::MY90.swaps_axes());
        assert!(!Orientation::MX.swaps_axes());
    }

    #[test]
    fn parse_round_trip() {
        for o in Orientation::ALL {
            let parsed: Orientation = o.to_string().parse().unwrap();
            assert_eq!(parsed, o);
        }
        assert!("R45".parse::<Orientation>().is_err());
    }

    #[test]
    fn my_equals_mx_r180() {
        assert_eq!(Orientation::MX.then(Orientation::R180), Orientation::MY);
    }
}
