//! Mask layers for the NMOS process Riot's cells were drawn in.
//!
//! Riot's connectors carry "the layer and width of the wire that makes
//! that connection inside the cell", and its display colors connector
//! crosses by layer. The cells of the era (Mead & Conway NMOS) use the
//! seven CIF layers below.

use std::fmt;

/// An NMOS mask layer with its standard CIF short name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// `ND` — diffusion (green).
    Diffusion,
    /// `NP` — polysilicon (red).
    Poly,
    /// `NM` — metal (blue).
    Metal,
    /// `NC` — contact cut (black).
    Contact,
    /// `NI` — depletion-mode implant (yellow).
    Implant,
    /// `NB` — buried contact (brown).
    Buried,
    /// `NG` — overglass openings (gray).
    Glass,
}

impl Layer {
    /// All layers, in conventional mask order.
    pub const ALL: [Layer; 7] = [
        Layer::Diffusion,
        Layer::Poly,
        Layer::Metal,
        Layer::Contact,
        Layer::Implant,
        Layer::Buried,
        Layer::Glass,
    ];

    /// The layers wires may run on (and hence connectors may use).
    pub const ROUTABLE: [Layer; 3] = [Layer::Diffusion, Layer::Poly, Layer::Metal];

    /// The CIF `L` command short name for the layer.
    pub fn cif_name(self) -> &'static str {
        match self {
            Layer::Diffusion => "ND",
            Layer::Poly => "NP",
            Layer::Metal => "NM",
            Layer::Contact => "NC",
            Layer::Implant => "NI",
            Layer::Buried => "NB",
            Layer::Glass => "NG",
        }
    }

    /// Parses a CIF layer short name (case-insensitive).
    pub fn from_cif_name(name: &str) -> Option<Layer> {
        let up = name.to_ascii_uppercase();
        Layer::ALL.into_iter().find(|l| l.cif_name() == up)
    }

    /// The conventional Mead & Conway display color as RGB.
    pub fn color(self) -> (u8, u8, u8) {
        match self {
            Layer::Diffusion => (0, 160, 0),
            Layer::Poly => (220, 0, 0),
            Layer::Metal => (64, 64, 255),
            Layer::Contact => (16, 16, 16),
            Layer::Implant => (200, 180, 0),
            Layer::Buried => (139, 90, 43),
            Layer::Glass => (150, 150, 150),
        }
    }

    /// Default minimum wire width on the layer, centimicrons
    /// (Mead & Conway rules at lambda = 2.5 µm: 2λ for every wire, 3λ for
    /// metal).
    pub fn default_width(self) -> i64 {
        use crate::units::LAMBDA;
        match self {
            Layer::Metal => 3 * LAMBDA,
            _ => 2 * LAMBDA,
        }
    }

    /// Minimum spacing to another wire on the same layer, centimicrons
    /// (2λ diffusion/poly, 3λ metal).
    pub fn min_spacing(self) -> i64 {
        use crate::units::LAMBDA;
        match self {
            Layer::Metal => 3 * LAMBDA,
            _ => 2 * LAMBDA,
        }
    }

    /// True for layers a connector/wire may legally use.
    pub fn is_routable(self) -> bool {
        Layer::ROUTABLE.contains(&self)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cif_name())
    }
}

impl std::str::FromStr for Layer {
    type Err = ParseLayerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Layer::from_cif_name(s).ok_or_else(|| ParseLayerError {
            found: s.to_owned(),
        })
    }
}

/// Error returned when parsing a [`Layer`] from its CIF name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayerError {
    found: String,
}

impl fmt::Display for ParseLayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown CIF layer name `{}`", self.found)
    }
}

impl std::error::Error for ParseLayerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cif_name_round_trip() {
        for l in Layer::ALL {
            assert_eq!(Layer::from_cif_name(l.cif_name()), Some(l));
            assert_eq!(l.cif_name().parse::<Layer>().unwrap(), l);
        }
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(Layer::from_cif_name("nm"), Some(Layer::Metal));
        assert_eq!(Layer::from_cif_name("Nd"), Some(Layer::Diffusion));
    }

    #[test]
    fn unknown_name() {
        assert_eq!(Layer::from_cif_name("XX"), None);
        assert!("XX".parse::<Layer>().is_err());
    }

    #[test]
    fn routable_subset() {
        assert!(Layer::Metal.is_routable());
        assert!(Layer::Poly.is_routable());
        assert!(Layer::Diffusion.is_routable());
        assert!(!Layer::Contact.is_routable());
        assert!(!Layer::Glass.is_routable());
    }

    #[test]
    fn widths_positive() {
        for l in Layer::ALL {
            assert!(l.default_width() > 0);
            assert!(l.min_spacing() > 0);
        }
        assert!(Layer::Metal.default_width() > Layer::Poly.default_width());
    }

    #[test]
    fn colors_distinct() {
        let mut seen = std::collections::HashSet::new();
        for l in Layer::ALL {
            assert!(seen.insert(l.color()), "duplicate color for {l}");
        }
    }
}
