//! Layout units: CIF centimicrons and the symbolic lambda grid.
//!
//! CIF distances are hundredths of a micron. Symbolic (Sticks) layout is
//! drawn on a lambda grid; this reproduction fixes lambda at 2.5 µm
//! (250 centimicrons), the value used for Mead & Conway NMOS projects of
//! Riot's era (MPC79/MPC580 ran at λ = 2.5 µm).

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Centimicrons per lambda (λ = 2.5 µm).
pub const LAMBDA: i64 = 250;

/// A distance in CIF centimicrons (newtype over [`i64`]).
///
/// ```
/// use riot_geom::{CentiMicron, Lambda};
/// let d: CentiMicron = Lambda(4).into();
/// assert_eq!(d, CentiMicron(1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CentiMicron(pub i64);

/// A distance in lambda grid units (newtype over [`i64`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lambda(pub i64);

impl CentiMicron {
    /// The raw centimicron count.
    pub fn value(self) -> i64 {
        self.0
    }

    /// Converts to whole lambdas, truncating toward zero.
    ///
    /// Prefer keeping centimicrons; this is for display and for snapping
    /// mask geometry back onto the symbolic grid.
    pub fn to_lambda_floor(self) -> Lambda {
        Lambda(self.0 / LAMBDA)
    }

    /// Distance in microns, as a float, for human-readable reports.
    pub fn to_microns(self) -> f64 {
        self.0 as f64 / 100.0
    }
}

impl Lambda {
    /// The raw lambda count.
    pub fn value(self) -> i64 {
        self.0
    }

    /// Converts to centimicrons exactly.
    pub fn to_centimicrons(self) -> CentiMicron {
        CentiMicron(self.0 * LAMBDA)
    }
}

impl From<Lambda> for CentiMicron {
    fn from(l: Lambda) -> Self {
        l.to_centimicrons()
    }
}

impl Add for CentiMicron {
    type Output = CentiMicron;
    fn add(self, rhs: Self) -> Self {
        CentiMicron(self.0 + rhs.0)
    }
}

impl Sub for CentiMicron {
    type Output = CentiMicron;
    fn sub(self, rhs: Self) -> Self {
        CentiMicron(self.0 - rhs.0)
    }
}

impl Neg for CentiMicron {
    type Output = CentiMicron;
    fn neg(self) -> Self {
        CentiMicron(-self.0)
    }
}

impl Mul<i64> for CentiMicron {
    type Output = CentiMicron;
    fn mul(self, rhs: i64) -> Self {
        CentiMicron(self.0 * rhs)
    }
}

impl Add for Lambda {
    type Output = Lambda;
    fn add(self, rhs: Self) -> Self {
        Lambda(self.0 + rhs.0)
    }
}

impl Sub for Lambda {
    type Output = Lambda;
    fn sub(self, rhs: Self) -> Self {
        Lambda(self.0 - rhs.0)
    }
}

impl Neg for Lambda {
    type Output = Lambda;
    fn neg(self) -> Self {
        Lambda(-self.0)
    }
}

impl Mul<i64> for Lambda {
    type Output = Lambda;
    fn mul(self, rhs: i64) -> Self {
        Lambda(self.0 * rhs)
    }
}

impl fmt::Display for CentiMicron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cµ", self.0)
    }
}

impl fmt::Display for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}λ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_conversion_exact() {
        assert_eq!(Lambda(2).to_centimicrons(), CentiMicron(500));
        assert_eq!(CentiMicron(500).to_lambda_floor(), Lambda(2));
        assert_eq!(CentiMicron(501).to_lambda_floor(), Lambda(2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Lambda(2) + Lambda(3), Lambda(5));
        assert_eq!(CentiMicron(100) - CentiMicron(30), CentiMicron(70));
        assert_eq!(Lambda(2) * 4, Lambda(8));
        assert_eq!(-CentiMicron(5), CentiMicron(-5));
    }

    #[test]
    fn microns() {
        assert_eq!(CentiMicron(250).to_microns(), 2.5);
    }

    #[test]
    fn display() {
        assert_eq!(Lambda(3).to_string(), "3λ");
        assert_eq!(CentiMicron(250).to_string(), "250cµ");
    }
}
