//! Integer points in centimicron coordinates.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// The coordinate scalar used throughout the workspace.
///
/// Coordinates are integers in CIF centimicrons (1/100 µm). `i64` gives a
/// ±92 million metre range, far beyond any chip.
pub type Coord = i64;

/// A point (or displacement vector) on the layout plane.
///
/// # Example
///
/// ```
/// use riot_geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, -1);
/// assert_eq!(p, Point::new(4, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate, centimicrons.
    pub x: Coord,
    /// Vertical coordinate, centimicrons.
    pub y: Coord,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Component-wise minimum of two points.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use riot_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Swaps the two coordinates, reflecting about the line `y = x`.
    pub fn transposed(self) -> Point {
        Point::new(self.y, self.x)
    }

    /// Returns this point translated by `(dx, dy)`.
    pub fn translated(self, dx: Coord, dy: Coord) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl Mul<Coord> for Point {
    type Output = Point;
    fn mul(self, rhs: Coord) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(2, 3);
        let b = Point::new(-1, 5);
        assert_eq!(a + b, Point::new(1, 8));
        assert_eq!(a - b, Point::new(3, -2));
        assert_eq!(-a, Point::new(-2, -3));
        assert_eq!(a * 3, Point::new(6, 9));
    }

    #[test]
    fn assign_ops() {
        let mut p = Point::new(1, 1);
        p += Point::new(2, 3);
        assert_eq!(p, Point::new(3, 4));
        p -= Point::new(3, 4);
        assert_eq!(p, Point::ORIGIN);
    }

    #[test]
    fn min_max() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(4, 9));
    }

    #[test]
    fn manhattan_symmetric() {
        let a = Point::new(-3, 7);
        let b = Point::new(10, -2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn transposed_involution() {
        let p = Point::new(5, -8);
        assert_eq!(p.transposed().transposed(), p);
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }

    #[test]
    fn from_tuple() {
        let p: Point = (7, 8).into();
        assert_eq!(p, Point::new(7, 8));
    }
}
