//! Rigid Manhattan transforms: an orientation followed by a translation.

use crate::orientation::Orientation;
use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// A rigid transform on the layout plane: rotate/mirror about the origin,
/// then translate. This is exactly the CIF instance transform Riot stores
/// with every instance.
///
/// Transforms compose with [`Transform::then`] and invert with
/// [`Transform::inverse`], so a point can be mapped from a leaf cell's
/// coordinates up through any instance chain and back.
///
/// # Example
///
/// ```
/// use riot_geom::{Orientation, Point, Transform};
/// let t = Transform::new(Orientation::R90, Point::new(100, 0));
/// let p = t.apply(Point::new(10, 0));
/// assert_eq!(p, Point::new(100, 10));
/// assert_eq!(t.inverse().apply(p), Point::new(10, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// Orientation applied about the origin before translating.
    pub orient: Orientation,
    /// Translation applied after the orientation.
    pub offset: Point,
}

impl Transform {
    /// The identity transform.
    pub const IDENTITY: Transform = Transform {
        orient: Orientation::R0,
        offset: Point::ORIGIN,
    };

    /// Creates a transform from an orientation and a translation.
    pub const fn new(orient: Orientation, offset: Point) -> Self {
        Transform { orient, offset }
    }

    /// A pure translation.
    pub const fn translate(offset: Point) -> Self {
        Transform {
            orient: Orientation::R0,
            offset,
        }
    }

    /// A pure orientation about the origin.
    pub const fn orient(orient: Orientation) -> Self {
        Transform {
            orient,
            offset: Point::ORIGIN,
        }
    }

    /// Maps a point from cell coordinates to parent coordinates.
    pub fn apply(&self, p: Point) -> Point {
        self.orient.apply(p) + self.offset
    }

    /// Maps a rectangle (the image of an axis-aligned rectangle under a
    /// Manhattan transform is axis-aligned).
    pub fn apply_rect(&self, r: Rect) -> Rect {
        Rect::from_points(self.apply(r.lower_left()), self.apply(r.upper_right()))
    }

    /// The transform equivalent to applying `self` first, then `next`.
    pub fn then(&self, next: Transform) -> Transform {
        Transform {
            orient: self.orient.then(next.orient),
            offset: next.orient.apply(self.offset) + next.offset,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Transform {
        let inv = self.orient.inverse();
        Transform {
            orient: inv,
            offset: -inv.apply(self.offset),
        }
    }

    /// Returns this transform followed by an extra translation.
    pub fn translated(&self, d: Point) -> Transform {
        Transform {
            orient: self.orient,
            offset: self.offset + d,
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} T {}", self.orient, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::ORIGIN,
            Point::new(1, 0),
            Point::new(0, 1),
            Point::new(-7, 13),
            Point::new(250, -400),
        ]
    }

    fn sample_transforms() -> Vec<Transform> {
        let mut ts = Vec::new();
        for o in Orientation::ALL {
            for off in [Point::ORIGIN, Point::new(100, -50), Point::new(-3, 7)] {
                ts.push(Transform::new(o, off));
            }
        }
        ts
    }

    #[test]
    fn identity() {
        for p in sample_points() {
            assert_eq!(Transform::IDENTITY.apply(p), p);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        for a in sample_transforms() {
            for b in sample_transforms() {
                for p in sample_points() {
                    assert_eq!(a.then(b).apply(p), b.apply(a.apply(p)));
                }
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        for t in sample_transforms() {
            for p in sample_points() {
                assert_eq!(t.inverse().apply(t.apply(p)), p, "{t}");
                assert_eq!(t.apply(t.inverse().apply(p)), p, "{t}");
            }
        }
    }

    #[test]
    fn rect_mapping_normalized() {
        let r = Rect::new(0, 0, 10, 4);
        let t = Transform::new(Orientation::R90, Point::new(0, 0));
        let m = t.apply_rect(r);
        assert_eq!(m, Rect::new(-4, 0, 0, 10));
        assert_eq!(m.width(), 4);
        assert_eq!(m.height(), 10);
    }

    #[test]
    fn translate_constructor() {
        let t = Transform::translate(Point::new(5, 6));
        assert_eq!(t.apply(Point::new(1, 1)), Point::new(6, 7));
    }

    #[test]
    fn display() {
        let t = Transform::new(Orientation::MX, Point::new(1, 2));
        assert_eq!(t.to_string(), "MX T (1, 2)");
    }
}
