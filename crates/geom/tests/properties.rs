//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use riot_geom::{Orientation, Path, Point, Rect, Transform};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000_000i64..1_000_000, -1_000_000i64..1_000_000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_points(a, b))
}

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    prop::sample::select(Orientation::ALL.to_vec())
}

fn arb_transform() -> impl Strategy<Value = Transform> {
    (arb_orientation(), arb_point()).prop_map(|(o, p)| Transform::new(o, p))
}

proptest! {
    #[test]
    fn rect_union_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.union(b), b.union(a));
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(b);
        prop_assert!(u.contains_rect(a));
        prop_assert!(u.contains_rect(b));
    }

    #[test]
    fn rect_intersection_inside_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
        } else {
            prop_assert!(!a.touches(b));
        }
    }

    #[test]
    fn rect_area_nonnegative(r in arb_rect()) {
        prop_assert!(r.area() >= 0);
        prop_assert!(r.width() >= 0);
        prop_assert!(r.height() >= 0);
    }

    #[test]
    fn orientation_apply_preserves_manhattan(
        o in arb_orientation(), a in arb_point(), b in arb_point()
    ) {
        prop_assert_eq!(o.apply(a).manhattan(o.apply(b)), a.manhattan(b));
    }

    #[test]
    fn transform_inverse_round_trips(t in arb_transform(), p in arb_point()) {
        prop_assert_eq!(t.inverse().apply(t.apply(p)), p);
    }

    #[test]
    fn transform_composition_associative(
        a in arb_transform(), b in arb_transform(), c in arb_transform(), p in arb_point()
    ) {
        let left = a.then(b).then(c);
        let right = a.then(b.then(c));
        prop_assert_eq!(left.apply(p), right.apply(p));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn transform_rect_preserves_dims_up_to_swap(t in arb_transform(), r in arb_rect()) {
        let m = t.apply_rect(r);
        if t.orient.swaps_axes() {
            prop_assert_eq!(m.width(), r.height());
            prop_assert_eq!(m.height(), r.width());
        } else {
            prop_assert_eq!(m.width(), r.width());
            prop_assert_eq!(m.height(), r.height());
        }
    }

    #[test]
    fn path_length_invariant_under_translation(
        pts in prop::collection::vec(arb_point(), 1..8), d in arb_point()
    ) {
        // Rectify into a Manhattan path by staircasing between the points.
        let mut path = Path::new(pts[0]);
        for &p in &pts[1..] {
            let corner = Point::new(p.x, path.end().y);
            path.push(corner).unwrap();
            path.push(p).unwrap();
        }
        let moved = path.translated(d);
        prop_assert_eq!(moved.length(), path.length());
        prop_assert_eq!(moved.segment_count(), path.segment_count());
    }
}
