//! Union-find with union-by-rank and path compression.
//!
//! Labels the connected components of touching rectangles. Union by
//! rank keeps the forest depth logarithmic even before compression
//! kicks in — the original path-compression-only version degraded to
//! long parent chains when rects were unioned in sequence (exactly the
//! abutted-rail pattern DRC sees).

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// The canonical representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; the higher-rank root wins, so
    /// tree height grows only when ranks tie. Returns `true` when the
    /// sets were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Canonical label per element; equal labels ⇔ same set.
    pub fn labels(&mut self) -> Vec<usize> {
        (0..self.parent.len()).map(|i| self.find(i)).collect()
    }

    /// The longest parent chain currently in the forest (test hook:
    /// union-by-rank bounds this by log₂ n even without compression).
    #[cfg(test)]
    fn max_chain(&self) -> usize {
        (0..self.parent.len())
            .map(|mut x| {
                let mut hops = 0;
                while self.parent[x] != x {
                    x = self.parent[x];
                    hops += 1;
                }
                hops
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_chain_stays_shallow() {
        // Union a 100_000-element chain in order — the worst case for
        // the old path-compression-only code, which built an O(n)
        // parent chain out of it. Rank keeps every chain ≤ log₂ n.
        let n = 100_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            assert!(uf.union(i, i + 1));
        }
        let bound = (n as f64).log2().ceil() as usize + 1;
        assert!(
            uf.max_chain() <= bound,
            "chain {} exceeds log bound {}",
            uf.max_chain(),
            bound
        );
        let labels = uf.labels();
        assert!(labels.iter().all(|&l| l == labels[0]), "one component");
    }

    #[test]
    fn separate_sets_stay_separate() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(1), uf.find(2));
        assert!(!uf.union(0, 1), "already merged");
        let labels = uf.labels();
        assert_eq!(labels[4], 4);
        assert_eq!(labels[5], 5);
    }

    #[test]
    fn rank_ties_grow_rank_once() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1); // rank(0) = 1
        uf.union(2, 3); // rank(2) = 1
        uf.union(0, 2); // tie at 1 -> rank 2
        assert_eq!(uf.rank.iter().copied().max(), Some(2));
        let labels = uf.labels();
        assert!(labels.iter().all(|&l| l == labels[0]));
    }
}
