//! Differential property tests: the indexed checker must report the
//! same violation set as the retained all-pairs reference on random
//! rect soups, at every thread count.

use crate::{check, naive, RuleSet, Violation};
use proptest::prelude::*;
use riot_cif::{FlatShape, Geometry};
use riot_geom::{par, Layer, Path, Point, Rect, LAMBDA};

const LAYERS: [Layer; 4] = [Layer::Metal, Layer::Poly, Layer::Diffusion, Layer::Contact];

/// A sortable fingerprint of a violation, for order-normalized
/// comparison (the indexed checker visits layers in `Layer` order, the
/// naive one in first-appearance order).
fn key(v: &Violation) -> String {
    format!("{v:?}")
}

fn normalized(vs: Vec<Violation>) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(key).collect();
    keys.sort();
    keys
}

/// A random soup of boxes and wires over the checked layers: clustered
/// enough to produce touching runs, near-misses and true violations.
fn arb_soup() -> impl Strategy<Value = Vec<FlatShape>> {
    (1u64..50_000, 1usize..120).prop_map(|(seed, n)| {
        // Small xorshift so the soup derives deterministically from the
        // proptest-generated seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut shapes = Vec::with_capacity(n);
        for _ in 0..n {
            let layer = LAYERS[(next() % 4) as usize];
            let x = (next() % 60) as i64 * LAMBDA;
            let y = (next() % 60) as i64 * LAMBDA;
            if next() % 5 == 0 {
                // A two-segment wire.
                let len = (next() % 8 + 2) as i64 * LAMBDA;
                let path = Path::from_points([
                    Point::new(x, y),
                    Point::new(x + len, y),
                    Point::new(x + len, y + len),
                ])
                .expect("manhattan by construction");
                shapes.push(FlatShape {
                    layer,
                    geometry: Geometry::Wire {
                        width: (next() % 4 + 1) as i64 * LAMBDA,
                        path,
                    },
                    depth: 0,
                });
            } else {
                let w = (next() % 6 + 1) as i64 * LAMBDA;
                let h = (next() % 6 + 1) as i64 * LAMBDA;
                shapes.push(FlatShape {
                    layer,
                    geometry: Geometry::Box(Rect::new(x, y, x + w, y + h)),
                    depth: 0,
                });
            }
        }
        shapes
    })
}

/// A soup clustered around extreme coordinates: anchors near
/// `i32::MIN`/`i32::MAX` (the magnitudes CIF files from 32-bit tools
/// produce), plus zero-area and zero-width degenerate boxes. Guards
/// the spatial index and the distance arithmetic against overflow and
/// degenerate-extent corner cases.
fn arb_extreme_soup() -> impl Strategy<Value = Vec<FlatShape>> {
    const ANCHORS: [i64; 5] = [
        i32::MIN as i64,
        -(1_i64 << 20),
        0,
        1_i64 << 20,
        i32::MAX as i64,
    ];
    (1u64..50_000, 1usize..60).prop_map(|(seed, n)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut shapes = Vec::with_capacity(n);
        for _ in 0..n {
            let layer = LAYERS[(next() % 4) as usize];
            let x = ANCHORS[(next() % 5) as usize] + (next() % 40) as i64 * LAMBDA;
            let y = ANCHORS[(next() % 5) as usize] + (next() % 40) as i64 * LAMBDA;
            match next() % 6 {
                // A zero-area point rect.
                0 => shapes.push(FlatShape {
                    layer,
                    geometry: Geometry::Box(Rect::new(x, y, x, y)),
                    depth: 0,
                }),
                // A zero-width / zero-height line rect.
                1 => {
                    let len = (next() % 6 + 1) as i64 * LAMBDA;
                    let r = if next() % 2 == 0 {
                        Rect::new(x, y, x + len, y)
                    } else {
                        Rect::new(x, y, x, y + len)
                    };
                    shapes.push(FlatShape {
                        layer,
                        geometry: Geometry::Box(r),
                        depth: 0,
                    });
                }
                _ => {
                    let w = (next() % 6 + 1) as i64 * LAMBDA;
                    let h = (next() % 6 + 1) as i64 * LAMBDA;
                    shapes.push(FlatShape {
                        layer,
                        geometry: Geometry::Box(Rect::new(x, y, x + w, y + h)),
                        depth: 0,
                    });
                }
            }
        }
        shapes
    })
}

/// Applies a derived random edit to `shapes` and returns the dirty
/// rects covering it: a removal, an addition, or a move (replace a
/// shape with a fresh box elsewhere). The dirty list always covers the
/// old and new bounding boxes — the `riot_core::Damage` contract.
fn apply_edit(shapes: &mut Vec<FlatShape>, next: &mut impl FnMut() -> u64) -> Vec<Rect> {
    let op = next() % 3;
    if shapes.is_empty() || op == 0 {
        // Addition.
        let layer = LAYERS[(next() % 4) as usize];
        let x = (next() % 60) as i64 * LAMBDA;
        let y = (next() % 60) as i64 * LAMBDA;
        let w = (next() % 6 + 1) as i64 * LAMBDA;
        let h = (next() % 6 + 1) as i64 * LAMBDA;
        let r = Rect::new(x, y, x + w, y + h);
        shapes.push(FlatShape {
            layer,
            geometry: Geometry::Box(r),
            depth: 0,
        });
        vec![r]
    } else if op == 1 {
        // Removal.
        let idx = (next() as usize) % shapes.len();
        let old = shapes.swap_remove(idx);
        vec![old.geometry.bounding_box()]
    } else {
        // Move: replace with a box of the same layer elsewhere.
        let idx = (next() as usize) % shapes.len();
        let old = shapes[idx].geometry.bounding_box();
        let layer = shapes[idx].layer;
        let x = (next() % 60) as i64 * LAMBDA;
        let y = (next() % 60) as i64 * LAMBDA;
        let w = (next() % 6 + 1) as i64 * LAMBDA;
        let h = (next() % 6 + 1) as i64 * LAMBDA;
        let r = Rect::new(x, y, x + w, y + h);
        shapes[idx] = FlatShape {
            layer,
            geometry: Geometry::Box(r),
            depth: 0,
        };
        vec![old, r]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_equals_naive_on_random_soups(shapes in arb_soup()) {
        let rules = RuleSet::nmos();
        let reference = normalized(naive::check(&shapes, &rules));
        let indexed = normalized(check(&shapes, &rules));
        prop_assert_eq!(indexed, reference);
    }

    #[test]
    fn indexed_equals_naive_on_extreme_coordinates(shapes in arb_extreme_soup()) {
        let rules = RuleSet::nmos();
        let reference = normalized(naive::check(&shapes, &rules));
        let indexed = normalized(check(&shapes, &rules));
        prop_assert_eq!(indexed, reference);
    }

    #[test]
    fn thread_count_does_not_change_results(shapes in arb_soup()) {
        let rules = RuleSet::nmos();
        let reference = normalized(naive::check(&shapes, &rules));
        for t in [1usize, 2, 4] {
            par::set_threads(t);
            let indexed = normalized(check(&shapes, &rules));
            par::set_threads(0);
            prop_assert_eq!(&indexed, &reference, "threads = {}", t);
        }
    }

    /// The tentpole equivalence: a retained [`crate::DrcState`]
    /// patched through a random edit sequence reports exactly the full
    /// checker's violations after every step — and never needs the
    /// rebuild fallback, because the damage contract is honoured.
    #[test]
    fn incremental_equals_full_under_edit_sequences(
        shapes in arb_soup(),
        edit_seed in 1u64..50_000,
        edits in 1usize..8,
    ) {
        let rules = RuleSet::nmos();
        let mut shapes = shapes;
        let mut state = crate::DrcState::build(&shapes, &rules);
        prop_assert_eq!(
            normalized(state.violations()),
            normalized(check(&shapes, &rules))
        );
        let mut s = edit_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..edits {
            let dirty = apply_edit(&mut shapes, &mut next);
            crate::check_incremental(&mut state, &dirty, &shapes);
            prop_assert_eq!(
                normalized(state.violations()),
                normalized(check(&shapes, &rules))
            );
        }
        prop_assert_eq!(state.full_rebuilds(), 0);
        prop_assert_eq!(state.shape_count(), shapes.len());
    }

    /// Several edits batched into one damage list patch the same as
    /// the full checker — the shape riot-serve sessions produce when a
    /// transaction touches many instances at once.
    #[test]
    fn incremental_handles_batched_damage(
        shapes in arb_soup(),
        edit_seed in 1u64..50_000,
        edits in 2usize..6,
    ) {
        let rules = RuleSet::nmos();
        let mut shapes = shapes;
        let mut state = crate::DrcState::build(&shapes, &rules);
        let mut s = edit_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut dirty = Vec::new();
        for _ in 0..edits {
            dirty.extend(apply_edit(&mut shapes, &mut next));
        }
        crate::check_incremental(&mut state, &dirty, &shapes);
        prop_assert_eq!(
            normalized(state.violations()),
            normalized(check(&shapes, &rules))
        );
        prop_assert_eq!(state.full_rebuilds(), 0);
    }

    /// Incremental updates stay exact at i32-extreme anchors and with
    /// zero-area shapes: remove then re-add each shape of an extreme
    /// soup, one at a time, against the full checker.
    #[test]
    fn incremental_survives_extreme_coordinates(shapes in arb_extreme_soup()) {
        let rules = RuleSet::nmos();
        let mut shapes = shapes;
        let mut state = crate::DrcState::build(&shapes, &rules);
        // Remove the last shape, verify, re-add it, verify.
        let removed = shapes.pop().expect("soup is non-empty");
        let bb = removed.geometry.bounding_box();
        crate::check_incremental(&mut state, &[bb], &shapes);
        prop_assert_eq!(
            normalized(state.violations()),
            normalized(check(&shapes, &rules))
        );
        shapes.push(removed);
        crate::check_incremental(&mut state, &[bb], &shapes);
        prop_assert_eq!(
            normalized(state.violations()),
            normalized(check(&shapes, &rules))
        );
        prop_assert_eq!(state.full_rebuilds(), 0);
    }
}
