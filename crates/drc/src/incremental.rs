//! Damage-driven incremental design-rule checking.
//!
//! [`DrcState`] retains everything [`crate::check`] computes — painted
//! rects per layer, connected-component labels, and the per-pair
//! spacing representatives — plus the spatial indexes used to compute
//! them. [`check_incremental`] patches that state from a list of dirty
//! world rects: only shapes whose bounding boxes touch the damage are
//! diffed, only components touching removed or added geometry are
//! re-labeled, and only spacing pairs involving those components are
//! re-measured. Everything else is carried over untouched, making an
//! edit cost O(damage), not O(chip).
//!
//! # Contract
//!
//! The caller guarantees the damage invariant from
//! `riot_core::Damage`: every shape added, removed or modified since
//! the state was last in sync has its bounding box (old and new)
//! covered by the dirty rects. Shapes outside the damage must be
//! bit-identical between the old and new shape lists *as multisets* —
//! their order may change freely. The update detects gross contract
//! violations (clean-region population drift) and falls back to a
//! full rebuild rather than returning wrong answers.
//!
//! # Equality
//!
//! After any sequence of updates, [`DrcState::violations`] equals
//! `check(shapes, rules)` as a multiset. This depends on the
//! order-free representative rule shared with the full checker
//! ([`crate::offer_representative`]): the reported pair for a
//! component pair is the minimum by `(measured, a, b)`, a pure
//! function of the geometry that local patching can reproduce.

use crate::unionfind::UnionFind;
use crate::{
    axis_gaps, emit_spacing, offer_representative, painted_rects, rect_key, RuleSet, Violation,
};
use riot_cif::{FlatShape, Geometry};
use riot_geom::{index::SpatialIndex, Layer, Rect};
use std::collections::{BTreeMap, HashMap, HashSet};

/// When this many un-indexed slots accumulate in a layer's overlay,
/// the layer's spatial index is rebuilt over the whole arena. Keeps
/// the linear overlay scan bounded while amortizing index builds over
/// many updates.
const OVERLAY_REBUILD: usize = 2048;

type RectKey = (i64, i64, i64, i64);

/// Retained spacing state for one checked layer.
#[derive(Debug)]
struct LayerState {
    space: i64,
    /// Slot arena of painted rects. Grows only; removal tombstones.
    rects: Vec<Rect>,
    live: Vec<bool>,
    /// Connected-component label per slot (valid while live).
    label: Vec<u64>,
    /// Live slots per label.
    members: HashMap<u64, Vec<u32>>,
    /// Live slots per exact rect — how a removed shape's rects are
    /// located without scanning.
    by_rect: HashMap<RectKey, Vec<u32>>,
    /// Index over `rects[..indexed_len]` (dead slots included in the
    /// index and filtered by `live` at query time).
    index: SpatialIndex,
    indexed_len: usize,
    /// Live slots not yet in the index, scanned linearly.
    overlay: Vec<u32>,
    /// Spacing representative per component pair (labels ordered).
    spacing: HashMap<(u64, u64), (i64, Rect, Rect)>,
}

impl LayerState {
    fn new(space: i64) -> LayerState {
        LayerState {
            space,
            rects: Vec::new(),
            live: Vec::new(),
            label: Vec::new(),
            members: HashMap::new(),
            by_rect: HashMap::new(),
            index: SpatialIndex::build(&[]),
            indexed_len: 0,
            overlay: Vec::new(),
            spacing: HashMap::new(),
        }
    }

    /// Live slots whose axis gap to `window` is at most `dist` on both
    /// axes, from the index plus the overlay.
    fn neighbors(&self, window: Rect, dist: i64, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            self.index
                .within(window, dist)
                .filter(|&id| self.live[id])
                .map(|id| id as u32),
        );
        for &s in &self.overlay {
            let (dx, dy) = axis_gaps(self.rects[s as usize], window);
            if dx <= dist && dy <= dist {
                out.push(s);
            }
        }
    }

    fn add_slot(&mut self, r: Rect) -> u32 {
        let slot = self.rects.len() as u32;
        self.rects.push(r);
        self.live.push(true);
        self.label.push(0);
        self.by_rect.entry(rect_key(r)).or_default().push(slot);
        self.overlay.push(slot);
        slot
    }

    /// Tombstones one live slot holding exactly `r`. `None` when no
    /// such slot exists — a contract violation the caller handles.
    fn remove_rect(&mut self, r: Rect) -> Option<u32> {
        let slots = self.by_rect.get_mut(&rect_key(r))?;
        let slot = slots.pop()?;
        if slots.is_empty() {
            self.by_rect.remove(&rect_key(r));
        }
        self.live[slot as usize] = false;
        if let Some(m) = self.members.get_mut(&self.label[slot as usize]) {
            if let Some(pos) = m.iter().position(|&s| s == slot) {
                m.swap_remove(pos);
            }
            if m.is_empty() {
                self.members.remove(&self.label[slot as usize]);
            }
        }
        if let Some(pos) = self.overlay.iter().position(|&s| s == slot) {
            self.overlay.swap_remove(pos);
        }
        Some(slot)
    }

    fn maybe_rebuild_index(&mut self) {
        if self.overlay.len() > OVERLAY_REBUILD {
            self.index = SpatialIndex::build(&self.rects);
            self.indexed_len = self.rects.len();
            self.overlay.clear();
        }
    }
}

/// Retained DRC results, patchable by [`check_incremental`].
#[derive(Debug)]
pub struct DrcState {
    rules: RuleSet,
    /// Slot arena of the current shapes (with cached bbox); removal
    /// tombstones, addition appends.
    shapes: Vec<Option<(FlatShape, Rect)>>,
    live_shapes: usize,
    layers: BTreeMap<Layer, LayerState>,
    /// Width-violation multiset keyed by `(layer, at, measured,
    /// required)` — width depends on one shape only, so it patches as
    /// a plain multiset diff.
    width: HashMap<(Layer, RectKey, i64, i64), usize>,
    next_label: u64,
    /// Updates that fell back to a full rebuild (contract breach).
    rebuilds: u64,
}

/// The width violation a single shape produces, if any — the same
/// predicate [`crate::check`] applies per shape.
fn width_violation(shape: &FlatShape, rules: &RuleSet) -> Option<(Layer, RectKey, i64, i64)> {
    let rule = rules.rule(shape.layer)?;
    let measured = match &shape.geometry {
        Geometry::Wire { width, .. } => *width,
        other => {
            let bb = other.bounding_box();
            bb.width().min(bb.height())
        }
    };
    (measured < rule.min_width).then(|| {
        (
            shape.layer,
            rect_key(shape.geometry.bounding_box()),
            measured,
            rule.min_width,
        )
    })
}

/// Diff key: layer + geometry. Depth is deliberately excluded — the
/// checker never reads it, so shapes differing only in depth are
/// DRC-equivalent.
fn shape_key(s: &FlatShape) -> String {
    format!("{:?}|{:?}", s.layer, s.geometry)
}

impl DrcState {
    /// Builds the retained state from scratch — the full-recompute
    /// baseline every incremental update patches.
    pub fn build(shapes: &[FlatShape], rules: &RuleSet) -> DrcState {
        let mut sp = riot_trace::span!("drc.state.build", shapes = shapes.len() as u64);
        let mut state = DrcState {
            rules: rules.clone(),
            shapes: Vec::with_capacity(shapes.len()),
            live_shapes: shapes.len(),
            layers: BTreeMap::new(),
            width: HashMap::new(),
            next_label: 1,
            rebuilds: 0,
        };
        for s in shapes {
            if let Some(k) = width_violation(s, rules) {
                *state.width.entry(k).or_insert(0) += 1;
            }
            let bb = s.geometry.bounding_box();
            if let Some(rule) = rules.rule(s.layer) {
                let layer = state
                    .layers
                    .entry(s.layer)
                    .or_insert_with(|| LayerState::new(rule.min_space));
                for r in painted_rects(s) {
                    layer.add_slot(r);
                }
            }
            state.shapes.push(Some((s.clone(), bb)));
        }
        for layer in state.layers.values_mut() {
            layer.index = SpatialIndex::build(&layer.rects);
            layer.indexed_len = layer.rects.len();
            layer.overlay.clear();
            // Initial labels via one union-find over the whole layer.
            let comp = crate::components(&layer.rects, &layer.index);
            let mut fresh: HashMap<usize, u64> = HashMap::new();
            for (slot, &c) in comp.iter().enumerate() {
                let label = *fresh.entry(c).or_insert_with(|| {
                    let l = state.next_label;
                    state.next_label += 1;
                    l
                });
                layer.label[slot] = label;
                layer.members.entry(label).or_default().push(slot as u32);
            }
            // Initial spacing representatives.
            if layer.space > 0 {
                let mut neighbors = Vec::new();
                for i in 0..layer.rects.len() {
                    neighbors.clear();
                    neighbors.extend(layer.index.within(layer.rects[i], layer.space - 1));
                    for &j in &neighbors {
                        if j <= i || layer.label[i] == layer.label[j] {
                            continue;
                        }
                        let (a, b) = (layer.rects[i], layer.rects[j]);
                        let (dx, dy) = axis_gaps(a, b);
                        let key = (
                            layer.label[i].min(layer.label[j]),
                            layer.label[i].max(layer.label[j]),
                        );
                        offer_representative(&mut layer.spacing, key, dx.max(dy), a, b);
                    }
                }
            }
        }
        sp.field("labels", state.next_label);
        state
    }

    /// The current violation multiset: equals `check(shapes, rules)`
    /// up to ordering (width violations first, then per-layer spacing
    /// in canonical `(measured, a, b)` order).
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut width: Vec<_> = self.width.iter().collect();
        width.sort_unstable_by_key(|&(k, _)| *k);
        for (&(layer, at, measured, required), &count) in width {
            for _ in 0..count {
                out.push(Violation::Width {
                    layer,
                    at: Rect::new(at.0, at.1, at.2, at.3),
                    measured,
                    required,
                });
            }
        }
        for (&layer, ls) in &self.layers {
            out.extend(emit_spacing(layer, ls.space, ls.spacing.clone()));
        }
        out
    }

    /// Live shapes currently accounted for.
    pub fn shape_count(&self) -> usize {
        self.live_shapes
    }

    /// Updates that detected a contract breach and rebuilt fully.
    pub fn full_rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

/// Patches `state` so it reflects `shapes`, given that every change
/// since the last sync lies inside `dirty` (see the module contract).
/// Returns the number of slots re-paired — the size of the rebuild
/// set, also recorded in the `drc.incremental.patched` histogram.
///
/// An empty `dirty` list asserts nothing changed and returns
/// immediately. A contract breach degrades to `DrcState::build`.
pub fn check_incremental(state: &mut DrcState, dirty: &[Rect], shapes: &[FlatShape]) -> usize {
    if dirty.is_empty() {
        return 0;
    }
    let mut sp = riot_trace::span!("drc.incremental", dirty = dirty.len() as u64);
    let union = dirty[1..].iter().fold(dirty[0], |acc, &r| acc.union(r));
    let in_dirty = |bb: Rect| bb.touches(union) && dirty.iter().any(|d| bb.touches(*d));

    // Multiset-diff the dirty subsets at shape level: shapes present
    // on both sides survive untouched; the rest are removals and
    // additions.
    let mut old_dirty: HashMap<String, Vec<usize>> = HashMap::new();
    let mut old_dirty_total = 0usize;
    for (slot, entry) in state.shapes.iter().enumerate() {
        if let Some((shape, bb)) = entry {
            if in_dirty(*bb) {
                old_dirty.entry(shape_key(shape)).or_default().push(slot);
                old_dirty_total += 1;
            }
        }
    }
    let mut added: Vec<&FlatShape> = Vec::new();
    let mut new_dirty_total = 0usize;
    for s in shapes {
        if in_dirty(s.geometry.bounding_box()) {
            new_dirty_total += 1;
            match old_dirty.get_mut(&shape_key(s)) {
                Some(slots) if !slots.is_empty() => {
                    slots.pop();
                }
                _ => added.push(s),
            }
        }
    }
    let removed: Vec<usize> = old_dirty.into_values().flatten().collect();

    // Contract sanity: the clean region must hold the same number of
    // shapes on both sides. Population drift means damage was
    // under-reported — rebuild rather than drift.
    let clean_old = state.live_shapes - old_dirty_total;
    let clean_new = shapes.len() - new_dirty_total;
    if clean_old != clean_new {
        state.rebuilds += 1;
        let rebuilds = state.rebuilds;
        *state = DrcState::build(shapes, &state.rules);
        state.rebuilds = rebuilds;
        sp.field("rebuild", 1);
        return state.live_shapes;
    }
    if removed.is_empty() && added.is_empty() {
        return 0;
    }

    // Per-layer work lists: removed slots and added rects.
    let mut removed_rects: BTreeMap<Layer, Vec<Rect>> = BTreeMap::new();
    for &slot in &removed {
        let (shape, _) = state.shapes[slot].take().expect("diffed as live");
        state.live_shapes -= 1;
        if let Some(k) = width_violation(&shape, &state.rules) {
            if let Some(c) = state.width.get_mut(&k) {
                *c -= 1;
                if *c == 0 {
                    state.width.remove(&k);
                }
            }
        }
        if state.rules.rule(shape.layer).is_some() {
            removed_rects
                .entry(shape.layer)
                .or_default()
                .extend(painted_rects(&shape));
        }
    }
    let mut added_rects: BTreeMap<Layer, Vec<Rect>> = BTreeMap::new();
    for s in added {
        if let Some(k) = width_violation(s, &state.rules) {
            *state.width.entry(k).or_insert(0) += 1;
        }
        if state.rules.rule(s.layer).is_some() {
            added_rects
                .entry(s.layer)
                .or_default()
                .extend(painted_rects(s));
        }
        state
            .shapes
            .push(Some((s.clone(), s.geometry.bounding_box())));
        state.live_shapes += 1;
    }

    // Patch each touched layer's connectivity and spacing.
    let mut patched_total = 0usize;
    let touched: Vec<Layer> = removed_rects
        .keys()
        .chain(added_rects.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for layer_id in touched {
        let rule = state.rules.rule(layer_id).expect("only checked layers");
        let layer = state
            .layers
            .entry(layer_id)
            .or_insert_with(|| LayerState::new(rule.min_space));

        let mut affected: HashSet<u64> = HashSet::new();
        for &r in removed_rects
            .get(&layer_id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
        {
            match layer.remove_rect(r) {
                Some(slot) => {
                    affected.insert(layer.label[slot as usize]);
                }
                None => {
                    // A removed shape whose rect is not in the state:
                    // the caller's shape list and ours disagree.
                    state.rebuilds += 1;
                    let rebuilds = state.rebuilds;
                    *state = DrcState::build(shapes, &state.rules);
                    state.rebuilds = rebuilds;
                    sp.field("rebuild", 1);
                    return state.live_shapes;
                }
            }
        }
        let mut new_slots: Vec<u32> = Vec::new();
        let mut neighbors = Vec::new();
        for &r in added_rects.get(&layer_id).map(Vec::as_slice).unwrap_or(&[]) {
            new_slots.push(layer.add_slot(r));
        }
        // Labels whose components touch the additions join the rebuild
        // set (an addition can merge two components into one).
        for &s in &new_slots {
            layer.neighbors(layer.rects[s as usize], 0, &mut neighbors);
            for &t in &neighbors {
                if !new_slots.contains(&t) {
                    affected.insert(layer.label[t as usize]);
                }
            }
        }

        // Rebuild set: every remaining member of an affected label,
        // plus the new slots.
        let mut rebuild: Vec<u32> = new_slots.clone();
        for l in &affected {
            if let Some(m) = layer.members.get(l) {
                rebuild.extend(m.iter().copied());
            }
        }
        rebuild.sort_unstable();
        rebuild.dedup();
        patched_total += rebuild.len();

        // Re-pair the rebuild set: union-find over touching members.
        // Damage closure guarantees any slot touching a rebuild slot
        // is itself in the set (proved in DESIGN.md §10), so the local
        // union-find sees every edge.
        let local: HashMap<u32, usize> = rebuild.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut uf = UnionFind::new(rebuild.len());
        for (i, &s) in rebuild.iter().enumerate() {
            layer.neighbors(layer.rects[s as usize], 0, &mut neighbors);
            for &t in &neighbors {
                if let Some(&j) = local.get(&t) {
                    uf.union(i, j);
                }
            }
        }
        let comp = uf.labels();
        // Old labels die with their entries; fresh labels replace them.
        for l in &affected {
            layer.members.remove(l);
        }
        let mut fresh: HashMap<usize, u64> = HashMap::new();
        for (i, &s) in rebuild.iter().enumerate() {
            let label = match fresh.get(&comp[i]) {
                Some(&l) => l,
                None => {
                    let l = state.next_label;
                    state.next_label += 1;
                    fresh.insert(comp[i], l);
                    l
                }
            };
            layer.label[s as usize] = label;
            layer.members.entry(label).or_default().push(s);
        }

        // Spacing: entries naming an affected (or removed) label are
        // stale; pairs involving the rebuild set are re-measured.
        layer
            .spacing
            .retain(|&(a, b), _| !affected.contains(&a) && !affected.contains(&b));
        if layer.space > 0 {
            for &s in &rebuild {
                let rs = layer.rects[s as usize];
                layer.neighbors(rs, layer.space - 1, &mut neighbors);
                for &t in &neighbors {
                    let (ls, lt) = (layer.label[s as usize], layer.label[t as usize]);
                    if ls == lt {
                        continue;
                    }
                    let rt = layer.rects[t as usize];
                    let (dx, dy) = axis_gaps(rs, rt);
                    if dx < layer.space && dy < layer.space {
                        offer_representative(
                            &mut layer.spacing,
                            (ls.min(lt), ls.max(lt)),
                            dx.max(dy),
                            rs,
                            rt,
                        );
                    }
                }
            }
        }
        layer.maybe_rebuild_index();
    }
    sp.field("patched", patched_total as u64);
    if riot_trace::enabled() {
        riot_trace::registry()
            .histogram("drc.incremental.patched")
            .record(patched_total as u64);
    }
    patched_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use riot_geom::LAMBDA;

    fn boxed(layer: Layer, r: Rect) -> FlatShape {
        FlatShape {
            layer,
            geometry: Geometry::Box(r),
            depth: 0,
        }
    }

    fn canon(mut v: Vec<Violation>) -> Vec<String> {
        let mut s: Vec<String> = v.drain(..).map(|x| format!("{x:?}")).collect();
        s.sort();
        s
    }

    #[test]
    fn build_matches_full_check() {
        let shapes = vec![
            boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, 3 * LAMBDA)),
            boxed(
                Layer::Metal,
                Rect::new(0, 4 * LAMBDA, 10 * LAMBDA, 7 * LAMBDA),
            ),
            boxed(Layer::Poly, Rect::new(0, 0, 10 * LAMBDA, LAMBDA)),
        ];
        let rules = RuleSet::nmos();
        let state = DrcState::build(&shapes, &rules);
        assert_eq!(canon(state.violations()), canon(check(&shapes, &rules)));
    }

    #[test]
    fn move_patches_the_violation_set() {
        let rules = RuleSet::nmos();
        let stay = boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, 3 * LAMBDA));
        let near = boxed(
            Layer::Metal,
            Rect::new(0, 4 * LAMBDA, 10 * LAMBDA, 7 * LAMBDA),
        );
        let far = boxed(
            Layer::Metal,
            Rect::new(0, 20 * LAMBDA, 10 * LAMBDA, 23 * LAMBDA),
        );
        let mut state = DrcState::build(&[stay.clone(), near.clone()], &rules);
        assert_eq!(state.violations().len(), 1);
        // Move `near` far away: the violation disappears.
        let dirty = [near.geometry.bounding_box(), far.geometry.bounding_box()];
        let new_shapes = vec![stay.clone(), far.clone()];
        check_incremental(&mut state, &dirty, &new_shapes);
        assert_eq!(canon(state.violations()), canon(check(&new_shapes, &rules)));
        assert!(state.violations().is_empty());
        // Move it back: the violation returns, identically.
        let back = vec![stay.clone(), near.clone()];
        check_incremental(&mut state, &dirty, &back);
        assert_eq!(canon(state.violations()), canon(check(&back, &rules)));
        assert_eq!(state.full_rebuilds(), 0);
    }

    #[test]
    fn addition_merges_components() {
        let rules = RuleSet::nmos();
        // Two metal boxes a violation apart; a bridge box touching
        // both merges them into one conductor — no violation.
        let a = boxed(Layer::Metal, Rect::new(0, 0, 4 * LAMBDA, 3 * LAMBDA));
        let b = boxed(
            Layer::Metal,
            Rect::new(0, 4 * LAMBDA, 4 * LAMBDA, 7 * LAMBDA),
        );
        let bridge = boxed(
            Layer::Metal,
            Rect::new(0, 2 * LAMBDA, 4 * LAMBDA, 5 * LAMBDA),
        );
        let mut state = DrcState::build(&[a.clone(), b.clone()], &rules);
        assert_eq!(state.violations().len(), 1);
        let with_bridge = vec![a.clone(), b.clone(), bridge.clone()];
        check_incremental(&mut state, &[bridge.geometry.bounding_box()], &with_bridge);
        assert_eq!(
            canon(state.violations()),
            canon(check(&with_bridge, &rules))
        );
        assert!(state.violations().is_empty());
        // Remove the bridge again: the component splits, the
        // violation comes back.
        let without = vec![a.clone(), b.clone()];
        check_incremental(&mut state, &[bridge.geometry.bounding_box()], &without);
        assert_eq!(canon(state.violations()), canon(check(&without, &rules)));
        assert_eq!(state.violations().len(), 1);
    }

    #[test]
    fn under_reported_damage_falls_back_to_rebuild() {
        let rules = RuleSet::nmos();
        let a = boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, 3 * LAMBDA));
        let b = boxed(
            Layer::Metal,
            Rect::new(100 * LAMBDA, 0, 110 * LAMBDA, 3 * LAMBDA),
        );
        let mut state = DrcState::build(std::slice::from_ref(&a), &rules);
        // `b` appears outside the reported damage: population drift in
        // the clean region triggers the rebuild path.
        check_incremental(
            &mut state,
            &[Rect::new(0, 0, LAMBDA, LAMBDA)],
            &[a.clone(), b.clone()],
        );
        assert_eq!(state.full_rebuilds(), 1);
        assert_eq!(canon(state.violations()), canon(check(&[a, b], &rules)));
    }

    #[test]
    fn width_violations_patch_as_a_multiset() {
        let rules = RuleSet::nmos();
        let thin = boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, LAMBDA));
        let thin2 = boxed(
            Layer::Metal,
            Rect::new(0, 10 * LAMBDA, 10 * LAMBDA, 11 * LAMBDA),
        );
        let mut state = DrcState::build(&[thin.clone(), thin2.clone()], &rules);
        assert_eq!(state.violations().len(), 2); // two widths; 9λ apart, no spacing
        let dirty = [thin2.geometry.bounding_box()];
        let after = vec![thin.clone()];
        check_incremental(&mut state, &dirty, &after);
        assert_eq!(canon(state.violations()), canon(check(&after, &rules)));
    }
}
