//! Geometric design-rule checking over flattened mask geometry.
//!
//! The paper's users had to "verify connections with extensive
//! checking" because Riot guarantees only the connections it makes.
//! This crate is that checking pass for the geometric rules: every
//! shape wide enough, every same-layer pair either connected (touching)
//! or a full design-rule space apart.
//!
//! Rules follow the Mead & Conway NMOS set this reproduction uses
//! throughout ([`RuleSet::nmos`]); widths and spaces are in
//! centimicrons, matching [`riot_cif`] geometry.
//!
//! # Example
//!
//! ```
//! use riot_drc::{check, RuleSet};
//! use riot_cif::FlatShape;
//! use riot_geom::{Layer, Rect, LAMBDA};
//!
//! let shapes = vec![
//!     FlatShape {
//!         layer: Layer::Metal,
//!         geometry: riot_cif::Geometry::Box(Rect::new(0, 0, 10 * LAMBDA, 3 * LAMBDA)),
//!         depth: 0,
//!     },
//!     // A second metal box only 1λ away: a spacing violation.
//!     FlatShape {
//!         layer: Layer::Metal,
//!         geometry: riot_cif::Geometry::Box(Rect::new(0, 4 * LAMBDA, 10 * LAMBDA, 7 * LAMBDA)),
//!         depth: 0,
//!     },
//! ];
//! let violations = check(&shapes, &RuleSet::nmos());
//! assert_eq!(violations.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod differential;
mod incremental;
#[cfg(any(test, feature = "naive"))]
pub mod naive;
mod unionfind;

pub use incremental::{check_incremental, DrcState};

use riot_cif::{FlatShape, Geometry};
use riot_geom::{index::SpatialIndex, par, Layer, Rect, LAMBDA};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use unionfind::UnionFind;

/// Minimum width and same-layer spacing for one layer, centimicrons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerRule {
    /// Minimum feature width.
    pub min_width: i64,
    /// Minimum space between unconnected same-layer features.
    pub min_space: i64,
}

/// The rule deck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    rules: Vec<(Layer, LayerRule)>,
}

impl RuleSet {
    /// The Mead & Conway NMOS rules at λ = 2.5 µm: 2λ/3λ diffusion,
    /// 2λ/2λ poly, 3λ/3λ metal, 2λ/2λ contact cuts. Implant, buried
    /// and glass carry no width/space checks here.
    pub fn nmos() -> Self {
        RuleSet {
            rules: vec![
                (
                    Layer::Diffusion,
                    LayerRule {
                        min_width: 2 * LAMBDA,
                        min_space: 3 * LAMBDA,
                    },
                ),
                (
                    Layer::Poly,
                    LayerRule {
                        min_width: 2 * LAMBDA,
                        min_space: 2 * LAMBDA,
                    },
                ),
                (
                    Layer::Metal,
                    LayerRule {
                        min_width: 3 * LAMBDA,
                        min_space: 3 * LAMBDA,
                    },
                ),
                (
                    Layer::Contact,
                    LayerRule {
                        min_width: 2 * LAMBDA,
                        min_space: 2 * LAMBDA,
                    },
                ),
            ],
        }
    }

    /// The rule for a layer, if it is checked at all.
    pub fn rule(&self, layer: Layer) -> Option<LayerRule> {
        self.rules
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|&(_, r)| r)
    }
}

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A feature narrower than the layer's minimum width.
    Width {
        /// Offending layer.
        layer: Layer,
        /// Bounding box of the feature.
        at: Rect,
        /// Measured width.
        measured: i64,
        /// Required minimum.
        required: i64,
    },
    /// Two unconnected same-layer features closer than minimum space.
    Spacing {
        /// Offending layer.
        layer: Layer,
        /// First feature's bounding box.
        a: Rect,
        /// Second feature's bounding box.
        b: Rect,
        /// Measured separation (the larger axis gap).
        measured: i64,
        /// Required minimum.
        required: i64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Width {
                layer,
                at,
                measured,
                required,
            } => write!(
                f,
                "{layer} feature at {at} is {measured} wide; rule needs {required}"
            ),
            Violation::Spacing {
                layer,
                a,
                b,
                measured,
                required,
            } => write!(
                f,
                "{layer} features at {a} and {b} are {measured} apart; rule needs {required}"
            ),
        }
    }
}

/// The primitive rectangles a shape paints (wires one per segment).
pub(crate) fn painted_rects(shape: &FlatShape) -> Vec<Rect> {
    match &shape.geometry {
        Geometry::Box(r) => vec![*r],
        Geometry::Polygon(pts) => {
            // Conservative: the polygon's bounding box.
            let mut bb = Rect::at_point(pts[0]);
            for &p in &pts[1..] {
                bb = bb.union_point(p);
            }
            vec![bb]
        }
        Geometry::Wire { width, path } => path
            .segments()
            .map(|(a, b)| Rect::from_points(a, b).inflated(width / 2))
            .collect(),
        Geometry::Flash { diameter, center } => {
            vec![Rect::from_center(*center, *diameter, *diameter)]
        }
    }
}

/// Checks flattened geometry against the rules, returning every
/// violation found. Touching features count as connected and are not
/// spacing-checked against each other.
///
/// Spacing is checked through a [`SpatialIndex`] per layer — each rect
/// only inspects its `min_space`-neighborhood instead of every other
/// rect — and the per-layer checks run on the [`par`] worker pool
/// (`RIOT_THREADS`). The reported violation set is identical to the
/// retained all-pairs reference ([`naive`], compiled for tests and the
/// `naive` feature) and to the incremental checker
/// ([`check_incremental`]); only cross-layer ordering differs (layers
/// are visited in [`Layer`] order rather than first-appearance order).
/// Each component pair's representative rect pair is the order-free
/// minimum by `(measured, a, b)`, so all three paths agree shape for
/// shape.
pub fn check(shapes: &[FlatShape], rules: &RuleSet) -> Vec<Violation> {
    let mut sp = riot_trace::span!("drc.check", shapes = shapes.len() as u64);
    // Width checks per shape.
    let mut violations = Vec::new();
    for s in shapes {
        let Some(rule) = rules.rule(s.layer) else {
            continue;
        };
        let measured = match &s.geometry {
            Geometry::Wire { width, .. } => *width,
            other => {
                let bb = other.bounding_box();
                bb.width().min(bb.height())
            }
        };
        if measured < rule.min_width {
            violations.push(Violation::Width {
                layer: s.layer,
                at: s.geometry.bounding_box(),
                measured,
                required: rule.min_width,
            });
        }
    }

    // Spacing checks: merge touching same-layer geometry into connected
    // components first (abutted rails are one conductor, not two close
    // shapes), then require full spacing between different components.
    let mut by_layer: BTreeMap<Layer, Vec<Rect>> = BTreeMap::new();
    for s in shapes {
        if rules.rule(s.layer).is_none() {
            continue;
        }
        by_layer
            .entry(s.layer)
            .or_default()
            .extend(painted_rects(s));
    }
    let layers: Vec<(Layer, Vec<Rect>)> = by_layer.into_iter().collect();
    let per_layer = par::map_heavy(&layers, |(layer, rects)| {
        let space = rules.rule(*layer).expect("filtered above").min_space;
        layer_spacing_violations(*layer, rects, space)
    });
    for v in per_layer {
        violations.extend(v);
    }
    sp.field("violations", violations.len() as u64);
    violations
}

/// A total order key for rectangles (they carry no `Ord` themselves).
pub(crate) fn rect_key(r: Rect) -> (i64, i64, i64, i64) {
    (r.x0, r.y0, r.x1, r.y1)
}

/// Offers one violating rect pair as the representative for a
/// component pair, keeping the minimum by `(measured, a, b)` with the
/// pair normalized so `a <= b`. The chosen representative is a pure
/// function of the *set* of violating pairs — independent of
/// discovery order — which is what lets the incremental checker patch
/// a retained violation set and still agree with a full recompute.
pub(crate) fn offer_representative<K: std::hash::Hash + Eq>(
    best: &mut HashMap<K, (i64, Rect, Rect)>,
    key: K,
    measured: i64,
    a: Rect,
    b: Rect,
) {
    let (a, b) = if rect_key(a) <= rect_key(b) {
        (a, b)
    } else {
        (b, a)
    };
    match best.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let (m, ca, cb) = *e.get();
            if (measured, rect_key(a), rect_key(b)) < (m, rect_key(ca), rect_key(cb)) {
                e.insert((measured, a, b));
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert((measured, a, b));
        }
    }
}

/// Emits one layer's spacing representatives in canonical order
/// (ascending `(measured, a, b)`).
pub(crate) fn emit_spacing<K>(
    layer: Layer,
    space: i64,
    best: HashMap<K, (i64, Rect, Rect)>,
) -> Vec<Violation> {
    let mut list: Vec<(i64, Rect, Rect)> = best.into_values().collect();
    list.sort_unstable_by_key(|&(m, a, b)| (m, rect_key(a), rect_key(b)));
    list.into_iter()
        .map(|(measured, a, b)| Violation::Spacing {
            layer,
            a,
            b,
            measured,
            required: space,
        })
        .collect()
}

/// The axis gaps between two rects: `(dx, dy)`, both clamped to zero.
/// The pair violates `space` iff `dx < space && dy < space` (and the
/// rects belong to different components); the measured separation is
/// `dx.max(dy)`.
pub(crate) fn axis_gaps(a: Rect, b: Rect) -> (i64, i64) {
    let dx = (b.x0 - a.x1).max(a.x0 - b.x1).max(0);
    let dy = (b.y0 - a.y1).max(a.y0 - b.y1).max(0);
    (dx, dy)
}

/// Spacing violations on one layer, index-driven.
///
/// For every rect the index yields only its neighbors with an axis gap
/// `< space`. One violation is reported per component pair; the
/// representative rect pair is the order-free minimum chosen by
/// [`offer_representative`], so the result is a pure function of the
/// geometry.
fn layer_spacing_violations(layer: Layer, rects: &[Rect], space: i64) -> Vec<Violation> {
    if rects.len() < 2 || space <= 0 {
        return Vec::new();
    }
    let _sp = riot_trace::span!("drc.layer", rects = rects.len() as u64);
    let index = SpatialIndex::build(rects);
    let comp = components(rects, &index);
    let mut best: HashMap<(usize, usize), (i64, Rect, Rect)> = HashMap::new();
    let mut neighbors = Vec::new();
    for i in 0..rects.len() {
        neighbors.clear();
        neighbors.extend(index.within(rects[i], space - 1).filter(|&j| j > i));
        for &j in &neighbors {
            if comp[i] == comp[j] {
                continue; // one conductor
            }
            let (a, b) = (rects[i], rects[j]);
            let (dx, dy) = axis_gaps(a, b);
            let measured = dx.max(dy);
            debug_assert!(dx < space && dy < space, "index over-expanded");
            offer_representative(
                &mut best,
                (comp[i].min(comp[j]), comp[i].max(comp[j])),
                measured,
                a,
                b,
            );
        }
    }
    emit_spacing(layer, space, best)
}

/// Connected-component labels for touching rectangles: the index turns
/// edge discovery from all-pairs into per-rect neighborhood queries,
/// and the union-find uses union-by-rank + path compression.
pub(crate) fn components(rects: &[Rect], index: &SpatialIndex) -> Vec<usize> {
    let mut uf = UnionFind::new(rects.len());
    for (i, &r) in rects.iter().enumerate() {
        for j in index.query(r) {
            if j > i {
                uf.union(i, j);
            }
        }
    }
    uf.labels()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(layer: Layer, r: Rect) -> FlatShape {
        FlatShape {
            layer,
            geometry: Geometry::Box(r),
            depth: 0,
        }
    }

    #[test]
    fn clean_geometry_passes() {
        let shapes = vec![
            boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, 3 * LAMBDA)),
            boxed(
                Layer::Metal,
                Rect::new(0, 6 * LAMBDA, 10 * LAMBDA, 9 * LAMBDA),
            ),
        ];
        assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }

    #[test]
    fn narrow_feature_flagged() {
        let shapes = vec![boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, LAMBDA))];
        let v = check(&shapes, &RuleSet::nmos());
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Width { measured, .. } if measured == LAMBDA));
    }

    #[test]
    fn close_features_flagged_touching_allowed() {
        let a = boxed(Layer::Poly, Rect::new(0, 0, 4 * LAMBDA, 2 * LAMBDA));
        let close = boxed(
            Layer::Poly,
            Rect::new(0, 3 * LAMBDA, 4 * LAMBDA, 5 * LAMBDA),
        );
        let touching = boxed(
            Layer::Poly,
            Rect::new(0, 2 * LAMBDA, 4 * LAMBDA, 4 * LAMBDA),
        );
        let v = check(&[a.clone(), close], &RuleSet::nmos());
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Spacing { measured, .. } if measured == LAMBDA));
        assert!(check(&[a, touching], &RuleSet::nmos()).is_empty());
    }

    #[test]
    fn different_layers_do_not_interact() {
        let shapes = vec![
            boxed(Layer::Metal, Rect::new(0, 0, 10 * LAMBDA, 3 * LAMBDA)),
            boxed(
                Layer::Poly,
                Rect::new(0, 4 * LAMBDA, 10 * LAMBDA, 6 * LAMBDA),
            ),
        ];
        assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }

    #[test]
    fn connected_components_are_exempt_transitively() {
        // Three boxes: a-b touch, b-c touch, a and c are 1λ apart in
        // the corner sense — but all one conductor, so no violation.
        let shapes = vec![
            boxed(Layer::Metal, Rect::new(0, 0, 4 * LAMBDA, 3 * LAMBDA)),
            boxed(
                Layer::Metal,
                Rect::new(4 * LAMBDA, 0, 8 * LAMBDA, 3 * LAMBDA),
            ),
            boxed(
                Layer::Metal,
                Rect::new(8 * LAMBDA, 0, 12 * LAMBDA, 3 * LAMBDA),
            ),
        ];
        assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }

    #[test]
    fn diagonal_proximity_flagged() {
        let shapes = vec![
            boxed(Layer::Metal, Rect::new(0, 0, 3 * LAMBDA, 3 * LAMBDA)),
            boxed(
                Layer::Metal,
                Rect::new(4 * LAMBDA, 4 * LAMBDA, 7 * LAMBDA, 7 * LAMBDA),
            ),
        ];
        let v = check(&shapes, &RuleSet::nmos());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn wire_segments_of_one_wire_exempt() {
        let path = riot_geom::Path::from_points([
            riot_geom::Point::new(0, 0),
            riot_geom::Point::new(10 * LAMBDA, 0),
            riot_geom::Point::new(10 * LAMBDA, 2 * LAMBDA),
            riot_geom::Point::new(0, 2 * LAMBDA),
        ])
        .unwrap();
        let shapes = vec![FlatShape {
            layer: Layer::Metal,
            geometry: Geometry::Wire {
                width: 3 * LAMBDA,
                path,
            },
            depth: 0,
        }];
        // The U-turn brings the wire near itself; same-shape pairs are
        // exempt (a real DRC would merge the polygon first).
        assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }

    #[test]
    fn unchecked_layers_ignored() {
        let shapes = vec![
            boxed(Layer::Implant, Rect::new(0, 0, LAMBDA, LAMBDA)),
            boxed(Layer::Glass, Rect::new(0, 0, LAMBDA, LAMBDA)),
        ];
        assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }
}
