//! The retained naive (all-pairs) checker.
//!
//! This is the original O(n²) implementation of [`crate::check`], kept
//! as the reference oracle: the differential property tests prove the
//! indexed and incremental checkers report the same violation set, and
//! the `riot-bench` spatial benchmark measures the speedup against it.
//! The only departure from the original code is the shared order-free
//! representative rule ([`crate::offer_representative`]) — both
//! checkers must pick per-component-pair representatives that do not
//! depend on discovery order, or incremental patching could never
//! reproduce them.
//! Compiled only for tests and under the `naive` cargo feature — it is
//! not part of the production checking path.

use crate::{painted_rects, RuleSet, Violation};
use riot_cif::{FlatShape, Geometry};
use riot_geom::{Layer, Rect};

/// Checks flattened geometry against the rules with the original
/// all-pairs loops. Semantically identical to [`crate::check`] (modulo
/// violation ordering), quadratically slower.
pub fn check(shapes: &[FlatShape], rules: &RuleSet) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Width checks per shape.
    for s in shapes {
        let Some(rule) = rules.rule(s.layer) else {
            continue;
        };
        let measured = match &s.geometry {
            Geometry::Wire { width, .. } => *width,
            other => {
                let bb = other.bounding_box();
                bb.width().min(bb.height())
            }
        };
        if measured < rule.min_width {
            violations.push(Violation::Width {
                layer: s.layer,
                at: s.geometry.bounding_box(),
                measured,
                required: rule.min_width,
            });
        }
    }

    // Spacing checks: merge touching same-layer geometry into connected
    // components first (abutted rails are one conductor, not two close
    // shapes), then require full spacing between different components.
    let mut by_layer: Vec<(Layer, Vec<Rect>)> = Vec::new();
    for s in shapes {
        if rules.rule(s.layer).is_none() {
            continue;
        }
        let entry = match by_layer.iter_mut().find(|(l, _)| *l == s.layer) {
            Some(e) => e,
            None => {
                by_layer.push((s.layer, Vec::new()));
                by_layer.last_mut().expect("just pushed")
            }
        };
        entry.1.extend(painted_rects(s));
    }
    for (layer, rects) in &by_layer {
        let space = rules.rule(*layer).expect("filtered above").min_space;
        let comp = components(rects);
        let mut best = std::collections::HashMap::new();
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                if comp[i] == comp[j] {
                    continue; // one conductor
                }
                let (a, b) = (rects[i], rects[j]);
                let (dx, dy) = crate::axis_gaps(a, b);
                let measured = dx.max(dy);
                if dx < space && dy < space {
                    crate::offer_representative(
                        &mut best,
                        (comp[i].min(comp[j]), comp[i].max(comp[j])),
                        measured,
                        a,
                        b,
                    );
                }
            }
        }
        violations.extend(crate::emit_spacing(*layer, space, best));
    }
    violations
}

/// Connected-component labels for touching rectangles, by all-pairs
/// union-find (path compression only — the original code).
fn components(rects: &[Rect]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..rects.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..rects.len() {
        for j in i + 1..rects.len() {
            if rects[i].touches(rects[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    (0..rects.len()).map(|i| find(&mut parent, i)).collect()
}
