//! Property tests for the design-rule checker: well-spaced random
//! layouts always pass; every planted violation is found.

use proptest::prelude::*;
use riot_cif::{FlatShape, Geometry};
use riot_drc::{check, RuleSet, Violation};
use riot_geom::{Layer, Rect, LAMBDA};

fn boxed(layer: Layer, r: Rect) -> FlatShape {
    FlatShape {
        layer,
        geometry: Geometry::Box(r),
        depth: 0,
    }
}

/// A grid of metal boxes placed at pitch `>= size + min_space`.
fn arb_clean_grid() -> impl Strategy<Value = Vec<FlatShape>> {
    (2i64..6, 2i64..6, 0i64..4).prop_map(|(cols, rows, slack)| {
        let size = 3 * LAMBDA;
        let pitch = size + 3 * LAMBDA + slack * LAMBDA;
        let mut shapes = Vec::new();
        for c in 0..cols {
            for r in 0..rows {
                let x = c * pitch;
                let y = r * pitch;
                shapes.push(boxed(Layer::Metal, Rect::new(x, y, x + size, y + size)));
            }
        }
        shapes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn well_spaced_grids_pass(shapes in arb_clean_grid()) {
        prop_assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }

    #[test]
    fn planted_spacing_violation_found(
        shapes in arb_clean_grid(),
        gap in 1i64..3,
    ) {
        // Plant one intruder a sub-rule gap to the right of shape 0.
        let Geometry::Box(r0) = shapes[0].geometry.clone() else { unreachable!() };
        let intruder = boxed(
            Layer::Metal,
            Rect::new(
                r0.x1 + gap * LAMBDA,
                r0.y0,
                r0.x1 + gap * LAMBDA + 3 * LAMBDA,
                r0.y1,
            ),
        );
        let mut all = shapes;
        // Only add it when it does not land on/too close to another
        // grid column (pitch >= 6λ guarantees gap<3 collides only with
        // shape 0 when slack >= gap... easiest: just require at least
        // one violation).
        all.push(intruder);
        let v = check(&all, &RuleSet::nmos());
        prop_assert!(
            v.iter().any(|x| matches!(x, Violation::Spacing { .. })),
            "planted gap {} lambda not reported",
            gap
        );
    }

    #[test]
    fn planted_width_violation_found(shapes in arb_clean_grid(), w in 1i64..3) {
        let mut all = shapes;
        all.push(boxed(
            Layer::Metal,
            Rect::new(1_000_000, 1_000_000, 1_000_000 + 20 * LAMBDA, 1_000_000 + w * LAMBDA),
        ));
        let v = check(&all, &RuleSet::nmos());
        let found = v
            .iter()
            .any(|x| matches!(x, Violation::Width { measured, .. } if *measured == w * LAMBDA));
        prop_assert!(found, "planted width {} lambda not reported", w);
    }

    #[test]
    fn check_is_deterministic(shapes in arb_clean_grid()) {
        prop_assert_eq!(
            check(&shapes, &RuleSet::nmos()),
            check(&shapes, &RuleSet::nmos())
        );
    }

    #[test]
    fn touching_chains_never_flag(n in 2usize..8) {
        // A long chain of touching boxes is one conductor.
        let shapes: Vec<FlatShape> = (0..n as i64)
            .map(|i| {
                boxed(
                    Layer::Metal,
                    Rect::new(i * 3 * LAMBDA, 0, (i + 1) * 3 * LAMBDA, 3 * LAMBDA),
                )
            })
            .collect();
        prop_assert!(check(&shapes, &RuleSet::nmos()).is_empty());
    }
}
