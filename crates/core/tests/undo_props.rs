//! Property tests for the undo/redo engine: any random command applied
//! to a session can be undone back to the prior library state, and
//! `undo; redo` is idempotent on the library.

use proptest::prelude::*;
use riot_core::{AbutOptions, Editor, InstanceId, Library, RiotError};
use riot_geom::{Orientation, Point, LAMBDA};

const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin B left NP 0 10 2
pin OUT right NM 12 10 3
wire NP 2 0 4 6 4
wire NP 2 0 10 6 10
wire NM 3 6 10 12 10
end
";

const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";

fn fresh_library() -> Library {
    let mut lib = Library::new();
    lib.load_sticks(GATE).unwrap();
    lib.load_sticks(DRIVER).unwrap();
    lib
}

/// One random editing action, chosen by proptest.
#[derive(Debug, Clone)]
enum Action {
    Create(bool),
    Translate(usize, i64, i64),
    Orient(usize, u8),
    Replicate(usize, u32, u32),
    Spacing(usize, i64, i64),
    Delete(usize),
    Connect(usize, usize),
    RemovePending(usize),
    ClearPending,
    Abut,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        prop::bool::ANY.prop_map(Action::Create),
        (0usize..6, -40i64..40, -40i64..40).prop_map(|(i, x, y)| Action::Translate(
            i,
            x * LAMBDA,
            y * LAMBDA
        )),
        (0usize..6, 0u8..8).prop_map(|(i, o)| Action::Orient(i, o)),
        (0usize..6, 1u32..4, 1u32..4).prop_map(|(i, c, r)| Action::Replicate(i, c, r)),
        (0usize..6, 1i64..40, 1i64..40).prop_map(|(i, c, r)| Action::Spacing(
            i,
            c * LAMBDA,
            r * LAMBDA
        )),
        (0usize..6).prop_map(Action::Delete),
        (0usize..6, 0usize..6).prop_map(|(a, b)| Action::Connect(a, b)),
        (0usize..4).prop_map(Action::RemovePending),
        Just(Action::ClearPending),
        Just(Action::Abut),
    ]
}

fn pick(ed: &Editor<'_>, i: usize) -> Option<InstanceId> {
    let live = ed.instances();
    if live.is_empty() {
        None
    } else {
        Some(live[i % live.len()].0)
    }
}

const ORIENTS: [Orientation; 8] = [
    Orientation::R0,
    Orientation::R90,
    Orientation::R180,
    Orientation::R270,
    Orientation::MX,
    Orientation::MX90,
    Orientation::MY,
    Orientation::MY90,
];

/// Applies one action; errors are fine (invalid geometry), panics are
/// not. Returns whether a command was actually issued.
fn apply(ed: &mut Editor<'_>, action: &Action) -> bool {
    let before = ed.undo_depth();
    let gate = ed.library().find("gate").unwrap();
    let driver = ed.library().find("driver").unwrap();
    let r: Result<(), RiotError> = (|| {
        match action {
            Action::Create(g) => {
                ed.create_instance(if *g { gate } else { driver })?;
            }
            Action::Translate(i, x, y) => {
                if let Some(id) = pick(ed, *i) {
                    ed.translate_instance(id, Point::new(*x, *y))?;
                }
            }
            Action::Orient(i, o) => {
                if let Some(id) = pick(ed, *i) {
                    ed.orient_instance(id, ORIENTS[*o as usize % 8])?;
                }
            }
            Action::Replicate(i, c, r) => {
                if let Some(id) = pick(ed, *i) {
                    ed.replicate_instance(id, *c, *r)?;
                }
            }
            Action::Spacing(i, c, r) => {
                if let Some(id) = pick(ed, *i) {
                    ed.set_spacing(id, *c, *r)?;
                }
            }
            Action::Delete(i) => {
                if let Some(id) = pick(ed, *i) {
                    ed.delete_instance(id)?;
                }
            }
            Action::Connect(a, b) => {
                if let (Some(f), Some(t)) = (pick(ed, *a), pick(ed, *b)) {
                    // The canonical gate->driver pairing; geometry may
                    // reject it, which is fine.
                    let _ = ed.connect(f, "A", t, "X");
                }
            }
            Action::RemovePending(i) => ed.remove_pending(*i),
            Action::ClearPending => ed.clear_pending(),
            Action::Abut => {
                let _ = ed.abut(AbutOptions::default());
            }
        }
        Ok(())
    })();
    let _ = r;
    ed.undo_depth() > before
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `apply; undo` restores the exact prior library state.
    #[test]
    fn undo_restores_prior_state(
        setup in prop::collection::vec(action_strategy(), 0..8),
        action in action_strategy(),
    ) {
        let mut lib = fresh_library();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        for a in &setup {
            let _ = apply(&mut ed, a);
        }
        let before_lib = ed.library().clone();
        let before_pending = ed.pending().to_vec();
        let issued = apply(&mut ed, &action);
        if issued {
            prop_assert!(ed.undo().unwrap());
            prop_assert_eq!(ed.library(), &before_lib);
            prop_assert_eq!(ed.pending(), before_pending.as_slice());
        }
    }

    /// `undo; redo` lands back on the same library state.
    #[test]
    fn undo_redo_is_idempotent(
        setup in prop::collection::vec(action_strategy(), 1..10),
    ) {
        let mut lib = fresh_library();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        for a in &setup {
            let _ = apply(&mut ed, a);
        }
        let after_lib = ed.library().clone();
        let after_pending = ed.pending().to_vec();
        if ed.undo().unwrap() {
            prop_assert!(ed.redo().unwrap());
            prop_assert_eq!(ed.library(), &after_lib);
            prop_assert_eq!(ed.pending(), after_pending.as_slice());
        }
    }

    /// Undoing everything returns to the opening state.
    #[test]
    fn full_unwind_restores_opening_state(
        actions in prop::collection::vec(action_strategy(), 0..12),
    ) {
        let mut lib = fresh_library();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let opening = ed.library().clone();
        for a in &actions {
            let _ = apply(&mut ed, a);
        }
        while ed.undo().unwrap() {}
        prop_assert_eq!(ed.library(), &opening);
        prop_assert!(ed.pending().is_empty());
    }
}
