//! Journal-coverage audit: every mutating `Editor` method records a
//! command, and replaying the journal on a fresh library reproduces the
//! exact final state.
//!
//! This is the contract REPLAY depends on ("Riot saves the commands
//! given by the user and can re-run an editing session"): if a mutating
//! path forgets to journal, the replayed library diverges and these
//! tests fail.

use riot_core::{
    replay, AbutOptions, Editor, Library, ReplayCommand, RiotError, RouteOptions, StretchOptions,
};
use riot_geom::{Orientation, Point, Side, LAMBDA};
use riot_route::{RouterEngine, RouterOptions};

const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin B left NP 0 10 2
pin OUT right NM 12 10 3
wire NP 2 0 4 6 4
wire NP 2 0 10 6 10
wire NM 3 6 10 12 10
end
";

const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";

fn fresh_library() -> Library {
    let mut lib = Library::new();
    lib.load_sticks(GATE).unwrap();
    lib.load_sticks(DRIVER).unwrap();
    lib
}

/// Runs `script` against a fresh library, captures the journal, replays
/// the journal text against another fresh library, and asserts the two
/// final libraries are identical.
fn assert_replay_equality(script: impl Fn(&mut Editor<'_>) -> Result<(), RiotError>) {
    let mut lib = fresh_library();
    let journal_text;
    {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        script(&mut ed).unwrap();
        journal_text = ed.journal().to_text();
    }
    let mut lib2 = fresh_library();
    let journal = riot_core::Journal::parse(&journal_text).unwrap();
    replay(&journal, &mut lib2).unwrap();
    assert_eq!(lib, lib2, "replayed library diverged\n{journal_text}");
}

#[test]
fn instance_commands_replay_identically() {
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let i = ed.create_instance(gate)?;
        ed.translate_instance(i, Point::new(7 * LAMBDA, 3 * LAMBDA))?;
        ed.orient_instance(i, Orientation::R90)?;
        ed.replicate_instance(i, 2, 3)?;
        ed.set_spacing(i, 25 * LAMBDA, 25 * LAMBDA)?;
        let j = ed.create_instance(gate)?;
        ed.delete_instance(j)?;
        Ok(())
    });
}

#[test]
fn pending_list_commands_replay_identically() {
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let driver = ed.library().find("driver").unwrap();
        let g = ed.create_instance(gate)?;
        let d = ed.create_instance(driver)?;
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0))?;
        ed.connect(g, "A", d, "X")?;
        ed.connect(g, "B", d, "Y")?;
        ed.remove_pending(0);
        ed.connect(g, "A", d, "X")?;
        ed.clear_pending();
        // Rebuild and consume through an abutment so the final cell
        // state depends on the pending edits above.
        ed.connect(g, "A", d, "X")?;
        ed.abut(AbutOptions::default())?;
        Ok(())
    });
}

#[test]
fn connection_commands_replay_identically() {
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let driver = ed.library().find("driver").unwrap();
        let g = ed.create_instance(gate)?;
        let d = ed.create_instance(driver)?;
        ed.translate_instance(g, Point::new(40 * LAMBDA, 3 * LAMBDA))?;
        ed.connect(g, "A", d, "X")?;
        ed.connect(g, "B", d, "Y")?;
        ed.route(RouteOptions::default())?;
        ed.finish()?;
        Ok(())
    });
}

#[test]
fn grid_engine_route_replays_identically() {
    // ROUTE journals its engine choice: a session routed with the grid
    // maze router must replay through the grid maze router, not the
    // river default, or the reproduced geometry diverges.
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let driver = ed.library().find("driver").unwrap();
        let g = ed.create_instance(gate)?;
        let d = ed.create_instance(driver)?;
        ed.translate_instance(g, Point::new(40 * LAMBDA, 3 * LAMBDA))?;
        ed.connect(g, "A", d, "X")?;
        ed.connect(g, "B", d, "Y")?;
        ed.route(RouteOptions {
            router: RouterOptions {
                engine: RouterEngine::Grid,
                ..RouterOptions::new()
            },
            ..RouteOptions::default()
        })?;
        ed.finish()?;
        Ok(())
    });
}

#[test]
fn stretch_and_bring_out_replay_identically() {
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let driver = ed.library().find("driver").unwrap();
        let g = ed.create_instance(gate)?;
        let d = ed.create_instance(driver)?;
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0))?;
        ed.connect(g, "A", d, "X")?;
        ed.connect(g, "B", d, "Y")?;
        ed.stretch(StretchOptions::default())?;
        ed.bring_out(d, &["X", "Y"], Side::Right)?;
        ed.finish()?;
        Ok(())
    });
}

#[test]
fn abut_instances_replays_identically() {
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let driver = ed.library().find("driver").unwrap();
        let g = ed.create_instance(gate)?;
        let d = ed.create_instance(driver)?;
        ed.translate_instance(g, Point::new(50 * LAMBDA, 9 * LAMBDA))?;
        ed.abut_instances(g, d)?;
        Ok(())
    });
}

#[test]
fn undo_and_redo_replay_identically() {
    assert_replay_equality(|ed| {
        let gate = ed.library().find("gate").unwrap();
        let i = ed.create_instance(gate)?;
        ed.translate_instance(i, Point::new(10 * LAMBDA, 0))?;
        ed.undo()?;
        ed.translate_instance(i, Point::new(0, 10 * LAMBDA))?;
        ed.undo()?;
        ed.redo()?;
        ed.finish()?;
        Ok(())
    });
}

#[test]
fn every_mutating_method_journals() {
    // The audit proper: count journal entries alongside each call.
    let mut lib = fresh_library();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let mut expect = 1; // edit head
    assert_eq!(ed.journal().commands().len(), expect);

    let gate = ed.library().find("gate").unwrap();
    let driver = ed.library().find("driver").unwrap();
    let g = ed.create_instance(gate).unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "create");

    let d = ed.create_instance(driver).unwrap();
    expect += 1;

    ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
        .unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "translate");

    ed.orient_instance(d, Orientation::R0).unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "orient");

    ed.replicate_instance(d, 1, 1).unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "replicate");

    ed.set_spacing(d, 10 * LAMBDA, 20 * LAMBDA).unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "spacing");

    ed.connect(g, "A", d, "X").unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "connect");

    ed.remove_pending(0);
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "remove_pending");

    ed.connect(g, "A", d, "X").unwrap();
    expect += 1;
    ed.clear_pending();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "clear_pending");

    ed.connect(g, "A", d, "X").unwrap();
    expect += 1;
    ed.abut(AbutOptions::default()).unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "abut");

    ed.abut_instances(g, d).unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "abut_instances");

    ed.undo().unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "undo");

    ed.redo().unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "redo");

    ed.finish().unwrap();
    expect += 1;
    assert_eq!(ed.journal().commands().len(), expect, "finish");

    // No mutating method journals anything extra on failure.
    assert!(ed.connect(g, "A", g, "A").is_err());
    assert_eq!(ed.journal().commands().len(), expect, "failed connect");
}

#[test]
fn create_journals_deduplicated_name() {
    // CREATE under a taken name journals the fresh name it actually
    // used, so the replay reproduces it without the warning path.
    let mut lib = fresh_library();
    let journal_text;
    {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let gate = ed.library().find("gate").unwrap();
        ed.create_named_instance(gate, "I").unwrap();
        ed.create_named_instance(gate, "I").unwrap(); // dedupes to I'
        assert_eq!(ed.warnings().len(), 1);
        journal_text = ed.journal().to_text();
    }
    let journal = riot_core::Journal::parse(&journal_text).unwrap();
    let creates: Vec<_> = journal
        .commands()
        .iter()
        .filter_map(|c| match c {
            ReplayCommand::Create { instance, .. } => Some(instance.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(creates, vec!["I".to_owned(), "I'".to_owned()]);
    let mut lib2 = fresh_library();
    let warnings = replay(&journal, &mut lib2).unwrap();
    assert!(warnings.is_empty(), "replay warned: {warnings:?}");
    assert_eq!(lib, lib2);
}
