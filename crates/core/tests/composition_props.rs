//! Property tests for the composition format and the library: random
//! sessions always round-trip through save/load with identical
//! geometry, and exports always reparse.

use proptest::prelude::*;
use riot_core::{compose, Editor, Library};
use riot_geom::{Orientation, Point, LAMBDA};

const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 12 4
wire NP 2 6 4 6 10
wire NP 2 6 10 12 10
end
";

const TALL: &str = "\
sticks tall
bbox 0 0 8 30
pin T top NM 4 30 3
pin B bottom NM 4 0 3
wire NM 3 4 0 4 30
end
";

/// One random placement action.
#[derive(Debug, Clone)]
struct Placement {
    cell: bool, // false = gate, true = tall
    at: Point,
    orient: usize,
    cols: u32,
    rows: u32,
}

fn arb_placement() -> impl Strategy<Value = Placement> {
    (
        prop::bool::ANY,
        (-50i64..50, -50i64..50),
        0usize..8,
        1u32..4,
        1u32..3,
    )
        .prop_map(|(cell, (x, y), orient, cols, rows)| Placement {
            cell,
            at: Point::new(x * LAMBDA, y * LAMBDA),
            orient,
            cols,
            rows,
        })
}

fn build(placements: &[Placement]) -> Library {
    let mut lib = Library::new();
    let gate = lib.load_sticks(GATE).unwrap();
    let tall = lib.load_sticks(TALL).unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    for p in placements {
        let id = ed
            .create_instance(if p.cell { tall } else { gate })
            .unwrap();
        ed.translate_instance(id, p.at).unwrap();
        ed.orient_instance(id, Orientation::ALL[p.orient]).unwrap();
        ed.replicate_instance(id, p.cols, p.rows).unwrap();
    }
    ed.finish().unwrap();
    drop(ed);
    lib
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn composition_save_load_round_trips(placements in prop::collection::vec(arb_placement(), 1..8)) {
        let lib = build(&placements);
        let text = compose::save(&lib);
        let mut lib2 = Library::new();
        lib2.load_sticks(GATE).unwrap();
        lib2.load_sticks(TALL).unwrap();
        compose::load(&text, &mut lib2).unwrap();
        let a = lib.cell(lib.find("TOP").unwrap()).unwrap();
        let b = lib2.cell(lib2.find("TOP").unwrap()).unwrap();
        prop_assert_eq!(a.bbox, b.bbox);
        prop_assert_eq!(&a.connectors, &b.connectors);
        let ia: Vec<_> = a.composition().unwrap().instances().map(|(_, i)| i.clone()).collect();
        let ib: Vec<_> = b.composition().unwrap().instances().map(|(_, i)| i.clone()).collect();
        prop_assert_eq!(ia.len(), ib.len());
        for (x, y) in ia.iter().zip(&ib) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.transform, y.transform);
            prop_assert_eq!((x.cols, x.rows), (y.cols, y.rows));
            prop_assert_eq!((x.col_spacing, x.row_spacing), (y.col_spacing, y.row_spacing));
        }
    }

    #[test]
    fn exports_always_reparse_and_flatten(placements in prop::collection::vec(arb_placement(), 1..6)) {
        let lib = build(&placements);
        let cif = riot_core::export::to_cif(&lib, "TOP").unwrap();
        let text = riot_cif::to_text(&cif);
        let again = riot_cif::parse(&text).unwrap();
        prop_assert_eq!(&cif, &again);
        let flat = riot_cif::flatten(&again).unwrap();
        // Every placement contributes its geometry (3 wires per gate,
        // 1 per tall), replicated by the array factors.
        let expect: usize = placements
            .iter()
            .map(|p| (if p.cell { 1 } else { 3 }) * (p.cols * p.rows) as usize)
            .sum();
        prop_assert_eq!(flat.len(), expect);
    }

    #[test]
    fn finish_bbox_contains_every_world_connector(placements in prop::collection::vec(arb_placement(), 1..6)) {
        let mut lib = build(&placements);
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let bbox = ed.cell().bbox;
        for (id, _) in ed.instances() {
            for wc in ed.world_connectors(id).unwrap() {
                prop_assert!(bbox.contains(wc.location), "{} outside {}", wc.location, bbox);
            }
        }
        let _ = ed.take_warnings();
    }

    #[test]
    fn measure_is_stable_across_round_trip(placements in prop::collection::vec(arb_placement(), 1..6)) {
        let lib = build(&placements);
        let before = riot_core::measure::measure(&lib, "TOP").unwrap();
        let text = compose::save(&lib);
        let mut lib2 = Library::new();
        lib2.load_sticks(GATE).unwrap();
        lib2.load_sticks(TALL).unwrap();
        compose::load(&text, &mut lib2).unwrap();
        let after = riot_core::measure::measure(&lib2, "TOP").unwrap();
        prop_assert_eq!(before, after);
    }
}
