//! The pending connection list and world-space connectors.
//!
//! "The connection operations require that Riot keep a list of pending
//! connections. The list is shown on the screen constantly, and the
//! user may add to and delete from this list."

use crate::instance::InstanceId;
use riot_geom::{Layer, Point, Side};
use std::fmt;

/// A connector as seen from the composition cell: instance-relative
/// name (array connectors carry an `[col,row]` suffix), world location,
/// and the world side it faces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldConnector {
    /// Name of the owning instance.
    pub instance_name: String,
    /// Exposed connector name.
    pub name: String,
    /// Location in the composition cell's coordinates.
    pub location: Point,
    /// Wire layer.
    pub layer: Layer,
    /// Wire width in centimicrons.
    pub width: i64,
    /// World-space side of the instance bounding box, or `None` for an
    /// interior connector.
    pub side: Option<Side>,
}

/// One entry of the pending connection list: "a link from a connector
/// on one instance to a connector on another instance".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingConnection {
    /// The instance that will move/stretch.
    pub from: InstanceId,
    /// Connector name on the from instance.
    pub from_connector: String,
    /// The instance connected to.
    pub to: InstanceId,
    /// Connector name on the to instance.
    pub to_connector: String,
}

impl fmt::Display for PendingConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.from, self.from_connector, self.to, self.to_connector
        )
    }
}
