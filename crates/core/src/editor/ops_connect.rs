//! Pending-connection commands: CONNECT, the bus connection, and the
//! pending-list edits (remove one, clear). Also the shared
//! `resolve_pending` / `facing_sides` helpers the connection primitives
//! build on.

use super::Editor;
use crate::command::{Command, CommandEffect, Outcome};
use crate::connection::{PendingConnection, WorldConnector};
use crate::error::RiotError;
use crate::events::ChangeEvent;
use crate::history::UndoRecord;
use crate::instance::InstanceId;
use riot_geom::{Point, Side};

impl Editor<'_> {
    /// Adds a pending connection from one instance's connector to
    /// another's. "Connections are remembered and shown on the screen
    /// constantly" — this only extends the list; ABUT/ROUTE/STRETCH
    /// consume it.
    ///
    /// # Errors
    ///
    /// [`RiotError::SelfConnection`],
    /// [`RiotError::MultipleFromInstances`],
    /// [`RiotError::FromInToList`], [`RiotError::LayerMismatch`],
    /// [`RiotError::NotOpposed`], and lookup errors.
    pub fn connect(
        &mut self,
        from: InstanceId,
        from_connector: &str,
        to: InstanceId,
        to_connector: &str,
    ) -> Result<(), RiotError> {
        let from_name = self.instance(from)?.name.clone();
        let to_name = self.instance(to)?.name.clone();
        self.execute(Command::Connect {
            from: from_name,
            from_connector: from_connector.to_owned(),
            to: to_name,
            to_connector: to_connector.to_owned(),
        })?;
        Ok(())
    }

    pub(crate) fn apply_connect(
        &mut self,
        from: &str,
        from_connector: &str,
        to: &str,
        to_connector: &str,
    ) -> Result<CommandEffect, RiotError> {
        let from_id = self.require_instance(from)?;
        let to_id = self.require_instance(to)?;
        if from_id == to_id {
            return Err(RiotError::SelfConnection(from.to_owned()));
        }
        if let Some(first) = self.pending.first() {
            if first.from != from_id {
                return Err(RiotError::MultipleFromInstances(
                    self.instance(first.from)?.name.clone(),
                    from.to_owned(),
                ));
            }
            if self.pending.iter().any(|p| p.to == from_id) {
                return Err(RiotError::FromInToList(from.to_owned()));
            }
        }
        let fc = self.world_connector(from_id, from_connector)?;
        let tc = self.world_connector(to_id, to_connector)?;
        if fc.layer != tc.layer {
            return Err(RiotError::LayerMismatch {
                from: fc.layer,
                to: tc.layer,
            });
        }
        match (fc.side, tc.side) {
            (Some(a), Some(b)) if a.opposes(b) => {}
            (a, b) => return Err(RiotError::NotOpposed { from: a, to: b }),
        }
        self.pending.push(PendingConnection {
            from: from_id,
            from_connector: from_connector.to_owned(),
            to: to_id,
            to_connector: to_connector.to_owned(),
        });
        self.emit(ChangeEvent::PendingChanged);
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::PopPending),
            journal: Command::Connect {
                from: from.to_owned(),
                from_connector: from_connector.to_owned(),
                to: to.to_owned(),
                to_connector: to_connector.to_owned(),
            },
        })
    }

    /// Removes one pending connection by its list position. Out-of-range
    /// positions are ignored (the screen list may have raced an edit).
    pub fn remove_pending(&mut self, index: usize) {
        if index < self.pending.len() {
            let _ = self.execute(Command::RemovePending { index });
        }
    }

    pub(crate) fn apply_remove_pending(
        &mut self,
        index: usize,
    ) -> Result<CommandEffect, RiotError> {
        if index >= self.pending.len() {
            return Err(RiotError::NothingPending);
        }
        let conn = self.pending.remove(index);
        self.emit(ChangeEvent::PendingChanged);
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::InsertPending { index, conn }),
            journal: Command::RemovePending { index },
        })
    }

    /// Clears the pending connection list.
    pub fn clear_pending(&mut self) {
        if !self.pending.is_empty() {
            let _ = self.execute(Command::ClearPending);
        }
    }

    pub(crate) fn apply_clear_pending(&mut self) -> Result<CommandEffect, RiotError> {
        let taken = std::mem::take(&mut self.pending);
        self.emit(ChangeEvent::PendingChanged);
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::RestorePending(taken)),
            journal: Command::ClearPending,
        })
    }

    /// The bus connection: connects every matching connector pair from
    /// one instance to another. Pairs are matched by name on same-layer
    /// opposed sides; connectors on the facing sides that match by
    /// position order (per layer) are paired when names do not match.
    /// Returns how many connections were added; unmatched facing
    /// connectors produce warnings.
    ///
    /// # Errors
    ///
    /// Lookup errors and the same invariant violations as
    /// [`Editor::connect`].
    pub fn connect_bus(&mut self, from: InstanceId, to: InstanceId) -> Result<usize, RiotError> {
        let fcs = self.world_connectors_arc(from)?;
        let tcs = self.world_connectors_arc(to)?;
        let mut added = 0usize;
        let mut used_to: Vec<bool> = vec![false; tcs.len()];
        let mut unmatched_from: Vec<&WorldConnector> = Vec::new();

        for fc in fcs.iter() {
            let hit = tcs.iter().enumerate().find(|(j, tc)| {
                !used_to[*j]
                    && tc.name == fc.name
                    && tc.layer == fc.layer
                    && matches!((fc.side, tc.side), (Some(a), Some(b)) if a.opposes(b))
            });
            match hit {
                Some((j, tc)) => {
                    used_to[j] = true;
                    let (f, t) = (fc.name.clone(), tc.name.clone());
                    self.connect(from, &f, to, &t)?;
                    added += 1;
                }
                None => unmatched_from.push(fc),
            }
        }

        // Positional fallback: pair remaining facing connectors per
        // layer in order along the shared edge.
        let facing = self.facing_sides(from, to)?;
        if let Some((from_side, to_side)) = facing {
            for layer in riot_geom::Layer::ROUTABLE {
                let mut fs: Vec<&WorldConnector> = unmatched_from
                    .iter()
                    .copied()
                    .filter(|c| c.layer == layer && c.side == Some(from_side))
                    .collect();
                let ts: Vec<(usize, &WorldConnector)> = {
                    let mut ts: Vec<(usize, &WorldConnector)> = tcs
                        .iter()
                        .enumerate()
                        .filter(|(j, c)| {
                            !used_to[*j] && c.layer == layer && c.side == Some(to_side)
                        })
                        .collect();
                    ts.sort_by_key(|(_, c)| to_side.along(c.location));
                    ts
                };
                fs.sort_by_key(|c| from_side.along(c.location));
                for (fc, (j, tc)) in fs.iter().zip(&ts) {
                    used_to[*j] = true;
                    let (f, t) = (fc.name.clone(), tc.name.clone());
                    self.connect(from, &f, to, &t)?;
                    added += 1;
                }
                if fs.len() != ts.len() {
                    self.warnings.push(format!(
                        "bus connection: {} unpaired {layer} connectors",
                        fs.len().abs_diff(ts.len())
                    ));
                }
            }
        }
        if added == 0 {
            self.warnings
                .push("bus connection matched no connector pairs".to_owned());
        }
        Ok(added)
    }

    /// The facing side pair between two instances, judged from their
    /// bounding-box centers: `(side of from, side of to)`.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn facing_sides(
        &self,
        from: InstanceId,
        to: InstanceId,
    ) -> Result<Option<(Side, Side)>, RiotError> {
        let fb = self.instance_bbox(from)?;
        let tb = self.instance_bbox(to)?;
        let d = fb.center() - tb.center();
        if d == Point::ORIGIN {
            return Ok(None);
        }
        Ok(Some(if d.x.abs() >= d.y.abs() {
            if d.x > 0 {
                (Side::Left, Side::Right) // from is to the right of to
            } else {
                (Side::Right, Side::Left)
            }
        } else if d.y > 0 {
            (Side::Bottom, Side::Top)
        } else {
            (Side::Top, Side::Bottom)
        }))
    }

    /// Resolves the pending list into (from instance, pairs of world
    /// connectors), without consuming it.
    pub(crate) fn resolve_pending(
        &self,
    ) -> Result<(InstanceId, Vec<(WorldConnector, WorldConnector)>), RiotError> {
        let first = self.pending.first().ok_or(RiotError::NothingPending)?;
        let from = first.from;
        let mut pairs = Vec::new();
        for p in &self.pending {
            let fc = self.world_connector(p.from, &p.from_connector)?;
            let tc = self.world_connector(p.to, &p.to_connector)?;
            pairs.push((fc, tc));
        }
        Ok((from, pairs))
    }
}
