//! Editor unit tests: the seed behavioral suite plus engine-level tests
//! for undo/redo, transactional rollback, events, and the caches.

use super::*;
use riot_geom::{Orientation, Point, Side};

/// A sticks gate with three left pins and a right output — the
/// shape of the paper's NAND/OR leaf cells.
const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin B left NP 0 10 2
pin OUT right NM 12 10 3
wire NP 2 0 4 6 4
wire NP 2 0 10 6 10
wire NM 3 6 10 12 10
end
";

/// A driver with two right-side poly outputs.
const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";

fn setup() -> (Library, CellId, CellId) {
    let mut lib = Library::new();
    let gate = lib.load_sticks(GATE).unwrap();
    let driver = lib.load_sticks(DRIVER).unwrap();
    (lib, gate, driver)
}

#[test]
fn open_creates_composition() {
    let mut lib = Library::new();
    let ed = Editor::open(&mut lib, "TOP").unwrap();
    assert!(ed.cell().is_composition());
    assert_eq!(ed.cell().name, "TOP");
}

#[test]
fn open_rejects_leaf() {
    let (mut lib, _, _) = setup();
    assert!(matches!(
        Editor::open(&mut lib, "gate"),
        Err(RiotError::NotComposition(_))
    ));
}

#[test]
fn create_and_move_instance() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    assert_eq!(ed.instance(i).unwrap().name, "I0");
    ed.translate_instance(i, Point::new(1000, 500)).unwrap();
    let bb = ed.instance_bbox(i).unwrap();
    assert_eq!(bb.lower_left(), Point::new(1000, 500));
}

#[test]
fn connect_validates_layers_and_sides() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(20 * LAMBDA, 0))
        .unwrap();
    // driver.X (right, NP) to gate.A (left, NP): opposed, same layer.
    ed.connect(g, "A", d, "X").unwrap();
    assert_eq!(ed.pending().len(), 1);
    // gate.OUT is metal: layer mismatch with driver.X.
    assert!(matches!(
        ed.connect(g, "OUT", d, "X"),
        Err(RiotError::LayerMismatch { .. })
    ));
    // Two left-side connectors (gate.A to gate.B) are not opposed.
    drop(ed);
    let mut ed2 = Editor::open(&mut lib, "TOP2").unwrap();
    let g2 = ed2.create_instance(gate).unwrap();
    let g3 = ed2.create_instance(gate).unwrap();
    assert!(matches!(
        ed2.connect(g2, "A", g3, "B"),
        Err(RiotError::NotOpposed { .. })
    ));
}

#[test]
fn one_to_many_enforced() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    let d2 = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(20 * LAMBDA, 0))
        .unwrap();
    ed.translate_instance(d2, Point::new(0, -30 * LAMBDA))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    // A second from instance is rejected.
    assert!(matches!(
        ed.connect(d2, "X", g, "A"),
        Err(RiotError::MultipleFromInstances(_, _)) | Err(RiotError::NotOpposed { .. })
    ));
    // Same from to another to instance is fine (one-to-many).
    ed.connect(g, "B", d2, "Y").unwrap_or_else(|e| {
        // Geometry may make sides non-opposed; accept that error.
        assert!(matches!(e, RiotError::NotOpposed { .. }));
    });
}

#[test]
fn abut_moves_from_exactly() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 7 * LAMBDA))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    ed.abut(AbutOptions::default()).unwrap();
    let a = ed.world_connector(g, "A").unwrap();
    let x = ed.world_connector(d, "X").unwrap();
    assert_eq!(a.location, x.location);
    assert!(ed.pending().is_empty());
    assert!(ed.warnings().is_empty());
}

#[test]
fn abut_warns_on_unsatisfiable_second_connection() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
        .unwrap();
    // A-X spacing is 6λ on the gate, 8λ on the driver: both cannot
    // hold at once.
    ed.connect(g, "A", d, "X").unwrap();
    ed.connect(g, "B", d, "Y").unwrap();
    ed.abut(AbutOptions::default()).unwrap();
    assert_eq!(ed.warnings().len(), 1);
    assert!(ed.warnings()[0].contains("cannot be made"));
}

#[test]
fn abut_instances_matches_edges() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(50 * LAMBDA, 9 * LAMBDA))
        .unwrap();
    ed.abut_instances(g, d).unwrap();
    let gb = ed.instance_bbox(g).unwrap();
    let db = ed.instance_bbox(d).unwrap();
    assert_eq!(gb.x0, db.x1); // left edge of from on right edge of to
    assert_eq!(gb.y0, db.y0); // bottoms match
}

#[test]
fn route_connects_and_moves_from() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(40 * LAMBDA, 3 * LAMBDA))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    ed.connect(g, "B", d, "Y").unwrap();
    let (route_cell, route_inst) = ed.route(RouteOptions::default()).unwrap();
    // The route cell is in the menu like any other cell.
    assert!(ed.library().cell(route_cell).unwrap().is_leaf());
    assert!(ed
        .library()
        .cell(route_cell)
        .unwrap()
        .name
        .starts_with("route"));
    // After the route the from connectors coincide with the route's
    // top pins — verified by the absence of warnings.
    assert!(ed.warnings().is_empty(), "warnings: {:?}", ed.warnings());
    assert!(ed.pending().is_empty());
    // Route instance sits against the driver's right edge.
    let rb = ed.instance_bbox(route_inst).unwrap();
    let db = ed.instance_bbox(d).unwrap();
    assert_eq!(rb.x0, db.x1);
    // From instance abuts the route's far side.
    let gb = ed.instance_bbox(g).unwrap();
    assert_eq!(gb.x0, rb.x1);
}

#[test]
fn route_without_moving_from() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(40 * LAMBDA, 0))
        .unwrap();
    let before = ed.instance_bbox(g).unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    ed.route(RouteOptions {
        move_from: false,
        ..RouteOptions::default()
    })
    .unwrap();
    assert_eq!(ed.instance_bbox(g).unwrap(), before);
    // The gap is 40-10=30λ wide; the route fills it exactly.
    let route_inst = ed
        .instances()
        .into_iter()
        .find(|(_, i)| i.name.starts_with("route"))
        .map(|(id, _)| id)
        .unwrap();
    let rb = ed.instance_bbox(route_inst).unwrap();
    assert_eq!(rb.width(), 30 * LAMBDA);
}

#[test]
fn route_too_tight_without_move() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    // Offset connection (A at 4λ vs X at 6λ) needs a jog channel,
    // but the gap is only 1λ.
    ed.translate_instance(g, Point::new(11 * LAMBDA, 0))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    let err = ed
        .route(RouteOptions {
            move_from: false,
            ..RouteOptions::default()
        })
        .unwrap_err();
    assert!(matches!(err, RiotError::ChannelTooTight { .. }));
}

#[test]
fn stretch_replaces_cell_and_abuts() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
        .unwrap();
    // Driver pins are 8λ apart; gate pins 6λ apart: stretch grows
    // the gate.
    ed.connect(g, "A", d, "X").unwrap();
    ed.connect(g, "B", d, "Y").unwrap();
    let new_cell = ed.stretch(StretchOptions::default()).unwrap();
    assert_eq!(ed.library().cell(new_cell).unwrap().name, "gate'");
    assert_eq!(ed.instance(g).unwrap().cell, new_cell);
    // Both connections now coincide — no warnings.
    assert!(ed.warnings().is_empty(), "warnings: {:?}", ed.warnings());
    let a = ed.world_connector(g, "A").unwrap();
    let x = ed.world_connector(d, "X").unwrap();
    assert_eq!(a.location, x.location);
    let b = ed.world_connector(g, "B").unwrap();
    let y = ed.world_connector(d, "Y").unwrap();
    assert_eq!(b.location, y.location);
}

#[test]
fn stretch_rejects_cif_cells() {
    let mut lib = Library::new();
    let pad = lib
        .load_cif("DS 1;9 pad;L NP;B 1000 1000 500 500;94 P 0 500 NP 250;DF;E")
        .unwrap()[0];
    let driver = lib.load_sticks(DRIVER).unwrap();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let p = ed.create_instance(pad).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(p, Point::new(30 * LAMBDA, 0))
        .unwrap();
    ed.connect(p, "P", d, "X").unwrap();
    assert!(matches!(
        ed.stretch(StretchOptions::default()),
        Err(RiotError::NotStretchable(_))
    ));
}

#[test]
fn finish_promotes_boundary_connectors() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    ed.finish().unwrap();
    let cell = ed.cell();
    assert_eq!(cell.bbox, Rect::new(0, 0, 12 * LAMBDA, 20 * LAMBDA));
    // All three connectors are on the bbox.
    assert_eq!(cell.connectors.len(), 3);
    let _ = g;
}

#[test]
fn replicated_array_spacing_and_connectors() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    ed.replicate_instance(g, 1, 4).unwrap();
    let bb = ed.instance_bbox(g).unwrap();
    assert_eq!(bb.height(), 4 * 20 * LAMBDA);
    let conns = ed.world_connectors(g).unwrap();
    // 2 left pins x 4 rows + 1 right pin x 4 rows.
    assert_eq!(conns.len(), 12);
    assert!(conns.iter().any(|c| c.name == "A[0,3]"));
}

#[test]
fn delete_instance_clears_pending() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    ed.delete_instance(d).unwrap();
    assert!(ed.pending().is_empty());
    assert!(ed.instance(d).is_err());
}

#[test]
fn connect_bus_matches_by_position() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
        .unwrap();
    let added = ed.connect_bus(g, d).unwrap();
    // Names differ (A,B vs X,Y) so positional pairing applies: two
    // NP pairs; OUT (NM, right side) finds no partner.
    assert_eq!(added, 2);
    assert_eq!(ed.pending().len(), 2);
}

#[test]
fn orient_instance_rotates_in_place() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    ed.translate_instance(g, Point::new(1000, 1000)).unwrap();
    ed.orient_instance(g, Orientation::R90).unwrap();
    let inst = ed.instance(g).unwrap();
    assert_eq!(inst.transform.orient, Orientation::R90);
    assert_eq!(inst.transform.offset, Point::new(1000, 1000));
}

#[test]
fn bring_out_reaches_bbox_edge() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    // Put the driver far to the right so the composition bbox
    // extends past the gate.
    ed.translate_instance(d, Point::new(40 * LAMBDA, 0))
        .unwrap();
    let (_cell, inst) = ed.bring_out(g, &["A", "B"], Side::Left).unwrap();
    let rb = ed.instance_bbox(inst).unwrap();
    let extent = ed.current_extent().unwrap();
    assert_eq!(rb.x0, extent.x0);
    let _ = g;
}

// ---------------------------------------------------------------------
// Engine: undo/redo, rollback, events, caches
// ---------------------------------------------------------------------

#[test]
fn undo_redo_create() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    assert_eq!(ed.undo_depth(), 1);
    assert!(ed.undo().unwrap());
    assert!(ed.instance(i).is_err());
    assert_eq!(ed.redo_depth(), 1);
    assert!(ed.redo().unwrap());
    assert_eq!(ed.instance(i).unwrap().name, "I0");
    assert_eq!(ed.redo_depth(), 0);
}

#[test]
fn undo_translate_restores_transform() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    ed.translate_instance(i, Point::new(700, 300)).unwrap();
    ed.undo().unwrap();
    assert_eq!(ed.instance(i).unwrap().transform.offset, Point::ORIGIN);
    ed.redo().unwrap();
    assert_eq!(
        ed.instance(i).unwrap().transform.offset,
        Point::new(700, 300)
    );
}

#[test]
fn undo_empty_returns_false() {
    let mut lib = Library::new();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    assert!(!ed.undo().unwrap());
    assert!(!ed.redo().unwrap());
}

#[test]
fn new_command_clears_redo() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    ed.undo().unwrap();
    assert_eq!(ed.redo_depth(), 1);
    ed.translate_instance(i, Point::new(0, 100)).unwrap();
    assert_eq!(ed.redo_depth(), 0);
}

#[test]
fn undo_compound_restores_snapshot() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 7 * LAMBDA))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    let before = ed.instance(g).unwrap().transform;
    ed.abut(AbutOptions::default()).unwrap();
    assert!(ed.pending().is_empty());
    ed.undo().unwrap();
    // The abutment's move is reverted and the pending list is back.
    assert_eq!(ed.instance(g).unwrap().transform, before);
    assert_eq!(ed.pending().len(), 1);
}

#[test]
fn undo_route_removes_route_cell() {
    let (mut lib, gate, driver) = setup();
    let cells_before;
    {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(40 * LAMBDA, 3 * LAMBDA))
            .unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        cells_before = ed.library().len();
        ed.route(RouteOptions::default()).unwrap();
        assert_eq!(ed.library().len(), cells_before + 1);
        ed.undo().unwrap();
        assert_eq!(ed.library().len(), cells_before);
        assert_eq!(ed.pending().len(), 1);
        // Redo re-routes with the same generated name.
        ed.redo().unwrap();
        assert_eq!(ed.library().len(), cells_before + 1);
    }
    assert!(lib.find("route0").is_some());
}

#[test]
fn failed_compound_rolls_back() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(11 * LAMBDA, 0))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    let cells = ed.library().len();
    let transform = ed.instance(g).unwrap().transform;
    let err = ed
        .route(RouteOptions {
            move_from: false,
            ..RouteOptions::default()
        })
        .unwrap_err();
    assert!(matches!(err, RiotError::ChannelTooTight { .. }));
    // The menu, the instance, and the pending list are untouched.
    assert_eq!(ed.library().len(), cells);
    assert_eq!(ed.instance(g).unwrap().transform, transform);
    assert_eq!(ed.pending().len(), 1);
    assert_eq!(ed.stats().rollbacks, 1);
}

#[test]
fn execute_rejects_edit_mid_session() {
    let mut lib = Library::new();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    assert!(ed
        .execute(Command::Edit {
            cell: "OTHER".into()
        })
        .is_err());
}

#[test]
fn events_report_changes() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    let events = ed.drain_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, ChangeEvent::InstanceCreated { id, .. } if *id == i)));
    assert!(events
        .iter()
        .any(|e| matches!(e, ChangeEvent::InstanceChanged { id, .. } if *id == i)));
    assert!(ed.drain_events().is_empty());
}

#[test]
fn bbox_cache_hits_and_invalidates() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    let b1 = ed.instance_bbox(i).unwrap();
    let b2 = ed.instance_bbox(i).unwrap();
    assert_eq!(b1, b2);
    assert!(ed.stats().cache_hits >= 1);
    ed.translate_instance(i, Point::new(500, 0)).unwrap();
    let b3 = ed.instance_bbox(i).unwrap();
    assert_eq!(b3.lower_left(), Point::new(500, 0));
}

#[test]
fn connector_cache_shares_one_list() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    let a = ed.world_connectors_arc(i).unwrap();
    let b = ed.world_connectors_arc(i).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
    ed.orient_instance(i, Orientation::R90).unwrap();
    let c = ed.world_connectors_arc(i).unwrap();
    assert!(!Arc::ptr_eq(&a, &c));
}

#[test]
fn journal_records_undo_and_redo() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    ed.create_instance(gate).unwrap();
    ed.undo().unwrap();
    ed.redo().unwrap();
    let cmds = ed.journal().commands();
    assert!(cmds.contains(&Command::Undo));
    assert!(cmds.contains(&Command::Redo));
}

#[test]
fn stats_count_commands() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    ed.undo().unwrap();
    ed.redo().unwrap();
    let s = ed.stats();
    assert_eq!(s.applied, 3); // create + translate + redo's re-apply
    assert_eq!(s.undos, 1);
    assert_eq!(s.redos, 1);
    assert!(s.events >= 3);
}

#[test]
fn remove_and_clear_pending_are_undoable() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d = ed.create_instance(driver).unwrap();
    ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
        .unwrap();
    ed.connect(g, "A", d, "X").unwrap();
    ed.connect(g, "B", d, "Y").unwrap();
    ed.remove_pending(0);
    assert_eq!(ed.pending().len(), 1);
    ed.undo().unwrap();
    assert_eq!(ed.pending().len(), 2);
    assert_eq!(ed.pending()[0].from_connector, "A");
    ed.clear_pending();
    assert!(ed.pending().is_empty());
    ed.undo().unwrap();
    assert_eq!(ed.pending().len(), 2);
    // Out-of-range removals stay silent no-ops.
    ed.remove_pending(99);
    assert_eq!(ed.pending().len(), 2);
}

// ----------------------------------------------------------------------
// Suspend / resume (the riot-serve session-hosting primitive)
// ----------------------------------------------------------------------

#[test]
fn suspend_resume_preserves_session_state() {
    let (mut lib, gate, driver) = setup();
    let cp = {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0))
            .unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        ed.undo().unwrap();
        assert_eq!(ed.pending().len(), 0);
        ed.redo().unwrap();
        assert_eq!(ed.pending().len(), 1);
        ed.suspend()
    };
    assert_eq!(cp.pending_len(), 1);
    assert!(cp.undo_depth() >= 3);
    let journal_len = cp.journal().commands().len();
    assert!(journal_len >= 5, "journal carries the session history");

    let mut ed = Editor::resume(&mut lib, cp).unwrap();
    assert_eq!(ed.pending().len(), 1);
    assert_eq!(ed.journal().commands().len(), journal_len);
    // Undo still unwinds across the suspension boundary.
    assert!(ed.undo().unwrap());
    assert_eq!(ed.pending().len(), 0);
    assert!(ed.redo().unwrap());
    assert_eq!(ed.pending().len(), 1);
    // And the session keeps editing normally.
    let n_before = ed.instances().len();
    ed.create_instance(gate).unwrap();
    assert_eq!(ed.instances().len(), n_before + 1);
}

#[test]
fn suspend_resume_round_trip_matches_uninterrupted_session() {
    // Run the same command list straight through one editor, and
    // through an editor that suspends/resumes between every command;
    // the final observable state must be identical.
    let list = vec![
        Command::Create {
            cell: "gate".into(),
            instance: "G0".into(),
        },
        Command::Create {
            cell: "driver".into(),
            instance: "D0".into(),
        },
        Command::Translate {
            instance: "D0".into(),
            d: Point::new(-20 * LAMBDA, 0),
        },
        Command::Connect {
            from: "G0".into(),
            from_connector: "A".into(),
            to: "D0".into(),
            to_connector: "X".into(),
        },
        Command::Undo,
        Command::Redo,
    ];

    let (mut lib_a, _gate_a, _driver_a) = setup();
    let mut ed_a = Editor::open(&mut lib_a, "TOP").unwrap();
    for c in &list {
        ed_a.execute(c.clone()).unwrap();
    }
    let text_a = ed_a.journal().to_text();
    let pending_a = ed_a.pending().len();
    let undo_a = ed_a.undo_depth();

    let (mut lib_b, _gate_b, _driver_b) = setup();
    let mut cp = Editor::open(&mut lib_b, "TOP").unwrap().suspend();
    for c in &list {
        let mut ed = Editor::resume(&mut lib_b, cp).unwrap();
        ed.execute(c.clone()).unwrap();
        cp = ed.suspend();
    }
    let ed_b = Editor::resume(&mut lib_b, cp).unwrap();
    assert_eq!(ed_b.journal().to_text(), text_a);
    assert_eq!(ed_b.pending().len(), pending_a);
    assert_eq!(ed_b.undo_depth(), undo_a);
}

#[test]
fn suspend_carries_the_fault_plan() {
    let (mut lib, gate, _driver) = setup();
    let cp = {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        ed.set_fault_plan(FaultPlan::new(9, 1.0));
        let err = ed.execute(Command::Create {
            cell: "gate".into(),
            instance: "G".into(),
        });
        assert!(matches!(err, Err(RiotError::FaultInjected(_))));
        ed.suspend()
    };
    let mut ed = Editor::resume(&mut lib, cp).unwrap();
    assert_eq!(ed.fault_plan().map(|p| p.injected()), Some(1));
    let err = ed.execute(Command::Create {
        cell: "gate".into(),
        instance: "G".into(),
    });
    assert!(matches!(err, Err(RiotError::FaultInjected(_))));
    let _ = gate;
}

// ----------------------------------------------------------------------
// Damage regions
// ----------------------------------------------------------------------

#[test]
fn translate_damage_covers_old_and_new_boxes() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    let before = ed.instance_bbox(i).unwrap();
    ed.take_damage(); // acknowledge the creation
    ed.translate_instance(i, Point::new(500, 0)).unwrap();
    let after = ed.instance_bbox(i).unwrap();
    let d = ed.take_damage();
    assert!(!d.full, "a single move must not dirty the world: {d:?}");
    let bound = d.bounding_rect().unwrap();
    assert_eq!(bound, before.union(after));
    assert!(ed.take_damage().is_clean());
    assert!(ed.stats().damage_rects >= 2); // create + move
}

#[test]
fn simple_undo_damage_is_targeted() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    ed.translate_instance(i, Point::new(300, 0)).unwrap();
    let moved = ed.instance_bbox(i).unwrap();
    ed.take_damage();
    ed.undo().unwrap();
    let back = ed.instance_bbox(i).unwrap();
    let d = ed.take_damage();
    assert!(!d.full);
    assert_eq!(d.bounding_rect().unwrap(), moved.union(back));
}

#[test]
fn compound_undo_damage_diffs_the_snapshot() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let g = ed.create_instance(gate).unwrap();
    let d1 = ed.create_instance(driver).unwrap();
    ed.translate_instance(d1, Point::new(-2000, 0)).unwrap();
    ed.connect(g, "A", d1, "X").unwrap();
    let g_before = ed.instance_bbox(g).unwrap();
    let d_before = ed.instance_bbox(d1).unwrap();
    // Abut moves `g` onto `d1`; undoing it restores via the snapshot.
    ed.abut(AbutOptions::default()).unwrap();
    ed.take_damage();
    ed.undo().unwrap();
    let dmg = ed.take_damage();
    assert!(
        !dmg.full,
        "abut undo adds no cells; its snapshot restore must diff: {dmg:?}"
    );
    let bound = dmg.bounding_rect().unwrap();
    // The union of everything that moved is covered.
    assert!(bound.union(g_before.union(d_before)) == bound.union(g_before).union(d_before));
    let _ = d_before;
}

#[test]
fn rollback_with_added_cells_falls_back_to_full() {
    let (mut lib, gate, driver) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let d1 = ed.create_instance(driver).unwrap();
    let g = ed.create_instance(gate).unwrap();
    ed.translate_instance(g, Point::new(4000, 0)).unwrap();
    ed.connect(g, "A", d1, "X").unwrap();
    ed.route(RouteOptions::default()).unwrap();
    ed.take_damage();
    // Undoing the route removes the route cell from the menu — the
    // targeted diff cannot describe that, so damage degrades to full.
    ed.undo().unwrap();
    assert!(ed.take_damage().full);
}

#[test]
fn resume_starts_with_full_damage() {
    let (mut lib, gate, _) = setup();
    let cp = {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        ed.create_instance(gate).unwrap();
        ed.suspend()
    };
    let mut ed = Editor::resume(&mut lib, cp).unwrap();
    assert!(ed.take_damage().full);
}

#[test]
fn drain_coalesces_duplicate_instance_changes() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    let first = ed.instance_bbox(i).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    let last = ed.instance_bbox(i).unwrap();
    let events = ed.drain_events();
    let changes: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ChangeEvent::InstanceChanged { id, old, new } if *id == i => Some((*old, *new)),
            _ => None,
        })
        .collect();
    assert_eq!(changes.len(), 1, "three moves coalesce to one: {events:?}");
    assert_eq!(changes[0].0, Some(first));
    assert_eq!(changes[0].1, Some(last));
    assert_eq!(ed.stats().damage_coalesced, 2);
}

#[test]
fn coalescing_does_not_cross_a_delete() {
    let (mut lib, gate, _) = setup();
    let mut ed = Editor::open(&mut lib, "TOP").unwrap();
    let i = ed.create_instance(gate).unwrap();
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    ed.delete_instance(i).unwrap();
    ed.undo().unwrap(); // restores the slot
    ed.translate_instance(i, Point::new(100, 0)).unwrap();
    let events = ed.drain_events();
    let changes = events
        .iter()
        .filter(|e| matches!(e, ChangeEvent::InstanceChanged { id, .. } if *id == i))
        .count();
    assert_eq!(changes, 2, "delete/restore breaks coalescing: {events:?}");
}

#[test]
fn checkpoint_preserves_cache_counters() {
    let (mut lib, gate, _) = setup();
    let cp = {
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let i = ed.create_instance(gate).unwrap();
        let _ = ed.instance_bbox(i).unwrap(); // miss
        let _ = ed.instance_bbox(i).unwrap(); // hit
        ed.suspend()
    };
    let hits = cp.stats().cache_hits;
    let misses = cp.stats().cache_misses;
    assert!(hits >= 1 && misses >= 1);
    let ed = Editor::resume(&mut lib, cp).unwrap();
    let i = ed.find_instance("I0").unwrap();
    let _ = ed.instance_bbox(i).unwrap(); // miss in the fresh cache
    let s = ed.stats();
    assert_eq!(s.cache_hits, hits);
    assert!(s.cache_misses > misses, "resume folds, not resets");
}
