//! The graphical editing session, rebuilt on the transactional command
//! engine.
//!
//! The public methods ([`Editor::create_instance`],
//! [`Editor::translate_instance`], [`Editor::abut`], …) keep the
//! signatures the session always had, but their bodies now construct a
//! [`Command`] and hand it to [`Editor::execute`], which:
//!
//! 1. snapshots the session for compound commands
//!    ([`crate::txn`]) so a failed abut/route/stretch leaves the
//!    library untouched;
//! 2. applies the command (the bodies live in the `ops_*` submodules);
//! 3. journals the applied command for REPLAY;
//! 4. pushes the inverse onto the undo stack ([`crate::history`]);
//! 5. announces what changed on the event bus ([`crate::events`]),
//!    which incrementally invalidates the derived-geometry caches.
//!
//! The same `execute` entry point serves interactive editing, journal
//! replay, and redo — there is exactly one dispatch over commands in
//! the whole crate.

mod cache;
mod ops_abut;
mod ops_connect;
mod ops_instance;
mod ops_route;
mod ops_stretch;

use crate::cell::{Cell, CellId, Composition};
use crate::command::{Command, CommandEffect, Outcome};
use crate::connection::{PendingConnection, WorldConnector};
use crate::error::RiotError;
use crate::events::{ChangeEvent, Damage, Stats};
use crate::fault::{FaultPlan, FAULT_TXN_COMMIT};
use crate::history::{Applied, History, UndoRecord};
use crate::instance::{Instance, InstanceId};
use crate::library::Library;
use crate::replay::Journal;
use crate::txn::Snapshot;
use cache::{DamageJournal, DerivedCache};
use riot_geom::{Rect, LAMBDA};
use riot_rest::SolveMode;
use riot_route::RouterOptions;
use std::sync::Arc;

/// Events queued for [`Editor::drain_events`] are capped; when nobody
/// drains them, the oldest half is dropped to bound memory.
const MAX_QUEUED_EVENTS: usize = 16_384;

/// Options for [`Editor::abut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbutOptions {
    /// Allow the instances' bounding boxes to overlap — "frequently
    /// used to share power or ground lines in adjacent instances".
    /// Without it an overlap produces a warning.
    pub overlap: bool,
}

/// Options for [`Editor::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOptions {
    /// Move the *from* instance to abut the far side of the route cell
    /// (the default, "using the least amount of space possible").
    /// `false` routes between two instances "which are already
    /// positioned and should not move".
    pub move_from: bool,
    /// River-router tuning.
    pub router: RouterOptions,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            move_from: true,
            router: RouterOptions::new(),
        }
    }
}

/// Options for [`Editor::stretch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StretchOptions {
    /// How the REST solve treats existing separations. The default
    /// preserves them (the cell only grows); [`SolveMode::DesignRules`]
    /// lets the optimizer also pull elements closer.
    pub mode: SolveMode,
}

impl Default for StretchOptions {
    fn default() -> Self {
        StretchOptions {
            mode: SolveMode::PreserveGaps,
        }
    }
}

/// An editing session on one composition cell.
///
/// Owns the pending connection list ("shown on the screen constantly"),
/// the warning stream, the REPLAY journal, the undo/redo history, and
/// the derived-geometry caches.
#[derive(Debug)]
pub struct Editor<'a> {
    lib: &'a mut Library,
    cell: CellId,
    pending: Vec<PendingConnection>,
    warnings: Vec<String>,
    journal: Journal,
    instance_counter: usize,
    history: History,
    events: Vec<ChangeEvent>,
    cache: DerivedCache,
    damage: DamageJournal,
    stats: Stats,
    fault: Option<FaultPlan>,
}

/// A suspended editing session: everything an [`Editor`] owns besides
/// the borrowed library, captured by [`Editor::suspend`] and revived by
/// [`Editor::resume`].
///
/// A checkpoint is inert data — it can be stored in a map, moved across
/// threads, and held for as long as the owning [`Library`] lives. The
/// `riot-serve` session manager keeps one per idle session so a fixed
/// worker pool can host thousands of sessions without keeping a
/// borrow-locked editor alive for each.
#[derive(Debug)]
pub struct Checkpoint {
    /// The cell under edit. Fields are crate-visible so
    /// `crate::persist` can serialize a suspended session to bytes and
    /// rebuild it without replaying its history.
    pub(crate) cell: CellId,
    /// The pending-connection list at suspension.
    pub(crate) pending: Vec<PendingConnection>,
    /// Warnings accumulated but not yet drained.
    pub(crate) warnings: Vec<String>,
    /// Every accepted command, `edit` head first.
    pub(crate) journal: Journal,
    /// Next instance-name ordinal.
    pub(crate) instance_counter: usize,
    /// Undo/redo stacks.
    pub(crate) history: History,
    /// Cumulative engine counters.
    pub(crate) stats: Stats,
    /// Armed fault plan, if any (never serialized).
    pub(crate) fault: Option<FaultPlan>,
}

impl Checkpoint {
    /// The cell the suspended session was editing.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The suspended session's journal (every command accepted so far,
    /// including the `edit` head).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Undo-stack depth at suspension time.
    pub fn undo_depth(&self) -> usize {
        self.history.undo_len()
    }

    /// Pending-connection count at suspension time.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Engine counters at suspension time. [`Editor::suspend`] folds
    /// the live cache tallies into these before capture, so the
    /// numbers survive arbitrarily many suspend/resume cycles.
    pub fn stats(&self) -> Stats {
        self.stats
    }
}

impl<'a> Editor<'a> {
    /// Opens (or creates) the composition cell called `name` for
    /// editing.
    ///
    /// # Errors
    ///
    /// [`RiotError::NotComposition`] when `name` exists but is a leaf.
    pub fn open(lib: &'a mut Library, name: &str) -> Result<Self, RiotError> {
        // Honor `RIOT_TRACE=...` for any session, interactive or
        // replayed; cheap after the first call.
        riot_trace::init_from_env();
        let cell = match lib.find(name) {
            Some(id) => {
                if !lib.cell(id)?.is_composition() {
                    return Err(RiotError::NotComposition(name.to_owned()));
                }
                id
            }
            None => lib.add_cell(Cell::new_composition(name))?,
        };
        let instance_counter = lib
            .cell(cell)?
            .composition()
            .map(|c| c.instances.len())
            .unwrap_or(0);
        let mut journal = Journal::new();
        journal.record(Command::Edit {
            cell: name.to_owned(),
        });
        Ok(Editor {
            lib,
            cell,
            pending: Vec::new(),
            warnings: Vec::new(),
            journal,
            instance_counter,
            history: History::default(),
            events: Vec::new(),
            cache: DerivedCache::default(),
            damage: DamageJournal::default(),
            stats: Stats::default(),
            fault: None,
        })
    }

    /// Suspends this session into a library-independent [`Checkpoint`]:
    /// the pending connections, warnings, journal, undo/redo history,
    /// engine statistics, and armed fault plan are moved out wholesale,
    /// ready for a later [`Editor::resume`] against the *same* library.
    ///
    /// This is what lets a long-lived host (the `riot-serve` session
    /// manager) keep many sessions alive without a self-referential
    /// `Editor`/`Library` pair: the library is stored owned, and an
    /// editor is materialized around it only while commands are being
    /// applied.
    ///
    /// Derived-geometry caches and undrained change events are
    /// discarded — both are rebuilt lazily after resume. The suspended
    /// editor skips its [`Drop`] side effects (counter mirroring,
    /// `RIOT_TRACE` dump): suspending is a pause, not a session end.
    pub fn suspend(mut self) -> Checkpoint {
        // Fold the live cache tallies into the durable stats before
        // capture: the cache itself is discarded, but its hit/miss
        // history must survive so per-session hit rates reported by
        // long-lived hosts (riot-serve) stay cumulative.
        self.stats.cache_hits += self.cache.hits();
        self.stats.cache_misses += self.cache.misses();
        let cp = Checkpoint {
            cell: self.cell,
            pending: std::mem::take(&mut self.pending),
            warnings: std::mem::take(&mut self.warnings),
            journal: std::mem::take(&mut self.journal),
            instance_counter: self.instance_counter,
            history: std::mem::take(&mut self.history),
            stats: self.stats,
            fault: self.fault.take(),
        };
        // Drop the owned leftovers explicitly, then forget `self` so
        // the Drop impl (trace dump) does not fire mid-session. Every
        // remaining field is an empty default or a plain reference, so
        // nothing leaks.
        drop(std::mem::take(&mut self.events));
        drop(std::mem::take(&mut self.cache));
        drop(std::mem::take(&mut self.damage));
        std::mem::forget(self);
        cp
    }

    /// Resumes a session previously captured by [`Editor::suspend`].
    ///
    /// `lib` must be the library the checkpoint was suspended from (or
    /// an equivalent clone): the checkpoint addresses cells and
    /// instances by the ids it recorded.
    ///
    /// # Errors
    ///
    /// [`RiotError::NotComposition`] (or an unknown-cell error) when
    /// the checkpoint's edited cell is no longer a composition in
    /// `lib`.
    pub fn resume(lib: &'a mut Library, cp: Checkpoint) -> Result<Self, RiotError> {
        if !lib.cell(cp.cell)?.is_composition() {
            return Err(RiotError::NotComposition(lib.cell(cp.cell)?.name.clone()));
        }
        Ok(Editor {
            lib,
            cell: cp.cell,
            pending: cp.pending,
            warnings: cp.warnings,
            journal: cp.journal,
            instance_counter: cp.instance_counter,
            history: cp.history,
            events: Vec::new(),
            cache: DerivedCache::default(),
            // A resumed session has no acknowledged baseline; consumers
            // holding pre-suspend derived state must do a full pass.
            damage: {
                let mut j = DamageJournal::default();
                j.record_full();
                j
            },
            stats: cp.stats,
            fault: cp.fault,
        })
    }

    // ------------------------------------------------------------------
    // Fault injection (the correctness harness)
    // ------------------------------------------------------------------

    /// Arms a [`FaultPlan`] on this session: the named fault sites
    /// (`txn.commit`, `route.solve`, `route.grid.solve`,
    /// `stretch.solve`) consult the plan
    /// and raise [`RiotError::FaultInjected`] when it trips, taking the
    /// exact rollback path a real failure would. Used by `riot-check`.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The armed fault plan, if any (its counters tell how many faults
    /// were injected so far).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Disarms and returns the fault plan.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Consults the fault plan at `site`; raises the injected fault
    /// when it trips. A no-op without an armed plan.
    pub(crate) fn fault_trip(&mut self, site: &'static str) -> Result<(), RiotError> {
        if self
            .fault
            .as_mut()
            .map(|p| p.should_inject(site))
            .unwrap_or(false)
        {
            mark("check.fault.injected");
            return Err(RiotError::FaultInjected(site.to_owned()));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The command engine
    // ------------------------------------------------------------------

    /// Executes one command through the transactional engine: apply,
    /// journal, push history, emit change events. This is the single
    /// entry point behind every public editing method, journal replay,
    /// and redo.
    ///
    /// # Errors
    ///
    /// Whatever the command's application produces — and for compound
    /// commands (abut, route, stretch, bring-out, finish) an error
    /// guarantees the session is rolled back to its pre-command state.
    /// [`Command::Edit`] is rejected outside a journal head.
    pub fn execute(&mut self, cmd: Command) -> Result<Outcome, RiotError> {
        match cmd {
            Command::Undo => Ok(Outcome::Count(usize::from(self.undo()?))),
            Command::Redo => Ok(Outcome::Count(usize::from(self.redo()?))),
            Command::Edit { .. } => Err(RiotError::Parse {
                line: 0,
                message: "`edit` is only valid at the head of a journal".into(),
            }),
            cmd => {
                let outcome = self.apply_and_record(&cmd, None)?;
                self.history.clear_redo();
                Ok(outcome)
            }
        }
    }

    /// Applies `cmd` transactionally, journals `journal_as` (or the
    /// effect's own journal form), and pushes the undo record. Does not
    /// touch the redo stack.
    fn apply_and_record(
        &mut self,
        cmd: &Command,
        journal_as: Option<Command>,
    ) -> Result<Outcome, RiotError> {
        let mut sp = riot_trace::span(cmd.span_name());
        let t0 = std::time::Instant::now();
        let snap = cmd.is_compound().then(|| {
            let _sp = riot_trace::span("txn.snapshot");
            self.snapshot()
        });
        match cmd.apply(self) {
            Ok(effect) => {
                let CommandEffect {
                    outcome,
                    undo,
                    journal,
                } = effect;
                // The txn-commit fault site: the command applied, but
                // the commit "fails" before it is journaled. Revert
                // through the same machinery a real failure would use —
                // snapshot restore for compound commands, the inverse
                // record for simple ones.
                if let Err(e) = self.fault_trip(FAULT_TXN_COMMIT) {
                    sp.field("rollback", 1);
                    match snap {
                        Some(snap) => {
                            let _sp = riot_trace::span("txn.restore");
                            self.restore_snapshot(snap);
                        }
                        None => {
                            self.revert(undo.expect("simple commands carry an undo record"));
                        }
                    }
                    self.stats.rollbacks += 1;
                    mark("core.cmd.rollbacks");
                    self.stats.apply_nanos += t0.elapsed().as_nanos() as u64;
                    return Err(e);
                }
                let undo = match undo {
                    Some(u) => u,
                    None => UndoRecord::Snapshot(Box::new(
                        snap.expect("compound commands take a snapshot"),
                    )),
                };
                self.history.push_applied(Applied {
                    command: journal.clone(),
                    undo,
                });
                self.journal.record(journal_as.unwrap_or(journal));
                self.stats.applied += 1;
                self.stats.apply_nanos += t0.elapsed().as_nanos() as u64;
                mark("core.cmd.applied");
                Ok(outcome)
            }
            Err(e) => {
                sp.field("rollback", 1);
                if let Some(snap) = snap {
                    let _sp = riot_trace::span("txn.restore");
                    self.restore_snapshot(snap);
                    self.stats.rollbacks += 1;
                    mark("core.cmd.rollbacks");
                }
                // Failed applications cost real time too; accrue it so
                // `Stats::apply_nanos` reflects every trip through the
                // engine, not just the happy path.
                self.stats.apply_nanos += t0.elapsed().as_nanos() as u64;
                Err(e)
            }
        }
    }

    /// UNDO: reverts the most recent applied command. Returns `false`
    /// when there is nothing to undo. The undo itself is journaled, so
    /// a replayed journal reproduces the exact same final state.
    ///
    /// # Errors
    ///
    /// None today; the `Result` keeps the signature uniform with the
    /// other commands.
    pub fn undo(&mut self) -> Result<bool, RiotError> {
        let Some(applied) = self.history.pop_undo() else {
            return Ok(false);
        };
        let _sp = riot_trace::span("cmd.undo");
        self.revert(applied.undo);
        self.history.push_redo(applied.command);
        self.journal.record(Command::Undo);
        self.stats.undos += 1;
        mark("core.cmd.undos");
        Ok(true)
    }

    /// REDO: re-executes the most recently undone command. Returns
    /// `false` when there is nothing to redo.
    ///
    /// # Errors
    ///
    /// The re-applied command's errors (none in practice, since the
    /// session is in the exact state the command first succeeded in).
    pub fn redo(&mut self) -> Result<bool, RiotError> {
        let Some(cmd) = self.history.pop_redo() else {
            return Ok(false);
        };
        let _sp = riot_trace::span("cmd.redo");
        match self.apply_and_record(&cmd, Some(Command::Redo)) {
            Ok(_) => {
                self.stats.redos += 1;
                mark("core.cmd.redos");
                Ok(true)
            }
            Err(e) => {
                self.history.push_redo(cmd);
                Err(e)
            }
        }
    }

    /// Reverts one undo record. Infallible by construction: the LIFO
    /// undo stack guarantees the session looks exactly as it did right
    /// after the record's command applied.
    fn revert(&mut self, record: UndoRecord) {
        match record {
            UndoRecord::PopInstance => {
                let id = InstanceId(self.comp().instances.len().saturating_sub(1));
                let old = self.world_bbox_now(id);
                self.comp_mut().instances.pop();
                self.emit(ChangeEvent::InstanceDeleted { id, old });
            }
            UndoRecord::Transform { id, prev } => {
                let old = self.world_bbox_now(id);
                if let Ok(inst) = self.instance_mut(id) {
                    inst.transform = prev;
                }
                let new = self.world_bbox_now(id);
                self.emit(ChangeEvent::InstanceChanged { id, old, new });
            }
            UndoRecord::Replicate { id, cols, rows } => {
                let old = self.world_bbox_now(id);
                if let Ok(inst) = self.instance_mut(id) {
                    inst.cols = cols;
                    inst.rows = rows;
                }
                let new = self.world_bbox_now(id);
                self.emit(ChangeEvent::InstanceChanged { id, old, new });
            }
            UndoRecord::Spacing { id, col, row } => {
                let old = self.world_bbox_now(id);
                if let Ok(inst) = self.instance_mut(id) {
                    inst.col_spacing = col;
                    inst.row_spacing = row;
                }
                let new = self.world_bbox_now(id);
                self.emit(ChangeEvent::InstanceChanged { id, old, new });
            }
            UndoRecord::RestoreInstance {
                id,
                instance,
                pending,
            } => {
                self.comp_mut().instances[id.0] = Some(*instance);
                self.pending = pending;
                let at = self.world_bbox_now(id);
                self.emit(ChangeEvent::InstanceCreated { id, at });
                self.emit(ChangeEvent::PendingChanged);
            }
            UndoRecord::PopPending => {
                self.pending.pop();
                self.emit(ChangeEvent::PendingChanged);
            }
            UndoRecord::InsertPending { index, conn } => {
                let at = index.min(self.pending.len());
                self.pending.insert(at, conn);
                self.emit(ChangeEvent::PendingChanged);
            }
            UndoRecord::RestorePending(pending) => {
                self.pending = pending;
                self.emit(ChangeEvent::PendingChanged);
            }
            UndoRecord::Snapshot(snap) => self.restore_snapshot(*snap),
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self.lib, self.cell, &self.pending)
    }

    fn restore_snapshot(&mut self, snap: Snapshot) {
        // Capture per-slot state around the restore so a rollback or
        // compound undo dirties only the regions that actually moved.
        // Two escape hatches keep this conservative: if the edit cell
        // itself was rewritten (a failed finish) or the menu gained or
        // lost cells (route/stretch cells whose `CellAdded` events are
        // already queued), the targeted diff cannot describe the
        // change and `BulkRestore` remains the fallback.
        let cells_before = self.lib.len();
        let cell_before = {
            let c = self.cell();
            (c.bbox, c.connectors.clone())
        };
        let pending_before = self.pending.clone();
        let before = self.slot_states();
        snap.restore(self.lib, self.cell, &mut self.pending);
        let cell_after = {
            let c = self.cell();
            (c.bbox, c.connectors.clone())
        };
        if self.lib.len() != cells_before || cell_after != cell_before {
            self.emit(ChangeEvent::BulkRestore);
            return;
        }
        let after = self.slot_states();
        for i in 0..before.len().max(after.len()) {
            let id = InstanceId(i);
            let b = before.get(i).cloned().flatten();
            let a = after.get(i).cloned().flatten();
            match (b, a) {
                (None, None) => {}
                (Some((old, _)), None) => self.emit(ChangeEvent::InstanceDeleted { id, old }),
                (None, Some((at, _))) => self.emit(ChangeEvent::InstanceCreated { id, at }),
                (Some((old, bi)), Some((new, ai))) => {
                    // Compare the whole instance, not just its box: a
                    // same-box cell swap still changes what the region
                    // contains.
                    if bi != ai {
                        self.emit(ChangeEvent::InstanceChanged { id, old, new });
                    }
                }
            }
        }
        if pending_before != self.pending {
            self.emit(ChangeEvent::PendingChanged);
        }
    }

    /// World bbox of a slot computed directly from the library,
    /// bypassing the derived cache (which is stale between a mutation
    /// and its event). `None` for tombstones and unknown cells.
    fn world_bbox_now(&self, id: InstanceId) -> Option<Rect> {
        let inst = self.comp().instances.get(id.0)?.as_ref()?;
        let cell = self.lib.cell(inst.cell).ok()?;
        Some(inst.world_bbox(cell))
    }

    /// Every slot's `(world bbox, instance)` pair, for diffing around
    /// a snapshot restore. Tombstoned slots are `None`.
    fn slot_states(&self) -> Vec<Option<(Option<Rect>, Instance)>> {
        self.comp()
            .instances
            .iter()
            .map(|s| {
                s.as_ref().map(|inst| {
                    let bb = self.lib.cell(inst.cell).ok().map(|c| inst.world_bbox(c));
                    (bb, inst.clone())
                })
            })
            .collect()
    }

    /// Announces a change: bumps counters, invalidates the affected
    /// caches, and queues the event for [`Editor::drain_events`].
    pub(crate) fn emit(&mut self, event: ChangeEvent) {
        self.stats.events += 1;
        mark("core.events");
        self.cache.invalidate(&event);
        let recorded = self.damage.recorded();
        self.damage.record(&event);
        if self.damage.recorded() > recorded {
            self.stats.damage_rects += 1;
            mark("damage.rects");
        }
        if self.events.len() >= MAX_QUEUED_EVENTS {
            let drop = self.events.len() / 2;
            self.events.drain(..drop);
        }
        self.events.push(event);
    }

    /// Takes every change event queued since the last drain, with
    /// duplicate per-instance change events coalesced: a compound
    /// command that moves one instance several times yields a single
    /// [`ChangeEvent::InstanceChanged`] spanning the first `old` box
    /// and the last `new` box, so a UI redraws once instead of N
    /// times. Coalescing never crosses a create/delete of the same
    /// slot (the intervening event changes what the id denotes).
    pub fn drain_events(&mut self) -> Vec<ChangeEvent> {
        let events = std::mem::take(&mut self.events);
        let mut out: Vec<ChangeEvent> = Vec::with_capacity(events.len());
        let mut changed_at: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut coalesced = 0u64;
        for ev in events {
            match ev {
                ChangeEvent::InstanceChanged { id, new, .. } => {
                    if let Some(&slot) = changed_at.get(&id.0) {
                        if let ChangeEvent::InstanceChanged {
                            new: merged_new, ..
                        } = &mut out[slot]
                        {
                            *merged_new = new;
                            coalesced += 1;
                            continue;
                        }
                    }
                    changed_at.insert(id.0, out.len());
                    out.push(ev);
                }
                _ => {
                    if let Some(id) = ev.instance_id() {
                        changed_at.remove(&id.0);
                    }
                    out.push(ev);
                }
            }
        }
        if coalesced > 0 {
            self.stats.damage_coalesced += coalesced;
            if riot_trace::enabled() {
                riot_trace::registry()
                    .counter("damage.coalesced")
                    .add(coalesced);
            }
        }
        out
    }

    /// Acknowledges the world-space damage accumulated since the last
    /// call (or since the session was opened/resumed). The returned
    /// [`Damage`] covers every world coordinate that changed in that
    /// span — the contract incremental DRC, flatten and render rely
    /// on. Resumed sessions start with `full` damage: the consumer's
    /// pre-suspend derived state has no valid baseline.
    pub fn take_damage(&mut self) -> Damage {
        self.damage.take()
    }

    /// Whether no damage has accumulated since the last
    /// [`Editor::take_damage`].
    pub fn damage_is_clean(&self) -> bool {
        self.damage.is_clean()
    }

    /// Engine counters: commands applied, undos, rollbacks, cache
    /// behavior. Cache tallies are the checkpointed totals (folded in
    /// by [`Editor::suspend`]) plus the live cache's counts.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.cache_hits += self.cache.hits();
        s.cache_misses += self.cache.misses();
        s
    }

    /// Number of commands the undo stack can revert.
    pub fn undo_depth(&self) -> usize {
        self.history.undo_len()
    }

    /// Number of undone commands the redo stack can re-apply.
    pub fn redo_depth(&self) -> usize {
        self.history.redo_len()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The id of the cell under edit.
    pub fn cell_id(&self) -> CellId {
        self.cell
    }

    /// The cell under edit.
    pub fn cell(&self) -> &Cell {
        self.lib.cell(self.cell).expect("edit cell exists")
    }

    /// The library (cell menu) behind this session.
    pub fn library(&self) -> &Library {
        self.lib
    }

    /// The journal of commands issued so far.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Warnings produced so far (abutment mismatches, off-grid rounding…).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Drains the warning list.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    /// The pending connection list.
    pub fn pending(&self) -> &[PendingConnection] {
        &self.pending
    }

    pub(crate) fn comp(&self) -> &Composition {
        self.cell().composition().expect("edit cell is composition")
    }

    pub(crate) fn comp_mut(&mut self) -> &mut Composition {
        self.lib
            .cell_mut(self.cell)
            .expect("edit cell exists")
            .composition_mut()
            .expect("edit cell is composition")
    }

    /// Iterates over the live instances.
    pub fn instances(&self) -> Vec<(InstanceId, Instance)> {
        self.comp()
            .instances()
            .map(|(id, i)| (id, i.clone()))
            .collect()
    }

    /// Looks an instance up by id.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] for stale ids.
    pub fn instance(&self, id: InstanceId) -> Result<&Instance, RiotError> {
        self.comp()
            .instances
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(RiotError::BadInstance(id.0))
    }

    fn instance_mut(&mut self, id: InstanceId) -> Result<&mut Instance, RiotError> {
        self.comp_mut()
            .instances
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(RiotError::BadInstance(id.0))
    }

    /// Finds an instance by name.
    pub fn find_instance(&self, name: &str) -> Option<InstanceId> {
        self.comp()
            .instances()
            .find(|(_, i)| i.name == name)
            .map(|(id, _)| id)
    }

    /// Resolves an instance name or reports it unknown (replay's error).
    pub(crate) fn require_instance(&self, name: &str) -> Result<InstanceId, RiotError> {
        self.find_instance(name)
            .ok_or_else(|| RiotError::UnknownInstance(name.to_owned()))
    }

    /// The defining cell of an instance.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn instance_cell(&self, id: InstanceId) -> Result<&Cell, RiotError> {
        let cell = self.instance(id)?.cell;
        self.lib.cell(cell)
    }

    // ------------------------------------------------------------------
    // Derived geometry (cached)
    // ------------------------------------------------------------------

    /// World bounding box of an instance, cached until an event
    /// invalidates it.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn instance_bbox(&self, id: InstanceId) -> Result<Rect, RiotError> {
        if let Some(bb) = self.cache.bbox(id) {
            return Ok(bb);
        }
        let bb = self.instance(id)?.world_bbox(self.instance_cell(id)?);
        self.cache.store_bbox(id, bb);
        Ok(bb)
    }

    /// All world connectors of an instance, cached and shared: repeated
    /// calls between changes cost one `Arc` clone instead of a rebuild
    /// over every array element.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn world_connectors_arc(
        &self,
        id: InstanceId,
    ) -> Result<Arc<Vec<WorldConnector>>, RiotError> {
        if let Some(list) = self.cache.connectors(id) {
            return Ok(list);
        }
        let list = Arc::new(self.instance(id)?.world_connectors(self.instance_cell(id)?));
        self.cache.store_connectors(id, Arc::clone(&list));
        Ok(list)
    }

    /// All world connectors of an instance, as an owned list.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn world_connectors(&self, id: InstanceId) -> Result<Vec<WorldConnector>, RiotError> {
        Ok(self.world_connectors_arc(id)?.as_ref().clone())
    }

    /// One world connector by name.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] / [`RiotError::UnknownConnector`].
    pub fn world_connector(&self, id: InstanceId, name: &str) -> Result<WorldConnector, RiotError> {
        let list = self.world_connectors_arc(id)?;
        list.iter()
            .find(|c| c.name == name)
            .cloned()
            .ok_or_else(|| RiotError::UnknownConnector {
                instance: self
                    .instance(id)
                    .map(|i| i.name.clone())
                    .unwrap_or_default(),
                connector: name.to_owned(),
            })
    }

    /// Union of the live instances' world bounding boxes, cached until
    /// an instance event invalidates it.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] (never for a consistent cell).
    pub fn current_extent(&self) -> Result<Rect, RiotError> {
        if let Some(r) = self.cache.extent() {
            return Ok(r);
        }
        let mut bb: Option<Rect> = None;
        for (id, _) in self.comp().instances() {
            let b = self.instance_bbox(id)?;
            bb = Some(match bb {
                Some(acc) => acc.union(b),
                None => b,
            });
        }
        let r = bb.unwrap_or(Rect::new(0, 0, 0, 0));
        self.cache.store_extent(r);
        Ok(r)
    }

    // ------------------------------------------------------------------
    // FINISH
    // ------------------------------------------------------------------

    /// Finishes the cell: sets its bounding box to the union of its
    /// instances and promotes every instance connector lying exactly on
    /// that box to a connector of the composition cell.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] (never for a consistent cell).
    pub fn finish(&mut self) -> Result<usize, RiotError> {
        match self.execute(Command::Finish)? {
            Outcome::Count(n) => Ok(n),
            _ => unreachable!("finish reports a connector count"),
        }
    }

    pub(crate) fn apply_finish(&mut self) -> Result<CommandEffect, RiotError> {
        let bbox = self.current_extent()?;
        let mut connectors: Vec<crate::cell::Connector> = Vec::new();
        let mut used = std::collections::HashSet::new();
        for (id, _) in self.comp().instances().collect::<Vec<_>>() {
            for wc in self.world_connectors_arc(id)?.iter() {
                if bbox.side_of(wc.location).is_some() {
                    let mut name = wc.name.clone();
                    while !used.insert(name.clone()) {
                        name.push('\'');
                    }
                    connectors.push(crate::cell::Connector {
                        name,
                        location: wc.location,
                        layer: wc.layer,
                        width: wc.width,
                    });
                }
            }
        }
        let count = connectors.len();
        let cell = self.lib.cell_mut(self.cell)?;
        cell.bbox = bbox;
        cell.connectors = connectors;
        self.emit(ChangeEvent::CellFinished);
        Ok(CommandEffect {
            outcome: Outcome::Count(count),
            undo: None,
            journal: Command::Finish,
        })
    }

    pub(crate) fn snap_lambda(&mut self, cm: i64) -> Result<i64, RiotError> {
        if cm % LAMBDA != 0 {
            self.warnings.push(format!(
                "coordinate {cm} is off the lambda grid; rounding to {}",
                (cm + LAMBDA / 2).div_euclid(LAMBDA) * LAMBDA
            ));
        }
        Ok((cm + LAMBDA / 2).div_euclid(LAMBDA))
    }
}

impl Drop for Editor<'_> {
    /// Mirrors the session's exact per-editor counters into the global
    /// metrics registry (when tracing is enabled) and honors the
    /// `RIOT_TRACE` environment sink, so
    /// `RIOT_TRACE=chrome:/tmp/t.json cargo run --example quickstart`
    /// produces a trace with no code changes.
    fn drop(&mut self) {
        if riot_trace::enabled() {
            let s = self.stats();
            let reg = riot_trace::registry();
            reg.gauge("core.cache.hits").set(s.cache_hits as i64);
            reg.gauge("core.cache.misses").set(s.cache_misses as i64);
            reg.gauge("core.apply_nanos").set(s.apply_nanos as i64);
            // Flush the fault-plan tallies so a traced harness run's
            // summary shows how many faults actually fired.
            if let Some(plan) = &self.fault {
                reg.counter("check.fault.injected").add(plan.injected());
                reg.counter("check.fault.consulted").add(plan.consulted());
            }
        }
        riot_trace::dump_from_env();
    }
}

/// Mirrors one engine counter into the global metrics registry. Gated
/// on [`riot_trace::enabled`] so untraced sessions pay one relaxed
/// atomic load; the per-session [`Stats`] stay exact either way.
fn mark(name: &'static str) {
    if riot_trace::enabled() {
        riot_trace::registry().counter(name).inc();
    }
}

/// Strips an array suffix (`name[c,r]` → `name`).
pub(crate) fn base_name(name: &str) -> &str {
    name.split('[').next().unwrap_or(name)
}

#[cfg(test)]
mod tests;
