//! The ABUT connection command and connector-less edge abutment.
//!
//! Both are compound commands: the engine snapshots the session before
//! applying, so any failure rolls the library and pending list back.

use super::{AbutOptions, Editor};
use crate::command::{Command, CommandEffect, Outcome};
use crate::connection::WorldConnector;
use crate::error::RiotError;
use crate::events::ChangeEvent;
use crate::instance::InstanceId;
use riot_geom::{Point, Side};

impl Editor<'_> {
    /// The ABUT command over the pending connection list: translates
    /// the *from* instance so the first connection's connectors
    /// coincide, then verifies the rest ("if the connections cannot be
    /// made by the abutment, a warning message is produced"). Clears
    /// the pending list.
    ///
    /// # Errors
    ///
    /// [`RiotError::NothingPending`] and lookup errors.
    pub fn abut(&mut self, options: AbutOptions) -> Result<(), RiotError> {
        self.execute(Command::Abut {
            overlap: options.overlap,
        })?;
        Ok(())
    }

    pub(crate) fn apply_abut(&mut self, overlap: bool) -> Result<CommandEffect, RiotError> {
        let (from, pairs) = self.resolve_pending()?;
        let d = pairs[0].1.location - pairs[0].0.location;
        let to_ids: Vec<InstanceId> = self.pending.iter().map(|p| p.to).collect();
        self.apply_translation_and_verify(from, d, &pairs)?;
        if !overlap {
            let fb = self.instance_bbox(from)?;
            for to in to_ids {
                let tb = self.instance_bbox(to)?;
                if fb.overlaps(tb) {
                    self.warnings.push(format!(
                        "abutment overlaps instance `{}` (use the overlap option to share connectors)",
                        self.instance(to)?.name
                    ));
                }
            }
        }
        self.pending.clear();
        self.emit(ChangeEvent::PendingChanged);
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: None,
            journal: Command::Abut { overlap },
        })
    }

    /// Abutment without connectors ("used primarily if there are no
    /// connectors to guide the connection"): matches the bottom or left
    /// edge depending on the instances' relative positions.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn abut_instances(&mut self, from: InstanceId, to: InstanceId) -> Result<(), RiotError> {
        let from_name = self.instance(from)?.name.clone();
        let to_name = self.instance(to)?.name.clone();
        self.execute(Command::AbutInstances {
            from: from_name,
            to: to_name,
        })?;
        Ok(())
    }

    pub(crate) fn apply_abut_instances(
        &mut self,
        from: &str,
        to: &str,
    ) -> Result<CommandEffect, RiotError> {
        let from_id = self.require_instance(from)?;
        let to_id = self.require_instance(to)?;
        let fb = self.instance_bbox(from_id)?;
        let tb = self.instance_bbox(to_id)?;
        let facing = self
            .facing_sides(from_id, to_id)?
            .unwrap_or((Side::Left, Side::Right));
        let d = match facing.0 {
            // from sits to the right: its left edge meets to's right
            // edge, bottoms align.
            Side::Left => Point::new(tb.x1 - fb.x0, tb.y0 - fb.y0),
            Side::Right => Point::new(tb.x0 - fb.x1, tb.y0 - fb.y0),
            Side::Bottom => Point::new(tb.x0 - fb.x0, tb.y1 - fb.y0),
            Side::Top => Point::new(tb.x0 - fb.x0, tb.y0 - fb.y1),
        };
        let old = self.world_bbox_now(from_id);
        {
            let inst = self.instance_mut(from_id)?;
            inst.transform = inst.transform.translated(d);
        }
        let new = self.world_bbox_now(from_id);
        self.emit(ChangeEvent::InstanceChanged {
            id: from_id,
            old,
            new,
        });
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: None,
            journal: Command::AbutInstances {
                from: from.to_owned(),
                to: to.to_owned(),
            },
        })
    }

    /// Translates `from` by `d` and warns about any pending pair the
    /// translation fails to satisfy.
    pub(crate) fn apply_translation_and_verify(
        &mut self,
        from: InstanceId,
        d: Point,
        pairs: &[(WorldConnector, WorldConnector)],
    ) -> Result<(), RiotError> {
        let old = self.world_bbox_now(from);
        {
            let inst = self.instance_mut(from)?;
            inst.transform = inst.transform.translated(d);
        }
        let new = self.world_bbox_now(from);
        self.emit(ChangeEvent::InstanceChanged { id: from, old, new });
        for (fc, tc) in pairs {
            if fc.location + d != tc.location {
                self.warnings.push(format!(
                    "connection {}.{} -> {}.{} cannot be made by this abutment (off by {})",
                    fc.instance_name,
                    fc.name,
                    tc.instance_name,
                    tc.name,
                    tc.location - (fc.location + d)
                ));
            }
        }
        Ok(())
    }
}
