//! Event-invalidated caches of derived geometry.
//!
//! World bounding boxes, world connector lists, and the composition
//! extent are pure functions of an instance and its defining cell, but
//! recomputing them per call is expensive — connector lists in
//! particular walk every array element and format suffixed names. The
//! cache stores them per instance slot behind interior mutability so
//! the `&self` accessors on [`super::Editor`] stay `&self`, and the
//! change-event bus invalidates exactly the slots an event touches.

use crate::connection::WorldConnector;
use crate::events::{ChangeEvent, Damage};
use crate::instance::InstanceId;
use riot_geom::Rect;
use std::cell::{Cell as Counter, RefCell};
use std::sync::Arc;

/// Cap on distinct rects a [`DamageJournal`] retains before it starts
/// union-merging new damage into the last slot. Keeps the journal (and
/// every consumer walking it) O(1) per transaction regardless of how
/// many mutations a compound command performs.
const MAX_DAMAGE_RECTS: usize = 64;

/// Accumulates the world-space dirty regions implied by the change
/// events of one or more transactions, until a consumer acknowledges
/// them with [`DamageJournal::take`].
///
/// This replaces boolean staleness: instead of "something changed,
/// recompute the chip", downstream consumers (incremental DRC, the
/// flatten cache, dirty-band render) receive the actual changed
/// regions and recompute O(damage). Events whose geometry is unknown
/// degrade to `full` — correctness never depends on a rect being
/// available.
#[derive(Debug, Default)]
pub(crate) struct DamageJournal {
    rects: Vec<Rect>,
    full: bool,
    /// Rects recorded since the journal was created (not reset by
    /// `take`) — mirrored into `Stats::damage_rects`.
    recorded: u64,
}

impl DamageJournal {
    /// Folds one event's damage into the journal.
    pub(crate) fn record(&mut self, event: &ChangeEvent) {
        if event.invalidates_everything() {
            self.full = true;
            return;
        }
        let Some(rect) = event.dirty_rect() else {
            return;
        };
        self.recorded += 1;
        if self.full {
            return; // already maximal; individual rects add nothing
        }
        if self.rects.len() < MAX_DAMAGE_RECTS {
            self.rects.push(rect);
        } else {
            let last = self.rects.last_mut().expect("cap > 0");
            *last = last.union(rect);
        }
    }

    /// Marks everything dirty (rollback fallback, cell finish).
    pub(crate) fn record_full(&mut self) {
        self.full = true;
    }

    /// Hands the accumulated damage to a consumer and resets.
    pub(crate) fn take(&mut self) -> Damage {
        let full = std::mem::take(&mut self.full);
        let mut rects = std::mem::take(&mut self.rects);
        if full {
            rects.clear();
        }
        Damage { full, rects }
    }

    /// Total dirty rects recorded over the journal's lifetime.
    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether nothing has been recorded since the last `take`.
    pub(crate) fn is_clean(&self) -> bool {
        !self.full && self.rects.is_empty()
    }
}

/// Per-slot caches of derived geometry, plus hit/miss counters.
#[derive(Debug, Default)]
pub(crate) struct DerivedCache {
    /// World bounding box per instance slot.
    bbox: RefCell<Vec<Option<Rect>>>,
    /// World connector list per instance slot, shared so repeated
    /// lookups cost one `Arc` clone.
    connectors: RefCell<Vec<Option<Arc<Vec<WorldConnector>>>>>,
    /// Union of the live instances' world boxes.
    extent: RefCell<Option<Rect>>,
    hits: Counter<u64>,
    misses: Counter<u64>,
}

impl DerivedCache {
    fn tally(&self, hit: bool) {
        let counter = if hit { &self.hits } else { &self.misses };
        counter.set(counter.get() + 1);
    }

    /// Cached world bbox for a slot, if still valid.
    pub(crate) fn bbox(&self, id: InstanceId) -> Option<Rect> {
        let got = self.bbox.borrow().get(id.index()).copied().flatten();
        self.tally(got.is_some());
        got
    }

    /// Stores a freshly computed world bbox.
    pub(crate) fn store_bbox(&self, id: InstanceId, rect: Rect) {
        let mut v = self.bbox.borrow_mut();
        if v.len() <= id.index() {
            v.resize(id.index() + 1, None);
        }
        v[id.index()] = Some(rect);
    }

    /// Cached world connector list for a slot, if still valid.
    pub(crate) fn connectors(&self, id: InstanceId) -> Option<Arc<Vec<WorldConnector>>> {
        let got = self
            .connectors
            .borrow()
            .get(id.index())
            .and_then(|s| s.as_ref().map(Arc::clone));
        self.tally(got.is_some());
        got
    }

    /// Stores a freshly computed world connector list.
    pub(crate) fn store_connectors(&self, id: InstanceId, list: Arc<Vec<WorldConnector>>) {
        let mut v = self.connectors.borrow_mut();
        if v.len() <= id.index() {
            v.resize(id.index() + 1, None);
        }
        v[id.index()] = Some(list);
    }

    /// Cached composition extent, if still valid.
    pub(crate) fn extent(&self) -> Option<Rect> {
        let got = *self.extent.borrow();
        self.tally(got.is_some());
        got
    }

    /// Stores a freshly computed composition extent.
    pub(crate) fn store_extent(&self, rect: Rect) {
        *self.extent.borrow_mut() = Some(rect);
    }

    /// Applies the invalidation an event demands.
    pub(crate) fn invalidate(&self, event: &ChangeEvent) {
        match event {
            ChangeEvent::InstanceCreated { id, .. }
            | ChangeEvent::InstanceChanged { id, .. }
            | ChangeEvent::InstanceDeleted { id, .. } => {
                self.clear_slot(*id);
                *self.extent.borrow_mut() = None;
            }
            ChangeEvent::PendingChanged | ChangeEvent::CellAdded(_) => {}
            // Finishing rewrites the edit cell's bbox and connectors;
            // an instance of the edit cell inside itself (legal, if
            // odd) would otherwise go stale — clear everything.
            ChangeEvent::CellFinished | ChangeEvent::BulkRestore => self.clear(),
        }
    }

    fn clear_slot(&self, id: InstanceId) {
        if let Some(slot) = self.bbox.borrow_mut().get_mut(id.index()) {
            *slot = None;
        }
        if let Some(slot) = self.connectors.borrow_mut().get_mut(id.index()) {
            *slot = None;
        }
    }

    /// Drops every cached value.
    pub(crate) fn clear(&self) {
        self.bbox.borrow_mut().clear();
        self.connectors.borrow_mut().clear();
        *self.extent.borrow_mut() = None;
    }

    /// Cumulative cache hits.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cumulative cache misses.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_invalidation_is_targeted() {
        let c = DerivedCache::default();
        c.store_bbox(InstanceId(0), Rect::new(0, 0, 1, 1));
        c.store_bbox(InstanceId(1), Rect::new(0, 0, 2, 2));
        c.store_extent(Rect::new(0, 0, 2, 2));
        c.invalidate(&ChangeEvent::InstanceChanged {
            id: InstanceId(0),
            old: Some(Rect::new(0, 0, 1, 1)),
            new: Some(Rect::new(0, 0, 1, 1)),
        });
        assert_eq!(c.bbox(InstanceId(0)), None);
        assert_eq!(c.bbox(InstanceId(1)), Some(Rect::new(0, 0, 2, 2)));
        assert_eq!(c.extent(), None);
    }

    #[test]
    fn bulk_restore_clears_all() {
        let c = DerivedCache::default();
        c.store_bbox(InstanceId(3), Rect::new(0, 0, 1, 1));
        c.invalidate(&ChangeEvent::BulkRestore);
        assert_eq!(c.bbox(InstanceId(3)), None);
    }

    #[test]
    fn counters_track_lookups() {
        let c = DerivedCache::default();
        assert_eq!(c.bbox(InstanceId(0)), None); // miss
        c.store_bbox(InstanceId(0), Rect::new(0, 0, 1, 1));
        assert!(c.bbox(InstanceId(0)).is_some()); // hit
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn journal_accumulates_and_takes() {
        let mut j = DamageJournal::default();
        assert!(j.is_clean());
        j.record(&ChangeEvent::InstanceCreated {
            id: InstanceId(0),
            at: Some(Rect::new(0, 0, 5, 5)),
        });
        j.record(&ChangeEvent::InstanceChanged {
            id: InstanceId(0),
            old: Some(Rect::new(0, 0, 5, 5)),
            new: Some(Rect::new(10, 0, 15, 5)),
        });
        assert_eq!(j.recorded(), 2);
        let d = j.take();
        assert!(!d.full);
        assert_eq!(d.rects, vec![Rect::new(0, 0, 5, 5), Rect::new(0, 0, 15, 5)]);
        assert!(j.take().is_clean());
    }

    #[test]
    fn journal_degrades_to_full() {
        let mut j = DamageJournal::default();
        j.record(&ChangeEvent::InstanceDeleted {
            id: InstanceId(0),
            old: None, // unknown geometry: must not silently drop damage
        });
        let d = j.take();
        assert!(d.full);
        assert!(d.rects.is_empty());
    }

    #[test]
    fn journal_overflow_merges_into_last_slot() {
        let mut j = DamageJournal::default();
        for i in 0..(MAX_DAMAGE_RECTS as i64 + 10) {
            j.record(&ChangeEvent::InstanceCreated {
                id: InstanceId(0),
                at: Some(Rect::new(i, 0, i + 1, 1)),
            });
        }
        let d = j.take();
        assert_eq!(d.rects.len(), MAX_DAMAGE_RECTS);
        // The overflow rects were unioned into the final slot.
        let bound = d.bounding_rect().unwrap();
        assert_eq!(bound, Rect::new(0, 0, MAX_DAMAGE_RECTS as i64 + 10, 1));
    }
}
