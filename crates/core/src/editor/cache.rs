//! Event-invalidated caches of derived geometry.
//!
//! World bounding boxes, world connector lists, and the composition
//! extent are pure functions of an instance and its defining cell, but
//! recomputing them per call is expensive — connector lists in
//! particular walk every array element and format suffixed names. The
//! cache stores them per instance slot behind interior mutability so
//! the `&self` accessors on [`super::Editor`] stay `&self`, and the
//! change-event bus invalidates exactly the slots an event touches.

use crate::connection::WorldConnector;
use crate::events::ChangeEvent;
use crate::instance::InstanceId;
use riot_geom::Rect;
use std::cell::{Cell as Counter, RefCell};
use std::sync::Arc;

/// Per-slot caches of derived geometry, plus hit/miss counters.
#[derive(Debug, Default)]
pub(crate) struct DerivedCache {
    /// World bounding box per instance slot.
    bbox: RefCell<Vec<Option<Rect>>>,
    /// World connector list per instance slot, shared so repeated
    /// lookups cost one `Arc` clone.
    connectors: RefCell<Vec<Option<Arc<Vec<WorldConnector>>>>>,
    /// Union of the live instances' world boxes.
    extent: RefCell<Option<Rect>>,
    hits: Counter<u64>,
    misses: Counter<u64>,
}

impl DerivedCache {
    fn tally(&self, hit: bool) {
        let counter = if hit { &self.hits } else { &self.misses };
        counter.set(counter.get() + 1);
    }

    /// Cached world bbox for a slot, if still valid.
    pub(crate) fn bbox(&self, id: InstanceId) -> Option<Rect> {
        let got = self.bbox.borrow().get(id.index()).copied().flatten();
        self.tally(got.is_some());
        got
    }

    /// Stores a freshly computed world bbox.
    pub(crate) fn store_bbox(&self, id: InstanceId, rect: Rect) {
        let mut v = self.bbox.borrow_mut();
        if v.len() <= id.index() {
            v.resize(id.index() + 1, None);
        }
        v[id.index()] = Some(rect);
    }

    /// Cached world connector list for a slot, if still valid.
    pub(crate) fn connectors(&self, id: InstanceId) -> Option<Arc<Vec<WorldConnector>>> {
        let got = self
            .connectors
            .borrow()
            .get(id.index())
            .and_then(|s| s.as_ref().map(Arc::clone));
        self.tally(got.is_some());
        got
    }

    /// Stores a freshly computed world connector list.
    pub(crate) fn store_connectors(&self, id: InstanceId, list: Arc<Vec<WorldConnector>>) {
        let mut v = self.connectors.borrow_mut();
        if v.len() <= id.index() {
            v.resize(id.index() + 1, None);
        }
        v[id.index()] = Some(list);
    }

    /// Cached composition extent, if still valid.
    pub(crate) fn extent(&self) -> Option<Rect> {
        let got = *self.extent.borrow();
        self.tally(got.is_some());
        got
    }

    /// Stores a freshly computed composition extent.
    pub(crate) fn store_extent(&self, rect: Rect) {
        *self.extent.borrow_mut() = Some(rect);
    }

    /// Applies the invalidation an event demands.
    pub(crate) fn invalidate(&self, event: &ChangeEvent) {
        match event {
            ChangeEvent::InstanceCreated(id)
            | ChangeEvent::InstanceChanged(id)
            | ChangeEvent::InstanceDeleted(id) => {
                self.clear_slot(*id);
                *self.extent.borrow_mut() = None;
            }
            ChangeEvent::PendingChanged | ChangeEvent::CellAdded(_) => {}
            // Finishing rewrites the edit cell's bbox and connectors;
            // an instance of the edit cell inside itself (legal, if
            // odd) would otherwise go stale — clear everything.
            ChangeEvent::CellFinished | ChangeEvent::BulkRestore => self.clear(),
        }
    }

    fn clear_slot(&self, id: InstanceId) {
        if let Some(slot) = self.bbox.borrow_mut().get_mut(id.index()) {
            *slot = None;
        }
        if let Some(slot) = self.connectors.borrow_mut().get_mut(id.index()) {
            *slot = None;
        }
    }

    /// Drops every cached value.
    pub(crate) fn clear(&self) {
        self.bbox.borrow_mut().clear();
        self.connectors.borrow_mut().clear();
        *self.extent.borrow_mut() = None;
    }

    /// Cumulative cache hits.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cumulative cache misses.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_invalidation_is_targeted() {
        let c = DerivedCache::default();
        c.store_bbox(InstanceId(0), Rect::new(0, 0, 1, 1));
        c.store_bbox(InstanceId(1), Rect::new(0, 0, 2, 2));
        c.store_extent(Rect::new(0, 0, 2, 2));
        c.invalidate(&ChangeEvent::InstanceChanged(InstanceId(0)));
        assert_eq!(c.bbox(InstanceId(0)), None);
        assert_eq!(c.bbox(InstanceId(1)), Some(Rect::new(0, 0, 2, 2)));
        assert_eq!(c.extent(), None);
    }

    #[test]
    fn bulk_restore_clears_all() {
        let c = DerivedCache::default();
        c.store_bbox(InstanceId(3), Rect::new(0, 0, 1, 1));
        c.invalidate(&ChangeEvent::BulkRestore);
        assert_eq!(c.bbox(InstanceId(3)), None);
    }

    #[test]
    fn counters_track_lookups() {
        let c = DerivedCache::default();
        assert_eq!(c.bbox(InstanceId(0)), None); // miss
        c.store_bbox(InstanceId(0), Rect::new(0, 0, 1, 1));
        assert!(c.bbox(InstanceId(0)).is_some()); // hit
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }
}
