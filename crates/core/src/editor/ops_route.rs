//! The ROUTE connection command and BRING-OUT, the two operations that
//! synthesize new route cells into the menu. Both are compound: a
//! router failure rolls the menu back to its pre-command state.

use super::Editor;
use crate::command::{Command, CommandEffect, Outcome};
use crate::connection::WorldConnector;
use crate::error::RiotError;
use crate::events::ChangeEvent;
use crate::instance::InstanceId;
use crate::routeplan;
use crate::CellId;
use riot_geom::{Orientation, Point, Rect, Side, Transform, LAMBDA};
use riot_route::Terminal;

impl Editor<'_> {
    /// The ROUTE command: river-routes the pending connections, adds
    /// the route cell to the menu, places an instance of it against the
    /// *to* instance(s), and (unless `move_from` is off) moves the
    /// *from* instance to abut the far side. Returns the new route
    /// cell's id and its instance id. Clears the pending list.
    ///
    /// # Errors
    ///
    /// Routing errors ([`RiotError::Route`]), ragged channel edges, and
    /// the pending-list errors.
    pub fn route(
        &mut self,
        options: super::RouteOptions,
    ) -> Result<(CellId, InstanceId), RiotError> {
        match self.execute(Command::Route {
            move_from: options.move_from,
            router: options.router,
        })? {
            Outcome::CellInstance(cell, inst) => Ok((cell, inst)),
            _ => unreachable!("route reports a cell and an instance"),
        }
    }

    pub(crate) fn apply_route(
        &mut self,
        move_from: bool,
        router_options: riot_route::RouterOptions,
    ) -> Result<CommandEffect, RiotError> {
        let (from, pairs) = self.resolve_pending()?;

        let plan = routeplan::plan_route(&pairs, move_from, router_options)?;
        self.warnings.extend(plan.warnings.iter().cloned());
        let route_transform = plan.transform;

        // Bystander bboxes become grid-router obstacles: everything
        // live except the from instance (it moves with the route) and
        // the to instances (they host the channel's bottom edge).
        let mut exclude: Vec<InstanceId> = vec![from];
        for p in &self.pending {
            if !exclude.contains(&p.to) {
                exclude.push(p.to);
            }
        }
        let bystanders: Vec<Rect> = self
            .instances()
            .iter()
            .filter(|(id, _)| !exclude.contains(id))
            .filter_map(|(id, _)| self.world_bbox_now(*id))
            .collect();
        let obstacles = routeplan::channel_obstacles(plan.to_side, plan.edge, &bystanders);

        self.fault_trip(crate::fault::FAULT_ROUTE_SOLVE)?;
        let route = routeplan::solve_route(&plan.problem, &obstacles, || {
            self.fault_trip(crate::fault::FAULT_ROUTE_GRID_SOLVE)
        })?;

        let name = self.lib.next_route_name();
        let sticks = route.to_sticks_cell(name.clone());
        let route_cell = self.lib.add_sticks_cell(sticks)?;
        self.emit(ChangeEvent::CellAdded(route_cell));
        let route_inst = self.create_internal_instance(route_cell, format!("{name}i"))?;
        let old = self.world_bbox_now(route_inst);
        {
            let inst = self.instance_mut(route_inst)?;
            inst.transform = route_transform;
        }
        let new = self.world_bbox_now(route_inst);
        self.emit(ChangeEvent::InstanceChanged {
            id: route_inst,
            old,
            new,
        });

        if move_from {
            // Land the from connectors on the route's top pins.
            let (fc0, _) = &pairs[0];
            let tops = route.top_ends();
            let world_top =
                route_transform.apply(Point::new(tops[0].x * LAMBDA, tops[0].y * LAMBDA));
            let d = world_top - fc0.location;
            let pairs_for_verify: Vec<(WorldConnector, WorldConnector)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (fc, _))| {
                    let t = tops[i];
                    let mut target = fc.clone();
                    target.location = route_transform.apply(Point::new(t.x * LAMBDA, t.y * LAMBDA));
                    (fc.clone(), target)
                })
                .collect();
            self.apply_translation_and_verify(from, d, &pairs_for_verify)?;
        }

        self.pending.clear();
        self.emit(ChangeEvent::PendingChanged);
        Ok(CommandEffect {
            outcome: Outcome::CellInstance(route_cell, route_inst),
            undo: None,
            journal: Command::Route {
                move_from,
                router: router_options,
            },
        })
    }

    /// Brings connectors out to the composition's bounding box: builds
    /// a straight-line route cell from the named connectors on
    /// `instance` (all on world side `side`) to the current bbox edge.
    /// Returns the new cell and instance ids.
    ///
    /// # Errors
    ///
    /// Lookup errors; [`RiotError::NotOpposed`] when a named connector
    /// is not on `side`; routing errors.
    pub fn bring_out(
        &mut self,
        instance: InstanceId,
        connectors: &[&str],
        side: Side,
    ) -> Result<(CellId, InstanceId), RiotError> {
        let name = self.instance(instance)?.name.clone();
        match self.execute(Command::BringOut {
            instance: name,
            connectors: connectors.iter().map(|s| (*s).to_owned()).collect(),
            side,
        })? {
            Outcome::CellInstance(cell, inst) => Ok((cell, inst)),
            _ => unreachable!("bring-out reports a cell and an instance"),
        }
    }

    pub(crate) fn apply_bring_out(
        &mut self,
        instance: &str,
        connectors: &[String],
        side: Side,
    ) -> Result<CommandEffect, RiotError> {
        let inst_id = self.require_instance(instance)?;
        let mut terms = Vec::new();
        let mut edge = None;
        for name in connectors {
            let wc = self.world_connector(inst_id, name)?;
            if wc.side != Some(side) {
                return Err(RiotError::NotOpposed {
                    from: wc.side,
                    to: Some(side),
                });
            }
            edge = Some(side.across(wc.location));
            let project = match side {
                Side::Top => wc.location.x,
                Side::Bottom => -wc.location.x,
                Side::Right => -wc.location.y,
                Side::Left => wc.location.y,
            };
            terms.push(Terminal::new(
                wc.name.clone(),
                self.snap_lambda(project)?,
                wc.layer,
                self.snap_lambda(wc.width)?.max(1),
            ));
        }
        let edge = edge.ok_or(RiotError::NothingPending)?;
        // Length: from the instance edge out to the composition bbox.
        let bbox = self.current_extent()?;
        let outer = bbox.edge(side);
        let gap = match side {
            Side::Top | Side::Right => outer - edge,
            Side::Bottom | Side::Left => edge - outer,
        };
        let length = self.snap_lambda(gap.max(LAMBDA))?.max(1);
        self.fault_trip(crate::fault::FAULT_ROUTE_SOLVE)?;
        let name = self.lib.next_route_name();
        let cell =
            riot_route::straight_route(&terms, length, name.clone()).map_err(RiotError::Route)?;
        let cell_id = self.lib.add_sticks_cell(cell)?;
        self.emit(ChangeEvent::CellAdded(cell_id));
        let new_inst = self.create_internal_instance(cell_id, format!("{name}i"))?;
        let old = self.world_bbox_now(new_inst);
        let orient = match side {
            Side::Top => Orientation::R0,
            Side::Bottom => Orientation::R180,
            Side::Right => Orientation::R270,
            Side::Left => Orientation::R90,
        };
        let place = match side {
            Side::Top | Side::Bottom => Point::new(0, edge),
            Side::Left | Side::Right => Point::new(edge, 0),
        };
        {
            let inst = self.instance_mut(new_inst)?;
            inst.transform = Transform::new(orient, place);
        }
        let new = self.world_bbox_now(new_inst);
        self.emit(ChangeEvent::InstanceChanged {
            id: new_inst,
            old,
            new,
        });
        Ok(CommandEffect {
            outcome: Outcome::CellInstance(cell_id, new_inst),
            undo: None,
            journal: Command::BringOut {
                instance: instance.to_owned(),
                connectors: connectors.to_vec(),
                side,
            },
        })
    }
}
