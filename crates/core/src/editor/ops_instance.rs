//! Instance commands: CREATE, MOVE, ROTATE/MIRROR, REPLICATE, spacing,
//! DELETE. Public wrappers build [`Command`]s; the `apply_*` bodies are
//! what the engine dispatches to.

use super::Editor;
use crate::command::{Command, CommandEffect, Outcome};
use crate::error::RiotError;
use crate::events::ChangeEvent;
use crate::history::UndoRecord;
use crate::instance::{Instance, InstanceId};
use crate::CellId;
use riot_geom::{Orientation, Point, Transform};

impl Editor<'_> {
    /// The CREATE command: instantiates `cell` at the origin with an
    /// auto-generated name.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`].
    pub fn create_instance(&mut self, cell: CellId) -> Result<InstanceId, RiotError> {
        let name = loop {
            let candidate = format!("I{}", self.instance_counter);
            self.instance_counter += 1;
            if self.find_instance(&candidate).is_none() {
                break candidate;
            }
        };
        self.create_named_instance(cell, name)
    }

    /// Instantiates `cell` under an explicit instance name (replay uses
    /// this; interactive use lets Riot pick the name).
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`] or a duplicate instance name (reported
    /// as [`RiotError::UnknownInstance`] would be misleading, so a
    /// duplicate gets a fresh suffix and a warning instead).
    pub fn create_named_instance(
        &mut self,
        cell: CellId,
        name: impl Into<String>,
    ) -> Result<InstanceId, RiotError> {
        let cell_name = self.lib.cell(cell)?.name.clone();
        match self.execute(Command::Create {
            cell: cell_name,
            instance: name.into(),
        })? {
            Outcome::Instance(id) => Ok(id),
            _ => unreachable!("create reports an instance"),
        }
    }

    pub(crate) fn apply_create(
        &mut self,
        cell_name: &str,
        name: String,
    ) -> Result<CommandEffect, RiotError> {
        let cell = self
            .lib
            .find(cell_name)
            .ok_or_else(|| RiotError::UnknownCell(cell_name.to_owned()))?;
        let bbox = self.lib.cell(cell)?.bbox;
        let mut name = name;
        if self.find_instance(&name).is_some() {
            let fresh = format!("{name}'");
            self.warnings
                .push(format!("instance name `{name}` taken; using `{fresh}`"));
            name = fresh;
        }
        let inst = Instance::new(name.clone(), cell, bbox);
        let comp = self.comp_mut();
        comp.instances.push(Some(inst));
        let id = InstanceId(comp.instances.len() - 1);
        let at = self.world_bbox_now(id);
        self.emit(ChangeEvent::InstanceCreated { id, at });
        Ok(CommandEffect {
            outcome: Outcome::Instance(id),
            undo: Some(UndoRecord::PopInstance),
            journal: Command::Create {
                cell: cell_name.to_owned(),
                instance: name,
            },
        })
    }

    /// Instantiates without journaling or history — for the instances
    /// ROUTE and BRING-OUT create themselves, which their own commands
    /// regenerate (and whose snapshots revert).
    pub(crate) fn create_internal_instance(
        &mut self,
        cell: CellId,
        name: String,
    ) -> Result<InstanceId, RiotError> {
        let bbox = self.lib.cell(cell)?.bbox;
        let inst = Instance::new(name, cell, bbox);
        let comp = self.comp_mut();
        comp.instances.push(Some(inst));
        let id = InstanceId(comp.instances.len() - 1);
        let at = self.world_bbox_now(id);
        self.emit(ChangeEvent::InstanceCreated { id, at });
        Ok(id)
    }

    /// The MOVE command: translates an instance.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn translate_instance(&mut self, id: InstanceId, d: Point) -> Result<(), RiotError> {
        let instance = self.instance(id)?.name.clone();
        self.execute(Command::Translate { instance, d })?;
        Ok(())
    }

    pub(crate) fn apply_translate(
        &mut self,
        instance: &str,
        d: Point,
    ) -> Result<CommandEffect, RiotError> {
        let id = self.require_instance(instance)?;
        let prev = self.instance(id)?.transform;
        let old = self.world_bbox_now(id);
        {
            let inst = self.instance_mut(id)?;
            inst.transform = inst.transform.translated(d);
        }
        let new = self.world_bbox_now(id);
        self.emit(ChangeEvent::InstanceChanged { id, old, new });
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::Transform { id, prev }),
            journal: Command::Translate {
                instance: instance.to_owned(),
                d,
            },
        })
    }

    /// The ROTATE/MIRROR command: composes an orientation onto the
    /// instance, rotating about its placement anchor.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn orient_instance(
        &mut self,
        id: InstanceId,
        orient: Orientation,
    ) -> Result<(), RiotError> {
        let instance = self.instance(id)?.name.clone();
        self.execute(Command::Orient { instance, orient })?;
        Ok(())
    }

    pub(crate) fn apply_orient(
        &mut self,
        instance: &str,
        orient: Orientation,
    ) -> Result<CommandEffect, RiotError> {
        let id = self.require_instance(instance)?;
        let prev = self.instance(id)?.transform;
        let old = self.world_bbox_now(id);
        {
            let inst = self.instance_mut(id)?;
            inst.transform =
                Transform::new(inst.transform.orient.then(orient), inst.transform.offset);
        }
        let new = self.world_bbox_now(id);
        self.emit(ChangeEvent::InstanceChanged { id, old, new });
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::Transform { id, prev }),
            journal: Command::Orient {
                instance: instance.to_owned(),
                orient,
            },
        })
    }

    /// The REPLICATE command: makes the instance an array. Spacing
    /// defaults (cell bbox pitch) are kept; use
    /// [`Editor::set_spacing`] to change them.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] / [`RiotError::BadReplication`].
    pub fn replicate_instance(
        &mut self,
        id: InstanceId,
        cols: u32,
        rows: u32,
    ) -> Result<(), RiotError> {
        let instance = self.instance(id)?.name.clone();
        self.execute(Command::Replicate {
            instance,
            cols,
            rows,
        })?;
        Ok(())
    }

    pub(crate) fn apply_replicate(
        &mut self,
        instance: &str,
        cols: u32,
        rows: u32,
    ) -> Result<CommandEffect, RiotError> {
        if cols == 0 || rows == 0 || cols as u64 * rows as u64 > 1_000_000 {
            return Err(RiotError::BadReplication { cols, rows });
        }
        let id = self.require_instance(instance)?;
        let old = self.world_bbox_now(id);
        let (prev_cols, prev_rows) = {
            let inst = self.instance_mut(id)?;
            let prev = (inst.cols, inst.rows);
            inst.cols = cols;
            inst.rows = rows;
            prev
        };
        let new = self.world_bbox_now(id);
        self.emit(ChangeEvent::InstanceChanged { id, old, new });
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::Replicate {
                id,
                cols: prev_cols,
                rows: prev_rows,
            }),
            journal: Command::Replicate {
                instance: instance.to_owned(),
                cols,
                rows,
            },
        })
    }

    /// Overrides the array replication spacing.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] / [`RiotError::BadReplication`] for
    /// non-positive pitches.
    pub fn set_spacing(&mut self, id: InstanceId, col: i64, row: i64) -> Result<(), RiotError> {
        let instance = self.instance(id)?.name.clone();
        self.execute(Command::Spacing { instance, col, row })?;
        Ok(())
    }

    pub(crate) fn apply_spacing(
        &mut self,
        instance: &str,
        col: i64,
        row: i64,
    ) -> Result<CommandEffect, RiotError> {
        if col <= 0 || row <= 0 {
            return Err(RiotError::BadReplication { cols: 0, rows: 0 });
        }
        let id = self.require_instance(instance)?;
        let old = self.world_bbox_now(id);
        let (prev_col, prev_row) = {
            let inst = self.instance_mut(id)?;
            let prev = (inst.col_spacing, inst.row_spacing);
            inst.col_spacing = col;
            inst.row_spacing = row;
            prev
        };
        let new = self.world_bbox_now(id);
        self.emit(ChangeEvent::InstanceChanged { id, old, new });
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::Spacing {
                id,
                col: prev_col,
                row: prev_row,
            }),
            journal: Command::Spacing {
                instance: instance.to_owned(),
                col,
                row,
            },
        })
    }

    /// The DELETE command: removes an instance and any pending
    /// connections touching it.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn delete_instance(&mut self, id: InstanceId) -> Result<(), RiotError> {
        let instance = self.instance(id)?.name.clone();
        self.execute(Command::Delete { instance })?;
        Ok(())
    }

    pub(crate) fn apply_delete(&mut self, instance: &str) -> Result<CommandEffect, RiotError> {
        let id = self.require_instance(instance)?;
        let removed = Box::new(self.instance(id)?.clone());
        let old = self.world_bbox_now(id);
        let prev_pending = self.pending.clone();
        self.comp_mut().instances[id.0] = None;
        let pending_changed = {
            let before = self.pending.len();
            self.pending.retain(|p| p.from != id && p.to != id);
            self.pending.len() != before
        };
        self.emit(ChangeEvent::InstanceDeleted { id, old });
        if pending_changed {
            self.emit(ChangeEvent::PendingChanged);
        }
        Ok(CommandEffect {
            outcome: Outcome::None,
            undo: Some(UndoRecord::RestoreInstance {
                id,
                instance: removed,
                pending: prev_pending,
            }),
            journal: Command::Delete {
                instance: instance.to_owned(),
            },
        })
    }
}
