//! The STRETCH connection command: re-solves the *from* instance's
//! Sticks cell through REST so its pins land on the *to* connectors'
//! separations, swaps the instance onto the new cell, and abuts.

use super::Editor;
use crate::command::{Command, CommandEffect, Outcome};
use crate::connection::WorldConnector;
use crate::error::RiotError;
use crate::CellId;
use riot_geom::{Point, LAMBDA};
use riot_rest::{Axis, SolveMode, StretchSpec};

impl Editor<'_> {
    /// The STRETCH command: derives pin targets for the *from*
    /// instance's Sticks cell from the *to* connector separations,
    /// re-solves the cell through REST, swaps the instance onto the new
    /// cell, and abuts. Returns the new cell's id. Clears the pending
    /// list.
    ///
    /// # Errors
    ///
    /// [`RiotError::NotStretchable`] for CIF-only cells (pads), stretch
    /// solver failures, and the pending-list errors.
    pub fn stretch(&mut self, options: super::StretchOptions) -> Result<CellId, RiotError> {
        match self.execute(Command::Stretch { mode: options.mode })? {
            Outcome::Cell(cell) => Ok(cell),
            _ => unreachable!("stretch reports a cell"),
        }
    }

    pub(crate) fn apply_stretch(&mut self, mode: SolveMode) -> Result<CommandEffect, RiotError> {
        let (from, pairs) = self.resolve_pending()?;
        let from_inst = self.instance(from)?.clone();
        let from_cell = self.lib.cell(from_inst.cell)?;
        let sticks = from_cell
            .sticks()
            .ok_or_else(|| RiotError::NotStretchable(from_cell.name.clone()))?
            .clone();
        let from_cell_name = from_cell.name.clone();

        // Stretch axis: along the connecting edge, in cell-local terms.
        let world_side = pairs[0].0.side.expect("connect() checked sides");
        let world_axis_is_y = world_side.is_vertical();
        let local_axis = {
            // Does the instance orientation swap axes?
            let swapped = from_inst.transform.orient.swaps_axes();
            match (world_axis_is_y, swapped) {
                (true, false) | (false, true) => Axis::Y,
                _ => Axis::X,
            }
        };
        // Sign: how a local step along local_axis moves the world
        // along-coordinate.
        let unit = match local_axis {
            Axis::X => Point::new(1, 0),
            Axis::Y => Point::new(0, 1),
        };
        let w = from_inst.transform.orient.apply(unit);
        let sign = if world_axis_is_y { w.y } else { w.x };
        debug_assert!(sign == 1 || sign == -1);

        // Targets: anchor the connection whose to-coordinate is
        // smallest in world terms; other pins keep the to-connectors'
        // separations.
        let along = |p: Point| if world_axis_is_y { p.y } else { p.x };
        let mut ordered: Vec<&(WorldConnector, WorldConnector)> = pairs.iter().collect();
        ordered.sort_by_key(|(_, tc)| along(tc.location));
        let anchor = ordered[0];
        let anchor_pin = sticks
            .pin(super::base_name(&anchor.0.name))
            .ok_or_else(|| RiotError::UnknownConnector {
                instance: from_inst.name.clone(),
                connector: anchor.0.name.clone(),
            })?;
        let anchor_local = match local_axis {
            Axis::X => anchor_pin.position.x,
            Axis::Y => anchor_pin.position.y,
        };
        let anchor_world = along(anchor.1.location);

        let mut spec = StretchSpec::new(local_axis);
        for (fc, tc) in &pairs {
            let delta_world = along(tc.location) - anchor_world;
            if delta_world % LAMBDA != 0 {
                self.warnings.push(format!(
                    "stretch target for {} off the lambda grid by {}; rounding",
                    fc.name,
                    delta_world % LAMBDA
                ));
            }
            let target = anchor_local + sign * (delta_world / LAMBDA);
            spec.push_target(super::base_name(&fc.name), target);
        }

        self.fault_trip(crate::fault::FAULT_STRETCH_SOLVE)?;
        let mut stretched = riot_rest::stretch_with_mode(&sticks, &spec, mode)?;
        let mut new_name = format!("{}'", from_cell_name);
        while self.lib.find(&new_name).is_some() {
            new_name.push('\'');
        }
        stretched.set_name(new_name);
        let new_cell = self.lib.add_sticks_cell(stretched)?;
        self.emit(crate::events::ChangeEvent::CellAdded(new_cell));

        // Swap the instance onto the new cell ("Riot then removes the
        // old instance and inserts an instance of the new cell").
        // The old box must be computed before the swap — it depends on
        // the old defining cell.
        let old = self.world_bbox_now(from);
        let new_bbox = self.lib.cell(new_cell)?.bbox;
        {
            let inst = self.instance_mut(from)?;
            inst.cell = new_cell;
            if !inst.is_array() {
                inst.col_spacing = new_bbox.width();
                inst.row_spacing = new_bbox.height();
            }
        }
        let new = self.world_bbox_now(from);
        self.emit(crate::events::ChangeEvent::InstanceChanged { id: from, old, new });

        // Finish with an abutment on the (recomputed) connectors.
        let new_pairs: Vec<(WorldConnector, WorldConnector)> = self
            .pending
            .clone()
            .iter()
            .map(|p| {
                let fc = self.world_connector(p.from, &p.from_connector)?;
                let tc = self.world_connector(p.to, &p.to_connector)?;
                Ok((fc, tc))
            })
            .collect::<Result<_, RiotError>>()?;
        let d = new_pairs[0].1.location - new_pairs[0].0.location;
        self.apply_translation_and_verify(from, d, &new_pairs)?;

        self.pending.clear();
        self.emit(crate::events::ChangeEvent::PendingChanged);
        Ok(CommandEffect {
            outcome: Outcome::Cell(new_cell),
            undo: None,
            journal: Command::Stretch { mode },
        })
    }
}
