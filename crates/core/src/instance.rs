//! Instances: a cell placed with a transform and array replication.
//!
//! "Internally, Riot keeps an instance as a pointer to the defining
//! cell with a transformation, replication counts, and replication
//! spacings."

use crate::cell::Cell;
use crate::connection::WorldConnector;
use riot_geom::{Point, Rect, Side, Transform};
use std::fmt;

/// Index of an instance within its composition cell. Stable for the
/// life of an editing session (deletion leaves a tombstone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub(crate) usize);

impl InstanceId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// An instance of a cell inside a composition cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name ("I0", "I1", … unless renamed) — replay keys on it.
    pub name: String,
    /// The defining cell.
    pub cell: crate::CellId,
    /// Placement of array element (0,0).
    pub transform: Transform,
    /// Columns of the array (x replication).
    pub cols: u32,
    /// Rows of the array (y replication).
    pub rows: u32,
    /// Column pitch in centimicrons (defaults to the cell width, so
    /// "array elements must connect properly by abutment").
    pub col_spacing: i64,
    /// Row pitch in centimicrons (defaults to the cell height).
    pub row_spacing: i64,
}

impl Instance {
    /// Creates a 1×1 instance of `cell` with identity placement.
    pub fn new(name: impl Into<String>, cell: crate::CellId, cell_bbox: Rect) -> Self {
        Instance {
            name: name.into(),
            cell,
            transform: Transform::IDENTITY,
            cols: 1,
            rows: 1,
            col_spacing: cell_bbox.width(),
            row_spacing: cell_bbox.height(),
        }
    }

    /// True when the instance is an array (replicated in x or y).
    pub fn is_array(&self) -> bool {
        self.cols > 1 || self.rows > 1
    }

    /// Local (pre-transform) bounding box: the cell bbox unioned over
    /// every array element.
    pub fn local_bbox(&self, cell_bbox: Rect) -> Rect {
        let last = cell_bbox.translated(Point::new(
            (self.cols as i64 - 1) * self.col_spacing,
            (self.rows as i64 - 1) * self.row_spacing,
        ));
        cell_bbox.union(last)
    }

    /// Bounding box in the parent's coordinates.
    pub fn world_bbox(&self, cell: &Cell) -> Rect {
        self.transform.apply_rect(self.local_bbox(cell.bbox))
    }

    /// The transform of array element `(col, row)`.
    pub fn element_transform(&self, col: u32, row: u32) -> Transform {
        Transform::translate(Point::new(
            col as i64 * self.col_spacing,
            row as i64 * self.row_spacing,
        ))
        .then(self.transform)
    }

    /// The world-space side a cell-local side faces after this
    /// instance's orientation.
    pub fn world_side(&self, local: Side) -> Side {
        let n = self.transform.orient.apply(local.normal());
        match (n.x, n.y) {
            (-1, 0) => Side::Left,
            (1, 0) => Side::Right,
            (0, -1) => Side::Bottom,
            (0, 1) => Side::Top,
            _ => unreachable!("orientation of a unit normal is a unit normal"),
        }
    }

    /// The connectors this instance exposes to the composition, in
    /// world coordinates.
    ///
    /// For arrays, only connectors on the **outside edges** are exposed
    /// ("Riot allows no access to interior connectors on arrays"), and
    /// their names gain an `[col,row]` suffix. Interior connectors of
    /// the cell are exposed only on 1×1 instances.
    pub fn world_connectors(&self, cell: &Cell) -> Vec<WorldConnector> {
        let mut out = Vec::new();
        let single = !self.is_array();
        for conn in &cell.connectors {
            let local_side = conn.side_in(cell.bbox);
            // Which array elements expose this connector?
            let elements: Vec<(u32, u32)> = if single {
                vec![(0, 0)]
            } else {
                match local_side {
                    Some(Side::Left) => (0..self.rows).map(|r| (0, r)).collect(),
                    Some(Side::Right) => (0..self.rows).map(|r| (self.cols - 1, r)).collect(),
                    Some(Side::Bottom) => (0..self.cols).map(|c| (c, 0)).collect(),
                    Some(Side::Top) => (0..self.cols).map(|c| (c, self.rows - 1)).collect(),
                    None => Vec::new(), // interior connectors are hidden on arrays
                }
            };
            for (c, r) in elements {
                let t = self.element_transform(c, r);
                let name = if single {
                    conn.name.clone()
                } else {
                    format!("{}[{c},{r}]", conn.name)
                };
                out.push(WorldConnector {
                    instance_name: self.name.clone(),
                    name,
                    location: t.apply(conn.location),
                    layer: conn.layer,
                    width: conn.width,
                    side: local_side.map(|s| self.world_side(s)),
                });
            }
        }
        // A connector is only *usable* if it still lies on the array's
        // outer bounding box after replication (left-side connectors of
        // column 0 do; a left connector that ended up interior because
        // of overlapping spacing does not — keep them, Riot shows them).
        out
    }

    /// Finds one world connector by its exposed (possibly suffixed)
    /// name.
    pub fn world_connector(&self, cell: &Cell, name: &str) -> Option<WorldConnector> {
        self.world_connectors(cell)
            .into_iter()
            .find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellId, Connector};
    use riot_geom::{Layer, Orientation};

    fn leaf() -> Cell {
        Cell::from_cif_shapes(
            "leaf",
            vec![riot_cif::Shape {
                layer: Layer::Metal,
                geometry: riot_cif::Geometry::Box(Rect::new(0, 0, 1000, 500)),
            }],
            vec![
                Connector {
                    name: "L".into(),
                    location: Point::new(0, 250),
                    layer: Layer::Metal,
                    width: 250,
                },
                Connector {
                    name: "R".into(),
                    location: Point::new(1000, 250),
                    layer: Layer::Metal,
                    width: 250,
                },
                Connector {
                    name: "MID".into(),
                    location: Point::new(500, 250),
                    layer: Layer::Poly,
                    width: 100,
                },
            ],
        )
    }

    fn inst() -> Instance {
        Instance::new("I0", CellId(0), leaf().bbox)
    }

    #[test]
    fn default_spacing_abuts() {
        let i = inst();
        assert_eq!(i.col_spacing, 1000);
        assert_eq!(i.row_spacing, 500);
        assert!(!i.is_array());
    }

    #[test]
    fn world_bbox_with_orientation() {
        let mut i = inst();
        i.transform = Transform::new(Orientation::R90, Point::new(2000, 0));
        let bb = i.world_bbox(&leaf());
        assert_eq!(bb, Rect::new(1500, 0, 2000, 1000));
    }

    #[test]
    fn array_bbox_spans_replication() {
        let mut i = inst();
        i.cols = 3;
        let bb = i.world_bbox(&leaf());
        assert_eq!(bb, Rect::new(0, 0, 3000, 500));
    }

    #[test]
    fn single_instance_exposes_all_connectors() {
        let conns = inst().world_connectors(&leaf());
        assert_eq!(conns.len(), 3);
        let l = conns.iter().find(|c| c.name == "L").unwrap();
        assert_eq!(l.side, Some(Side::Left));
        let mid = conns.iter().find(|c| c.name == "MID").unwrap();
        assert_eq!(mid.side, None);
    }

    #[test]
    fn array_hides_interior_and_inner_edges() {
        let mut i = inst();
        i.cols = 3;
        let conns = i.world_connectors(&leaf());
        // L exposed on column 0 only, R on column 2 only; MID hidden.
        let names: Vec<&str> = conns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["L[0,0]", "R[2,0]"]);
        let r = &conns[1];
        assert_eq!(r.location, Point::new(3000, 250));
    }

    #[test]
    fn mirrored_instance_swaps_sides() {
        let mut i = inst();
        i.transform = Transform::orient(Orientation::MX);
        let conns = i.world_connectors(&leaf());
        let l = conns.iter().find(|c| c.name == "L").unwrap();
        assert_eq!(l.side, Some(Side::Right));
        assert_eq!(l.location, Point::new(0, 250));
    }

    #[test]
    fn rotated_sides() {
        let i = inst();
        assert_eq!(i.world_side(Side::Left), Side::Left);
        let mut r = inst();
        r.transform = Transform::orient(Orientation::R90);
        assert_eq!(r.world_side(Side::Left), Side::Bottom);
        assert_eq!(r.world_side(Side::Top), Side::Left);
    }

    #[test]
    fn element_transform_composition() {
        let mut i = inst();
        i.cols = 2;
        i.transform = Transform::new(Orientation::R0, Point::new(100, 200));
        let t = i.element_transform(1, 0);
        assert_eq!(t.apply(Point::ORIGIN), Point::new(1100, 200));
    }

    #[test]
    fn world_connector_lookup() {
        let i = inst();
        assert!(i.world_connector(&leaf(), "L").is_some());
        assert!(i.world_connector(&leaf(), "NOPE").is_none());
    }
}
