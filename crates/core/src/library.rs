//! The cell menu: every cell the session can instantiate.
//!
//! "Internally, Riot has a list of cells that the user may edit. …
//! The upper menu area contains the names of the cells which are
//! currently defined and which may be instantiated."

use crate::cell::{Cell, CellId, CellKind, Connector};
use crate::error::RiotError;
use riot_geom::Transform;

/// The session's cell list. Cells are appended and looked up by name or
/// id; ids are stable (renames keep the id).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Library {
    /// The menu, in definition order. Crate-visible so
    /// `crate::persist` can serialize and rebuild a library verbatim.
    pub(crate) cells: Vec<Cell>,
    /// Monotone counter behind [`Library::next_route_name`].
    pub(crate) route_counter: usize,
}

/// A cheap rollback point for the command engine's transactions.
///
/// During an editing session the cell list only grows (route cells and
/// stretched cells are appended), so truncating back to the recorded
/// length and restoring the route-name counter undoes everything a
/// failed compound command added to the menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LibraryCheckpoint {
    /// Menu length at capture. Crate-visible for `crate::persist`.
    pub(crate) cells_len: usize,
    /// Route-name counter at capture.
    pub(crate) route_counter: usize,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Self {
        Library::default()
    }

    /// Number of cells in the menu.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the menu is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` in menu order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i), c))
    }

    /// Looks a cell up by id.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`] when the id is out of range.
    pub fn cell(&self, id: CellId) -> Result<&Cell, RiotError> {
        self.cells.get(id.0).ok_or(RiotError::BadCellId(id.0))
    }

    /// Mutable access to a cell.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`] when the id is out of range.
    pub(crate) fn cell_mut(&mut self, id: CellId) -> Result<&mut Cell, RiotError> {
        self.cells.get_mut(id.0).ok_or(RiotError::BadCellId(id.0))
    }

    /// Finds a cell id by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.cells.iter().position(|c| c.name == name).map(CellId)
    }

    /// Adds a cell to the menu.
    ///
    /// # Errors
    ///
    /// [`RiotError::DuplicateCell`] when the name is taken.
    pub fn add_cell(&mut self, cell: Cell) -> Result<CellId, RiotError> {
        if self.find(&cell.name).is_some() {
            return Err(RiotError::DuplicateCell(cell.name));
        }
        self.cells.push(cell);
        Ok(CellId(self.cells.len() - 1))
    }

    /// Renames a cell (a Riot textual command).
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`] or [`RiotError::DuplicateCell`].
    pub fn rename(&mut self, id: CellId, new_name: impl Into<String>) -> Result<(), RiotError> {
        let new_name = new_name.into();
        if let Some(existing) = self.find(&new_name) {
            if existing != id {
                return Err(RiotError::DuplicateCell(new_name));
            }
        }
        self.cell_mut(id)?.name = new_name;
        Ok(())
    }

    /// Captures the rollback point for a transaction.
    pub(crate) fn checkpoint(&self) -> LibraryCheckpoint {
        LibraryCheckpoint {
            cells_len: self.cells.len(),
            route_counter: self.route_counter,
        }
    }

    /// Rolls back to a checkpoint: drops cells added since the capture
    /// and restores the route-name counter, so a re-run regenerates
    /// identical names.
    pub(crate) fn rollback(&mut self, cp: LibraryCheckpoint) {
        debug_assert!(cp.cells_len <= self.cells.len(), "cells only grow");
        self.cells.truncate(cp.cells_len);
        self.route_counter = cp.route_counter;
    }

    /// A fresh unique name for a route cell ("route0", "route1", …).
    pub(crate) fn next_route_name(&mut self) -> String {
        loop {
            let name = format!("route{}", self.route_counter);
            self.route_counter += 1;
            if self.find(&name).is_none() {
                return name;
            }
        }
    }

    /// Imports every **named** definition of a CIF file as a leaf cell
    /// (each flattened into its own coordinates; connectors from the
    /// `94` extension). Returns the new cell ids in symbol-number order.
    ///
    /// # Errors
    ///
    /// CIF parse errors, flattening errors, or duplicate cell names.
    pub fn load_cif(&mut self, text: &str) -> Result<Vec<CellId>, RiotError> {
        let file = riot_cif::parse(text)?;
        let mut ids = Vec::new();
        for def in file.cells() {
            let Some(name) = def.name.clone() else {
                continue; // unnamed helper symbols only exist to be called
            };
            let mut flat = Vec::new();
            riot_cif::flatten::flatten_cell(&file, def.id, Transform::IDENTITY, 1, &mut flat)?;
            let shapes = flat
                .into_iter()
                .map(|f| riot_cif::Shape {
                    layer: f.layer,
                    geometry: f.geometry,
                })
                .collect();
            let connectors = def
                .connectors
                .iter()
                .map(|c| Connector {
                    name: c.name.clone(),
                    location: c.location,
                    layer: c.layer,
                    width: c.width,
                })
                .collect();
            ids.push(self.add_cell(Cell::from_cif_shapes(name, shapes, connectors))?);
        }
        Ok(ids)
    }

    /// Imports a Sticks cell as a (stretchable) leaf cell.
    ///
    /// # Errors
    ///
    /// Sticks parse/validation errors or a duplicate cell name.
    pub fn load_sticks(&mut self, text: &str) -> Result<CellId, RiotError> {
        let cell = riot_sticks::parse(text)?;
        self.add_cell(Cell::from_sticks(cell))
    }

    /// Adds an already-built Sticks cell (route cells, stretched cells).
    ///
    /// # Errors
    ///
    /// [`RiotError::DuplicateCell`] when the name is taken.
    pub fn add_sticks_cell(&mut self, cell: riot_sticks::SticksCell) -> Result<CellId, RiotError> {
        self.add_cell(Cell::from_sticks(cell))
    }

    /// Deletes a cell from the menu by replacing it with an empty
    /// tombstone composition (ids must stay stable). Instances of it
    /// elsewhere become empty.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`].
    pub fn delete_cell(&mut self, id: CellId) -> Result<(), RiotError> {
        let cell = self.cell_mut(id)?;
        cell.name = format!("(deleted {})", cell.name);
        cell.connectors.clear();
        cell.kind = CellKind::Composition(crate::cell::Composition::default());
        cell.bbox = riot_geom::Rect::new(0, 0, 0, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CIF: &str = "\
DS 1;
9 padIn;
L NM; B 1000 1000 500 500;
94 OUT 1000 500 NM 250;
DF;
DS 2;
L NP; B 100 100 50 50;
DF;
E";

    #[test]
    fn load_cif_imports_named_cells_only() {
        let mut lib = Library::new();
        let ids = lib.load_cif(CIF).unwrap();
        assert_eq!(ids.len(), 1);
        let cell = lib.cell(ids[0]).unwrap();
        assert_eq!(cell.name, "padIn");
        assert_eq!(cell.connectors.len(), 1);
        assert!(cell.is_leaf());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut lib = Library::new();
        lib.load_cif(CIF).unwrap();
        let err = lib.load_cif(CIF).unwrap_err();
        assert_eq!(err, RiotError::DuplicateCell("padIn".into()));
    }

    #[test]
    fn find_and_rename() {
        let mut lib = Library::new();
        let ids = lib.load_cif(CIF).unwrap();
        assert_eq!(lib.find("padIn"), Some(ids[0]));
        lib.rename(ids[0], "padInput").unwrap();
        assert_eq!(lib.find("padIn"), None);
        assert_eq!(lib.find("padInput"), Some(ids[0]));
        // Renaming to itself is allowed.
        lib.rename(ids[0], "padInput").unwrap();
    }

    #[test]
    fn load_sticks_leaf() {
        let mut lib = Library::new();
        let id = lib
            .load_sticks("sticks inv\nbbox 0 0 8 8\npin A left NP 0 4\nend\n")
            .unwrap();
        assert!(lib.cell(id).unwrap().sticks().is_some());
    }

    #[test]
    fn route_names_unique() {
        let mut lib = Library::new();
        assert_eq!(lib.next_route_name(), "route0");
        assert_eq!(lib.next_route_name(), "route1");
    }

    #[test]
    fn delete_cell_tombstones() {
        let mut lib = Library::new();
        let ids = lib.load_cif(CIF).unwrap();
        lib.delete_cell(ids[0]).unwrap();
        assert_eq!(lib.find("padIn"), None);
        assert_eq!(lib.len(), 1); // slot remains, ids stable
    }

    #[test]
    fn bad_id() {
        let lib = Library::new();
        assert!(matches!(lib.cell(CellId(7)), Err(RiotError::BadCellId(7))));
    }
}
