//! The change-event bus: every mutation the command engine performs is
//! announced as a [`ChangeEvent`].
//!
//! Events serve two consumers. Inside the editor they drive incremental
//! invalidation of the derived-geometry caches (world bounding boxes,
//! world connector lists, the composition extent) so those expensive
//! values are recomputed only when something they depend on changed.
//! Outside the editor, a UI can drain the queue with
//! [`crate::Editor::drain_events`] and redraw only what moved.
//!
//! [`Stats`] aggregates engine counters (commands applied, undos,
//! rollbacks, cache hit rates) for instrumentation and benchmarks.

use crate::cell::CellId;
use crate::instance::InstanceId;

/// One observable change to the editing session's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeEvent {
    /// A new instance slot was appended to the composition.
    InstanceCreated(InstanceId),
    /// An instance's placement, replication, or defining cell changed.
    InstanceChanged(InstanceId),
    /// An instance was deleted (its slot tombstoned).
    InstanceDeleted(InstanceId),
    /// The pending connection list changed.
    PendingChanged,
    /// A new cell entered the menu (route cells, stretched cells).
    CellAdded(CellId),
    /// The cell under edit was finished: bbox set, connectors promoted.
    CellFinished,
    /// A transaction rollback or undo restored earlier state wholesale;
    /// all derived values must be considered stale.
    BulkRestore,
}

/// Engine counters: how many commands ran, how the caches behaved.
///
/// Obtained from [`crate::Editor::stats`]. All counters are cumulative
/// over the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Commands applied successfully (excluding undo/redo).
    pub applied: u64,
    /// Undo operations performed.
    pub undos: u64,
    /// Redo operations performed.
    pub redos: u64,
    /// Failed transactions rolled back to their snapshot.
    pub rollbacks: u64,
    /// Change events emitted.
    pub events: u64,
    /// Derived-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Derived-cache lookups that had to recompute.
    pub cache_misses: u64,
    /// Nanoseconds spent inside command application.
    pub apply_nanos: u64,
}

impl Stats {
    /// Cache hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(Stats::default().cache_hit_rate(), None);
        let s = Stats {
            cache_hits: 3,
            cache_misses: 1,
            ..Stats::default()
        };
        assert_eq!(s.cache_hit_rate(), Some(0.75));
    }
}
