//! The change-event bus: every mutation the command engine performs is
//! announced as a [`ChangeEvent`].
//!
//! Events serve two consumers. Inside the editor they drive incremental
//! invalidation of the derived-geometry caches (world bounding boxes,
//! world connector lists, the composition extent) so those expensive
//! values are recomputed only when something they depend on changed.
//! Outside the editor, a UI can drain the queue with
//! [`crate::Editor::drain_events`] and redraw only what moved.
//!
//! Instance events carry the **world-space damage** they imply: the
//! old and/or new world bounding box of the instance they touch. The
//! union of those rects over a transaction is the region a consumer
//! must recompute — the contract the [`super::editor`] `DamageJournal`
//! and the incremental DRC/flatten/render paths build on. A rect of
//! `None` means the box could not be determined (degenerate cells);
//! consumers must then fall back to a full recompute, which
//! [`ChangeEvent::BulkRestore`] also demands.
//!
//! [`Stats`] aggregates engine counters (commands applied, undos,
//! rollbacks, cache hit rates, damage-rect tallies) for
//! instrumentation and benchmarks.

use crate::cell::CellId;
use crate::instance::InstanceId;
use riot_geom::Rect;

/// One observable change to the editing session's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeEvent {
    /// A new instance slot was appended to the composition.
    InstanceCreated {
        /// The new slot.
        id: InstanceId,
        /// World bbox of the created instance.
        at: Option<Rect>,
    },
    /// An instance's placement, replication, or defining cell changed.
    InstanceChanged {
        /// The mutated slot.
        id: InstanceId,
        /// World bbox before the mutation.
        old: Option<Rect>,
        /// World bbox after the mutation.
        new: Option<Rect>,
    },
    /// An instance was deleted (its slot tombstoned).
    InstanceDeleted {
        /// The tombstoned slot.
        id: InstanceId,
        /// World bbox the instance occupied.
        old: Option<Rect>,
    },
    /// The pending connection list changed.
    PendingChanged,
    /// A new cell entered the menu (route cells, stretched cells).
    CellAdded(CellId),
    /// The cell under edit was finished: bbox set, connectors promoted.
    CellFinished,
    /// A transaction rollback or undo restored earlier state wholesale;
    /// all derived values must be considered stale.
    BulkRestore,
}

impl ChangeEvent {
    /// The instance slot this event touches, if any.
    pub fn instance_id(&self) -> Option<InstanceId> {
        match self {
            ChangeEvent::InstanceCreated { id, .. }
            | ChangeEvent::InstanceChanged { id, .. }
            | ChangeEvent::InstanceDeleted { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// The world-space region this event dirties: the union of the
    /// old and new boxes it carries. `None` for events that carry no
    /// geometry (pending-list or menu changes) — but note that
    /// [`ChangeEvent::invalidates_everything`] events also return
    /// `None` here and must be checked first.
    pub fn dirty_rect(&self) -> Option<Rect> {
        match self {
            ChangeEvent::InstanceCreated { at: r, .. }
            | ChangeEvent::InstanceDeleted { old: r, .. } => *r,
            ChangeEvent::InstanceChanged { old, new, .. } => match (old, new) {
                (Some(a), Some(b)) => Some(a.union(*b)),
                (Some(r), None) | (None, Some(r)) => Some(*r),
                (None, None) => None,
            },
            _ => None,
        }
    }

    /// Whether this event invalidates all derived state at once —
    /// either by design ([`ChangeEvent::CellFinished`],
    /// [`ChangeEvent::BulkRestore`]) or because an instance event
    /// could not determine the world box it dirtied.
    pub fn invalidates_everything(&self) -> bool {
        match self {
            ChangeEvent::CellFinished | ChangeEvent::BulkRestore => true,
            ChangeEvent::InstanceCreated { at, .. } => at.is_none(),
            ChangeEvent::InstanceDeleted { old, .. } => old.is_none(),
            ChangeEvent::InstanceChanged { old, new, .. } => old.is_none() || new.is_none(),
            ChangeEvent::PendingChanged | ChangeEvent::CellAdded(_) => false,
        }
    }
}

/// Accumulated world-space damage over a span of editing, obtained
/// from [`crate::Editor::take_damage`].
///
/// Invariant: the acknowledged damage covers every world coordinate
/// that changed since the previous acknowledgement — either `full` is
/// set (recompute everything) or every changed coordinate lies inside
/// one of `rects`. Consumers may recompute more than the damage, never
/// less.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Damage {
    /// All derived state is stale; `rects` is irrelevant.
    pub full: bool,
    /// Dirty world-space regions, possibly overlapping, in emission
    /// order (overflow beyond the journal cap is union-merged).
    pub rects: Vec<Rect>,
}

impl Damage {
    /// No damage at all: nothing changed since the last acknowledge.
    pub fn is_clean(&self) -> bool {
        !self.full && self.rects.is_empty()
    }

    /// The union of all dirty rects, or `None` when clean or full.
    pub fn bounding_rect(&self) -> Option<Rect> {
        if self.full {
            return None;
        }
        self.rects.iter().copied().reduce(|a, b| a.union(b))
    }
}

/// Engine counters: how many commands ran, how the caches behaved.
///
/// Obtained from [`crate::Editor::stats`]. All counters are cumulative
/// over the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Commands applied successfully (excluding undo/redo).
    pub applied: u64,
    /// Undo operations performed.
    pub undos: u64,
    /// Redo operations performed.
    pub redos: u64,
    /// Failed transactions rolled back to their snapshot.
    pub rollbacks: u64,
    /// Change events emitted.
    pub events: u64,
    /// Derived-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Derived-cache lookups that had to recompute.
    pub cache_misses: u64,
    /// Nanoseconds spent inside command application.
    pub apply_nanos: u64,
    /// Dirty rects acknowledged through [`crate::Editor::take_damage`].
    pub damage_rects: u64,
    /// Duplicate per-instance change events merged away by
    /// [`crate::Editor::drain_events`] coalescing.
    pub damage_coalesced: u64,
}

impl Stats {
    /// Cache hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(Stats::default().cache_hit_rate(), None);
        let s = Stats {
            cache_hits: 3,
            cache_misses: 1,
            ..Stats::default()
        };
        assert_eq!(s.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn dirty_rect_unions_old_and_new() {
        let ev = ChangeEvent::InstanceChanged {
            id: InstanceId(0),
            old: Some(Rect::new(0, 0, 10, 10)),
            new: Some(Rect::new(20, 20, 30, 30)),
        };
        assert_eq!(ev.dirty_rect(), Some(Rect::new(0, 0, 30, 30)));
        assert!(!ev.invalidates_everything());
    }

    #[test]
    fn unknown_boxes_force_full_invalidation() {
        let ev = ChangeEvent::InstanceChanged {
            id: InstanceId(0),
            old: None,
            new: Some(Rect::new(0, 0, 1, 1)),
        };
        assert!(ev.invalidates_everything());
        assert!(ChangeEvent::BulkRestore.invalidates_everything());
        assert!(!ChangeEvent::PendingChanged.invalidates_everything());
    }
}
