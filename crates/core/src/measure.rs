//! Area accounting for the paper's figure-9 comparison.
//!
//! "In figure 9, the shaded areas are routing areas. … The important
//! space savings is in the vertical direction since no routing channels
//! are needed to connect the NAND and OR gates." This module measures
//! exactly those quantities: total bounding-box area, the area occupied
//! by route cells (the shaded channel area), and the cell extents.

use crate::cell::CellKind;
use crate::error::RiotError;
use crate::library::Library;
use riot_geom::Rect;

/// Area statistics of one composition cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaReport {
    /// The composition cell's name.
    pub cell: String,
    /// Bounding box of the assembly.
    pub bbox: Rect,
    /// Bounding-box area in square centimicrons.
    pub total_area: i128,
    /// Area covered by route-cell instances (the shaded routing area).
    pub routing_area: i128,
    /// Number of live instances.
    pub instances: usize,
    /// Number of route-cell instances among them.
    pub route_instances: usize,
}

impl AreaReport {
    /// Routing area as a fraction of the total (0 when empty).
    pub fn routing_fraction(&self) -> f64 {
        if self.total_area == 0 {
            0.0
        } else {
            self.routing_area as f64 / self.total_area as f64
        }
    }

    /// Width and height of the assembly in microns.
    pub fn size_microns(&self) -> (f64, f64) {
        (
            self.bbox.width() as f64 / 100.0,
            self.bbox.height() as f64 / 100.0,
        )
    }
}

/// Measures a composition cell. Route cells are identified by their
/// menu names (`route…`), exactly how the session created them.
///
/// # Errors
///
/// [`RiotError::UnknownCell`] / [`RiotError::NotComposition`].
pub fn measure(lib: &Library, cell_name: &str) -> Result<AreaReport, RiotError> {
    let id = lib
        .find(cell_name)
        .ok_or_else(|| RiotError::UnknownCell(cell_name.to_owned()))?;
    let cell = lib.cell(id)?;
    let CellKind::Composition(comp) = &cell.kind else {
        return Err(RiotError::NotComposition(cell_name.to_owned()));
    };
    let mut bbox: Option<Rect> = None;
    let mut routing_area: i128 = 0;
    let mut instances = 0usize;
    let mut route_instances = 0usize;
    for (_, inst) in comp.instances() {
        let sub = lib.cell(inst.cell)?;
        let wb = inst.world_bbox(sub);
        bbox = Some(match bbox {
            Some(acc) => acc.union(wb),
            None => wb,
        });
        instances += 1;
        if sub.name.starts_with("route") {
            route_instances += 1;
            routing_area += wb.area();
        }
    }
    let bbox = bbox.unwrap_or(Rect::new(0, 0, 0, 0));
    Ok(AreaReport {
        cell: cell_name.to_owned(),
        bbox,
        total_area: bbox.area(),
        routing_area,
        instances,
        route_instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editor::{Editor, RouteOptions};
    use riot_geom::{Point, LAMBDA};

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 6 4
wire NP 2 6 10 12 10
end
";

    #[test]
    fn measures_routing_share() {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let a = ed.create_instance(gate).unwrap();
        let b = ed.create_instance(gate).unwrap();
        ed.translate_instance(b, Point::new(40 * LAMBDA, 2 * LAMBDA))
            .unwrap();
        ed.connect(b, "A", a, "OUT").unwrap();
        ed.route(RouteOptions::default()).unwrap();
        ed.finish().unwrap();
        drop(ed);
        let report = measure(&lib, "TOP").unwrap();
        assert_eq!(report.instances, 3);
        assert_eq!(report.route_instances, 1);
        assert!(report.routing_area > 0);
        assert!(report.routing_fraction() > 0.0 && report.routing_fraction() < 1.0);
        assert!(report.total_area >= report.routing_area);
    }

    #[test]
    fn leaf_cell_rejected() {
        let mut lib = Library::new();
        lib.load_sticks(GATE).unwrap();
        assert!(matches!(
            measure(&lib, "gate"),
            Err(RiotError::NotComposition(_))
        ));
        assert!(matches!(
            measure(&lib, "NOPE"),
            Err(RiotError::UnknownCell(_))
        ));
    }
}
