//! RIOT proper: the interactive graphical chip assembly tool.
//!
//! This crate is the primary contribution of the paper (Trimberger &
//! Rowson, DAC 1982): a composition tool over a **separated hierarchy**
//! — leaf cells carry geometry; composition cells carry only instances —
//! with three connection primitives that guarantee connections are made
//! correctly while the designer keeps control of the floorplan:
//!
//! * **abut** — move the *from* instance so connectors touch
//!   ([`Editor::abut`]), with an overlap option for shared power rails;
//! * **route** — emit a river-route cell between the instances and move
//!   the *from* instance against its far side ([`Editor::route`]);
//! * **stretch** — re-solve the *from* instance's Sticks cell with the
//!   *to* connectors' separations and abut the result
//!   ([`Editor::stretch`]).
//!
//! The [`Library`] is the cell menu; the [`Editor`] is a graphical
//! editing session on one composition cell, holding the pending
//! connection list the screen displays continuously. Every editing
//! command is journaled for [`replay`] — Riot's recovery mechanism when
//! leaf cells change shape.
//!
//! # Example
//!
//! ```
//! use riot_core::{Editor, Library};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let inv = lib.load_sticks(
//!     "sticks inv\nbbox 0 0 10 12\npin IN left NP 0 6\npin OUT right NP 10 6\nwire NP 2 0 6 10 6\nend\n",
//! )?;
//! let mut ed = Editor::open(&mut lib, "TOP")?;
//! let a = ed.create_instance(inv)?;
//! let b = ed.create_instance(inv)?;
//! ed.translate_instance(b, riot_geom::Point::new(5000, 0))?;
//! ed.connect(b, "IN", a, "OUT")?;
//! ed.abut(Default::default())?;
//! ed.finish()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod command;
pub mod compose;
pub mod connection;
pub mod editor;
pub mod error;
pub mod events;
pub mod export;
pub mod fault;
mod history;
pub mod instance;
pub mod library;
pub mod measure;
pub mod netlist;
pub mod persist;
pub mod replay;
pub mod routeplan;
mod txn;

pub use cell::{Cell, CellId, CellKind, Connector, LeafSource};
pub use command::{Command, Outcome};
pub use connection::{PendingConnection, WorldConnector};
pub use editor::{AbutOptions, Checkpoint, Editor, RouteOptions, StretchOptions};
pub use error::RiotError;
pub use events::{ChangeEvent, Damage, Stats};
pub use fault::{
    FaultPlan, FAULT_ROUTE_GRID_SOLVE, FAULT_ROUTE_SOLVE, FAULT_SERVE_ACCEPT,
    FAULT_SERVE_CONN_BACKLOG, FAULT_SERVE_FRAME_DECODE, FAULT_SERVE_GROUP_FLUSH,
    FAULT_SERVE_JOURNAL_APPEND, FAULT_SERVE_POLL_WAKEUP, FAULT_SERVE_SNAPSHOT_WRITE,
    FAULT_STRETCH_SOLVE, FAULT_TXN_COMMIT,
};
pub use instance::{Instance, InstanceId};
pub use library::Library;
pub use netlist::{ConnectionLedger, ConnectionViolation, MaintainedConnection};
pub use persist::{decode_session, encode_session, PersistError};
pub use replay::{
    command_to_line, crc32, parse_command_line, replay, Journal, ReplayCommand, WalCorruption,
    WalRecovery, WAL_MAGIC,
};
