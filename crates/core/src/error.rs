//! Errors raised by the assembly tool.

use riot_geom::{Layer, Side};
use std::fmt;

/// Everything that can go wrong while assembling a chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RiotError {
    /// A cell name is not in the cell menu.
    UnknownCell(String),
    /// A cell id is stale or out of range.
    BadCellId(usize),
    /// Adding a cell under a name that already exists.
    DuplicateCell(String),
    /// An instance id is stale (deleted) or out of range.
    BadInstance(usize),
    /// An instance name is not in the edited cell.
    UnknownInstance(String),
    /// A named connector does not exist on an instance.
    UnknownConnector {
        /// The instance's name.
        instance: String,
        /// The missing connector.
        connector: String,
    },
    /// The cell under edit must be a composition cell.
    NotComposition(String),
    /// The operation needs a leaf cell.
    NotLeaf(String),
    /// A connection joining two different layers.
    LayerMismatch {
        /// From-connector layer.
        from: Layer,
        /// To-connector layer.
        to: Layer,
    },
    /// A connection whose connectors are not opposed (and overlap was
    /// not requested).
    NotOpposed {
        /// From-connector side.
        from: Option<Side>,
        /// To-connector side.
        to: Option<Side>,
    },
    /// The pending list mixes more than one *from* instance — Riot's
    /// connections are one-to-many.
    MultipleFromInstances(String, String),
    /// The pending connection list is empty but the command needs it.
    NothingPending,
    /// The *from* and *to* instance of a connection are the same.
    SelfConnection(String),
    /// Connecting to an instance currently being moved (the *from*).
    FromInToList(String),
    /// Stretch requires the from instance's cell in Sticks form — pads
    /// and other CIF cells "cannot be stretched by Riot".
    NotStretchable(String),
    /// The to-side connectors do not line up on a single channel edge.
    RaggedChannelEdge {
        /// Expected edge coordinate.
        expected: i64,
        /// The coordinate that disagreed.
        found: i64,
    },
    /// Underlying routing failure.
    Route(riot_route::RouteError),
    /// Underlying stretch failure.
    Stretch(riot_rest::SolveRestError),
    /// Parse failure in the composition format or a replay file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Underlying CIF failure (import/export).
    Cif(riot_cif::ParseCifError),
    /// Underlying Sticks failure (import).
    Sticks(String),
    /// Array replication parameters out of range.
    BadReplication {
        /// Requested columns.
        cols: u32,
        /// Requested rows.
        rows: u32,
    },
    /// The channel between the instances cannot hold the route without
    /// moving the from instance.
    ChannelTooTight {
        /// Lambda the route needs.
        needed: i64,
        /// Lambda available between the instances.
        available: i64,
    },
    /// A deterministic fault injected by a [`crate::FaultPlan`] at the
    /// named fault site. Only raised under the correctness harness.
    FaultInjected(String),
}

impl fmt::Display for RiotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiotError::UnknownCell(name) => write!(f, "no cell named `{name}` in the menu"),
            RiotError::BadCellId(id) => write!(f, "stale cell id {id}"),
            RiotError::DuplicateCell(name) => write!(f, "cell `{name}` already exists"),
            RiotError::BadInstance(id) => write!(f, "stale instance id {id}"),
            RiotError::UnknownInstance(name) => write!(f, "no instance named `{name}`"),
            RiotError::UnknownConnector {
                instance,
                connector,
            } => write!(f, "instance `{instance}` has no connector `{connector}`"),
            RiotError::NotComposition(name) => {
                write!(f, "cell `{name}` is not a composition cell")
            }
            RiotError::NotLeaf(name) => write!(f, "cell `{name}` is not a leaf cell"),
            RiotError::LayerMismatch { from, to } => {
                write!(f, "connectors on different layers: {from} vs {to}")
            }
            RiotError::NotOpposed { from, to } => write!(
                f,
                "connectors are not opposed ({} vs {})",
                opt_side(from),
                opt_side(to)
            ),
            RiotError::MultipleFromInstances(a, b) => write!(
                f,
                "pending list has two from instances (`{a}` and `{b}`); connections are one-to-many"
            ),
            RiotError::NothingPending => f.write_str("no pending connections"),
            RiotError::SelfConnection(name) => {
                write!(f, "instance `{name}` cannot connect to itself")
            }
            RiotError::FromInToList(name) => {
                write!(f, "instance `{name}` is both from and to")
            }
            RiotError::NotStretchable(name) => write!(
                f,
                "cell `{name}` has no Sticks form and cannot be stretched"
            ),
            RiotError::RaggedChannelEdge { expected, found } => write!(
                f,
                "to-connectors not on one channel edge: {found} vs {expected}"
            ),
            RiotError::Route(e) => write!(f, "route failed: {e}"),
            RiotError::Stretch(e) => write!(f, "stretch failed: {e}"),
            RiotError::Parse { line, message } => {
                write!(f, "composition line {line}: {message}")
            }
            RiotError::Cif(e) => write!(f, "CIF: {e}"),
            RiotError::Sticks(e) => write!(f, "sticks: {e}"),
            RiotError::BadReplication { cols, rows } => {
                write!(f, "bad replication {cols} x {rows}")
            }
            RiotError::ChannelTooTight { needed, available } => write!(
                f,
                "route needs {needed} lambda but only {available} available without moving the from instance"
            ),
            RiotError::FaultInjected(site) => {
                write!(f, "injected fault at `{site}`")
            }
        }
    }
}

fn opt_side(s: &Option<Side>) -> String {
    match s {
        Some(side) => side.to_string(),
        None => "interior".to_owned(),
    }
}

impl std::error::Error for RiotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RiotError::Route(e) => Some(e),
            RiotError::Stretch(e) => Some(e),
            RiotError::Cif(e) => Some(e),
            _ => None,
        }
    }
}

impl From<riot_route::RouteError> for RiotError {
    fn from(e: riot_route::RouteError) -> Self {
        RiotError::Route(e)
    }
}

impl From<riot_rest::SolveRestError> for RiotError {
    fn from(e: riot_rest::SolveRestError) -> Self {
        RiotError::Stretch(e)
    }
}

impl From<riot_cif::ParseCifError> for RiotError {
    fn from(e: riot_cif::ParseCifError) -> Self {
        RiotError::Cif(e)
    }
}

impl From<riot_sticks::ParseSticksError> for RiotError {
    fn from(e: riot_sticks::ParseSticksError) -> Self {
        RiotError::Sticks(e.to_string())
    }
}

impl From<riot_sticks::ValidateSticksError> for RiotError {
    fn from(e: riot_sticks::ValidateSticksError) -> Self {
        RiotError::Sticks(e.to_string())
    }
}
