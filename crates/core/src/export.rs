//! CIF export: composition cells to mask geometry.
//!
//! "Riot writes composition format files which are converted to CIF for
//! mask generation." Leaf CIF cells pass through; Sticks leafs go
//! through mask generation; composition cells become CIF symbols whose
//! calls expand the array replication.

use crate::cell::{Cell, CellKind, LeafSource};
use crate::error::RiotError;
use crate::library::Library;
use riot_cif::model::{CifCall, CifCell, CifConnector, CifFile};
use riot_geom::Transform;

/// Exports the whole library as one CIF file, with a top-level call of
/// `top` (a cell name). Symbol numbers are assigned in menu order
/// (library index + 1).
///
/// # Errors
///
/// [`RiotError::UnknownCell`] when `top` is not in the menu.
pub fn to_cif(lib: &Library, top: &str) -> Result<CifFile, RiotError> {
    let top_id = lib
        .find(top)
        .ok_or_else(|| RiotError::UnknownCell(top.to_owned()))?;
    let mut file = CifFile::new();
    for (id, cell) in lib.iter() {
        let symbol = id.index() as u32 + 1;
        file.insert_cell(cif_cell_for(lib, cell, symbol));
    }
    file.push_top_call(CifCall {
        cell: top_id.index() as u32 + 1,
        transform: Transform::IDENTITY,
    });
    Ok(file)
}

fn cif_cell_for(lib: &Library, cell: &Cell, symbol: u32) -> CifCell {
    let connectors = cell
        .connectors
        .iter()
        .map(|c| CifConnector {
            name: c.name.clone(),
            location: c.location,
            layer: c.layer,
            width: c.width,
        })
        .collect();
    match &cell.kind {
        CellKind::Leaf(LeafSource::Cif { shapes }) => CifCell {
            id: symbol,
            name: Some(cell.name.clone()),
            shapes: shapes.clone(),
            calls: vec![],
            connectors,
        },
        CellKind::Leaf(LeafSource::Sticks(sticks)) => {
            let mut out = riot_sticks::mask::to_cif_cell(sticks, symbol);
            out.name = Some(cell.name.clone());
            out
        }
        CellKind::Composition(comp) => {
            let mut calls = Vec::new();
            for (_, inst) in comp.instances() {
                let callee = inst.cell.index() as u32 + 1;
                if lib.cell(inst.cell).is_err() {
                    continue;
                }
                for c in 0..inst.cols {
                    for r in 0..inst.rows {
                        calls.push(CifCall {
                            cell: callee,
                            transform: inst.element_transform(c, r),
                        });
                    }
                }
            }
            CifCell {
                id: symbol,
                name: Some(cell.name.clone()),
                shapes: vec![],
                calls,
                connectors,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editor::Editor;
    use riot_geom::{Point, LAMBDA};

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
wire NP 2 0 4 12 4
end
";

    fn session() -> Library {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let i = ed.create_instance(gate).unwrap();
        ed.replicate_instance(i, 2, 1).unwrap();
        ed.translate_instance(i, Point::new(5 * LAMBDA, 0)).unwrap();
        ed.finish().unwrap();
        drop(ed);
        lib
    }

    #[test]
    fn export_has_all_cells_and_top_call() {
        let lib = session();
        let file = to_cif(&lib, "TOP").unwrap();
        assert_eq!(file.cells().len(), 2);
        assert_eq!(file.top_calls().len(), 1);
        let top = file.cell_by_name("TOP").unwrap();
        // 2x1 array expands into two calls.
        assert_eq!(top.calls.len(), 2);
        assert!(top.shapes.is_empty(), "separated hierarchy: no geometry");
    }

    #[test]
    fn export_parses_back() {
        let lib = session();
        let file = to_cif(&lib, "TOP").unwrap();
        let text = riot_cif::to_text(&file);
        let again = riot_cif::parse(&text).unwrap();
        assert_eq!(file, again);
        // And flattens without error.
        let flat = riot_cif::flatten(&again).unwrap();
        assert!(!flat.is_empty());
    }

    #[test]
    fn unknown_top_rejected() {
        let lib = session();
        assert!(matches!(
            to_cif(&lib, "NOPE"),
            Err(RiotError::UnknownCell(_))
        ));
    }

    #[test]
    fn array_elements_at_spacing() {
        let lib = session();
        let file = to_cif(&lib, "TOP").unwrap();
        let flat = riot_cif::flatten(&file).unwrap();
        // Two wires, 12λ apart (default column spacing = cell width).
        assert_eq!(flat.len(), 2);
        let bb0 = flat[0].geometry.bounding_box();
        let bb1 = flat[1].geometry.bounding_box();
        assert_eq!((bb1.x0 - bb0.x0).abs(), 12 * LAMBDA);
    }
}
