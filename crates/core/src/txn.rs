//! Transactional apply: validate-then-commit for compound commands.
//!
//! The simple editing commands (move, rotate, connect…) validate all
//! their inputs before touching anything, so a failure leaves the
//! session untouched by construction. The compound commands — abut,
//! route, stretch, bring-out, finish — interleave mutation with work
//! that can fail (river routing, REST solving). For those the engine
//! captures a [`Snapshot`] first and rolls back to it on error, so a
//! failed route or stretch leaves the library exactly as it was.
//!
//! A successful compound command keeps its snapshot as the undo record:
//! the capture that bought transactionality also buys history, at no
//! extra cost.

use crate::cell::{Cell, CellId};
use crate::connection::PendingConnection;
use crate::library::{Library, LibraryCheckpoint};

/// Everything a compound command may change, captured before it runs.
///
/// The library's cell list only ever grows during a session (route and
/// stretched cells are appended; nothing else is touched), so the
/// library side of the snapshot is a cheap [`LibraryCheckpoint`]. The
/// cell under edit and the pending list are cloned in full.
#[derive(Debug, Clone)]
pub(crate) struct Snapshot {
    /// The library rollback point. Fields are crate-visible so
    /// `crate::persist` can serialize undo records for suspended
    /// sessions.
    pub(crate) checkpoint: LibraryCheckpoint,
    /// Full clone of the cell under edit.
    pub(crate) edit_cell: Cell,
    /// The pending list at capture time.
    pub(crate) pending: Vec<PendingConnection>,
}

impl Snapshot {
    /// Captures the session state relevant to a compound command.
    pub(crate) fn capture(lib: &Library, cell: CellId, pending: &[PendingConnection]) -> Snapshot {
        Snapshot {
            checkpoint: lib.checkpoint(),
            edit_cell: lib.cell(cell).expect("edit cell exists").clone(),
            pending: pending.to_vec(),
        }
    }

    /// Restores the captured state: drops cells added since the
    /// capture, restores the edit cell and the pending list.
    pub(crate) fn restore(
        self,
        lib: &mut Library,
        cell: CellId,
        pending: &mut Vec<PendingConnection>,
    ) {
        lib.rollback(self.checkpoint);
        *lib.cell_mut(cell).expect("edit cell survives rollback") = self.edit_cell;
        *pending = self.pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    #[test]
    fn snapshot_round_trip() {
        let mut lib = Library::new();
        let top = lib.add_cell(Cell::new_composition("TOP")).unwrap();
        let mut pending = Vec::new();
        let snap = Snapshot::capture(&lib, top, &pending);

        // Mutate: add a cell, change the edit cell's bbox.
        lib.add_cell(Cell::new_composition("OTHER")).unwrap();
        lib.cell_mut(top).unwrap().bbox = riot_geom::Rect::new(0, 0, 99, 99);
        assert_eq!(lib.len(), 2);

        snap.restore(&mut lib, top, &mut pending);
        assert_eq!(lib.len(), 1);
        assert_eq!(
            lib.cell(top).unwrap().bbox,
            riot_geom::Rect::new(0, 0, 0, 0)
        );
    }
}
