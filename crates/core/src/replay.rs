//! REPLAY: the command journal.
//!
//! "Riot saves the commands given by the user and can re-run an editing
//! session if some of the input files have changed. The replay file uses
//! instance names and connector names to identify connections, and the
//! positions are re-calculated, thereby avoiding the problems with
//! differently-shaped cells. The replay also enables users to recover an
//! abnormally-terminated editing session or an accidentally-deleted
//! file."
//!
//! The journal is a `Vec<`[`Command`]`>` — the same values the command
//! engine executes — so replay is nothing but a loop of
//! [`crate::Editor::execute`]. This module owns only the text
//! (de)serialization; there is no second per-command dispatch.

use crate::command::Command;
use crate::editor::Editor;
use crate::error::RiotError;
use crate::library::Library;
use riot_geom::Point;
use riot_rest::SolveMode;
use riot_route::RouterOptions;
use std::fmt::Write as _;

/// The journaled form of a command. Since the engine unification this
/// *is* [`Command`]; the alias keeps the original name alive.
pub use crate::command::Command as ReplayCommand;

/// An ordered journal of commands, savable as text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Journal {
    commands: Vec<Command>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one command.
    pub fn record(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// The commands in order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Serializes to the replay file format.
    ///
    /// `Route`'s router tuning is not serialized: the text keeps only
    /// `move|stay` and parsing restores the defaults.
    pub fn to_text(&self) -> String {
        let mut out = String::from("riot replay v1\n");
        for cmd in &self.commands {
            match cmd {
                Command::Edit { cell } => {
                    let _ = writeln!(out, "edit {cell}");
                }
                Command::Create { cell, instance } => {
                    let _ = writeln!(out, "create {cell} {instance}");
                }
                Command::Translate { instance, d } => {
                    let _ = writeln!(out, "translate {instance} {} {}", d.x, d.y);
                }
                Command::Orient { instance, orient } => {
                    let _ = writeln!(out, "orient {instance} {orient}");
                }
                Command::Replicate {
                    instance,
                    cols,
                    rows,
                } => {
                    let _ = writeln!(out, "replicate {instance} {cols} {rows}");
                }
                Command::Spacing { instance, col, row } => {
                    let _ = writeln!(out, "spacing {instance} {col} {row}");
                }
                Command::Delete { instance } => {
                    let _ = writeln!(out, "delete {instance}");
                }
                Command::Connect {
                    from,
                    from_connector,
                    to,
                    to_connector,
                } => {
                    let _ = writeln!(out, "connect {from} {from_connector} {to} {to_connector}");
                }
                Command::RemovePending { index } => {
                    let _ = writeln!(out, "unpend {index}");
                }
                Command::ClearPending => out.push_str("clearpend\n"),
                Command::Abut { overlap } => {
                    let _ = writeln!(out, "abut {}", if *overlap { "overlap" } else { "touch" });
                }
                Command::AbutInstances { from, to } => {
                    let _ = writeln!(out, "abutinst {from} {to}");
                }
                Command::Route { move_from, .. } => {
                    let _ = writeln!(out, "route {}", if *move_from { "move" } else { "stay" });
                }
                Command::Stretch { mode } => match mode {
                    SolveMode::PreserveGaps => out.push_str("stretch\n"),
                    SolveMode::DesignRules => out.push_str("stretch rules\n"),
                },
                Command::BringOut {
                    instance,
                    connectors,
                    side,
                } => {
                    let _ = write!(out, "bringout {instance} {side}");
                    for c in connectors {
                        let _ = write!(out, " {c}");
                    }
                    out.push('\n');
                }
                Command::Finish => out.push_str("finish\n"),
                Command::Undo => out.push_str("undo\n"),
                Command::Redo => out.push_str("redo\n"),
            }
        }
        out
    }

    /// Parses a replay file.
    ///
    /// # Errors
    ///
    /// [`RiotError::Parse`] with the offending line.
    pub fn parse(text: &str) -> Result<Journal, RiotError> {
        let mut lines = text.lines().enumerate();
        let perr = |line: usize, msg: &str| RiotError::Parse {
            line: line + 1,
            message: msg.to_owned(),
        };
        match lines.next() {
            Some((_, header)) if header.trim() == "riot replay v1" => {}
            _ => return Err(perr(0, "missing `riot replay v1` header")),
        }
        let mut journal = Journal::new();
        for (n, raw) in lines {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            let need = |k: usize| -> Result<(), RiotError> {
                if f.len() == k {
                    Ok(())
                } else {
                    Err(perr(n, &format!("`{}` needs {} fields", f[0], k - 1)))
                }
            };
            let cmd = match f[0] {
                "edit" => {
                    need(2)?;
                    Command::Edit { cell: f[1].into() }
                }
                "create" => {
                    need(3)?;
                    Command::Create {
                        cell: f[1].into(),
                        instance: f[2].into(),
                    }
                }
                "translate" => {
                    need(4)?;
                    Command::Translate {
                        instance: f[1].into(),
                        d: Point::new(
                            f[2].parse().map_err(|_| perr(n, "bad integer"))?,
                            f[3].parse().map_err(|_| perr(n, "bad integer"))?,
                        ),
                    }
                }
                "orient" => {
                    need(3)?;
                    Command::Orient {
                        instance: f[1].into(),
                        orient: f[2].parse().map_err(|_| perr(n, "bad orientation"))?,
                    }
                }
                "replicate" => {
                    need(4)?;
                    Command::Replicate {
                        instance: f[1].into(),
                        cols: f[2].parse().map_err(|_| perr(n, "bad count"))?,
                        rows: f[3].parse().map_err(|_| perr(n, "bad count"))?,
                    }
                }
                "spacing" => {
                    need(4)?;
                    Command::Spacing {
                        instance: f[1].into(),
                        col: f[2].parse().map_err(|_| perr(n, "bad pitch"))?,
                        row: f[3].parse().map_err(|_| perr(n, "bad pitch"))?,
                    }
                }
                "delete" => {
                    need(2)?;
                    Command::Delete {
                        instance: f[1].into(),
                    }
                }
                "connect" => {
                    need(5)?;
                    Command::Connect {
                        from: f[1].into(),
                        from_connector: f[2].into(),
                        to: f[3].into(),
                        to_connector: f[4].into(),
                    }
                }
                "unpend" => {
                    need(2)?;
                    Command::RemovePending {
                        index: f[1].parse().map_err(|_| perr(n, "bad index"))?,
                    }
                }
                "clearpend" => {
                    need(1)?;
                    Command::ClearPending
                }
                "abut" => {
                    need(2)?;
                    Command::Abut {
                        overlap: match f[1] {
                            "overlap" => true,
                            "touch" => false,
                            _ => return Err(perr(n, "abut wants overlap|touch")),
                        },
                    }
                }
                "abutinst" => {
                    need(3)?;
                    Command::AbutInstances {
                        from: f[1].into(),
                        to: f[2].into(),
                    }
                }
                "route" => {
                    need(2)?;
                    Command::Route {
                        move_from: match f[1] {
                            "move" => true,
                            "stay" => false,
                            _ => return Err(perr(n, "route wants move|stay")),
                        },
                        router: RouterOptions::new(),
                    }
                }
                "stretch" => {
                    let mode = match f.len() {
                        1 => SolveMode::PreserveGaps,
                        2 if f[1] == "rules" => SolveMode::DesignRules,
                        _ => return Err(perr(n, "stretch wants no field or `rules`")),
                    };
                    Command::Stretch { mode }
                }
                "bringout" => {
                    if f.len() < 4 {
                        return Err(perr(n, "bringout wants instance side connectors…"));
                    }
                    Command::BringOut {
                        instance: f[1].into(),
                        side: f[2].parse().map_err(|_| perr(n, "bad side"))?,
                        connectors: f[3..].iter().map(|s| (*s).to_owned()).collect(),
                    }
                }
                "finish" => {
                    need(1)?;
                    Command::Finish
                }
                "undo" => {
                    need(1)?;
                    Command::Undo
                }
                "redo" => {
                    need(1)?;
                    Command::Redo
                }
                other => return Err(perr(n, &format!("unknown command `{other}`"))),
            };
            journal.record(cmd);
        }
        Ok(journal)
    }
}

/// Re-runs a journal against a library whose leaf cells may have
/// changed shape. Positions of connections are recomputed from names.
/// Returns the warnings the re-run produced.
///
/// Every command after the `edit` head goes through the one
/// [`Editor::execute`] entry point — the interactive editor, undo/redo,
/// and this loop share a single dispatch.
///
/// # Errors
///
/// Any editor error the re-run hits (unknown cells/instances, routing
/// failures…). The journal must begin with an `edit` command.
pub fn replay(journal: &Journal, lib: &mut Library) -> Result<Vec<String>, RiotError> {
    let mut commands = journal.commands().iter();
    let first = commands.next().ok_or(RiotError::Parse {
        line: 0,
        message: "empty journal".into(),
    })?;
    let Command::Edit { cell } = first else {
        return Err(RiotError::Parse {
            line: 1,
            message: "journal must start with `edit`".into(),
        });
    };
    let mut ed = Editor::open(lib, cell)?;
    for cmd in commands {
        if matches!(cmd, Command::Edit { .. }) {
            return Err(RiotError::Parse {
                line: 0,
                message: "nested `edit` in journal".into(),
            });
        }
        ed.execute(cmd.clone())?;
    }
    Ok(ed.take_warnings())
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::{Orientation, Side};

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.record(ReplayCommand::Edit { cell: "TOP".into() });
        j.record(ReplayCommand::Create {
            cell: "gate".into(),
            instance: "I0".into(),
        });
        j.record(ReplayCommand::Translate {
            instance: "I0".into(),
            d: Point::new(-100, 2500),
        });
        j.record(ReplayCommand::Orient {
            instance: "I0".into(),
            orient: Orientation::MX90,
        });
        j.record(ReplayCommand::Connect {
            from: "I0".into(),
            from_connector: "A".into(),
            to: "I1".into(),
            to_connector: "X".into(),
        });
        j.record(ReplayCommand::RemovePending { index: 0 });
        j.record(ReplayCommand::ClearPending);
        j.record(ReplayCommand::Abut { overlap: true });
        j.record(ReplayCommand::Route {
            move_from: false,
            router: RouterOptions::new(),
        });
        j.record(ReplayCommand::Stretch {
            mode: SolveMode::DesignRules,
        });
        j.record(ReplayCommand::BringOut {
            instance: "I0".into(),
            connectors: vec!["A".into(), "B".into()],
            side: Side::Left,
        });
        j.record(ReplayCommand::Undo);
        j.record(ReplayCommand::Redo);
        j.record(ReplayCommand::Finish);
        j
    }

    #[test]
    fn text_round_trip() {
        let j = sample_journal();
        let text = j.to_text();
        let again = Journal::parse(&text).unwrap();
        assert_eq!(j, again);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(
            Journal::parse("not a replay\n"),
            Err(RiotError::Parse { .. })
        ));
    }

    #[test]
    fn parse_rejects_unknown_command() {
        let err = Journal::parse("riot replay v1\nfrobnicate I0\n").unwrap_err();
        assert!(matches!(err, RiotError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let j = Journal::parse("riot replay v1\n# nothing\n\nfinish\n").unwrap();
        assert_eq!(j.commands(), &[ReplayCommand::Finish]);
    }

    #[test]
    fn parse_stretch_modes() {
        let j = Journal::parse("riot replay v1\nstretch\nstretch rules\n").unwrap();
        assert_eq!(
            j.commands(),
            &[
                ReplayCommand::Stretch {
                    mode: SolveMode::PreserveGaps
                },
                ReplayCommand::Stretch {
                    mode: SolveMode::DesignRules
                },
            ]
        );
    }

    #[test]
    fn replay_requires_edit_first() {
        let mut lib = Library::new();
        let mut j = Journal::new();
        j.record(ReplayCommand::Finish);
        assert!(matches!(replay(&j, &mut lib), Err(RiotError::Parse { .. })));
    }
}
