//! REPLAY: the command journal.
//!
//! "Riot saves the commands given by the user and can re-run an editing
//! session if some of the input files have changed. The replay file uses
//! instance names and connector names to identify connections, and the
//! positions are re-calculated, thereby avoiding the problems with
//! differently-shaped cells. The replay also enables users to recover an
//! abnormally-terminated editing session or an accidentally-deleted
//! file."

use crate::editor::{AbutOptions, Editor, RouteOptions, StretchOptions};
use crate::error::RiotError;
use crate::library::Library;
use riot_geom::{Orientation, Point, Side};
use std::fmt::Write as _;

/// One journaled command, keyed by names rather than positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayCommand {
    /// Begin editing a composition cell.
    Edit {
        /// Composition cell name.
        cell: String,
    },
    /// CREATE an instance of a cell.
    Create {
        /// Defining cell's name.
        cell: String,
        /// New instance's name.
        instance: String,
    },
    /// MOVE an instance.
    Translate {
        /// Instance name.
        instance: String,
        /// Displacement.
        d: Point,
    },
    /// ROTATE/MIRROR an instance.
    Orient {
        /// Instance name.
        instance: String,
        /// Orientation composed onto the instance.
        orient: Orientation,
    },
    /// Array replication.
    Replicate {
        /// Instance name.
        instance: String,
        /// Columns.
        cols: u32,
        /// Rows.
        rows: u32,
    },
    /// Array spacing override.
    Spacing {
        /// Instance name.
        instance: String,
        /// Column pitch.
        col: i64,
        /// Row pitch.
        row: i64,
    },
    /// DELETE an instance.
    Delete {
        /// Instance name.
        instance: String,
    },
    /// Add a pending connection.
    Connect {
        /// From instance.
        from: String,
        /// Connector on the from instance.
        from_connector: String,
        /// To instance.
        to: String,
        /// Connector on the to instance.
        to_connector: String,
    },
    /// The ABUT connection command.
    Abut {
        /// Overlap option.
        overlap: bool,
    },
    /// Edge abutment of two instances without connectors.
    AbutInstances {
        /// From instance.
        from: String,
        /// To instance.
        to: String,
    },
    /// The ROUTE connection command.
    Route {
        /// Whether the from instance moves against the route.
        move_from: bool,
    },
    /// The STRETCH connection command.
    Stretch,
    /// Bring connectors out to the composition boundary.
    BringOut {
        /// Instance name.
        instance: String,
        /// Connector names.
        connectors: Vec<String>,
        /// Side being brought out.
        side: Side,
    },
    /// Finish the cell.
    Finish,
}

/// An ordered journal of commands, savable as text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Journal {
    commands: Vec<ReplayCommand>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one command.
    pub fn record(&mut self, cmd: ReplayCommand) {
        self.commands.push(cmd);
    }

    /// The commands in order.
    pub fn commands(&self) -> &[ReplayCommand] {
        &self.commands
    }

    /// Serializes to the replay file format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("riot replay v1\n");
        for cmd in &self.commands {
            match cmd {
                ReplayCommand::Edit { cell } => {
                    let _ = writeln!(out, "edit {cell}");
                }
                ReplayCommand::Create { cell, instance } => {
                    let _ = writeln!(out, "create {cell} {instance}");
                }
                ReplayCommand::Translate { instance, d } => {
                    let _ = writeln!(out, "translate {instance} {} {}", d.x, d.y);
                }
                ReplayCommand::Orient { instance, orient } => {
                    let _ = writeln!(out, "orient {instance} {orient}");
                }
                ReplayCommand::Replicate {
                    instance,
                    cols,
                    rows,
                } => {
                    let _ = writeln!(out, "replicate {instance} {cols} {rows}");
                }
                ReplayCommand::Spacing { instance, col, row } => {
                    let _ = writeln!(out, "spacing {instance} {col} {row}");
                }
                ReplayCommand::Delete { instance } => {
                    let _ = writeln!(out, "delete {instance}");
                }
                ReplayCommand::Connect {
                    from,
                    from_connector,
                    to,
                    to_connector,
                } => {
                    let _ = writeln!(out, "connect {from} {from_connector} {to} {to_connector}");
                }
                ReplayCommand::Abut { overlap } => {
                    let _ = writeln!(out, "abut {}", if *overlap { "overlap" } else { "touch" });
                }
                ReplayCommand::AbutInstances { from, to } => {
                    let _ = writeln!(out, "abutinst {from} {to}");
                }
                ReplayCommand::Route { move_from } => {
                    let _ = writeln!(out, "route {}", if *move_from { "move" } else { "stay" });
                }
                ReplayCommand::Stretch => out.push_str("stretch\n"),
                ReplayCommand::BringOut {
                    instance,
                    connectors,
                    side,
                } => {
                    let _ = write!(out, "bringout {instance} {side}");
                    for c in connectors {
                        let _ = write!(out, " {c}");
                    }
                    out.push('\n');
                }
                ReplayCommand::Finish => out.push_str("finish\n"),
            }
        }
        out
    }

    /// Parses a replay file.
    ///
    /// # Errors
    ///
    /// [`RiotError::Parse`] with the offending line.
    pub fn parse(text: &str) -> Result<Journal, RiotError> {
        let mut lines = text.lines().enumerate();
        let perr = |line: usize, msg: &str| RiotError::Parse {
            line: line + 1,
            message: msg.to_owned(),
        };
        match lines.next() {
            Some((_, header)) if header.trim() == "riot replay v1" => {}
            _ => return Err(perr(0, "missing `riot replay v1` header")),
        }
        let mut journal = Journal::new();
        for (n, raw) in lines {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            let need = |k: usize| -> Result<(), RiotError> {
                if f.len() == k {
                    Ok(())
                } else {
                    Err(perr(n, &format!("`{}` needs {} fields", f[0], k - 1)))
                }
            };
            let cmd = match f[0] {
                "edit" => {
                    need(2)?;
                    ReplayCommand::Edit { cell: f[1].into() }
                }
                "create" => {
                    need(3)?;
                    ReplayCommand::Create {
                        cell: f[1].into(),
                        instance: f[2].into(),
                    }
                }
                "translate" => {
                    need(4)?;
                    ReplayCommand::Translate {
                        instance: f[1].into(),
                        d: Point::new(
                            f[2].parse().map_err(|_| perr(n, "bad integer"))?,
                            f[3].parse().map_err(|_| perr(n, "bad integer"))?,
                        ),
                    }
                }
                "orient" => {
                    need(3)?;
                    ReplayCommand::Orient {
                        instance: f[1].into(),
                        orient: f[2].parse().map_err(|_| perr(n, "bad orientation"))?,
                    }
                }
                "replicate" => {
                    need(4)?;
                    ReplayCommand::Replicate {
                        instance: f[1].into(),
                        cols: f[2].parse().map_err(|_| perr(n, "bad count"))?,
                        rows: f[3].parse().map_err(|_| perr(n, "bad count"))?,
                    }
                }
                "spacing" => {
                    need(4)?;
                    ReplayCommand::Spacing {
                        instance: f[1].into(),
                        col: f[2].parse().map_err(|_| perr(n, "bad pitch"))?,
                        row: f[3].parse().map_err(|_| perr(n, "bad pitch"))?,
                    }
                }
                "delete" => {
                    need(2)?;
                    ReplayCommand::Delete {
                        instance: f[1].into(),
                    }
                }
                "connect" => {
                    need(5)?;
                    ReplayCommand::Connect {
                        from: f[1].into(),
                        from_connector: f[2].into(),
                        to: f[3].into(),
                        to_connector: f[4].into(),
                    }
                }
                "abut" => {
                    need(2)?;
                    ReplayCommand::Abut {
                        overlap: match f[1] {
                            "overlap" => true,
                            "touch" => false,
                            _ => return Err(perr(n, "abut wants overlap|touch")),
                        },
                    }
                }
                "abutinst" => {
                    need(3)?;
                    ReplayCommand::AbutInstances {
                        from: f[1].into(),
                        to: f[2].into(),
                    }
                }
                "route" => {
                    need(2)?;
                    ReplayCommand::Route {
                        move_from: match f[1] {
                            "move" => true,
                            "stay" => false,
                            _ => return Err(perr(n, "route wants move|stay")),
                        },
                    }
                }
                "stretch" => {
                    need(1)?;
                    ReplayCommand::Stretch
                }
                "bringout" => {
                    if f.len() < 4 {
                        return Err(perr(n, "bringout wants instance side connectors…"));
                    }
                    ReplayCommand::BringOut {
                        instance: f[1].into(),
                        side: f[2].parse().map_err(|_| perr(n, "bad side"))?,
                        connectors: f[3..].iter().map(|s| (*s).to_owned()).collect(),
                    }
                }
                "finish" => {
                    need(1)?;
                    ReplayCommand::Finish
                }
                other => return Err(perr(n, &format!("unknown command `{other}`"))),
            };
            journal.record(cmd);
        }
        Ok(journal)
    }
}

/// Re-runs a journal against a library whose leaf cells may have
/// changed shape. Positions of connections are recomputed from names.
/// Returns the warnings the re-run produced.
///
/// # Errors
///
/// Any editor error the re-run hits (unknown cells/instances, routing
/// failures…). The journal must begin with an `edit` command.
pub fn replay(journal: &Journal, lib: &mut Library) -> Result<Vec<String>, RiotError> {
    let mut commands = journal.commands().iter();
    let first = commands.next().ok_or(RiotError::Parse {
        line: 0,
        message: "empty journal".into(),
    })?;
    let ReplayCommand::Edit { cell } = first else {
        return Err(RiotError::Parse {
            line: 1,
            message: "journal must start with `edit`".into(),
        });
    };
    let mut ed = Editor::open(lib, cell)?;

    let find_inst = |ed: &Editor<'_>, name: &str| -> Result<crate::InstanceId, RiotError> {
        ed.find_instance(name)
            .ok_or_else(|| RiotError::UnknownInstance(name.to_owned()))
    };

    for cmd in commands {
        match cmd {
            ReplayCommand::Edit { .. } => {
                return Err(RiotError::Parse {
                    line: 0,
                    message: "nested `edit` in journal".into(),
                })
            }
            ReplayCommand::Create { cell, instance } => {
                let id = ed
                    .library()
                    .find(cell)
                    .ok_or_else(|| RiotError::UnknownCell(cell.clone()))?;
                ed.create_named_instance(id, instance.clone())?;
            }
            ReplayCommand::Translate { instance, d } => {
                let id = find_inst(&ed, instance)?;
                ed.translate_instance(id, *d)?;
            }
            ReplayCommand::Orient { instance, orient } => {
                let id = find_inst(&ed, instance)?;
                ed.orient_instance(id, *orient)?;
            }
            ReplayCommand::Replicate {
                instance,
                cols,
                rows,
            } => {
                let id = find_inst(&ed, instance)?;
                ed.replicate_instance(id, *cols, *rows)?;
            }
            ReplayCommand::Spacing { instance, col, row } => {
                let id = find_inst(&ed, instance)?;
                ed.set_spacing(id, *col, *row)?;
            }
            ReplayCommand::Delete { instance } => {
                let id = find_inst(&ed, instance)?;
                ed.delete_instance(id)?;
            }
            ReplayCommand::Connect {
                from,
                from_connector,
                to,
                to_connector,
            } => {
                let f = find_inst(&ed, from)?;
                let t = find_inst(&ed, to)?;
                ed.connect(f, from_connector, t, to_connector)?;
            }
            ReplayCommand::Abut { overlap } => {
                ed.abut(AbutOptions { overlap: *overlap })?;
            }
            ReplayCommand::AbutInstances { from, to } => {
                let f = find_inst(&ed, from)?;
                let t = find_inst(&ed, to)?;
                ed.abut_instances(f, t)?;
            }
            ReplayCommand::Route { move_from } => {
                ed.route(RouteOptions {
                    move_from: *move_from,
                    ..RouteOptions::default()
                })?;
            }
            ReplayCommand::Stretch => {
                ed.stretch(StretchOptions::default())?;
            }
            ReplayCommand::BringOut {
                instance,
                connectors,
                side,
            } => {
                let id = find_inst(&ed, instance)?;
                let names: Vec<&str> = connectors.iter().map(String::as_str).collect();
                ed.bring_out(id, &names, *side)?;
            }
            ReplayCommand::Finish => {
                ed.finish()?;
            }
        }
    }
    Ok(ed.take_warnings())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.record(ReplayCommand::Edit { cell: "TOP".into() });
        j.record(ReplayCommand::Create {
            cell: "gate".into(),
            instance: "I0".into(),
        });
        j.record(ReplayCommand::Translate {
            instance: "I0".into(),
            d: Point::new(-100, 2500),
        });
        j.record(ReplayCommand::Orient {
            instance: "I0".into(),
            orient: Orientation::MX90,
        });
        j.record(ReplayCommand::Connect {
            from: "I0".into(),
            from_connector: "A".into(),
            to: "I1".into(),
            to_connector: "X".into(),
        });
        j.record(ReplayCommand::Abut { overlap: true });
        j.record(ReplayCommand::Route { move_from: false });
        j.record(ReplayCommand::BringOut {
            instance: "I0".into(),
            connectors: vec!["A".into(), "B".into()],
            side: Side::Left,
        });
        j.record(ReplayCommand::Finish);
        j
    }

    #[test]
    fn text_round_trip() {
        let j = sample_journal();
        let text = j.to_text();
        let again = Journal::parse(&text).unwrap();
        assert_eq!(j, again);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(
            Journal::parse("not a replay\n"),
            Err(RiotError::Parse { .. })
        ));
    }

    #[test]
    fn parse_rejects_unknown_command() {
        let err = Journal::parse("riot replay v1\nfrobnicate I0\n").unwrap_err();
        assert!(matches!(err, RiotError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let j = Journal::parse("riot replay v1\n# nothing\n\nfinish\n").unwrap();
        assert_eq!(j.commands(), &[ReplayCommand::Finish]);
    }

    #[test]
    fn replay_requires_edit_first() {
        let mut lib = Library::new();
        let mut j = Journal::new();
        j.record(ReplayCommand::Finish);
        assert!(matches!(
            replay(&j, &mut lib),
            Err(RiotError::Parse { .. })
        ));
    }
}
