//! REPLAY: the command journal.
//!
//! "Riot saves the commands given by the user and can re-run an editing
//! session if some of the input files have changed. The replay file uses
//! instance names and connector names to identify connections, and the
//! positions are re-calculated, thereby avoiding the problems with
//! differently-shaped cells. The replay also enables users to recover an
//! abnormally-terminated editing session or an accidentally-deleted
//! file."
//!
//! The journal is a `Vec<`[`Command`]`>` — the same values the command
//! engine executes — so replay is nothing but a loop of
//! [`crate::Editor::execute`]. This module owns only the text
//! (de)serialization; there is no second per-command dispatch.
//!
//! # Crash-safe write-ahead format
//!
//! Besides the human-readable text form, a journal serializes to a
//! binary **write-ahead log** ([`Journal::to_wal`]) built for recovery
//! after an abnormal termination: an 8-byte magic (`RIOTWAL1`) followed
//! by one record per command, each `u32` little-endian payload length,
//! `u32` little-endian CRC-32 (IEEE, zlib-compatible) of the payload,
//! then the payload — the same single-line text the replay file uses.
//! [`Journal::recover_wal`] reads as many intact records as it can and
//! **truncates at the first corrupt one** (torn header, short payload,
//! checksum or parse mismatch), returning the recovered prefix plus a
//! description of what stopped it — the `riot-check` harness proves the
//! prefix always replays to a state the reference model explains.

use crate::command::Command;
use crate::editor::Editor;
use crate::error::RiotError;
use crate::library::Library;
use riot_geom::Point;
use riot_rest::SolveMode;
use riot_route::RouterOptions;
use std::fmt;
use std::fmt::Write as _;

/// The journaled form of a command. Since the engine unification this
/// *is* [`Command`]; the alias keeps the original name alive.
pub use crate::command::Command as ReplayCommand;

/// An ordered journal of commands, savable as text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Journal {
    commands: Vec<Command>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one command.
    pub fn record(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// The commands in order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Serializes to the replay file format.
    ///
    /// `Route` serializes `move|stay` plus the engine choice when it is
    /// not the default river engine (`route move grid`); the rest of
    /// the router tuning is not serialized and parsing restores the
    /// defaults. River routes keep the historical two-field form
    /// byte-for-byte.
    pub fn to_text(&self) -> String {
        let mut out = String::from("riot replay v1\n");
        for cmd in &self.commands {
            out.push_str(&command_to_line(cmd));
            out.push('\n');
        }
        out
    }

    /// Parses a replay file.
    ///
    /// # Errors
    ///
    /// [`RiotError::Parse`] with the offending line.
    pub fn parse(text: &str) -> Result<Journal, RiotError> {
        let mut lines = text.lines().enumerate();
        let perr = |line: usize, msg: &str| RiotError::Parse {
            line: line + 1,
            message: msg.to_owned(),
        };
        match lines.next() {
            Some((_, header)) if header.trim() == "riot replay v1" => {}
            _ => return Err(perr(0, "missing `riot replay v1` header")),
        }
        let mut journal = Journal::new();
        for (n, raw) in lines {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            journal.record(parse_command_line(line, n)?);
        }
        Ok(journal)
    }
}

/// Serializes one command as its single-line replay form (no newline).
pub fn command_to_line(cmd: &Command) -> String {
    let mut out = String::new();
    match cmd {
        Command::Edit { cell } => {
            let _ = write!(out, "edit {cell}");
        }
        Command::Create { cell, instance } => {
            let _ = write!(out, "create {cell} {instance}");
        }
        Command::Translate { instance, d } => {
            let _ = write!(out, "translate {instance} {} {}", d.x, d.y);
        }
        Command::Orient { instance, orient } => {
            let _ = write!(out, "orient {instance} {orient}");
        }
        Command::Replicate {
            instance,
            cols,
            rows,
        } => {
            let _ = write!(out, "replicate {instance} {cols} {rows}");
        }
        Command::Spacing { instance, col, row } => {
            let _ = write!(out, "spacing {instance} {col} {row}");
        }
        Command::Delete { instance } => {
            let _ = write!(out, "delete {instance}");
        }
        Command::Connect {
            from,
            from_connector,
            to,
            to_connector,
        } => {
            let _ = write!(out, "connect {from} {from_connector} {to} {to_connector}");
        }
        Command::RemovePending { index } => {
            let _ = write!(out, "unpend {index}");
        }
        Command::ClearPending => out.push_str("clearpend"),
        Command::Abut { overlap } => {
            let _ = write!(out, "abut {}", if *overlap { "overlap" } else { "touch" });
        }
        Command::AbutInstances { from, to } => {
            let _ = write!(out, "abutinst {from} {to}");
        }
        Command::Route { move_from, router } => {
            let _ = write!(out, "route {}", if *move_from { "move" } else { "stay" });
            if router.engine == riot_route::RouterEngine::Grid {
                out.push_str(" grid");
            }
        }
        Command::Stretch { mode } => match mode {
            SolveMode::PreserveGaps => out.push_str("stretch"),
            SolveMode::DesignRules => out.push_str("stretch rules"),
        },
        Command::BringOut {
            instance,
            connectors,
            side,
        } => {
            let _ = write!(out, "bringout {instance} {side}");
            for c in connectors {
                let _ = write!(out, " {c}");
            }
        }
        Command::Finish => out.push_str("finish"),
        Command::Undo => out.push_str("undo"),
        Command::Redo => out.push_str("redo"),
    }
    out
}

/// Parses one replay line (already comment-stripped, non-empty) into a
/// command. `n` is the 0-based line (or record) number for errors.
///
/// # Errors
///
/// [`RiotError::Parse`] describing the malformed field.
pub fn parse_command_line(line: &str, n: usize) -> Result<Command, RiotError> {
    let perr = |line: usize, msg: &str| RiotError::Parse {
        line: line + 1,
        message: msg.to_owned(),
    };
    let f: Vec<&str> = line.split_whitespace().collect();
    if f.is_empty() {
        return Err(perr(n, "empty command line"));
    }
    {
        let need = |k: usize| -> Result<(), RiotError> {
            if f.len() == k {
                Ok(())
            } else {
                Err(perr(n, &format!("`{}` needs {} fields", f[0], k - 1)))
            }
        };
        let cmd = match f[0] {
            "edit" => {
                need(2)?;
                Command::Edit { cell: f[1].into() }
            }
            "create" => {
                need(3)?;
                Command::Create {
                    cell: f[1].into(),
                    instance: f[2].into(),
                }
            }
            "translate" => {
                need(4)?;
                Command::Translate {
                    instance: f[1].into(),
                    d: Point::new(
                        f[2].parse().map_err(|_| perr(n, "bad integer"))?,
                        f[3].parse().map_err(|_| perr(n, "bad integer"))?,
                    ),
                }
            }
            "orient" => {
                need(3)?;
                Command::Orient {
                    instance: f[1].into(),
                    orient: f[2].parse().map_err(|_| perr(n, "bad orientation"))?,
                }
            }
            "replicate" => {
                need(4)?;
                Command::Replicate {
                    instance: f[1].into(),
                    cols: f[2].parse().map_err(|_| perr(n, "bad count"))?,
                    rows: f[3].parse().map_err(|_| perr(n, "bad count"))?,
                }
            }
            "spacing" => {
                need(4)?;
                Command::Spacing {
                    instance: f[1].into(),
                    col: f[2].parse().map_err(|_| perr(n, "bad pitch"))?,
                    row: f[3].parse().map_err(|_| perr(n, "bad pitch"))?,
                }
            }
            "delete" => {
                need(2)?;
                Command::Delete {
                    instance: f[1].into(),
                }
            }
            "connect" => {
                need(5)?;
                Command::Connect {
                    from: f[1].into(),
                    from_connector: f[2].into(),
                    to: f[3].into(),
                    to_connector: f[4].into(),
                }
            }
            "unpend" => {
                need(2)?;
                Command::RemovePending {
                    index: f[1].parse().map_err(|_| perr(n, "bad index"))?,
                }
            }
            "clearpend" => {
                need(1)?;
                Command::ClearPending
            }
            "abut" => {
                need(2)?;
                Command::Abut {
                    overlap: match f[1] {
                        "overlap" => true,
                        "touch" => false,
                        _ => return Err(perr(n, "abut wants overlap|touch")),
                    },
                }
            }
            "abutinst" => {
                need(3)?;
                Command::AbutInstances {
                    from: f[1].into(),
                    to: f[2].into(),
                }
            }
            "route" => {
                let engine = match f.len() {
                    2 => riot_route::RouterEngine::River,
                    3 if f[2] == "grid" => riot_route::RouterEngine::Grid,
                    _ => return Err(perr(n, "route wants move|stay [grid]")),
                };
                Command::Route {
                    move_from: match f[1] {
                        "move" => true,
                        "stay" => false,
                        _ => return Err(perr(n, "route wants move|stay")),
                    },
                    router: RouterOptions {
                        engine,
                        ..RouterOptions::new()
                    },
                }
            }
            "stretch" => {
                let mode = match f.len() {
                    1 => SolveMode::PreserveGaps,
                    2 if f[1] == "rules" => SolveMode::DesignRules,
                    _ => return Err(perr(n, "stretch wants no field or `rules`")),
                };
                Command::Stretch { mode }
            }
            "bringout" => {
                if f.len() < 4 {
                    return Err(perr(n, "bringout wants instance side connectors…"));
                }
                Command::BringOut {
                    instance: f[1].into(),
                    side: f[2].parse().map_err(|_| perr(n, "bad side"))?,
                    connectors: f[3..].iter().map(|s| (*s).to_owned()).collect(),
                }
            }
            "finish" => {
                need(1)?;
                Command::Finish
            }
            "undo" => {
                need(1)?;
                Command::Undo
            }
            "redo" => {
                need(1)?;
                Command::Redo
            }
            other => return Err(perr(n, &format!("unknown command `{other}`"))),
        };
        Ok(cmd)
    }
}

// ----------------------------------------------------------------------
// The crash-safe write-ahead format
// ----------------------------------------------------------------------

/// Magic header opening a write-ahead journal file.
pub const WAL_MAGIC: &[u8; 8] = b"RIOTWAL1";

/// CRC-32 of `data`: the IEEE 802.3 reflected polynomial with the
/// standard init/final inversion — bit-for-bit the checksum zlib (and
/// Python's `zlib.crc32`) computes, so fixtures can be cross-checked
/// with any stock implementation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why [`Journal::recover_wal`] stopped reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalCorruption {
    /// The file does not begin with the `RIOTWAL1` magic.
    BadMagic,
    /// Fewer than 8 header bytes remained — a torn header write.
    TornHeader,
    /// The header promises more payload than the file holds — a torn
    /// (short) payload write.
    TornPayload {
        /// Bytes the header claims.
        expected: usize,
        /// Bytes actually left in the file.
        available: usize,
    },
    /// The stored checksum disagrees with the payload.
    BadChecksum {
        /// Checksum in the record header.
        stored: u32,
        /// Checksum of the bytes on disk.
        computed: u32,
    },
    /// The payload is not UTF-8 or not a valid command line.
    BadPayload(String),
}

impl fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalCorruption::BadMagic => f.write_str("missing RIOTWAL1 magic"),
            WalCorruption::TornHeader => f.write_str("torn record header"),
            WalCorruption::TornPayload {
                expected,
                available,
            } => write!(
                f,
                "torn payload: {expected} bytes promised, {available} present"
            ),
            WalCorruption::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WalCorruption::BadPayload(msg) => write!(f, "bad payload: {msg}"),
        }
    }
}

/// The outcome of recovering a write-ahead journal: the longest intact
/// prefix plus what (if anything) stopped the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// The recovered prefix, ready for [`replay`].
    pub journal: Journal,
    /// Byte offset the scan stopped at — the truncation point. Equals
    /// the file length for an intact file.
    pub valid_len: usize,
    /// `None` when the whole file was intact.
    pub corruption: Option<WalCorruption>,
}

impl WalRecovery {
    /// `true` when every byte of the file was an intact record.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
    }
}

impl Journal {
    /// Serializes to the crash-safe write-ahead format: the magic, then
    /// per command a `u32` LE payload length, `u32` LE CRC-32, and the
    /// command's replay line as the payload.
    pub fn to_wal(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WAL_MAGIC.len() + self.commands.len() * 24);
        out.extend_from_slice(WAL_MAGIC);
        for cmd in &self.commands {
            let line = command_to_line(cmd);
            let payload = line.as_bytes();
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Recovers as much of a write-ahead journal as is intact,
    /// truncating at the first corrupt record. Never fails: the worst
    /// input yields an empty journal plus the corruption description.
    /// Bumps the `journal.recovered` / `journal.truncated` metrics.
    pub fn recover_wal(bytes: &[u8]) -> WalRecovery {
        let reg = riot_trace::registry();
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            reg.counter("journal.truncated").inc();
            // Touch the counter so a traced summary always lists it.
            reg.counter("journal.recovered").add(0);
            return WalRecovery {
                journal: Journal::new(),
                valid_len: 0,
                corruption: Some(WalCorruption::BadMagic),
            };
        }
        let mut journal = Journal::new();
        let mut off = WAL_MAGIC.len();
        let mut corruption = None;
        let mut record_no = 0usize;
        while off < bytes.len() {
            if bytes.len() - off < 8 {
                corruption = Some(WalCorruption::TornHeader);
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            let stored = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
            let start = off + 8;
            if bytes.len() - start < len {
                corruption = Some(WalCorruption::TornPayload {
                    expected: len,
                    available: bytes.len() - start,
                });
                break;
            }
            let payload = &bytes[start..start + len];
            let computed = crc32(payload);
            if computed != stored {
                corruption = Some(WalCorruption::BadChecksum { stored, computed });
                break;
            }
            let line = match std::str::from_utf8(payload) {
                Ok(s) => s,
                Err(e) => {
                    corruption = Some(WalCorruption::BadPayload(e.to_string()));
                    break;
                }
            };
            match parse_command_line(line.trim(), record_no) {
                Ok(cmd) => journal.record(cmd),
                Err(e) => {
                    corruption = Some(WalCorruption::BadPayload(e.to_string()));
                    break;
                }
            }
            off = start + len;
            record_no += 1;
        }
        reg.counter("journal.recovered")
            .add(journal.commands.len() as u64);
        if corruption.is_some() {
            reg.counter("journal.truncated").inc();
        }
        WalRecovery {
            journal,
            valid_len: off,
            corruption,
        }
    }
}

/// Re-runs a journal against a library whose leaf cells may have
/// changed shape. Positions of connections are recomputed from names.
/// Returns the warnings the re-run produced.
///
/// Every command after the `edit` head goes through the one
/// [`Editor::execute`] entry point — the interactive editor, undo/redo,
/// and this loop share a single dispatch.
///
/// # Errors
///
/// Any editor error the re-run hits (unknown cells/instances, routing
/// failures…). The journal must begin with an `edit` command.
pub fn replay(journal: &Journal, lib: &mut Library) -> Result<Vec<String>, RiotError> {
    let mut commands = journal.commands().iter();
    let first = commands.next().ok_or(RiotError::Parse {
        line: 0,
        message: "empty journal".into(),
    })?;
    let Command::Edit { cell } = first else {
        return Err(RiotError::Parse {
            line: 1,
            message: "journal must start with `edit`".into(),
        });
    };
    let mut ed = Editor::open(lib, cell)?;
    for cmd in commands {
        if matches!(cmd, Command::Edit { .. }) {
            return Err(RiotError::Parse {
                line: 0,
                message: "nested `edit` in journal".into(),
            });
        }
        ed.execute(cmd.clone())?;
    }
    Ok(ed.take_warnings())
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::{Orientation, Side};

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.record(ReplayCommand::Edit { cell: "TOP".into() });
        j.record(ReplayCommand::Create {
            cell: "gate".into(),
            instance: "I0".into(),
        });
        j.record(ReplayCommand::Translate {
            instance: "I0".into(),
            d: Point::new(-100, 2500),
        });
        j.record(ReplayCommand::Orient {
            instance: "I0".into(),
            orient: Orientation::MX90,
        });
        j.record(ReplayCommand::Connect {
            from: "I0".into(),
            from_connector: "A".into(),
            to: "I1".into(),
            to_connector: "X".into(),
        });
        j.record(ReplayCommand::RemovePending { index: 0 });
        j.record(ReplayCommand::ClearPending);
        j.record(ReplayCommand::Abut { overlap: true });
        j.record(ReplayCommand::Route {
            move_from: false,
            router: RouterOptions::new(),
        });
        j.record(ReplayCommand::Route {
            move_from: true,
            router: RouterOptions {
                engine: riot_route::RouterEngine::Grid,
                ..RouterOptions::new()
            },
        });
        j.record(ReplayCommand::Stretch {
            mode: SolveMode::DesignRules,
        });
        j.record(ReplayCommand::BringOut {
            instance: "I0".into(),
            connectors: vec!["A".into(), "B".into()],
            side: Side::Left,
        });
        j.record(ReplayCommand::Undo);
        j.record(ReplayCommand::Redo);
        j.record(ReplayCommand::Finish);
        j
    }

    #[test]
    fn text_round_trip() {
        let j = sample_journal();
        let text = j.to_text();
        let again = Journal::parse(&text).unwrap();
        assert_eq!(j, again);
    }

    #[test]
    fn route_engine_serialization() {
        // The river form stays byte-identical to the historical two
        // field record; the grid engine rides in an optional third
        // field and survives the round trip.
        let river = ReplayCommand::Route {
            move_from: true,
            router: RouterOptions::new(),
        };
        assert_eq!(command_to_line(&river), "route move");
        let grid = ReplayCommand::Route {
            move_from: false,
            router: RouterOptions {
                engine: riot_route::RouterEngine::Grid,
                ..RouterOptions::new()
            },
        };
        assert_eq!(command_to_line(&grid), "route stay grid");
        let j = Journal::parse("riot replay v1\nroute move\nroute stay grid\n").unwrap();
        assert_eq!(j.commands(), &[river, grid]);
        assert!(Journal::parse("riot replay v1\nroute move river\n").is_err());
        assert!(Journal::parse("riot replay v1\nroute\n").is_err());
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(
            Journal::parse("not a replay\n"),
            Err(RiotError::Parse { .. })
        ));
    }

    #[test]
    fn parse_rejects_unknown_command() {
        let err = Journal::parse("riot replay v1\nfrobnicate I0\n").unwrap_err();
        assert!(matches!(err, RiotError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let j = Journal::parse("riot replay v1\n# nothing\n\nfinish\n").unwrap();
        assert_eq!(j.commands(), &[ReplayCommand::Finish]);
    }

    #[test]
    fn parse_stretch_modes() {
        let j = Journal::parse("riot replay v1\nstretch\nstretch rules\n").unwrap();
        assert_eq!(
            j.commands(),
            &[
                ReplayCommand::Stretch {
                    mode: SolveMode::PreserveGaps
                },
                ReplayCommand::Stretch {
                    mode: SolveMode::DesignRules
                },
            ]
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"riot"), {
            // Independent bit-reversed computation to guard the table.
            let mut crc = 0xFFFF_FFFF_u32;
            for &b in b"riot" {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 == 1 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        });
    }

    #[test]
    fn wal_round_trip() {
        let j = sample_journal();
        let bytes = j.to_wal();
        assert_eq!(&bytes[..8], WAL_MAGIC);
        let rec = Journal::recover_wal(&bytes);
        assert!(rec.is_clean());
        assert_eq!(rec.valid_len, bytes.len());
        assert_eq!(rec.journal, j);
    }

    #[test]
    fn wal_recovery_truncates_torn_tail() {
        let j = sample_journal();
        let bytes = j.to_wal();
        // Cut the file mid-way through the last record's payload.
        let torn = &bytes[..bytes.len() - 3];
        let rec = Journal::recover_wal(torn);
        assert!(matches!(
            rec.corruption,
            Some(WalCorruption::TornPayload { .. })
        ));
        let n = j.commands().len();
        assert_eq!(rec.journal.commands(), &j.commands()[..n - 1]);
        // The truncation point is the start of the torn record.
        assert!(rec.valid_len < torn.len());
        assert_eq!(
            &Journal::recover_wal(&bytes[..rec.valid_len]).journal,
            &rec.journal
        );
    }

    #[test]
    fn wal_recovery_truncates_torn_header() {
        let j = sample_journal();
        let mut bytes = j.to_wal();
        // Append 5 stray bytes: a header needs 8.
        bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
        let rec = Journal::recover_wal(&bytes);
        assert_eq!(rec.corruption, Some(WalCorruption::TornHeader));
        assert_eq!(&rec.journal, &j);
    }

    #[test]
    fn wal_recovery_stops_at_bad_checksum() {
        let j = sample_journal();
        let mut bytes = j.to_wal();
        // Flip one payload bit in the second record. Record 1 payload
        // starts right after magic(8) + header(8): "edit TOP".
        let second_payload = 8 + 8 + b"edit TOP".len() + 8;
        bytes[second_payload] ^= 0x40;
        let rec = Journal::recover_wal(&bytes);
        assert!(matches!(
            rec.corruption,
            Some(WalCorruption::BadChecksum { .. })
        ));
        assert_eq!(rec.journal.commands(), &j.commands()[..1]);
        assert_eq!(rec.valid_len, 8 + 8 + b"edit TOP".len());
    }

    #[test]
    fn wal_recovery_rejects_bad_magic() {
        let rec = Journal::recover_wal(b"NOTAWAL0\x01\x02");
        assert_eq!(rec.corruption, Some(WalCorruption::BadMagic));
        assert_eq!(rec.valid_len, 0);
        assert!(rec.journal.commands().is_empty());
        let rec = Journal::recover_wal(b"");
        assert_eq!(rec.corruption, Some(WalCorruption::BadMagic));
    }

    #[test]
    fn wal_recovery_stops_at_unparseable_payload() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        for line in ["edit TOP", "frobnicate I0"] {
            let p = line.as_bytes();
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(p).to_le_bytes());
            bytes.extend_from_slice(p);
        }
        let rec = Journal::recover_wal(&bytes);
        assert!(matches!(rec.corruption, Some(WalCorruption::BadPayload(_))));
        assert_eq!(
            rec.journal.commands(),
            &[ReplayCommand::Edit { cell: "TOP".into() }]
        );
    }

    #[test]
    fn replay_requires_edit_first() {
        let mut lib = Library::new();
        let mut j = Journal::new();
        j.record(ReplayCommand::Finish);
        assert!(matches!(replay(&j, &mut lib), Err(RiotError::Parse { .. })));
    }
}
