//! The graphical editing session: instance commands and the three
//! connection primitives.

use crate::cell::{Cell, CellId, Composition};
use crate::connection::{PendingConnection, WorldConnector};
use crate::error::RiotError;
use crate::instance::{Instance, InstanceId};
use crate::library::Library;
use crate::replay::{Journal, ReplayCommand};
use riot_geom::{Orientation, Point, Rect, Side, Transform, LAMBDA};
use riot_rest::{Axis, SolveMode, StretchSpec};
use riot_route::{RouteProblem, RouterOptions, Terminal};

/// Options for [`Editor::abut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbutOptions {
    /// Allow the instances' bounding boxes to overlap — "frequently
    /// used to share power or ground lines in adjacent instances".
    /// Without it an overlap produces a warning.
    pub overlap: bool,
}

/// Options for [`Editor::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOptions {
    /// Move the *from* instance to abut the far side of the route cell
    /// (the default, "using the least amount of space possible").
    /// `false` routes between two instances "which are already
    /// positioned and should not move".
    pub move_from: bool,
    /// River-router tuning.
    pub router: RouterOptions,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            move_from: true,
            router: RouterOptions::new(),
        }
    }
}

/// Options for [`Editor::stretch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StretchOptions {
    /// How the REST solve treats existing separations. The default
    /// preserves them (the cell only grows); [`SolveMode::DesignRules`]
    /// lets the optimizer also pull elements closer.
    pub mode: SolveMode,
}

impl Default for StretchOptions {
    fn default() -> Self {
        StretchOptions {
            mode: SolveMode::PreserveGaps,
        }
    }
}

/// An editing session on one composition cell.
///
/// Owns the pending connection list ("shown on the screen constantly")
/// and the warning stream, and journals every command for REPLAY.
#[derive(Debug)]
pub struct Editor<'a> {
    lib: &'a mut Library,
    cell: CellId,
    pending: Vec<PendingConnection>,
    warnings: Vec<String>,
    journal: Journal,
    instance_counter: usize,
}

impl<'a> Editor<'a> {
    /// Opens (or creates) the composition cell called `name` for
    /// editing.
    ///
    /// # Errors
    ///
    /// [`RiotError::NotComposition`] when `name` exists but is a leaf.
    pub fn open(lib: &'a mut Library, name: &str) -> Result<Self, RiotError> {
        let cell = match lib.find(name) {
            Some(id) => {
                if !lib.cell(id)?.is_composition() {
                    return Err(RiotError::NotComposition(name.to_owned()));
                }
                id
            }
            None => lib.add_cell(Cell::new_composition(name))?,
        };
        let instance_counter = lib
            .cell(cell)?
            .composition()
            .map(|c| c.instances.len())
            .unwrap_or(0);
        let mut journal = Journal::new();
        journal.record(ReplayCommand::Edit {
            cell: name.to_owned(),
        });
        Ok(Editor {
            lib,
            cell,
            pending: Vec::new(),
            warnings: Vec::new(),
            journal,
            instance_counter,
        })
    }

    /// The id of the cell under edit.
    pub fn cell_id(&self) -> CellId {
        self.cell
    }

    /// The cell under edit.
    pub fn cell(&self) -> &Cell {
        self.lib.cell(self.cell).expect("edit cell exists")
    }

    /// The library (cell menu) behind this session.
    pub fn library(&self) -> &Library {
        self.lib
    }

    /// The journal of commands issued so far.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Warnings produced so far (abutment mismatches, off-grid rounding…).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Drains the warning list.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    /// The pending connection list.
    pub fn pending(&self) -> &[PendingConnection] {
        &self.pending
    }

    /// Removes one pending connection by its list position.
    pub fn remove_pending(&mut self, index: usize) {
        if index < self.pending.len() {
            self.pending.remove(index);
        }
    }

    /// Clears the pending connection list.
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }

    fn comp(&self) -> &Composition {
        self.cell().composition().expect("edit cell is composition")
    }

    fn comp_mut(&mut self) -> &mut Composition {
        self.lib
            .cell_mut(self.cell)
            .expect("edit cell exists")
            .composition_mut()
            .expect("edit cell is composition")
    }

    /// Iterates over the live instances.
    pub fn instances(&self) -> Vec<(InstanceId, Instance)> {
        self.comp()
            .instances()
            .map(|(id, i)| (id, i.clone()))
            .collect()
    }

    /// Looks an instance up by id.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] for stale ids.
    pub fn instance(&self, id: InstanceId) -> Result<&Instance, RiotError> {
        self.comp()
            .instances
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(RiotError::BadInstance(id.0))
    }

    fn instance_mut(&mut self, id: InstanceId) -> Result<&mut Instance, RiotError> {
        self.comp_mut()
            .instances
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(RiotError::BadInstance(id.0))
    }

    /// Finds an instance by name.
    pub fn find_instance(&self, name: &str) -> Option<InstanceId> {
        self.comp()
            .instances()
            .find(|(_, i)| i.name == name)
            .map(|(id, _)| id)
    }

    /// The defining cell of an instance.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn instance_cell(&self, id: InstanceId) -> Result<&Cell, RiotError> {
        let cell = self.instance(id)?.cell;
        self.lib.cell(cell)
    }

    /// World bounding box of an instance.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn instance_bbox(&self, id: InstanceId) -> Result<Rect, RiotError> {
        Ok(self.instance(id)?.world_bbox(self.instance_cell(id)?))
    }

    /// All world connectors of an instance.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn world_connectors(&self, id: InstanceId) -> Result<Vec<WorldConnector>, RiotError> {
        Ok(self.instance(id)?.world_connectors(self.instance_cell(id)?))
    }

    /// One world connector by name.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] / [`RiotError::UnknownConnector`].
    pub fn world_connector(
        &self,
        id: InstanceId,
        name: &str,
    ) -> Result<WorldConnector, RiotError> {
        let inst = self.instance(id)?;
        inst.world_connector(self.instance_cell(id)?, name)
            .ok_or_else(|| RiotError::UnknownConnector {
                instance: inst.name.clone(),
                connector: name.to_owned(),
            })
    }

    // ------------------------------------------------------------------
    // Creation of instances
    // ------------------------------------------------------------------

    /// The CREATE command: instantiates `cell` at the origin with an
    /// auto-generated name.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`].
    pub fn create_instance(&mut self, cell: CellId) -> Result<InstanceId, RiotError> {
        let name = loop {
            let candidate = format!("I{}", self.instance_counter);
            self.instance_counter += 1;
            if self.find_instance(&candidate).is_none() {
                break candidate;
            }
        };
        self.create_named_instance(cell, name)
    }

    /// Instantiates `cell` under an explicit instance name (replay uses
    /// this; interactive use lets Riot pick the name).
    ///
    /// # Errors
    ///
    /// [`RiotError::BadCellId`] or a duplicate instance name (reported
    /// as [`RiotError::UnknownInstance`] would be misleading, so a
    /// duplicate gets a fresh suffix and a warning instead).
    pub fn create_named_instance(
        &mut self,
        cell: CellId,
        name: impl Into<String>,
    ) -> Result<InstanceId, RiotError> {
        let mut name = name.into();
        let bbox = self.lib.cell(cell)?.bbox;
        if self.find_instance(&name).is_some() {
            let fresh = format!("{name}'");
            self.warnings
                .push(format!("instance name `{name}` taken; using `{fresh}`"));
            name = fresh;
        }
        let cell_name = self.lib.cell(cell)?.name.clone();
        let inst = Instance::new(name.clone(), cell, bbox);
        let comp = self.comp_mut();
        comp.instances.push(Some(inst));
        let id = InstanceId(comp.instances.len() - 1);
        self.journal.record(ReplayCommand::Create {
            cell: cell_name,
            instance: name,
        });
        Ok(id)
    }

    /// Instantiates without journaling — for the instances ROUTE and
    /// BRING-OUT create themselves, which their own replay commands
    /// regenerate.
    fn create_internal_instance(
        &mut self,
        cell: CellId,
        name: String,
    ) -> Result<InstanceId, RiotError> {
        let bbox = self.lib.cell(cell)?.bbox;
        let inst = Instance::new(name, cell, bbox);
        let comp = self.comp_mut();
        comp.instances.push(Some(inst));
        Ok(InstanceId(comp.instances.len() - 1))
    }

    /// The MOVE command: translates an instance.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn translate_instance(&mut self, id: InstanceId, d: Point) -> Result<(), RiotError> {
        let inst = self.instance_mut(id)?;
        inst.transform = inst.transform.translated(d);
        let name = inst.name.clone();
        self.journal.record(ReplayCommand::Translate { instance: name, d });
        Ok(())
    }

    /// The ROTATE/MIRROR command: composes an orientation onto the
    /// instance, rotating about its placement anchor.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn orient_instance(
        &mut self,
        id: InstanceId,
        orient: Orientation,
    ) -> Result<(), RiotError> {
        let inst = self.instance_mut(id)?;
        inst.transform = Transform::new(inst.transform.orient.then(orient), inst.transform.offset);
        let name = inst.name.clone();
        self.journal
            .record(ReplayCommand::Orient { instance: name, orient });
        Ok(())
    }

    /// The REPLICATE command: makes the instance an array. Spacing
    /// defaults (cell bbox pitch) are kept; use
    /// [`Editor::set_spacing`] to change them.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] / [`RiotError::BadReplication`].
    pub fn replicate_instance(
        &mut self,
        id: InstanceId,
        cols: u32,
        rows: u32,
    ) -> Result<(), RiotError> {
        if cols == 0 || rows == 0 || cols as u64 * rows as u64 > 1_000_000 {
            return Err(RiotError::BadReplication { cols, rows });
        }
        let inst = self.instance_mut(id)?;
        inst.cols = cols;
        inst.rows = rows;
        let name = inst.name.clone();
        self.journal.record(ReplayCommand::Replicate {
            instance: name,
            cols,
            rows,
        });
        Ok(())
    }

    /// Overrides the array replication spacing.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] / [`RiotError::BadReplication`] for
    /// non-positive pitches.
    pub fn set_spacing(&mut self, id: InstanceId, col: i64, row: i64) -> Result<(), RiotError> {
        if col <= 0 || row <= 0 {
            return Err(RiotError::BadReplication { cols: 0, rows: 0 });
        }
        let inst = self.instance_mut(id)?;
        inst.col_spacing = col;
        inst.row_spacing = row;
        let name = inst.name.clone();
        self.journal.record(ReplayCommand::Spacing {
            instance: name,
            col,
            row,
        });
        Ok(())
    }

    /// The DELETE command: removes an instance and any pending
    /// connections touching it.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn delete_instance(&mut self, id: InstanceId) -> Result<(), RiotError> {
        let name = self.instance(id)?.name.clone();
        self.comp_mut().instances[id.0] = None;
        self.pending.retain(|p| p.from != id && p.to != id);
        self.journal.record(ReplayCommand::Delete { instance: name });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Connection specification
    // ------------------------------------------------------------------

    /// Adds one pending connection from a connector on `from` to a
    /// connector on `to`. Checks the Riot invariants now: distinct
    /// instances, one *from* per list, same layer, opposed sides.
    ///
    /// # Errors
    ///
    /// [`RiotError::SelfConnection`], [`RiotError::MultipleFromInstances`],
    /// [`RiotError::LayerMismatch`], [`RiotError::NotOpposed`], and the
    /// lookup errors.
    pub fn connect(
        &mut self,
        from: InstanceId,
        from_connector: &str,
        to: InstanceId,
        to_connector: &str,
    ) -> Result<(), RiotError> {
        if from == to {
            return Err(RiotError::SelfConnection(self.instance(from)?.name.clone()));
        }
        if let Some(first) = self.pending.first() {
            if first.from != from {
                return Err(RiotError::MultipleFromInstances(
                    self.instance(first.from)?.name.clone(),
                    self.instance(from)?.name.clone(),
                ));
            }
            if self.pending.iter().any(|p| p.to == from) {
                return Err(RiotError::FromInToList(self.instance(from)?.name.clone()));
            }
        }
        let fc = self.world_connector(from, from_connector)?;
        let tc = self.world_connector(to, to_connector)?;
        if fc.layer != tc.layer {
            return Err(RiotError::LayerMismatch {
                from: fc.layer,
                to: tc.layer,
            });
        }
        match (fc.side, tc.side) {
            (Some(a), Some(b)) if a.opposes(b) => {}
            (a, b) => return Err(RiotError::NotOpposed { from: a, to: b }),
        }
        let (from_name, to_name) = (
            self.instance(from)?.name.clone(),
            self.instance(to)?.name.clone(),
        );
        self.pending.push(PendingConnection {
            from,
            from_connector: from_connector.to_owned(),
            to,
            to_connector: to_connector.to_owned(),
        });
        self.journal.record(ReplayCommand::Connect {
            from: from_name,
            from_connector: from_connector.to_owned(),
            to: to_name,
            to_connector: to_connector.to_owned(),
        });
        Ok(())
    }

    /// The bus connection: connects every matching connector pair from
    /// one instance to another. Pairs are matched by name on same-layer
    /// opposed sides; connectors on the facing sides that match by
    /// position order (per layer) are paired when names do not match.
    /// Returns how many connections were added; unmatched facing
    /// connectors produce warnings.
    ///
    /// # Errors
    ///
    /// Lookup errors and the same invariant violations as
    /// [`Editor::connect`].
    pub fn connect_bus(&mut self, from: InstanceId, to: InstanceId) -> Result<usize, RiotError> {
        let fcs = self.world_connectors(from)?;
        let tcs = self.world_connectors(to)?;
        let mut added = 0usize;
        let mut used_to: Vec<bool> = vec![false; tcs.len()];
        let mut unmatched_from: Vec<&WorldConnector> = Vec::new();

        for fc in &fcs {
            let hit = tcs.iter().enumerate().find(|(j, tc)| {
                !used_to[*j]
                    && tc.name == fc.name
                    && tc.layer == fc.layer
                    && matches!((fc.side, tc.side), (Some(a), Some(b)) if a.opposes(b))
            });
            match hit {
                Some((j, tc)) => {
                    used_to[j] = true;
                    let (f, t) = (fc.name.clone(), tc.name.clone());
                    self.connect(from, &f, to, &t)?;
                    added += 1;
                }
                None => unmatched_from.push(fc),
            }
        }

        // Positional fallback: pair remaining facing connectors per
        // layer in order along the shared edge.
        let facing = self.facing_sides(from, to)?;
        if let Some((from_side, to_side)) = facing {
            for layer in riot_geom::Layer::ROUTABLE {
                let mut fs: Vec<&WorldConnector> = unmatched_from
                    .iter()
                    .copied()
                    .filter(|c| c.layer == layer && c.side == Some(from_side))
                    .collect();
                let mut ts: Vec<(usize, &WorldConnector)> = tcs
                    .iter()
                    .enumerate()
                    .filter(|(j, c)| {
                        !used_to[*j] && c.layer == layer && c.side == Some(to_side)
                    })
                    .collect();
                fs.sort_by_key(|c| from_side.along(c.location));
                ts.sort_by_key(|(_, c)| to_side.along(c.location));
                for (fc, (j, tc)) in fs.iter().zip(&ts) {
                    used_to[*j] = true;
                    let (f, t) = (fc.name.clone(), tc.name.clone());
                    self.connect(from, &f, to, &t)?;
                    added += 1;
                }
                if fs.len() != ts.len() {
                    self.warnings.push(format!(
                        "bus connection: {} unpaired {layer} connectors",
                        fs.len().abs_diff(ts.len())
                    ));
                }
            }
        }
        if added == 0 {
            self.warnings
                .push("bus connection matched no connector pairs".to_owned());
        }
        Ok(added)
    }

    /// The facing side pair between two instances, judged from their
    /// bounding-box centers: `(side of from, side of to)`.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn facing_sides(
        &self,
        from: InstanceId,
        to: InstanceId,
    ) -> Result<Option<(Side, Side)>, RiotError> {
        let fb = self.instance_bbox(from)?;
        let tb = self.instance_bbox(to)?;
        let d = fb.center() - tb.center();
        if d == Point::ORIGIN {
            return Ok(None);
        }
        Ok(Some(if d.x.abs() >= d.y.abs() {
            if d.x > 0 {
                (Side::Left, Side::Right) // from is to the right of to
            } else {
                (Side::Right, Side::Left)
            }
        } else if d.y > 0 {
            (Side::Bottom, Side::Top)
        } else {
            (Side::Top, Side::Bottom)
        }))
    }

    // ------------------------------------------------------------------
    // Connection commands
    // ------------------------------------------------------------------

    /// Resolves the pending list into (from instance, pairs of world
    /// connectors), without consuming it.
    fn resolve_pending(
        &self,
    ) -> Result<(InstanceId, Vec<(WorldConnector, WorldConnector)>), RiotError> {
        let first = self.pending.first().ok_or(RiotError::NothingPending)?;
        let from = first.from;
        let mut pairs = Vec::new();
        for p in &self.pending {
            let fc = self.world_connector(p.from, &p.from_connector)?;
            let tc = self.world_connector(p.to, &p.to_connector)?;
            pairs.push((fc, tc));
        }
        Ok((from, pairs))
    }

    /// The ABUT command over the pending connection list: translates
    /// the *from* instance so the first connection's connectors
    /// coincide, then verifies the rest ("if the connections cannot be
    /// made by the abutment, a warning message is produced"). Clears
    /// the pending list.
    ///
    /// # Errors
    ///
    /// [`RiotError::NothingPending`] and lookup errors.
    pub fn abut(&mut self, options: AbutOptions) -> Result<(), RiotError> {
        let (from, pairs) = self.resolve_pending()?;
        let d = pairs[0].1.location - pairs[0].0.location;
        let to_ids: Vec<InstanceId> = self.pending.iter().map(|p| p.to).collect();
        self.apply_translation_and_verify(from, d, &pairs)?;
        if !options.overlap {
            let fb = self.instance_bbox(from)?;
            for to in to_ids {
                let tb = self.instance_bbox(to)?;
                if fb.overlaps(tb) {
                    self.warnings.push(format!(
                        "abutment overlaps instance `{}` (use the overlap option to share connectors)",
                        self.instance(to)?.name
                    ));
                }
            }
        }
        self.pending.clear();
        self.journal.record(ReplayCommand::Abut {
            overlap: options.overlap,
        });
        Ok(())
    }

    /// Abutment without connectors ("used primarily if there are no
    /// connectors to guide the connection"): matches the bottom or left
    /// edge depending on the instances' relative positions.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`].
    pub fn abut_instances(
        &mut self,
        from: InstanceId,
        to: InstanceId,
    ) -> Result<(), RiotError> {
        let fb = self.instance_bbox(from)?;
        let tb = self.instance_bbox(to)?;
        let facing = self.facing_sides(from, to)?.unwrap_or((Side::Left, Side::Right));
        let d = match facing.0 {
            // from sits to the right: its left edge meets to's right
            // edge, bottoms align.
            Side::Left => Point::new(tb.x1 - fb.x0, tb.y0 - fb.y0),
            Side::Right => Point::new(tb.x0 - fb.x1, tb.y0 - fb.y0),
            Side::Bottom => Point::new(tb.x0 - fb.x0, tb.y1 - fb.y0),
            Side::Top => Point::new(tb.x0 - fb.x0, tb.y0 - fb.y1),
        };
        let inst = self.instance_mut(from)?;
        inst.transform = inst.transform.translated(d);
        let (fname, tname) = (
            self.instance(from)?.name.clone(),
            self.instance(to)?.name.clone(),
        );
        self.journal.record(ReplayCommand::AbutInstances {
            from: fname,
            to: tname,
        });
        Ok(())
    }

    fn apply_translation_and_verify(
        &mut self,
        from: InstanceId,
        d: Point,
        pairs: &[(WorldConnector, WorldConnector)],
    ) -> Result<(), RiotError> {
        {
            let inst = self.instance_mut(from)?;
            inst.transform = inst.transform.translated(d);
        }
        for (fc, tc) in pairs {
            if fc.location + d != tc.location {
                self.warnings.push(format!(
                    "connection {}.{} -> {}.{} cannot be made by this abutment (off by {})",
                    fc.instance_name,
                    fc.name,
                    tc.instance_name,
                    tc.name,
                    tc.location - (fc.location + d)
                ));
            }
        }
        Ok(())
    }

    /// The ROUTE command: river-routes the pending connections, adds
    /// the route cell to the menu, places an instance of it against the
    /// *to* instance(s), and (unless `move_from` is off) moves the
    /// *from* instance to abut the far side. Returns the new route
    /// cell's id and its instance id. Clears the pending list.
    ///
    /// # Errors
    ///
    /// Routing errors ([`RiotError::Route`]), ragged channel edges, and
    /// the pending-list errors.
    pub fn route(&mut self, options: RouteOptions) -> Result<(CellId, InstanceId), RiotError> {
        let (from, pairs) = self.resolve_pending()?;

        // All to-connectors must sit on one side and one edge line.
        let to_side = pairs[0].1.side.expect("connect() checked sides");
        let edge = to_side.across(pairs[0].1.location);
        for (_, tc) in &pairs {
            if tc.side != Some(to_side) {
                return Err(RiotError::NotOpposed {
                    from: pairs[0].1.side,
                    to: tc.side,
                });
            }
            let across = to_side.across(tc.location);
            if across != edge {
                return Err(RiotError::RaggedChannelEdge {
                    expected: edge,
                    found: across,
                });
            }
        }
        // The channel grows away from the to instance, i.e. out of the
        // to-connectors' side.
        let project = |p: Point| -> i64 {
            match to_side {
                Side::Top => p.x,
                Side::Bottom => -p.x,
                Side::Right => -p.y,
                Side::Left => p.y,
            }
        };
        let orient = match to_side {
            Side::Top => Orientation::R0,
            Side::Bottom => Orientation::R180,
            Side::Right => Orientation::R270,
            Side::Left => Orientation::R90,
        };
        let place = match to_side {
            Side::Top | Side::Bottom => Point::new(0, edge),
            Side::Left | Side::Right => Point::new(edge, 0),
        };
        let route_transform = Transform::new(orient, place);

        let mut bottom = Vec::new();
        let mut top = Vec::new();
        for (fc, tc) in &pairs {
            bottom.push(Terminal::new(
                tc.name.clone(),
                self.to_lambda(project(tc.location))?,
                tc.layer,
                self.to_lambda(tc.width.max(1))?.max(1),
            ));
            top.push(Terminal::new(
                fc.name.clone(),
                self.to_lambda(project(fc.location))?,
                fc.layer,
                self.to_lambda(fc.width.max(1))?.max(1),
            ));
        }

        let mut router = options.router;
        if !options.move_from {
            // The route must exactly fill the existing gap.
            let from_edge = to_side.across(pairs[0].0.location);
            let gap = (from_edge - edge).abs();
            router.exact_height = Some(self.to_lambda(gap)?);
        }
        let problem = RouteProblem {
            bottom,
            top,
            options: router,
        };
        let route = riot_route::river_route(&problem).map_err(|e| match e {
            riot_route::RouteError::ChannelTooTight { needed, available } => {
                RiotError::ChannelTooTight { needed, available }
            }
            other => RiotError::Route(other),
        })?;

        let name = self.lib.next_route_name();
        let sticks = route.to_sticks_cell(name.clone());
        let route_cell = self.lib.add_sticks_cell(sticks)?;
        let route_inst = self.create_internal_instance(route_cell, format!("{name}i"))?;
        {
            let inst = self.instance_mut(route_inst)?;
            inst.transform = route_transform;
        }

        if options.move_from {
            // Land the from connectors on the route's top pins.
            let (fc0, _) = &pairs[0];
            let top0 = route.wires()[0].path.end();
            let world_top = route_transform.apply(Point::new(top0.x * LAMBDA, top0.y * LAMBDA));
            let d = world_top - fc0.location;
            let pairs_for_verify: Vec<(WorldConnector, WorldConnector)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (fc, _))| {
                    let t = route.wires()[i].path.end();
                    let mut target = fc.clone();
                    target.location =
                        route_transform.apply(Point::new(t.x * LAMBDA, t.y * LAMBDA));
                    (fc.clone(), target)
                })
                .collect();
            self.apply_translation_and_verify(from, d, &pairs_for_verify)?;
        }

        self.pending.clear();
        self.journal.record(ReplayCommand::Route {
            move_from: options.move_from,
        });
        Ok((route_cell, route_inst))
    }

    /// The STRETCH command: derives pin targets for the *from*
    /// instance's Sticks cell from the *to* connector separations,
    /// re-solves the cell through REST, swaps the instance onto the new
    /// cell, and abuts. Returns the new cell's id. Clears the pending
    /// list.
    ///
    /// # Errors
    ///
    /// [`RiotError::NotStretchable`] for CIF-only cells (pads), stretch
    /// solver failures, and the pending-list errors.
    pub fn stretch(&mut self, options: StretchOptions) -> Result<CellId, RiotError> {
        let (from, pairs) = self.resolve_pending()?;
        let from_inst = self.instance(from)?.clone();
        let from_cell = self.lib.cell(from_inst.cell)?;
        let sticks = from_cell
            .sticks()
            .ok_or_else(|| RiotError::NotStretchable(from_cell.name.clone()))?
            .clone();

        // Stretch axis: along the connecting edge, in cell-local terms.
        let world_side = pairs[0].0.side.expect("connect() checked sides");
        let world_axis_is_y = world_side.is_vertical();
        let local_axis = {
            // Does the instance orientation swap axes?
            let swapped = from_inst.transform.orient.swaps_axes();
            match (world_axis_is_y, swapped) {
                (true, false) | (false, true) => Axis::Y,
                _ => Axis::X,
            }
        };
        // Sign: how a local step along local_axis moves the world
        // along-coordinate.
        let unit = match local_axis {
            Axis::X => Point::new(1, 0),
            Axis::Y => Point::new(0, 1),
        };
        let w = from_inst.transform.orient.apply(unit);
        let sign = if world_axis_is_y { w.y } else { w.x };
        debug_assert!(sign == 1 || sign == -1);

        // Targets: anchor the connection whose to-coordinate is
        // smallest in world terms; other pins keep the to-connectors'
        // separations.
        let along = |p: Point| if world_axis_is_y { p.y } else { p.x };
        let mut ordered: Vec<&(WorldConnector, WorldConnector)> = pairs.iter().collect();
        ordered.sort_by_key(|(_, tc)| along(tc.location));
        let anchor = ordered[0];
        let anchor_pin = sticks
            .pin(base_name(&anchor.0.name))
            .ok_or_else(|| RiotError::UnknownConnector {
                instance: from_inst.name.clone(),
                connector: anchor.0.name.clone(),
            })?;
        let anchor_local = match local_axis {
            Axis::X => anchor_pin.position.x,
            Axis::Y => anchor_pin.position.y,
        };
        let anchor_world = along(anchor.1.location);

        let mut spec = StretchSpec::new(local_axis);
        for (fc, tc) in &pairs {
            let delta_world = along(tc.location) - anchor_world;
            if delta_world % LAMBDA != 0 {
                self.warnings.push(format!(
                    "stretch target for {} off the lambda grid by {}; rounding",
                    fc.name,
                    delta_world % LAMBDA
                ));
            }
            let target = anchor_local + sign * (delta_world / LAMBDA);
            spec.push_target(base_name(&fc.name), target);
        }

        let mut stretched =
            riot_rest::stretch_with_mode(&sticks, &spec, options.mode)?;
        let mut new_name = format!("{}'", from_cell.name);
        while self.lib.find(&new_name).is_some() {
            new_name.push('\'');
        }
        stretched.set_name(new_name);
        let new_cell = self.lib.add_sticks_cell(stretched)?;

        // Swap the instance onto the new cell ("Riot then removes the
        // old instance and inserts an instance of the new cell").
        let new_bbox = self.lib.cell(new_cell)?.bbox;
        {
            let inst = self.instance_mut(from)?;
            inst.cell = new_cell;
            if !inst.is_array() {
                inst.col_spacing = new_bbox.width();
                inst.row_spacing = new_bbox.height();
            }
        }

        // Finish with an abutment on the (recomputed) connectors.
        let new_pairs: Vec<(WorldConnector, WorldConnector)> = self
            .pending
            .clone()
            .iter()
            .map(|p| {
                let fc = self.world_connector(p.from, &p.from_connector)?;
                let tc = self.world_connector(p.to, &p.to_connector)?;
                Ok((fc, tc))
            })
            .collect::<Result<_, RiotError>>()?;
        let d = new_pairs[0].1.location - new_pairs[0].0.location;
        self.apply_translation_and_verify(from, d, &new_pairs)?;

        self.pending.clear();
        self.journal.record(ReplayCommand::Stretch);
        Ok(new_cell)
    }

    /// Brings connectors out to the composition's bounding box: builds
    /// a straight-line route cell from the named connectors on
    /// `instance` (all on world side `side`) to the current bbox edge.
    /// Returns the new cell and instance ids.
    ///
    /// # Errors
    ///
    /// Lookup errors; [`RiotError::NotOpposed`] when a named connector
    /// is not on `side`; routing errors.
    pub fn bring_out(
        &mut self,
        instance: InstanceId,
        connectors: &[&str],
        side: Side,
    ) -> Result<(CellId, InstanceId), RiotError> {
        let mut terms = Vec::new();
        let mut edge = None;
        for name in connectors {
            let wc = self.world_connector(instance, name)?;
            if wc.side != Some(side) {
                return Err(RiotError::NotOpposed {
                    from: wc.side,
                    to: Some(side),
                });
            }
            edge = Some(side.across(wc.location));
            let project = match side {
                Side::Top => wc.location.x,
                Side::Bottom => -wc.location.x,
                Side::Right => -wc.location.y,
                Side::Left => wc.location.y,
            };
            terms.push(Terminal::new(
                wc.name.clone(),
                self.to_lambda(project)?,
                wc.layer,
                self.to_lambda(wc.width)?.max(1),
            ));
        }
        let edge = edge.ok_or(RiotError::NothingPending)?;
        // Length: from the instance edge out to the composition bbox.
        let bbox = self.current_extent()?;
        let outer = bbox.edge(side);
        let gap = match side {
            Side::Top | Side::Right => outer - edge,
            Side::Bottom | Side::Left => edge - outer,
        };
        let length = self.to_lambda(gap.max(LAMBDA))?.max(1);
        let name = self.lib.next_route_name();
        let cell =
            riot_route::straight_route(&terms, length, name.clone()).map_err(RiotError::Route)?;
        let cell_id = self.lib.add_sticks_cell(cell)?;
        let inst_id = self.create_internal_instance(cell_id, format!("{name}i"))?;
        let orient = match side {
            Side::Top => Orientation::R0,
            Side::Bottom => Orientation::R180,
            Side::Right => Orientation::R270,
            Side::Left => Orientation::R90,
        };
        let place = match side {
            Side::Top | Side::Bottom => Point::new(0, edge),
            Side::Left | Side::Right => Point::new(edge, 0),
        };
        {
            let inst = self.instance_mut(inst_id)?;
            inst.transform = Transform::new(orient, place);
        }
        self.journal.record(ReplayCommand::BringOut {
            instance: self.instance(instance)?.name.clone(),
            connectors: connectors.iter().map(|s| (*s).to_owned()).collect(),
            side,
        });
        Ok((cell_id, inst_id))
    }

    /// Union of the live instances' world bounding boxes.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] (never for a consistent cell).
    pub fn current_extent(&self) -> Result<Rect, RiotError> {
        let mut bb: Option<Rect> = None;
        for (id, _) in self.comp().instances() {
            let b = self.instance_bbox(id)?;
            bb = Some(match bb {
                Some(acc) => acc.union(b),
                None => b,
            });
        }
        Ok(bb.unwrap_or(Rect::new(0, 0, 0, 0)))
    }

    /// Finishes the cell: sets its bounding box to the union of its
    /// instances and promotes every instance connector lying exactly on
    /// that box to a connector of the composition cell.
    ///
    /// # Errors
    ///
    /// [`RiotError::BadInstance`] (never for a consistent cell).
    pub fn finish(&mut self) -> Result<usize, RiotError> {
        let bbox = self.current_extent()?;
        let mut connectors: Vec<crate::cell::Connector> = Vec::new();
        let mut used = std::collections::HashSet::new();
        for (id, _) in self.comp().instances().collect::<Vec<_>>() {
            for wc in self.world_connectors(id)? {
                if bbox.side_of(wc.location).is_some() {
                    let mut name = wc.name.clone();
                    while !used.insert(name.clone()) {
                        name.push('\'');
                    }
                    connectors.push(crate::cell::Connector {
                        name,
                        location: wc.location,
                        layer: wc.layer,
                        width: wc.width,
                    });
                }
            }
        }
        let count = connectors.len();
        let cell = self.lib.cell_mut(self.cell)?;
        cell.bbox = bbox;
        cell.connectors = connectors;
        self.journal.record(ReplayCommand::Finish);
        Ok(count)
    }

    fn to_lambda(&mut self, cm: i64) -> Result<i64, RiotError> {
        if cm % LAMBDA != 0 {
            self.warnings.push(format!(
                "coordinate {cm} is off the lambda grid; rounding to {}",
                (cm + LAMBDA / 2).div_euclid(LAMBDA) * LAMBDA
            ));
        }
        Ok((cm + LAMBDA / 2).div_euclid(LAMBDA))
    }
}

/// Strips an array suffix (`name[c,r]` → `name`).
fn base_name(name: &str) -> &str {
    name.split('[').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sticks gate with three left pins and a right output — the
    /// shape of the paper's NAND/OR leaf cells.
    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin B left NP 0 10 2
pin OUT right NM 12 10 3
wire NP 2 0 4 6 4
wire NP 2 0 10 6 10
wire NM 3 6 10 12 10
end
";

    /// A driver with two right-side poly outputs.
    const DRIVER: &str = "\
sticks driver
bbox 0 0 10 20
pin X right NP 10 6 2
pin Y right NP 10 14 2
wire NP 2 0 6 10 6
wire NP 2 0 14 10 14
end
";

    fn setup() -> (Library, CellId, CellId) {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let driver = lib.load_sticks(DRIVER).unwrap();
        (lib, gate, driver)
    }

    #[test]
    fn open_creates_composition() {
        let mut lib = Library::new();
        let ed = Editor::open(&mut lib, "TOP").unwrap();
        assert!(ed.cell().is_composition());
        assert_eq!(ed.cell().name, "TOP");
    }

    #[test]
    fn open_rejects_leaf() {
        let (mut lib, _, _) = setup();
        assert!(matches!(
            Editor::open(&mut lib, "gate"),
            Err(RiotError::NotComposition(_))
        ));
    }

    #[test]
    fn create_and_move_instance() {
        let (mut lib, gate, _) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let i = ed.create_instance(gate).unwrap();
        assert_eq!(ed.instance(i).unwrap().name, "I0");
        ed.translate_instance(i, Point::new(1000, 500)).unwrap();
        let bb = ed.instance_bbox(i).unwrap();
        assert_eq!(bb.lower_left(), Point::new(1000, 500));
    }

    #[test]
    fn connect_validates_layers_and_sides() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(20 * LAMBDA, 0)).unwrap();
        // driver.X (right, NP) to gate.A (left, NP): opposed, same layer.
        ed.connect(g, "A", d, "X").unwrap();
        assert_eq!(ed.pending().len(), 1);
        // gate.OUT is metal: layer mismatch with driver.X.
        assert!(matches!(
            ed.connect(g, "OUT", d, "X"),
            Err(RiotError::LayerMismatch { .. })
        ));
        // Two left-side connectors (gate.A to gate.B) are not opposed.
        let mut ed2 = Editor::open(&mut lib, "TOP2").unwrap();
        let g2 = ed2.create_instance(gate).unwrap();
        let g3 = ed2.create_instance(gate).unwrap();
        assert!(matches!(
            ed2.connect(g2, "A", g3, "B"),
            Err(RiotError::NotOpposed { .. })
        ));
    }

    #[test]
    fn one_to_many_enforced() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        let d2 = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(20 * LAMBDA, 0)).unwrap();
        ed.translate_instance(d2, Point::new(0, -30 * LAMBDA)).unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        // A second from instance is rejected.
        assert!(matches!(
            ed.connect(d2, "X", g, "A"),
            Err(RiotError::MultipleFromInstances(_, _)) | Err(RiotError::NotOpposed { .. })
        ));
        // Same from to another to instance is fine (one-to-many).
        ed.connect(g, "B", d2, "Y").unwrap_or_else(|e| {
            // Geometry may make sides non-opposed; accept that error.
            assert!(matches!(e, RiotError::NotOpposed { .. }));
        });
    }

    #[test]
    fn abut_moves_from_exactly() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(30 * LAMBDA, 7 * LAMBDA))
            .unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        let a = ed.world_connector(g, "A").unwrap();
        let x = ed.world_connector(d, "X").unwrap();
        assert_eq!(a.location, x.location);
        assert!(ed.pending().is_empty());
        assert!(ed.warnings().is_empty());
    }

    #[test]
    fn abut_warns_on_unsatisfiable_second_connection() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0)).unwrap();
        // A-X spacing is 6λ on the gate, 8λ on the driver: both cannot
        // hold at once.
        ed.connect(g, "A", d, "X").unwrap();
        ed.connect(g, "B", d, "Y").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        assert_eq!(ed.warnings().len(), 1);
        assert!(ed.warnings()[0].contains("cannot be made"));
    }

    #[test]
    fn abut_instances_matches_edges() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(50 * LAMBDA, 9 * LAMBDA))
            .unwrap();
        ed.abut_instances(g, d).unwrap();
        let gb = ed.instance_bbox(g).unwrap();
        let db = ed.instance_bbox(d).unwrap();
        assert_eq!(gb.x0, db.x1); // left edge of from on right edge of to
        assert_eq!(gb.y0, db.y0); // bottoms match
    }

    #[test]
    fn route_connects_and_moves_from() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(40 * LAMBDA, 3 * LAMBDA))
            .unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        ed.connect(g, "B", d, "Y").unwrap();
        let (route_cell, route_inst) = ed.route(RouteOptions::default()).unwrap();
        // The route cell is in the menu like any other cell.
        assert!(ed.library().cell(route_cell).unwrap().is_leaf());
        assert!(ed.library().cell(route_cell).unwrap().name.starts_with("route"));
        // After the route the from connectors coincide with the route's
        // top pins — verified by the absence of warnings.
        assert!(ed.warnings().is_empty(), "warnings: {:?}", ed.warnings());
        assert!(ed.pending().is_empty());
        // Route instance sits against the driver's right edge.
        let rb = ed.instance_bbox(route_inst).unwrap();
        let db = ed.instance_bbox(d).unwrap();
        assert_eq!(rb.x0, db.x1);
        // From instance abuts the route's far side.
        let gb = ed.instance_bbox(g).unwrap();
        assert_eq!(gb.x0, rb.x1);
    }

    #[test]
    fn route_without_moving_from() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(40 * LAMBDA, 0)).unwrap();
        let before = ed.instance_bbox(g).unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        ed.route(RouteOptions {
            move_from: false,
            ..RouteOptions::default()
        })
        .unwrap();
        assert_eq!(ed.instance_bbox(g).unwrap(), before);
        // The gap is 40-10=30λ wide; the route fills it exactly.
        let route_inst = ed
            .instances()
            .into_iter()
            .find(|(_, i)| i.name.starts_with("route"))
            .map(|(id, _)| id)
            .unwrap();
        let rb = ed.instance_bbox(route_inst).unwrap();
        assert_eq!(rb.width(), 30 * LAMBDA);
    }

    #[test]
    fn route_too_tight_without_move() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        // Offset connection (A at 4λ vs X at 6λ) needs a jog channel,
        // but the gap is only 1λ.
        ed.translate_instance(g, Point::new(11 * LAMBDA, 0)).unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        let err = ed
            .route(RouteOptions {
                move_from: false,
                ..RouteOptions::default()
            })
            .unwrap_err();
        assert!(matches!(err, RiotError::ChannelTooTight { .. }));
    }

    #[test]
    fn stretch_replaces_cell_and_abuts() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0)).unwrap();
        // Driver pins are 8λ apart; gate pins 6λ apart: stretch grows
        // the gate.
        ed.connect(g, "A", d, "X").unwrap();
        ed.connect(g, "B", d, "Y").unwrap();
        let new_cell = ed.stretch(StretchOptions::default()).unwrap();
        assert_eq!(ed.library().cell(new_cell).unwrap().name, "gate'");
        assert_eq!(ed.instance(g).unwrap().cell, new_cell);
        // Both connections now coincide — no warnings.
        assert!(ed.warnings().is_empty(), "warnings: {:?}", ed.warnings());
        let a = ed.world_connector(g, "A").unwrap();
        let x = ed.world_connector(d, "X").unwrap();
        assert_eq!(a.location, x.location);
        let b = ed.world_connector(g, "B").unwrap();
        let y = ed.world_connector(d, "Y").unwrap();
        assert_eq!(b.location, y.location);
    }

    #[test]
    fn stretch_rejects_cif_cells() {
        let mut lib = Library::new();
        let pad = lib
            .load_cif("DS 1;9 pad;L NP;B 1000 1000 500 500;94 P 0 500 NP 250;DF;E")
            .unwrap()[0];
        let driver = lib.load_sticks(DRIVER).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let p = ed.create_instance(pad).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(p, Point::new(30 * LAMBDA, 0)).unwrap();
        ed.connect(p, "P", d, "X").unwrap();
        assert!(matches!(
            ed.stretch(StretchOptions::default()),
            Err(RiotError::NotStretchable(_))
        ));
    }

    #[test]
    fn finish_promotes_boundary_connectors() {
        let (mut lib, gate, _) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        ed.finish().unwrap();
        let cell = ed.cell();
        assert_eq!(cell.bbox, Rect::new(0, 0, 12 * LAMBDA, 20 * LAMBDA));
        // All three connectors are on the bbox.
        assert_eq!(cell.connectors.len(), 3);
        let _ = g;
    }

    #[test]
    fn replicated_array_spacing_and_connectors() {
        let (mut lib, gate, _) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        ed.replicate_instance(g, 1, 4).unwrap();
        let bb = ed.instance_bbox(g).unwrap();
        assert_eq!(bb.height(), 4 * 20 * LAMBDA);
        let conns = ed.world_connectors(g).unwrap();
        // 2 left pins x 4 rows + 1 right pin x 4 rows.
        assert_eq!(conns.len(), 12);
        assert!(conns.iter().any(|c| c.name == "A[0,3]"));
    }

    #[test]
    fn delete_instance_clears_pending() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0)).unwrap();
        ed.connect(g, "A", d, "X").unwrap();
        ed.delete_instance(d).unwrap();
        assert!(ed.pending().is_empty());
        assert!(ed.instance(d).is_err());
    }

    #[test]
    fn connect_bus_matches_by_position() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        ed.translate_instance(g, Point::new(30 * LAMBDA, 0)).unwrap();
        let added = ed.connect_bus(g, d).unwrap();
        // Names differ (A,B vs X,Y) so positional pairing applies: two
        // NP pairs; OUT (NM, right side) finds no partner.
        assert_eq!(added, 2);
        assert_eq!(ed.pending().len(), 2);
    }

    #[test]
    fn orient_instance_rotates_in_place() {
        let (mut lib, gate, _) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        ed.translate_instance(g, Point::new(1000, 1000)).unwrap();
        ed.orient_instance(g, Orientation::R90).unwrap();
        let inst = ed.instance(g).unwrap();
        assert_eq!(inst.transform.orient, Orientation::R90);
        assert_eq!(inst.transform.offset, Point::new(1000, 1000));
    }

    #[test]
    fn bring_out_reaches_bbox_edge() {
        let (mut lib, gate, driver) = setup();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let g = ed.create_instance(gate).unwrap();
        let d = ed.create_instance(driver).unwrap();
        // Put the driver far to the right so the composition bbox
        // extends past the gate.
        ed.translate_instance(d, Point::new(40 * LAMBDA, 0)).unwrap();
        let (_cell, inst) = ed.bring_out(g, &["A", "B"], Side::Left).unwrap();
        let rb = ed.instance_bbox(inst).unwrap();
        let extent = ed.current_extent().unwrap();
        assert_eq!(rb.x0, extent.x0);
        let _ = g;
    }
}
