//! Shared CONNECT route planning.
//!
//! The ROUTE command turns the pending connection list into a channel
//! routing problem, solves it, and places the resulting route cell.
//! This module holds the *planning* half — channel orientation, the
//! terminal lists, obstacle mapping, and the engine dispatch — as pure
//! functions over public data, so the `riot-check` reference model can
//! run the exact same computation and predict routing errors
//! bit-for-bit instead of merely observing them.
//!
//! Obstacles are the world bounding boxes of **bystander** instances:
//! every live instance that is neither the *from* instance (it moves
//! with the route) nor one of the *to* instances (they host the bottom
//! channel edge). Riot composes opaque cells, so routing treats a
//! bystander's full extent as blocked on every routable layer — exactly
//! what the reference model can recompute from its mirrored state.

use crate::connection::WorldConnector;
use crate::error::RiotError;
use riot_geom::{Layer, Orientation, Point, Rect, Side, Transform, LAMBDA};
use riot_route::{RouteError, RouteProblem, RouteResult, RouterEngine, RouterOptions, Terminal};

/// A fully planned (but unsolved) CONNECT route.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// The channel routing problem, in lambda.
    pub problem: RouteProblem,
    /// The world side of the *to* instance(s) the channel grows out of.
    pub to_side: Side,
    /// World coordinate of the channel's bottom edge line (centimicrons).
    pub edge: i64,
    /// Placement of the route cell: channel-local lambda × [`LAMBDA`]
    /// through this transform gives world centimicrons.
    pub transform: Transform,
    /// Off-grid rounding warnings, in the order the editor reports them.
    pub warnings: Vec<String>,
}

/// Projects a world point onto the channel's x axis for `to_side`.
fn project(to_side: Side, p: Point) -> i64 {
    match to_side {
        Side::Top => p.x,
        Side::Bottom => -p.x,
        Side::Right => -p.y,
        Side::Left => p.y,
    }
}

fn snap(cm: i64, warnings: &mut Vec<String>) -> i64 {
    if cm % LAMBDA != 0 {
        warnings.push(format!(
            "coordinate {cm} is off the lambda grid; rounding to {}",
            (cm + LAMBDA / 2).div_euclid(LAMBDA) * LAMBDA
        ));
    }
    (cm + LAMBDA / 2).div_euclid(LAMBDA)
}

/// Builds the routing problem for the resolved pending pairs, exactly
/// as the editor's ROUTE command does: all *to* connectors must share
/// one side and one edge line, the channel grows out of that side, and
/// coordinates snap to the lambda grid (collecting the same warnings
/// the editor pushes).
///
/// # Errors
///
/// [`RiotError::NotOpposed`] when a *to* connector sits on a different
/// side than the first; [`RiotError::RaggedChannelEdge`] when the *to*
/// edge lines disagree.
pub fn plan_route(
    pairs: &[(WorldConnector, WorldConnector)],
    move_from: bool,
    router_options: RouterOptions,
) -> Result<RoutePlan, RiotError> {
    let to_side = pairs[0].1.side.expect("connect() checked sides");
    let edge = to_side.across(pairs[0].1.location);
    for (_, tc) in pairs {
        if tc.side != Some(to_side) {
            return Err(RiotError::NotOpposed {
                from: pairs[0].1.side,
                to: tc.side,
            });
        }
        let across = to_side.across(tc.location);
        if across != edge {
            return Err(RiotError::RaggedChannelEdge {
                expected: edge,
                found: across,
            });
        }
    }
    let orient = match to_side {
        Side::Top => Orientation::R0,
        Side::Bottom => Orientation::R180,
        Side::Right => Orientation::R270,
        Side::Left => Orientation::R90,
    };
    let place = match to_side {
        Side::Top | Side::Bottom => Point::new(0, edge),
        Side::Left | Side::Right => Point::new(edge, 0),
    };

    let mut warnings = Vec::new();
    let mut bottom = Vec::new();
    let mut top = Vec::new();
    for (fc, tc) in pairs {
        bottom.push(Terminal::new(
            tc.name.clone(),
            snap(project(to_side, tc.location), &mut warnings),
            tc.layer,
            snap(tc.width.max(1), &mut warnings).max(1),
        ));
        top.push(Terminal::new(
            fc.name.clone(),
            snap(project(to_side, fc.location), &mut warnings),
            fc.layer,
            snap(fc.width.max(1), &mut warnings).max(1),
        ));
    }

    let mut router = router_options;
    if !move_from {
        // The route must exactly fill the existing gap.
        let from_edge = to_side.across(pairs[0].0.location);
        let gap = (from_edge - edge).abs();
        router.exact_height = Some(snap(gap, &mut warnings));
    }
    Ok(RoutePlan {
        problem: RouteProblem {
            bottom,
            top,
            options: router,
        },
        to_side,
        edge,
        transform: Transform::new(orient, place),
        warnings,
    })
}

/// Maps bystander world rectangles (centimicrons) into channel-local
/// lambda obstacles, blocking every routable layer. Rounding is
/// conservative: obstacle edges push *outward* to the next lambda line,
/// so a route can never cut a corner the world geometry occupies.
pub fn channel_obstacles(to_side: Side, edge: i64, bystanders: &[Rect]) -> Vec<(Layer, Rect)> {
    let local_y = |p: Point| -> i64 {
        match to_side {
            Side::Top | Side::Right => to_side.across(p) - edge,
            Side::Bottom | Side::Left => edge - to_side.across(p),
        }
    };
    let floor_l = |v: i64| v.div_euclid(LAMBDA);
    let ceil_l = |v: i64| -(-v).div_euclid(LAMBDA);
    let mut out = Vec::with_capacity(bystanders.len() * Layer::ROUTABLE.len());
    for &r in bystanders {
        let a = Point::new(r.x0, r.y0);
        let b = Point::new(r.x1, r.y1);
        let (xa, xb) = (project(to_side, a), project(to_side, b));
        let (ya, yb) = (local_y(a), local_y(b));
        let local = Rect::new(
            floor_l(xa.min(xb)),
            floor_l(ya.min(yb)),
            ceil_l(xa.max(xb)),
            ceil_l(ya.max(yb)),
        );
        for &layer in &Layer::ROUTABLE {
            out.push((layer, local));
        }
    }
    out
}

/// Solves a planned route with the engine named in the options,
/// mirroring [`riot_route::solve`] but with a hook called right before
/// the grid router runs — the editor trips the
/// [`crate::fault::FAULT_ROUTE_GRID_SOLVE`] site there, the reference
/// model passes `|| Ok(())`.
///
/// # Errors
///
/// [`RiotError::ChannelTooTight`] for the exact-height failure,
/// [`RiotError::Route`] for every other router error, or whatever the
/// hook raises.
pub fn solve_route(
    problem: &RouteProblem,
    obstacles: &[(Layer, Rect)],
    mut before_grid: impl FnMut() -> Result<(), RiotError>,
) -> Result<RouteResult, RiotError> {
    let map = |e: RouteError| match e {
        RouteError::ChannelTooTight { needed, available } => {
            RiotError::ChannelTooTight { needed, available }
        }
        other => RiotError::Route(other),
    };
    match problem.options.engine {
        RouterEngine::Grid => {
            before_grid()?;
            riot_route::grid_route(problem, obstacles)
                .map(RouteResult::Grid)
                .map_err(map)
        }
        RouterEngine::River => match riot_route::river_route(problem) {
            Ok(r) => Ok(RouteResult::River(r)),
            Err(RouteError::LayerMismatch { .. }) | Err(RouteError::NotRiverRoutable { .. }) => {
                if riot_trace::enabled() {
                    riot_trace::registry().counter("route.grid.fallbacks").inc();
                }
                before_grid()?;
                riot_route::grid_route(problem, obstacles)
                    .map(RouteResult::Grid)
                    .map_err(map)
            }
            Err(e) => Err(map(e)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc(name: &str, x: i64, y: i64, side: Side) -> WorldConnector {
        WorldConnector {
            instance_name: "I".into(),
            name: name.into(),
            location: Point::new(x, y),
            layer: Layer::Metal,
            width: 3 * LAMBDA,
            side: Some(side),
        }
    }

    #[test]
    fn plan_matches_editor_shape() {
        let pairs = vec![(
            wc("a", 2 * LAMBDA, 40 * LAMBDA, Side::Bottom),
            wc("a", 2 * LAMBDA, 10 * LAMBDA, Side::Top),
        )];
        let plan = plan_route(&pairs, true, RouterOptions::new()).unwrap();
        assert_eq!(plan.to_side, Side::Top);
        assert_eq!(plan.edge, 10 * LAMBDA);
        assert_eq!(plan.problem.bottom[0].offset, 2);
        assert_eq!(plan.problem.top[0].offset, 2);
        assert!(plan.warnings.is_empty());
        assert!(plan.problem.options.exact_height.is_none());
    }

    #[test]
    fn stay_pins_exact_height() {
        let pairs = vec![(
            wc("a", 0, 40 * LAMBDA, Side::Bottom),
            wc("a", 0, 10 * LAMBDA, Side::Top),
        )];
        let plan = plan_route(&pairs, false, RouterOptions::new()).unwrap();
        assert_eq!(plan.problem.options.exact_height, Some(30));
    }

    #[test]
    fn off_grid_coordinates_warn() {
        let pairs = vec![(
            wc("a", LAMBDA + 10, 40 * LAMBDA, Side::Bottom),
            wc("a", 0, 10 * LAMBDA, Side::Top),
        )];
        let plan = plan_route(&pairs, true, RouterOptions::new()).unwrap();
        assert_eq!(plan.warnings.len(), 1);
        assert!(plan.warnings[0].contains("off the lambda grid"));
    }

    #[test]
    fn obstacles_map_conservatively_per_side() {
        // A world rect just past the top-side channel edge.
        let world = Rect::new(LAMBDA, 12 * LAMBDA + 10, 5 * LAMBDA, 20 * LAMBDA);
        let obs = channel_obstacles(Side::Top, 10 * LAMBDA, &[world]);
        assert_eq!(obs.len(), Layer::ROUTABLE.len());
        let (_, r) = obs[0];
        assert_eq!(r, Rect::new(1, 2, 5, 10));
        // Bottom side flips both axes.
        let obs = channel_obstacles(Side::Bottom, 22 * LAMBDA, &[world]);
        let (_, r) = obs[0];
        assert_eq!(r, Rect::new(-5, 2, -1, 10));
    }

    #[test]
    fn solve_route_falls_back_and_maps_errors() {
        let pairs = vec![(
            wc("a", 0, 40 * LAMBDA, Side::Bottom),
            wc("a", 0, 10 * LAMBDA, Side::Top),
        )];
        let mut plan = plan_route(&pairs, true, RouterOptions::new()).unwrap();
        plan.problem.top[0].layer = Layer::Poly;
        let mut grid_hook = 0;
        let r = solve_route(&plan.problem, &[], || {
            grid_hook += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(r.engine(), RouterEngine::Grid);
        assert_eq!(grid_hook, 1);
        // The hook's error wins over the grid solve.
        let err = solve_route(&plan.problem, &[], || {
            Err(RiotError::FaultInjected("route.grid.solve".into()))
        })
        .unwrap_err();
        assert!(matches!(err, RiotError::FaultInjected(_)));
    }
}
