//! Cells: the things the menu holds and instances reference.
//!
//! "There are two kinds of cells in Riot: leaf cells on the leaves of
//! the hierarchical tree, consisting of primitive geometry or Sticks …;
//! and composition cells in the interior of the tree, which consist
//! only of instances of other cells."

use crate::instance::Instance;
use riot_geom::{Layer, Point, Rect, Side, LAMBDA};
use riot_sticks::SticksCell;
use std::fmt;

/// Index of a cell in the [`crate::Library`] (the cell menu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// The raw index (stable for the life of the library).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A connection point on a cell: "a location on or inside the bounding
/// box of the cell, and the layer and width of the wire that makes that
/// connection". Coordinates and widths in centimicrons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connector {
    /// Connector name, unique within the cell.
    pub name: String,
    /// Location in cell coordinates.
    pub location: Point,
    /// Wire layer.
    pub layer: Layer,
    /// Wire width.
    pub width: i64,
}

impl Connector {
    /// Which bounding-box side the connector sits on, or `None` for an
    /// interior connector.
    pub fn side_in(&self, bbox: Rect) -> Option<Side> {
        bbox.side_of(self.location)
    }
}

/// What a leaf cell is made of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafSource {
    /// Mask geometry imported from CIF — fixed shape, not stretchable.
    Cif {
        /// Flattened painted shapes in cell coordinates.
        shapes: Vec<riot_cif::Shape>,
    },
    /// Symbolic layout — stretchable through REST.
    Sticks(SticksCell),
}

/// The contents of a composition cell: only instances.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Composition {
    /// Instance slots; deleted instances leave `None` so ids stay
    /// stable within a session.
    pub(crate) instances: Vec<Option<Instance>>,
}

impl Composition {
    /// Iterates over the live instances with their ids.
    pub fn instances(&self) -> impl Iterator<Item = (crate::InstanceId, &Instance)> {
        self.instances
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|inst| (crate::InstanceId(i), inst)))
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.instances.iter().flatten().count()
    }

    /// True when no live instances remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Leaf or composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellKind {
    /// A leaf cell.
    Leaf(LeafSource),
    /// A composition cell.
    Composition(Composition),
}

/// One cell in the menu.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Cell name as shown in the menu.
    pub name: String,
    /// Bounding box in cell coordinates (centimicrons).
    pub bbox: Rect,
    /// The cell's connectors.
    pub connectors: Vec<Connector>,
    /// Leaf geometry or composition contents.
    pub kind: CellKind,
}

impl Cell {
    /// Builds a leaf cell from a flattened CIF definition.
    ///
    /// `shapes` must already be flattened into the cell's coordinates
    /// (see [`riot_cif::flatten::flatten_cell`]); [`crate::Library`]
    /// does this when importing files.
    pub fn from_cif_shapes(
        name: impl Into<String>,
        shapes: Vec<riot_cif::Shape>,
        connectors: Vec<Connector>,
    ) -> Cell {
        let mut bbox: Option<Rect> = None;
        for s in &shapes {
            let b = s.geometry.bounding_box();
            bbox = Some(match bbox {
                Some(acc) => acc.union(b),
                None => b,
            });
        }
        for c in &connectors {
            let b = Rect::at_point(c.location);
            bbox = Some(match bbox {
                Some(acc) => acc.union(b),
                None => b,
            });
        }
        Cell {
            name: name.into(),
            bbox: bbox.unwrap_or(Rect::new(0, 0, 0, 0)),
            connectors,
            kind: CellKind::Leaf(LeafSource::Cif { shapes }),
        }
    }

    /// Builds a leaf cell from a symbolic Sticks cell. Pins become
    /// connectors at lambda × λ centimicron positions.
    pub fn from_sticks(cell: SticksCell) -> Cell {
        let bbox = riot_sticks::mask::mask_bbox(&cell);
        let connectors = cell
            .pins()
            .iter()
            .map(|p| Connector {
                name: p.name.clone(),
                location: Point::new(p.position.x * LAMBDA, p.position.y * LAMBDA),
                layer: p.layer,
                width: p.width * LAMBDA,
            })
            .collect();
        Cell {
            name: cell.name().to_owned(),
            bbox,
            connectors,
            kind: CellKind::Leaf(LeafSource::Sticks(cell)),
        }
    }

    /// Builds an empty composition cell.
    pub fn new_composition(name: impl Into<String>) -> Cell {
        Cell {
            name: name.into(),
            bbox: Rect::new(0, 0, 0, 0),
            connectors: Vec::new(),
            kind: CellKind::Composition(Composition::default()),
        }
    }

    /// True for leaf cells.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, CellKind::Leaf(_))
    }

    /// True for composition cells.
    pub fn is_composition(&self) -> bool {
        matches!(self.kind, CellKind::Composition(_))
    }

    /// The Sticks source, if this leaf is symbolic (stretchable).
    pub fn sticks(&self) -> Option<&SticksCell> {
        match &self.kind {
            CellKind::Leaf(LeafSource::Sticks(s)) => Some(s),
            _ => None,
        }
    }

    /// The composition contents, if any.
    pub fn composition(&self) -> Option<&Composition> {
        match &self.kind {
            CellKind::Composition(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable composition contents, if any.
    pub(crate) fn composition_mut(&mut self) -> Option<&mut Composition> {
        match &mut self.kind {
            CellKind::Composition(c) => Some(c),
            _ => None,
        }
    }

    /// Looks up a connector by name.
    pub fn connector(&self, name: &str) -> Option<&Connector> {
        self.connectors.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sticks_scales_connectors() {
        let text = "sticks t\nbbox 0 0 10 8\npin A left NM 0 4 3\nend\n";
        let cell = Cell::from_sticks(riot_sticks::parse(text).unwrap());
        assert_eq!(cell.bbox, Rect::new(0, 0, 10 * LAMBDA, 8 * LAMBDA));
        let c = cell.connector("A").unwrap();
        assert_eq!(c.location, Point::new(0, 4 * LAMBDA));
        assert_eq!(c.width, 3 * LAMBDA);
        assert!(cell.is_leaf());
        assert!(cell.sticks().is_some());
    }

    #[test]
    fn cif_leaf_bbox_from_shapes() {
        let shapes = vec![riot_cif::Shape {
            layer: Layer::Metal,
            geometry: riot_cif::Geometry::Box(Rect::new(0, 0, 500, 250)),
        }];
        let cell = Cell::from_cif_shapes("pad", shapes, vec![]);
        assert_eq!(cell.bbox, Rect::new(0, 0, 500, 250));
        assert!(cell.sticks().is_none());
    }

    #[test]
    fn connector_sides() {
        let bbox = Rect::new(0, 0, 100, 100);
        let mk = |x, y| Connector {
            name: "c".into(),
            location: Point::new(x, y),
            layer: Layer::Metal,
            width: 250,
        };
        assert_eq!(mk(0, 50).side_in(bbox), Some(Side::Left));
        assert_eq!(mk(100, 50).side_in(bbox), Some(Side::Right));
        assert_eq!(mk(50, 50).side_in(bbox), None);
    }

    #[test]
    fn composition_starts_empty() {
        let cell = Cell::new_composition("TOP");
        assert!(cell.is_composition());
        assert!(cell.composition().unwrap().is_empty());
    }
}
