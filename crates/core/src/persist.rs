//! Binary serialization of a suspended session (`Library` +
//! [`Checkpoint`]) for snapshot-based recovery.
//!
//! `riot-serve` recovers a session by replaying its WAL through the
//! engine — correct, but O(history): a 100k-command session replays
//! 100k commands on every reopen. This module serializes the suspended
//! state itself, so recovery becomes *decode + WAL-tail replay*:
//! decoding is a linear scan over bytes, orders of magnitude cheaper
//! than re-executing commands through the transactional engine, and the
//! tail is bounded by the snapshot interval.
//!
//! # Format
//!
//! A hand-rolled little-endian binary codec (this crate takes no
//! serialization dependency): one leading version byte, then the
//! library (cells verbatim, including leaf geometry) and the checkpoint
//! (pending list, warnings, journal, undo/redo stacks, stats).
//! Commands — in the journal, the undo stack and the redo stack — are
//! stored as their `command_to_line` text, the same canonical form the
//! WAL uses, so the snapshot's command encoding is proven by the same
//! round-trip tests. Undo records are tagged structs.
//!
//! The encoding is **canonical**: encoding the decode of an encoding
//! reproduces the bytes exactly. Tests lean on this — byte equality is
//! state equality.
//!
//! # What is not serialized
//!
//! An armed [`FaultPlan`](crate::FaultPlan) holds `&'static str` site
//! tallies that cannot round-trip through bytes;
//! [`encode_session`] refuses such checkpoints ([`PersistError::
//! FaultPlanArmed`]) rather than silently disarming the harness.
//! `riot-serve` never arms editor-level plans, so served sessions
//! always snapshot.

use crate::cell::{Cell, CellId, CellKind, Composition, Connector, LeafSource};
use crate::connection::PendingConnection;
use crate::editor::Checkpoint;
use crate::history::{Applied, History, UndoRecord};
use crate::instance::{Instance, InstanceId};
use crate::library::{Library, LibraryCheckpoint};
use crate::replay::{command_to_line, parse_command_line, Journal};
use crate::txn;
use riot_geom::{Layer, Orientation, Path, Point, Rect, Side, Transform};
use std::fmt;

/// Format version written as the first payload byte.
const VERSION: u8 = 1;

/// Why encoding or decoding a session failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The payload ended before the structure did.
    Truncated,
    /// The leading version byte is not one this build understands.
    BadVersion(
        /// The version byte found.
        u8,
    ),
    /// An enum tag byte was out of range.
    BadTag {
        /// Which structure the tag discriminates.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A stored command line failed to parse back.
    BadCommand(
        /// The parser's error, rendered.
        String,
    ),
    /// A stored wire path violated the Manhattan invariant.
    BadPath(
        /// The path validation error, rendered.
        String,
    ),
    /// The checkpoint carries an armed fault plan, which cannot be
    /// serialized (its per-site tallies key on `&'static str`).
    FaultPlanArmed,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "payload truncated"),
            PersistError::BadVersion(v) => write!(f, "unsupported session format version {v}"),
            PersistError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            PersistError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            PersistError::BadCommand(e) => write!(f, "stored command does not parse: {e}"),
            PersistError::BadPath(e) => write!(f, "stored path is invalid: {e}"),
            PersistError::FaultPlanArmed => {
                write!(f, "cannot serialize a session with an armed fault plan")
            }
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serializes a suspended session to bytes.
///
/// # Errors
///
/// [`PersistError::FaultPlanArmed`] when the checkpoint carries a fault
/// plan (see the module docs); encoding is otherwise infallible.
pub fn encode_session(lib: &Library, cp: &Checkpoint) -> Result<Vec<u8>, PersistError> {
    if cp.fault.is_some() {
        return Err(PersistError::FaultPlanArmed);
    }
    let mut out = Vec::with_capacity(4096);
    out.push(VERSION);
    put_u64(&mut out, lib.route_counter as u64);
    put_u32(&mut out, lib.cells.len() as u32);
    for cell in &lib.cells {
        put_cell(&mut out, cell);
    }
    put_u64(&mut out, cp.cell.index() as u64);
    put_u32(&mut out, cp.pending.len() as u32);
    for conn in &cp.pending {
        put_conn(&mut out, conn);
    }
    put_u32(&mut out, cp.warnings.len() as u32);
    for w in &cp.warnings {
        put_str(&mut out, w);
    }
    let cmds = cp.journal.commands();
    put_u32(&mut out, cmds.len() as u32);
    for cmd in cmds {
        put_str(&mut out, &command_to_line(cmd));
    }
    put_u64(&mut out, cp.instance_counter as u64);
    put_u32(&mut out, cp.history.undo.len() as u32);
    for applied in &cp.history.undo {
        put_str(&mut out, &command_to_line(&applied.command));
        put_undo(&mut out, &applied.undo);
    }
    put_u32(&mut out, cp.history.redo.len() as u32);
    for cmd in &cp.history.redo {
        put_str(&mut out, &command_to_line(cmd));
    }
    for v in stats_fields(&cp.stats) {
        put_u64(&mut out, v);
    }
    Ok(out)
}

/// The ten stats counters in a fixed serialization order.
fn stats_fields(s: &crate::Stats) -> [u64; 10] {
    [
        s.applied,
        s.undos,
        s.redos,
        s.rollbacks,
        s.events,
        s.cache_hits,
        s.cache_misses,
        s.apply_nanos,
        s.damage_rects,
        s.damage_coalesced,
    ]
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_i64(out, p.x);
    put_i64(out, p.y);
}

fn put_rect(out: &mut Vec<u8>, r: Rect) {
    put_i64(out, r.x0);
    put_i64(out, r.y0);
    put_i64(out, r.x1);
    put_i64(out, r.y1);
}

fn put_path(out: &mut Vec<u8>, path: &Path) {
    let pts = path.points();
    put_u32(out, pts.len() as u32);
    for &p in pts {
        put_point(out, p);
    }
}

/// Index of a value in its type's `ALL` constant — the stable tag.
fn index_in<T: PartialEq + Copy>(all: &[T], v: T) -> u8 {
    all.iter().position(|&a| a == v).expect("value in ALL") as u8
}

fn put_transform(out: &mut Vec<u8>, t: Transform) {
    out.push(index_in(&Orientation::ALL, t.orient));
    put_point(out, t.offset);
}

fn put_conn(out: &mut Vec<u8>, c: &PendingConnection) {
    put_u64(out, c.from.index() as u64);
    put_str(out, &c.from_connector);
    put_u64(out, c.to.index() as u64);
    put_str(out, &c.to_connector);
}

fn put_instance(out: &mut Vec<u8>, inst: &Instance) {
    put_str(out, &inst.name);
    put_u64(out, inst.cell.index() as u64);
    put_transform(out, inst.transform);
    put_u32(out, inst.cols);
    put_u32(out, inst.rows);
    put_i64(out, inst.col_spacing);
    put_i64(out, inst.row_spacing);
}

fn put_cell(out: &mut Vec<u8>, cell: &Cell) {
    put_str(out, &cell.name);
    put_rect(out, cell.bbox);
    put_u32(out, cell.connectors.len() as u32);
    for c in &cell.connectors {
        put_str(out, &c.name);
        put_point(out, c.location);
        out.push(index_in(&Layer::ALL, c.layer));
        put_i64(out, c.width);
    }
    match &cell.kind {
        CellKind::Leaf(LeafSource::Cif { shapes }) => {
            out.push(0);
            put_u32(out, shapes.len() as u32);
            for s in shapes {
                put_shape(out, s);
            }
        }
        CellKind::Leaf(LeafSource::Sticks(s)) => {
            out.push(1);
            put_sticks(out, s);
        }
        CellKind::Composition(comp) => {
            out.push(2);
            put_u32(out, comp.instances.len() as u32);
            for slot in &comp.instances {
                match slot {
                    None => out.push(0),
                    Some(inst) => {
                        out.push(1);
                        put_instance(out, inst);
                    }
                }
            }
        }
    }
}

fn put_shape(out: &mut Vec<u8>, s: &riot_cif::Shape) {
    out.push(index_in(&Layer::ALL, s.layer));
    match &s.geometry {
        riot_cif::Geometry::Box(r) => {
            out.push(0);
            put_rect(out, *r);
        }
        riot_cif::Geometry::Polygon(pts) => {
            out.push(1);
            put_u32(out, pts.len() as u32);
            for &p in pts {
                put_point(out, p);
            }
        }
        riot_cif::Geometry::Wire { width, path } => {
            out.push(2);
            put_i64(out, *width);
            put_path(out, path);
        }
        riot_cif::Geometry::Flash { diameter, center } => {
            out.push(3);
            put_i64(out, *diameter);
            put_point(out, *center);
        }
    }
}

fn put_sticks(out: &mut Vec<u8>, s: &riot_sticks::SticksCell) {
    put_str(out, s.name());
    put_rect(out, s.bbox());
    put_u32(out, s.pins().len() as u32);
    for p in s.pins() {
        put_str(out, &p.name);
        out.push(index_in(&Side::ALL, p.side));
        out.push(index_in(&Layer::ALL, p.layer));
        put_point(out, p.position);
        put_i64(out, p.width);
    }
    put_u32(out, s.wires().len() as u32);
    for w in s.wires() {
        out.push(index_in(&Layer::ALL, w.layer));
        put_i64(out, w.width);
        put_path(out, &w.path);
    }
    put_u32(out, s.devices().len() as u32);
    for d in s.devices() {
        out.push(match d.kind {
            riot_sticks::DeviceKind::Enhancement => 0,
            riot_sticks::DeviceKind::Depletion => 1,
        });
        put_point(out, d.position);
        out.push(index_in(&Orientation::ALL, d.orient));
    }
    put_u32(out, s.contacts().len() as u32);
    for c in s.contacts() {
        out.push(match c.kind {
            riot_sticks::ContactKind::MetalDiffusion => 0,
            riot_sticks::ContactKind::MetalPoly => 1,
            riot_sticks::ContactKind::Buried => 2,
        });
        put_point(out, c.position);
    }
}

fn put_undo(out: &mut Vec<u8>, undo: &UndoRecord) {
    match undo {
        UndoRecord::PopInstance => out.push(0),
        UndoRecord::Transform { id, prev } => {
            out.push(1);
            put_u64(out, id.index() as u64);
            put_transform(out, *prev);
        }
        UndoRecord::Replicate { id, cols, rows } => {
            out.push(2);
            put_u64(out, id.index() as u64);
            put_u32(out, *cols);
            put_u32(out, *rows);
        }
        UndoRecord::Spacing { id, col, row } => {
            out.push(3);
            put_u64(out, id.index() as u64);
            put_i64(out, *col);
            put_i64(out, *row);
        }
        UndoRecord::RestoreInstance {
            id,
            instance,
            pending,
        } => {
            out.push(4);
            put_u64(out, id.index() as u64);
            put_instance(out, instance);
            put_u32(out, pending.len() as u32);
            for c in pending {
                put_conn(out, c);
            }
        }
        UndoRecord::PopPending => out.push(5),
        UndoRecord::InsertPending { index, conn } => {
            out.push(6);
            put_u64(out, *index as u64);
            put_conn(out, conn);
        }
        UndoRecord::RestorePending(pending) => {
            out.push(7);
            put_u32(out, pending.len() as u32);
            for c in pending {
                put_conn(out, c);
            }
        }
        UndoRecord::Snapshot(snap) => {
            out.push(8);
            put_u64(out, snap.checkpoint.cells_len as u64);
            put_u64(out, snap.checkpoint.route_counter as u64);
            put_cell(out, &snap.edit_cell);
            put_u32(out, snap.pending.len() as u32);
            for c in &snap.pending {
                put_conn(out, c);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Rebuilds a session from [`encode_session`] bytes.
///
/// The result is resume-ready: hand the pair to
/// [`Editor::resume`](crate::Editor::resume).
///
/// # Errors
///
/// Any [`PersistError`] variant except `FaultPlanArmed`. The decoder
/// never panics on malformed input — every read is bounds-checked and
/// every tag validated — though callers are expected to have verified
/// an integrity checksum first.
pub fn decode_session(bytes: &[u8]) -> Result<(Library, Checkpoint), PersistError> {
    let mut cur = Cur { b: bytes, pos: 0 };
    let version = cur.u8()?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let route_counter = cur.u64()? as usize;
    let n_cells = cur.u32()? as usize;
    let mut cells = Vec::with_capacity(n_cells.min(cur.remaining()));
    for _ in 0..n_cells {
        cells.push(get_cell(&mut cur)?);
    }
    let lib = Library {
        cells,
        route_counter,
    };
    let cell = CellId(cur.u64()? as usize);
    let pending = get_conns(&mut cur)?;
    let n_warn = cur.u32()? as usize;
    let mut warnings = Vec::with_capacity(n_warn.min(cur.remaining()));
    for _ in 0..n_warn {
        warnings.push(cur.string()?);
    }
    let n_journal = cur.u32()? as usize;
    let mut journal = Journal::new();
    for _ in 0..n_journal {
        journal.record(get_command(&mut cur)?);
    }
    let instance_counter = cur.u64()? as usize;
    let n_undo = cur.u32()? as usize;
    let mut undo = Vec::with_capacity(n_undo.min(cur.remaining()));
    for _ in 0..n_undo {
        let command = get_command(&mut cur)?;
        let record = get_undo(&mut cur)?;
        undo.push(Applied {
            command,
            undo: record,
        });
    }
    let n_redo = cur.u32()? as usize;
    let mut redo = Vec::with_capacity(n_redo.min(cur.remaining()));
    for _ in 0..n_redo {
        redo.push(get_command(&mut cur)?);
    }
    let mut stats = crate::Stats::default();
    let fields: [&mut u64; 10] = [
        &mut stats.applied,
        &mut stats.undos,
        &mut stats.redos,
        &mut stats.rollbacks,
        &mut stats.events,
        &mut stats.cache_hits,
        &mut stats.cache_misses,
        &mut stats.apply_nanos,
        &mut stats.damage_rects,
        &mut stats.damage_coalesced,
    ];
    for slot in fields {
        *slot = cur.u64()?;
    }
    let cp = Checkpoint {
        cell,
        pending,
        warnings,
        journal,
        instance_counter,
        history: History { undo, redo },
        stats,
        fault: None,
    };
    Ok((lib, cp))
}

/// Bounds-checked little-endian reader over the payload.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::BadUtf8)
    }

    fn point(&mut self) -> Result<Point, PersistError> {
        Ok(Point::new(self.i64()?, self.i64()?))
    }

    fn rect(&mut self) -> Result<Rect, PersistError> {
        Ok(Rect::new(
            self.i64()?,
            self.i64()?,
            self.i64()?,
            self.i64()?,
        ))
    }

    /// Decodes an `ALL`-indexed enum tag.
    fn tagged<T: Copy>(&mut self, all: &[T], what: &'static str) -> Result<T, PersistError> {
        let tag = self.u8()?;
        all.get(tag as usize)
            .copied()
            .ok_or(PersistError::BadTag { what, tag })
    }

    fn path(&mut self) -> Result<Path, PersistError> {
        let n = self.u32()? as usize;
        let mut pts = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            pts.push(self.point()?);
        }
        Path::from_points(pts).map_err(|e| PersistError::BadPath(e.to_string()))
    }

    fn transform(&mut self) -> Result<Transform, PersistError> {
        let orient = self.tagged(&Orientation::ALL, "orientation")?;
        let offset = self.point()?;
        Ok(Transform { orient, offset })
    }
}

fn get_command(cur: &mut Cur<'_>) -> Result<crate::Command, PersistError> {
    let line = cur.string()?;
    parse_command_line(&line, 0).map_err(|e| PersistError::BadCommand(e.to_string()))
}

fn get_conns(cur: &mut Cur<'_>) -> Result<Vec<PendingConnection>, PersistError> {
    let n = cur.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(cur.remaining()));
    for _ in 0..n {
        out.push(PendingConnection {
            from: InstanceId(cur.u64()? as usize),
            from_connector: cur.string()?,
            to: InstanceId(cur.u64()? as usize),
            to_connector: cur.string()?,
        });
    }
    Ok(out)
}

fn get_instance(cur: &mut Cur<'_>) -> Result<Instance, PersistError> {
    Ok(Instance {
        name: cur.string()?,
        cell: CellId(cur.u64()? as usize),
        transform: cur.transform()?,
        cols: cur.u32()?,
        rows: cur.u32()?,
        col_spacing: cur.i64()?,
        row_spacing: cur.i64()?,
    })
}

fn get_cell(cur: &mut Cur<'_>) -> Result<Cell, PersistError> {
    let name = cur.string()?;
    let bbox = cur.rect()?;
    let n_conn = cur.u32()? as usize;
    let mut connectors = Vec::with_capacity(n_conn.min(cur.remaining()));
    for _ in 0..n_conn {
        connectors.push(Connector {
            name: cur.string()?,
            location: cur.point()?,
            layer: cur.tagged(&Layer::ALL, "layer")?,
            width: cur.i64()?,
        });
    }
    let kind = match cur.u8()? {
        0 => {
            let n = cur.u32()? as usize;
            let mut shapes = Vec::with_capacity(n.min(cur.remaining()));
            for _ in 0..n {
                shapes.push(get_shape(cur)?);
            }
            CellKind::Leaf(LeafSource::Cif { shapes })
        }
        1 => CellKind::Leaf(LeafSource::Sticks(get_sticks(cur)?)),
        2 => {
            let n = cur.u32()? as usize;
            let mut instances = Vec::with_capacity(n.min(cur.remaining()));
            for _ in 0..n {
                instances.push(match cur.u8()? {
                    0 => None,
                    1 => Some(get_instance(cur)?),
                    tag => {
                        return Err(PersistError::BadTag {
                            what: "instance slot",
                            tag,
                        })
                    }
                });
            }
            CellKind::Composition(Composition { instances })
        }
        tag => {
            return Err(PersistError::BadTag {
                what: "cell kind",
                tag,
            })
        }
    };
    Ok(Cell {
        name,
        bbox,
        connectors,
        kind,
    })
}

fn get_shape(cur: &mut Cur<'_>) -> Result<riot_cif::Shape, PersistError> {
    let layer = cur.tagged(&Layer::ALL, "layer")?;
    let geometry = match cur.u8()? {
        0 => riot_cif::Geometry::Box(cur.rect()?),
        1 => {
            let n = cur.u32()? as usize;
            let mut pts = Vec::with_capacity(n.min(cur.remaining()));
            for _ in 0..n {
                pts.push(cur.point()?);
            }
            riot_cif::Geometry::Polygon(pts)
        }
        2 => riot_cif::Geometry::Wire {
            width: cur.i64()?,
            path: cur.path()?,
        },
        3 => riot_cif::Geometry::Flash {
            diameter: cur.i64()?,
            center: cur.point()?,
        },
        tag => {
            return Err(PersistError::BadTag {
                what: "geometry",
                tag,
            })
        }
    };
    Ok(riot_cif::Shape { layer, geometry })
}

fn get_sticks(cur: &mut Cur<'_>) -> Result<riot_sticks::SticksCell, PersistError> {
    let name = cur.string()?;
    let bbox = cur.rect()?;
    let mut cell = riot_sticks::SticksCell::new(name, bbox);
    for _ in 0..cur.u32()? as usize {
        cell.push_pin(riot_sticks::Pin {
            name: cur.string()?,
            side: cur.tagged(&Side::ALL, "side")?,
            layer: cur.tagged(&Layer::ALL, "layer")?,
            position: cur.point()?,
            width: cur.i64()?,
        });
    }
    for _ in 0..cur.u32()? as usize {
        cell.push_wire(riot_sticks::SymWire {
            layer: cur.tagged(&Layer::ALL, "layer")?,
            width: cur.i64()?,
            path: cur.path()?,
        });
    }
    for _ in 0..cur.u32()? as usize {
        cell.push_device(riot_sticks::Device {
            kind: match cur.u8()? {
                0 => riot_sticks::DeviceKind::Enhancement,
                1 => riot_sticks::DeviceKind::Depletion,
                tag => {
                    return Err(PersistError::BadTag {
                        what: "device kind",
                        tag,
                    })
                }
            },
            position: cur.point()?,
            orient: cur.tagged(&Orientation::ALL, "orientation")?,
        });
    }
    for _ in 0..cur.u32()? as usize {
        cell.push_contact(riot_sticks::Contact {
            kind: match cur.u8()? {
                0 => riot_sticks::ContactKind::MetalDiffusion,
                1 => riot_sticks::ContactKind::MetalPoly,
                2 => riot_sticks::ContactKind::Buried,
                tag => {
                    return Err(PersistError::BadTag {
                        what: "contact kind",
                        tag,
                    })
                }
            },
            position: cur.point()?,
        });
    }
    Ok(cell)
}

fn get_undo(cur: &mut Cur<'_>) -> Result<UndoRecord, PersistError> {
    Ok(match cur.u8()? {
        0 => UndoRecord::PopInstance,
        1 => UndoRecord::Transform {
            id: InstanceId(cur.u64()? as usize),
            prev: cur.transform()?,
        },
        2 => UndoRecord::Replicate {
            id: InstanceId(cur.u64()? as usize),
            cols: cur.u32()?,
            rows: cur.u32()?,
        },
        3 => UndoRecord::Spacing {
            id: InstanceId(cur.u64()? as usize),
            col: cur.i64()?,
            row: cur.i64()?,
        },
        4 => UndoRecord::RestoreInstance {
            id: InstanceId(cur.u64()? as usize),
            instance: Box::new(get_instance(cur)?),
            pending: get_conns(cur)?,
        },
        5 => UndoRecord::PopPending,
        6 => UndoRecord::InsertPending {
            index: cur.u64()? as usize,
            conn: get_conns_one(cur)?,
        },
        7 => UndoRecord::RestorePending({
            let n = cur.u32()? as usize;
            let mut out = Vec::with_capacity(n.min(cur.remaining()));
            for _ in 0..n {
                out.push(get_conns_one(cur)?);
            }
            out
        }),
        8 => UndoRecord::Snapshot(Box::new(txn::Snapshot {
            checkpoint: LibraryCheckpoint {
                cells_len: cur.u64()? as usize,
                route_counter: cur.u64()? as usize,
            },
            edit_cell: get_cell(cur)?,
            pending: get_conns(cur)?,
        })),
        tag => {
            return Err(PersistError::BadTag {
                what: "undo record",
                tag,
            })
        }
    })
}

fn get_conns_one(cur: &mut Cur<'_>) -> Result<PendingConnection, PersistError> {
    Ok(PendingConnection {
        from: InstanceId(cur.u64()? as usize),
        from_connector: cur.string()?,
        to: InstanceId(cur.u64()? as usize),
        to_connector: cur.string()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Editor;

    const INV: &str = "sticks inv\nbbox 0 0 10 12\npin IN left NP 0 6\npin OUT right NP 10 6\nwire NP 2 0 6 10 6\nend\n";

    const CIF: &str = "\
DS 1;
9 padIn;
L NM; B 1000 1000 500 500;
94 OUT 1000 500 NM 250;
DF;
E";

    fn scripted_session(lines: &[&str]) -> (Library, Checkpoint) {
        let mut lib = Library::new();
        lib.load_sticks(INV).unwrap();
        lib.load_cif(CIF).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        for line in lines {
            let cmd = parse_command_line(line, 0).unwrap();
            ed.execute(cmd).unwrap();
        }
        let cp = ed.suspend();
        (lib, cp)
    }

    /// Canonical bytes: encode(decode(encode(x))) == encode(x), and the
    /// decoded session resumes with identical observables.
    fn assert_round_trip(lib: &Library, cp: &Checkpoint) {
        let bytes = encode_session(lib, cp).unwrap();
        let (mut lib2, cp2) = decode_session(&bytes).unwrap();
        assert_eq!(lib, &lib2, "library survives the byte round-trip");
        let bytes2 = encode_session(&lib2, &cp2).unwrap();
        assert_eq!(bytes, bytes2, "encoding is canonical");
        // And the decoded checkpoint actually resumes.
        let undo_before = cp.undo_depth();
        let journal_before = cp.journal().commands().len();
        let ed = Editor::resume(&mut lib2, cp2).unwrap();
        assert_eq!(ed.undo_depth(), undo_before);
        assert_eq!(ed.journal().commands().len(), journal_before);
    }

    #[test]
    fn empty_session_round_trips() {
        let (lib, cp) = scripted_session(&[]);
        assert_round_trip(&lib, &cp);
    }

    #[test]
    fn simple_edits_round_trip() {
        let (lib, cp) = scripted_session(&[
            "create inv A",
            "create inv B",
            "translate B 5000 0",
            "connect B IN A OUT",
            "orient B R90",
            "replicate B 2 3",
        ]);
        assert_round_trip(&lib, &cp);
    }

    #[test]
    fn compound_commands_and_undo_round_trip() {
        // abut produces a txn-snapshot undo record; undo/redo populate
        // both history stacks.
        let (lib, cp) = scripted_session(&[
            "create inv A",
            "create inv B",
            "translate B 5000 0",
            "connect B IN A OUT",
            "abut touch",
            "undo",
            "create inv C",
            "delete C",
            "undo",
        ]);
        assert!(cp.undo_depth() > 0);
        assert_round_trip(&lib, &cp);
    }

    #[test]
    fn armed_fault_plan_is_refused() {
        let mut lib = Library::new();
        lib.load_sticks(INV).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        ed.set_fault_plan(crate::FaultPlan::disabled());
        let cp = ed.suspend();
        assert_eq!(
            encode_session(&lib, &cp).unwrap_err(),
            PersistError::FaultPlanArmed
        );
    }

    #[test]
    fn truncation_errors_cleanly_at_every_length() {
        let (lib, cp) = scripted_session(&["create inv A", "create inv B", "connect B IN A OUT"]);
        let bytes = encode_session(&lib, &cp).unwrap();
        for len in 0..bytes.len() {
            match decode_session(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {len} bytes decoded successfully"),
            }
        }
    }

    #[test]
    fn bad_version_is_reported() {
        let (lib, cp) = scripted_session(&[]);
        let mut bytes = encode_session(&lib, &cp).unwrap();
        bytes[0] = 99;
        assert_eq!(
            decode_session(&bytes).unwrap_err(),
            PersistError::BadVersion(99)
        );
    }
}
