//! Undo/redo stacks for the command engine.
//!
//! Every successfully applied command pushes an [`Applied`] record: the
//! command itself (for redo) and an [`UndoRecord`] that reverts it.
//! Simple commands revert with a precise structural inverse (restore a
//! transform, pop a pending connection); compound commands revert by
//! restoring the transaction snapshot their apply already captured.
//!
//! Undo pops the stack, reverts, and moves the command to the redo
//! stack; redo re-executes the command through the normal engine path.
//! Any *new* command clears the redo stack, as editors conventionally
//! do.

use crate::command::Command;
use crate::connection::PendingConnection;
use crate::instance::{Instance, InstanceId};
use crate::txn::Snapshot;
use riot_geom::Transform;

/// How to revert one applied command.
///
/// Reverting is infallible by construction: instance ids are stable
/// slot indices, and the LIFO discipline of the undo stack guarantees
/// that when a record runs, the composition looks exactly as it did
/// right after its command applied.
#[derive(Debug, Clone)]
pub(crate) enum UndoRecord {
    /// Undo a CREATE: the created instance occupies the last slot.
    PopInstance,
    /// Undo a MOVE or ROTATE/MIRROR: restore the previous transform.
    Transform {
        /// Instance whose transform to restore.
        id: InstanceId,
        /// The transform before the command.
        prev: Transform,
    },
    /// Undo a REPLICATE: restore the previous array counts.
    Replicate {
        /// Instance whose counts to restore.
        id: InstanceId,
        /// Columns before the command.
        cols: u32,
        /// Rows before the command.
        rows: u32,
    },
    /// Undo a spacing override: restore the previous pitches.
    Spacing {
        /// Instance whose pitches to restore.
        id: InstanceId,
        /// Column pitch before the command.
        col: i64,
        /// Row pitch before the command.
        row: i64,
    },
    /// Undo a DELETE: put the instance back in its slot and restore the
    /// pending connections the delete dropped.
    RestoreInstance {
        /// The tombstoned slot.
        id: InstanceId,
        /// The deleted instance.
        instance: Box<Instance>,
        /// The pending list before the delete.
        pending: Vec<PendingConnection>,
    },
    /// Undo a CONNECT: the new pending connection is last in the list.
    PopPending,
    /// Undo removing one pending connection: re-insert it.
    InsertPending {
        /// Where the connection sat.
        index: usize,
        /// The removed connection.
        conn: PendingConnection,
    },
    /// Undo clearing the pending list: restore it wholesale.
    RestorePending(Vec<PendingConnection>),
    /// Undo a compound command by restoring its transaction snapshot.
    Snapshot(Box<Snapshot>),
}

/// One applied command with its inverse.
#[derive(Debug, Clone)]
pub(crate) struct Applied {
    /// The command, in its journaled (name-keyed, fully resolved) form;
    /// re-executing it is the redo.
    pub(crate) command: Command,
    /// How to revert it.
    pub(crate) undo: UndoRecord,
}

/// The session's undo and redo stacks.
#[derive(Debug, Default)]
pub(crate) struct History {
    /// Applied commands with their inverses, oldest first. Crate-visible
    /// so `crate::persist` can serialize a suspended session wholesale.
    pub(crate) undo: Vec<Applied>,
    /// Undone commands awaiting redo, oldest first.
    pub(crate) redo: Vec<Command>,
}

impl History {
    /// Records a newly applied command (does not touch the redo stack;
    /// the engine clears it for user-initiated commands only).
    pub(crate) fn push_applied(&mut self, applied: Applied) {
        self.undo.push(applied);
    }

    /// Pops the most recent applied command for reverting.
    pub(crate) fn pop_undo(&mut self) -> Option<Applied> {
        self.undo.pop()
    }

    /// Pushes a reverted command onto the redo stack.
    pub(crate) fn push_redo(&mut self, command: Command) {
        self.redo.push(command);
    }

    /// Pops the next command to redo.
    pub(crate) fn pop_redo(&mut self) -> Option<Command> {
        self.redo.pop()
    }

    /// Drops the redo stack (a new command invalidates it).
    pub(crate) fn clear_redo(&mut self) {
        self.redo.clear();
    }

    /// Number of commands that can be undone.
    pub(crate) fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Number of commands that can be redone.
    pub(crate) fn redo_len(&self) -> usize {
        self.redo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_discipline() {
        let mut h = History::default();
        assert_eq!(h.undo_len(), 0);
        h.push_applied(Applied {
            command: Command::Finish,
            undo: UndoRecord::PopPending,
        });
        h.push_applied(Applied {
            command: Command::ClearPending,
            undo: UndoRecord::PopInstance,
        });
        assert_eq!(h.undo_len(), 2);
        let a = h.pop_undo().unwrap();
        assert_eq!(a.command, Command::ClearPending);
        h.push_redo(a.command);
        assert_eq!(h.redo_len(), 1);
        assert_eq!(h.pop_redo(), Some(Command::ClearPending));
        h.push_redo(Command::Finish);
        h.clear_redo();
        assert_eq!(h.redo_len(), 0);
    }
}
