//! Maintained logical connections — the paper's stated future work.
//!
//! Riot's "fundamental problem" was that "once the instances are
//! positioned to make the connection, the fact that the two pieces are
//! connected is lost … The replay mitigates the problem of logical
//! connection being destroyed during editing, but does not solve it.
//! The replay is not an acceptable long-term solution to this important
//! problem — connections must be preserved. … Without further
//! investigation, we can say that a tool of this type must maintain
//! logical connections."
//!
//! This module is that successor feature: a [`ConnectionLedger`] records
//! every connection a connection command completes, keyed by instance
//! and connector **names** (so it survives stretch cell swaps), and
//! [`ConnectionLedger::check`] re-verifies all of them geometrically —
//! the "extensive checking" Riot's users had to do by hand, made
//! instant.

use crate::editor::Editor;
use crate::error::RiotError;
use riot_geom::Point;
use std::fmt;

/// One maintained logical connection, by names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintainedConnection {
    /// From instance name.
    pub from_instance: String,
    /// From connector name.
    pub from_connector: String,
    /// To instance name.
    pub to_instance: String,
    /// To connector name.
    pub to_connector: String,
}

impl fmt::Display for MaintainedConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} = {}.{}",
            self.from_instance, self.from_connector, self.to_instance, self.to_connector
        )
    }
}

/// A broken maintained connection found by [`ConnectionLedger::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionViolation {
    /// The connectors no longer coincide.
    Separated {
        /// The connection that came apart.
        connection: MaintainedConnection,
        /// Current from-connector location.
        from_at: Point,
        /// Current to-connector location.
        to_at: Point,
    },
    /// An endpoint vanished (instance deleted, connector renamed away,
    /// or hidden by array replication).
    Missing {
        /// The connection whose endpoint is gone.
        connection: MaintainedConnection,
        /// Which endpoint: the missing instance or connector name.
        what: String,
    },
}

impl fmt::Display for ConnectionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectionViolation::Separated {
                connection,
                from_at,
                to_at,
            } => write!(f, "connection {connection} separated: {from_at} vs {to_at}"),
            ConnectionViolation::Missing { connection, what } => {
                write!(f, "connection {connection} lost its endpoint `{what}`")
            }
        }
    }
}

/// The ledger of logical connections made so far in a session.
///
/// Record into it after every successful connection command (the
/// [`Editor`] does this when asked via [`Editor::abut`]-family methods
/// plus [`record_pending`]); check it after any editing you suspect.
///
/// [`record_pending`]: ConnectionLedger::record_pending
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnectionLedger {
    connections: Vec<MaintainedConnection>,
}

impl ConnectionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        ConnectionLedger::default()
    }

    /// The maintained connections, in the order they were made.
    pub fn connections(&self) -> &[MaintainedConnection] {
        &self.connections
    }

    /// Number of maintained connections.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True when nothing is maintained yet.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Records one connection by names.
    pub fn record(&mut self, connection: MaintainedConnection) {
        if !self.connections.contains(&connection) {
            self.connections.push(connection);
        }
    }

    /// Snapshots the editor's **pending** list into the ledger — call
    /// immediately *before* the connection command consumes it.
    ///
    /// # Errors
    ///
    /// Lookup errors for stale pending entries.
    pub fn record_pending(&mut self, ed: &Editor<'_>) -> Result<(), RiotError> {
        for p in ed.pending() {
            let from = ed.instance(p.from)?.name.clone();
            let to = ed.instance(p.to)?.name.clone();
            self.record(MaintainedConnection {
                from_instance: from,
                from_connector: p.from_connector.clone(),
                to_instance: to,
                to_connector: p.to_connector.clone(),
            });
        }
        Ok(())
    }

    /// Verifies every maintained connection against current geometry.
    /// Returns all violations (empty = everything still connected).
    pub fn check(&self, ed: &Editor<'_>) -> Vec<ConnectionViolation> {
        let mut violations = Vec::new();
        for c in &self.connections {
            let resolve = |inst_name: &str, conn_name: &str| -> Result<Point, String> {
                let id = ed
                    .find_instance(inst_name)
                    .ok_or_else(|| inst_name.to_owned())?;
                let wc = ed
                    .world_connector(id, conn_name)
                    .map_err(|_| format!("{inst_name}.{conn_name}"))?;
                Ok(wc.location)
            };
            match (
                resolve(&c.from_instance, &c.from_connector),
                resolve(&c.to_instance, &c.to_connector),
            ) {
                (Ok(from_at), Ok(to_at)) => {
                    if from_at != to_at {
                        violations.push(ConnectionViolation::Separated {
                            connection: c.clone(),
                            from_at,
                            to_at,
                        });
                    }
                }
                (Err(what), _) | (_, Err(what)) => {
                    violations.push(ConnectionViolation::Missing {
                        connection: c.clone(),
                        what,
                    });
                }
            }
        }
        violations
    }

    /// Drops maintained connections touching an instance (when the
    /// user deletes it deliberately).
    pub fn forget_instance(&mut self, name: &str) {
        self.connections
            .retain(|c| c.from_instance != name && c.to_instance != name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editor::AbutOptions;
    use crate::library::Library;
    use riot_geom::LAMBDA;

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 12 4
end
";

    fn connected_session(lib: &mut Library) -> (Editor<'_>, ConnectionLedger) {
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(lib, "TOP").unwrap();
        let a = ed.create_instance(gate).unwrap();
        let b = ed.create_instance(gate).unwrap();
        ed.translate_instance(b, Point::new(40 * LAMBDA, 3 * LAMBDA))
            .unwrap();
        ed.connect(b, "A", a, "OUT").unwrap();
        let mut ledger = ConnectionLedger::new();
        ledger.record_pending(&ed).unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        (ed, ledger)
    }

    #[test]
    fn intact_connections_check_clean() {
        let mut lib = Library::new();
        let (ed, ledger) = connected_session(&mut lib);
        assert_eq!(ledger.len(), 1);
        assert!(ledger.check(&ed).is_empty());
    }

    #[test]
    fn moving_an_instance_breaks_the_connection() {
        let mut lib = Library::new();
        let (mut ed, ledger) = connected_session(&mut lib);
        // The exact failure mode the paper describes: a later edit
        // "easily (perhaps accidentally)" destroys the connection.
        let b = ed.find_instance("I1").unwrap();
        ed.translate_instance(b, Point::new(5 * LAMBDA, 0)).unwrap();
        let violations = ledger.check(&ed);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            ConnectionViolation::Separated { from_at, to_at, .. }
                if from_at.x - to_at.x == 5 * LAMBDA
        ));
        // Moving it back heals the check.
        ed.translate_instance(b, Point::new(-5 * LAMBDA, 0))
            .unwrap();
        assert!(ledger.check(&ed).is_empty());
    }

    #[test]
    fn deleting_an_endpoint_is_reported_missing() {
        let mut lib = Library::new();
        let (mut ed, ledger) = connected_session(&mut lib);
        let a = ed.find_instance("I0").unwrap();
        ed.delete_instance(a).unwrap();
        let violations = ledger.check(&ed);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            ConnectionViolation::Missing { what, .. } if what == "I0"
        ));
    }

    #[test]
    fn forget_instance_drops_its_connections() {
        let mut lib = Library::new();
        let (mut ed, mut ledger) = connected_session(&mut lib);
        let a = ed.find_instance("I0").unwrap();
        ed.delete_instance(a).unwrap();
        ledger.forget_instance("I0");
        assert!(ledger.is_empty());
        assert!(ledger.check(&ed).is_empty());
    }

    #[test]
    fn duplicate_records_collapse() {
        let mut lib = Library::new();
        let (ed, mut ledger) = connected_session(&mut lib);
        let again = ledger.connections()[0].clone();
        ledger.record(again);
        assert_eq!(ledger.len(), 1);
        let _ = ed;
    }

    #[test]
    fn survives_stretch_cell_swap() {
        // Connections key on names, so the from instance swapping to a
        // stretched cell keeps the ledger valid.
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let driver = lib
            .load_sticks(
                "sticks drv\nbbox 0 0 10 24\npin X right NP 10 4 2\npin Y right NP 10 14 2\nwire NP 2 0 4 10 4\nwire NP 2 0 14 10 14\nend\n",
            )
            .unwrap();
        let receiver = lib
            .load_sticks(
                "sticks rcv\nbbox 0 0 12 24\npin A left NP 0 4 2\npin B left NP 0 10 2\nwire NP 2 0 4 8 4\nwire NP 2 0 10 8 10\nend\n",
            )
            .unwrap();
        let _ = gate;
        let mut ed = Editor::open(&mut lib, "SWAP").unwrap();
        let d = ed.create_instance(driver).unwrap();
        let r = ed.create_instance(receiver).unwrap();
        ed.translate_instance(r, Point::new(40 * LAMBDA, 0))
            .unwrap();
        ed.connect(r, "A", d, "X").unwrap();
        ed.connect(r, "B", d, "Y").unwrap();
        let mut ledger = ConnectionLedger::new();
        ledger.record_pending(&ed).unwrap();
        ed.stretch(Default::default()).unwrap();
        assert!(ledger.check(&ed).is_empty(), "{:?}", ledger.check(&ed));
    }

    #[test]
    fn violation_messages_are_informative() {
        let mut lib = Library::new();
        let (mut ed, ledger) = connected_session(&mut lib);
        let b = ed.find_instance("I1").unwrap();
        ed.translate_instance(b, Point::new(LAMBDA, 0)).unwrap();
        let v = ledger.check(&ed);
        let text = v[0].to_string();
        assert!(text.contains("I1.A"));
        assert!(text.contains("separated"));
    }
}
