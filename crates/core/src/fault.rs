//! Deterministic fault injection for the correctness harness.
//!
//! A [`FaultPlan`] is a seeded stream of yes/no decisions consumed at
//! named **fault sites** inside the command engine: right before the
//! transactional commit (`txn.commit`), before any router runs
//! (`route.solve` — also armed for BRING-OUT's straight router), before
//! the grid maze router runs (`route.grid.solve`), and
//! before the REST solver runs (`stretch.solve`). When a site trips,
//! the engine raises [`crate::RiotError::FaultInjected`] and takes the
//! exact same rollback path a real failure would, so the `riot-check`
//! harness can prove that *no* fault leaves the session in a state the
//! reference model cannot explain.
//!
//! The decision stream is a SplitMix64 generator keyed by the plan
//! seed, so a given `(seed, rate)` pair injects the same faults at the
//! same sites on every run — failures found under fault injection are
//! reproducible and shrinkable.

use std::fmt;

/// The txn-commit fault site: trips after a command applied but before
/// it is journaled, forcing the engine to revert it.
pub const FAULT_TXN_COMMIT: &str = "txn.commit";
/// The route-solving fault site (ROUTE and BRING-OUT).
pub const FAULT_ROUTE_SOLVE: &str = "route.solve";
/// The grid-router fault site: trips right before the A* maze solver
/// runs — either because the CONNECT asked for the grid engine or
/// because the river router's preconditions failed and the route is
/// falling back. Proves the grid path rolls back exactly like a real
/// solver failure.
pub const FAULT_ROUTE_GRID_SOLVE: &str = "route.grid.solve";
/// The stretch-solving fault site (STRETCH).
pub const FAULT_STRETCH_SOLVE: &str = "stretch.solve";
/// The connection-accept fault site in `riot-serve`: trips right after
/// a listener accepts a socket, before the handshake reply — the
/// connection is dropped as if the accept had failed.
pub const FAULT_SERVE_ACCEPT: &str = "serve.accept";
/// The frame-decode fault site in `riot-serve`: the next well-formed
/// frame is treated as corrupt, exercising the protocol-error path
/// without touching any session.
pub const FAULT_SERVE_FRAME_DECODE: &str = "serve.frame.decode";
/// The journal-append fault site in `riot-serve`: trips before a
/// session's accepted command is appended to its write-ahead log. The
/// server writes a deliberately torn record and crashes the session,
/// so recovery-on-reopen must truncate cleanly.
pub const FAULT_SERVE_JOURNAL_APPEND: &str = "serve.journal.append";
/// The snapshot-write fault site in `riot-serve`: trips while a
/// session snapshot is being written, leaving a deliberately torn
/// `RIOTSNAP1` file behind. The session itself keeps running (its WAL
/// is still intact); recovery must detect the torn snapshot and fall
/// back to full WAL replay.
pub const FAULT_SERVE_SNAPSHOT_WRITE: &str = "serve.snapshot.write";
/// The group-flush fault site in `riot-serve`: trips when a worker's
/// commit queue flushes staged WAL bytes for a session. The session
/// crashes with its staged (never acknowledged) suffix discarded, so
/// recovery lands exactly on the durable prefix.
pub const FAULT_SERVE_GROUP_FLUSH: &str = "serve.group.flush";
/// The poll-wakeup fault site in `riot-serve`: the event loop's wakeup
/// pipe "loses" one readiness notification — the loop must still
/// deliver every queued reply on its next tick, proving the tick
/// timeout is a correct fallback and no acknowledgement depends on the
/// pipe alone.
pub const FAULT_SERVE_POLL_WAKEUP: &str = "serve.poll.wakeup";
/// The connection-backlog fault site in `riot-serve`: trips when a
/// reply is queued onto a connection's bounded write backlog,
/// simulating a client that never drains. The connection is evicted
/// (its backlog discarded) rather than buffered unboundedly; the
/// session WAL keeps only what was already acknowledged-durable.
pub const FAULT_SERVE_CONN_BACKLOG: &str = "serve.conn.backlog";

/// A seeded plan of fault injections, attached to an editing session
/// with [`crate::Editor::set_fault_plan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    /// Injection probability in parts per million.
    rate_ppm: u64,
    injected: u64,
    consulted: u64,
    by_site: Vec<(&'static str, u64)>,
}

impl FaultPlan {
    /// A plan injecting faults at roughly `rate` (clamped to `[0, 1]`)
    /// of the sites consulted, deterministically derived from `seed`.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
            rate_ppm: (rate * 1_000_000.0).round() as u64,
            injected: 0,
            consulted: 0,
            by_site: Vec::new(),
        }
    }

    /// A plan that never injects (useful as a neutral default).
    pub fn disabled() -> FaultPlan {
        FaultPlan::new(0, 0.0)
    }

    fn next(&mut self) -> u64 {
        // SplitMix64: short, seedable, and statistically fine for
        // coin flips.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Consults the plan at a fault site. Returns `true` when the site
    /// should fail now. Advances the decision stream either way.
    pub fn should_inject(&mut self, site: &'static str) -> bool {
        self.consulted += 1;
        let trip = self.rate_ppm > 0 && self.next() % 1_000_000 < self.rate_ppm;
        if trip {
            self.injected += 1;
            match self.by_site.iter_mut().find(|(s, _)| *s == site) {
                Some((_, n)) => *n += 1,
                None => self.by_site.push((site, 1)),
            }
        }
        trip
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total sites consulted so far (tripped or not).
    pub fn consulted(&self) -> u64 {
        self.consulted
    }

    /// Per-site injection counts, in first-trip order.
    pub fn by_site(&self) -> &[(&'static str, u64)] {
        &self.by_site
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault plan: {}/{} sites tripped",
            self.injected, self.consulted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_injects() {
        let mut p = FaultPlan::disabled();
        for _ in 0..1000 {
            assert!(!p.should_inject(FAULT_TXN_COMMIT));
        }
        assert_eq!(p.injected(), 0);
        assert_eq!(p.consulted(), 1000);
    }

    #[test]
    fn full_rate_always_injects() {
        let mut p = FaultPlan::new(7, 1.0);
        for _ in 0..100 {
            assert!(p.should_inject(FAULT_ROUTE_SOLVE));
        }
        assert_eq!(p.injected(), 100);
        assert_eq!(p.by_site(), &[(FAULT_ROUTE_SOLVE, 100)]);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::new(42, 0.3);
        let mut b = FaultPlan::new(42, 0.3);
        let da: Vec<bool> = (0..500)
            .map(|_| a.should_inject(FAULT_TXN_COMMIT))
            .collect();
        let db: Vec<bool> = (0..500)
            .map(|_| b.should_inject(FAULT_TXN_COMMIT))
            .collect();
        assert_eq!(da, db);
        assert!(a.injected() > 0, "30% over 500 draws should trip");
        assert!(a.injected() < 500);
    }

    #[test]
    fn rate_is_roughly_honored() {
        let mut p = FaultPlan::new(1, 0.1);
        for _ in 0..10_000 {
            p.should_inject(FAULT_TXN_COMMIT);
        }
        let rate = p.injected() as f64 / 10_000.0;
        assert!((0.05..0.15).contains(&rate), "observed rate {rate}");
    }
}
