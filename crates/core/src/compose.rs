//! The composition format: saving and restoring an editing session.
//!
//! "The composition format is used by Riot to save an editing session.
//! It contains a description of composition cells including the
//! hierarchy description, locations of instances, locations of
//! connectors on the composition cells, and references to files which
//! contain the leaf cells used in those compositions."

use crate::cell::{Cell, CellKind, Connector, LeafSource};
use crate::error::RiotError;
use crate::instance::Instance;
use crate::library::Library;
use riot_geom::{Point, Rect, Transform};
use std::fmt::Write as _;

/// Serializes every composition cell of the library, with leaf-cell
/// references by name and format (the leaf geometry itself lives in its
/// own CIF/Sticks files, as the paper describes).
pub fn save(lib: &Library) -> String {
    let mut out = String::from("riot composition v1\n");
    for (_, cell) in lib.iter() {
        if let CellKind::Leaf(source) = &cell.kind {
            let kind = match source {
                LeafSource::Cif { .. } => "cif",
                LeafSource::Sticks(_) => "sticks",
            };
            let _ = writeln!(out, "leafref {} {kind}", cell.name);
        }
    }
    for (_, cell) in lib.iter() {
        let CellKind::Composition(comp) = &cell.kind else {
            continue;
        };
        if comp.is_empty() && cell.connectors.is_empty() && cell.name.starts_with("(deleted") {
            continue;
        }
        let _ = writeln!(out, "cell {}", cell.name);
        let bb = cell.bbox;
        let _ = writeln!(out, "bbox {} {} {} {}", bb.x0, bb.y0, bb.x1, bb.y1);
        for c in &cell.connectors {
            let _ = writeln!(
                out,
                "connector {} {} {} {} {}",
                c.name, c.location.x, c.location.y, c.layer, c.width
            );
        }
        for (_, inst) in comp.instances() {
            let cell_name = lib
                .cell(inst.cell)
                .map(|c| c.name.clone())
                .unwrap_or_else(|_| "?".to_owned());
            let _ = writeln!(
                out,
                "instance {} {} {} {} {} {} {} {} {}",
                inst.name,
                cell_name,
                inst.transform.orient,
                inst.transform.offset.x,
                inst.transform.offset.y,
                inst.cols,
                inst.rows,
                inst.col_spacing,
                inst.row_spacing
            );
        }
        out.push_str("end\n");
    }
    out
}

/// Restores composition cells into a library already holding the leaf
/// cells they reference (load the CIF/Sticks files first, exactly as
/// Riot's session restore required).
///
/// Returns the ids of the composition cells created, in file order.
///
/// # Errors
///
/// [`RiotError::Parse`] for malformed text, [`RiotError::UnknownCell`]
/// when a referenced leaf is absent, [`RiotError::DuplicateCell`] when
/// a composition name is taken.
pub fn load(text: &str, lib: &mut Library) -> Result<Vec<crate::CellId>, RiotError> {
    let mut lines = text.lines().enumerate();
    let perr = |line: usize, msg: String| RiotError::Parse {
        line: line + 1,
        message: msg,
    };
    match lines.next() {
        Some((_, h)) if h.trim() == "riot composition v1" => {}
        _ => {
            return Err(perr(0, "missing `riot composition v1` header".into()));
        }
    }
    let mut created = Vec::new();
    let mut current: Option<(String, Cell)> = None;
    for (n, raw) in lines {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        match f[0] {
            "leafref" => {
                if f.len() != 3 {
                    return Err(perr(n, "leafref wants name and format".into()));
                }
                if lib.find(f[1]).is_none() {
                    return Err(RiotError::UnknownCell(f[1].to_owned()));
                }
            }
            "cell" => {
                if f.len() != 2 {
                    return Err(perr(n, "cell wants a name".into()));
                }
                if current.is_some() {
                    return Err(perr(n, "cell before previous end".into()));
                }
                current = Some((f[1].to_owned(), Cell::new_composition(f[1].to_owned())));
            }
            "bbox" => {
                let (_, cell) = current
                    .as_mut()
                    .ok_or_else(|| perr(n, "bbox outside cell".into()))?;
                if f.len() != 5 {
                    return Err(perr(n, "bbox wants 4 coordinates".into()));
                }
                let v: Vec<i64> = f[1..]
                    .iter()
                    .map(|s| s.parse().map_err(|_| perr(n, format!("bad integer `{s}`"))))
                    .collect::<Result<_, _>>()?;
                cell.bbox = Rect::new(v[0], v[1], v[2], v[3]);
            }
            "connector" => {
                let (_, cell) = current
                    .as_mut()
                    .ok_or_else(|| perr(n, "connector outside cell".into()))?;
                if f.len() != 6 {
                    return Err(perr(n, "connector wants name x y layer width".into()));
                }
                cell.connectors.push(Connector {
                    name: f[1].to_owned(),
                    location: Point::new(
                        f[2].parse().map_err(|_| perr(n, "bad x".into()))?,
                        f[3].parse().map_err(|_| perr(n, "bad y".into()))?,
                    ),
                    layer: f[4].parse().map_err(|_| perr(n, "bad layer".into()))?,
                    width: f[5].parse().map_err(|_| perr(n, "bad width".into()))?,
                });
            }
            "instance" => {
                if f.len() != 10 {
                    return Err(perr(
                        n,
                        "instance wants name cell orient tx ty cols rows colsp rowsp".into(),
                    ));
                }
                let cell_id = lib
                    .find(f[2])
                    .ok_or_else(|| RiotError::UnknownCell(f[2].to_owned()))?;
                let inst = Instance {
                    name: f[1].to_owned(),
                    cell: cell_id,
                    transform: Transform::new(
                        f[3].parse()
                            .map_err(|_| perr(n, "bad orientation".into()))?,
                        Point::new(
                            f[4].parse().map_err(|_| perr(n, "bad tx".into()))?,
                            f[5].parse().map_err(|_| perr(n, "bad ty".into()))?,
                        ),
                    ),
                    cols: f[6].parse().map_err(|_| perr(n, "bad cols".into()))?,
                    rows: f[7].parse().map_err(|_| perr(n, "bad rows".into()))?,
                    col_spacing: f[8]
                        .parse()
                        .map_err(|_| perr(n, "bad col spacing".into()))?,
                    row_spacing: f[9]
                        .parse()
                        .map_err(|_| perr(n, "bad row spacing".into()))?,
                };
                let (_, cell) = current
                    .as_mut()
                    .ok_or_else(|| perr(n, "instance outside cell".into()))?;
                cell.composition_mut()
                    .expect("new_composition")
                    .instances
                    .push(Some(inst));
            }
            "end" => {
                let (_, cell) = current
                    .take()
                    .ok_or_else(|| perr(n, "end outside cell".into()))?;
                created.push(lib.add_cell(cell)?);
            }
            other => return Err(perr(n, format!("unknown directive `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(perr(text.lines().count(), "missing final end".into()));
    }
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editor::{AbutOptions, Editor};
    use riot_geom::LAMBDA;

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 6 4
wire NP 2 6 10 12 10
end
";

    fn build_session() -> Library {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let a = ed.create_instance(gate).unwrap();
        let b = ed.create_instance(gate).unwrap();
        ed.translate_instance(b, Point::new(30 * LAMBDA, 6 * LAMBDA))
            .unwrap();
        ed.connect(b, "A", a, "OUT").unwrap();
        ed.abut(AbutOptions::default()).unwrap();
        ed.finish().unwrap();
        drop(ed);
        lib
    }

    #[test]
    fn save_load_round_trip() {
        let lib = build_session();
        let text = save(&lib);
        // Reload into a library with the same leafs.
        let mut lib2 = Library::new();
        lib2.load_sticks(GATE).unwrap();
        let ids = load(&text, &mut lib2).unwrap();
        assert_eq!(ids.len(), 1);
        let top = lib2.cell(ids[0]).unwrap();
        let orig = lib.cell(lib.find("TOP").unwrap()).unwrap();
        assert_eq!(top.bbox, orig.bbox);
        assert_eq!(top.connectors, orig.connectors);
        assert_eq!(
            top.composition().unwrap().len(),
            orig.composition().unwrap().len()
        );
        // Instance placements survive exactly.
        let inst_orig: Vec<_> = orig.composition().unwrap().instances().collect();
        let inst_new: Vec<_> = top.composition().unwrap().instances().collect();
        for (a, b) in inst_orig.iter().zip(&inst_new) {
            assert_eq!(a.1.name, b.1.name);
            assert_eq!(a.1.transform, b.1.transform);
        }
    }

    #[test]
    fn load_requires_leaf_cells() {
        let lib = build_session();
        let text = save(&lib);
        let mut empty = Library::new();
        assert!(matches!(
            load(&text, &mut empty),
            Err(RiotError::UnknownCell(_))
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let mut lib = Library::new();
        assert!(matches!(
            load("nonsense", &mut lib),
            Err(RiotError::Parse { .. })
        ));
        assert!(matches!(
            load("riot composition v1\nfrob x\n", &mut lib),
            Err(RiotError::Parse { .. })
        ));
        assert!(matches!(
            load("riot composition v1\ncell A\n", &mut lib),
            Err(RiotError::Parse { .. })
        ));
    }

    #[test]
    fn save_lists_leafrefs() {
        let lib = build_session();
        let text = save(&lib);
        assert!(text.contains("leafref gate sticks"));
        assert!(text.contains("cell TOP"));
    }
}
