//! The command engine: every mutating editor operation as a value.
//!
//! A [`Command`] is the single description of one editing step, keyed
//! by cell/instance/connector **names** so the same value serves three
//! masters:
//!
//! * the interactive editor — public [`crate::Editor`] methods build a
//!   command and hand it to [`crate::Editor::execute`];
//! * the REPLAY journal — [`crate::Journal`] is a `Vec<Command>` and
//!   the text format (de)serializes commands directly, so replay is a
//!   loop of `execute` with no second dispatch;
//! * history — undo re-verts a command's recorded inverse and redo
//!   re-executes the command itself.
//!
//! Applying a command yields a [`CommandEffect`]: the caller-visible
//! [`Outcome`], the inverse record for the undo stack, and the exact
//! (possibly name-deduplicated) command to journal.

use crate::editor::Editor;
use crate::error::RiotError;
use crate::history::UndoRecord;
use crate::{CellId, InstanceId};
use riot_geom::{Orientation, Point, Side};
use riot_rest::SolveMode;
use riot_route::RouterOptions;

/// One editing command, keyed by names rather than ids so it survives
/// serialization and re-runs against reshaped libraries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Begin editing a composition cell. Only valid as the head of a
    /// journal; [`crate::Editor::execute`] rejects it mid-session.
    Edit {
        /// Composition cell name.
        cell: String,
    },
    /// CREATE an instance of a cell.
    Create {
        /// Defining cell's name.
        cell: String,
        /// New instance's name.
        instance: String,
    },
    /// MOVE an instance.
    Translate {
        /// Instance name.
        instance: String,
        /// Displacement.
        d: Point,
    },
    /// ROTATE/MIRROR an instance.
    Orient {
        /// Instance name.
        instance: String,
        /// Orientation composed onto the instance.
        orient: Orientation,
    },
    /// Array replication.
    Replicate {
        /// Instance name.
        instance: String,
        /// Columns.
        cols: u32,
        /// Rows.
        rows: u32,
    },
    /// Array spacing override.
    Spacing {
        /// Instance name.
        instance: String,
        /// Column pitch.
        col: i64,
        /// Row pitch.
        row: i64,
    },
    /// DELETE an instance.
    Delete {
        /// Instance name.
        instance: String,
    },
    /// Add a pending connection.
    Connect {
        /// From instance.
        from: String,
        /// Connector on the from instance.
        from_connector: String,
        /// To instance.
        to: String,
        /// Connector on the to instance.
        to_connector: String,
    },
    /// Remove one pending connection by list position.
    RemovePending {
        /// Position in the pending list.
        index: usize,
    },
    /// Clear the pending connection list.
    ClearPending,
    /// The ABUT connection command.
    Abut {
        /// Overlap option.
        overlap: bool,
    },
    /// Edge abutment of two instances without connectors.
    AbutInstances {
        /// From instance.
        from: String,
        /// To instance.
        to: String,
    },
    /// The ROUTE connection command.
    Route {
        /// Whether the from instance moves against the route.
        move_from: bool,
        /// Router tuning. The journal text keeps `move|stay` plus the
        /// engine choice when it is the grid router (`route move
        /// grid`); the remaining tuning fields are not serialized and
        /// parsing restores their defaults.
        router: RouterOptions,
    },
    /// The STRETCH connection command.
    Stretch {
        /// How the REST solve treats existing separations.
        mode: SolveMode,
    },
    /// Bring connectors out to the composition boundary.
    BringOut {
        /// Instance name.
        instance: String,
        /// Connector names.
        connectors: Vec<String>,
        /// Side being brought out.
        side: Side,
    },
    /// Finish the cell.
    Finish,
    /// Revert the most recent applied command.
    Undo,
    /// Re-apply the most recently undone command.
    Redo,
}

/// What a successfully executed command hands back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Nothing beyond success (moves, connects, aborts…).
    None,
    /// An instance was created.
    Instance(InstanceId),
    /// A cell was created (stretch).
    Cell(CellId),
    /// A cell and an instance of it were created (route, bring-out).
    CellInstance(CellId, InstanceId),
    /// A count (finish's promoted connectors, undo/redo's 0-or-1).
    Count(usize),
}

/// The full result of applying one command.
pub(crate) struct CommandEffect {
    /// Caller-visible outcome.
    pub(crate) outcome: Outcome,
    /// Structural inverse for simple commands; `None` for compound
    /// commands, whose transaction snapshot doubles as the inverse.
    pub(crate) undo: Option<UndoRecord>,
    /// The command to journal — usually the command itself, but CREATE
    /// journals the deduplicated instance name it actually used.
    pub(crate) journal: Command,
}

impl Command {
    /// A short static name for this command's kind (`"abut"`,
    /// `"route"`, `"stretch"`, …) — the key the replay profiler and the
    /// metrics registry aggregate by.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Command::Edit { .. } => "edit",
            Command::Create { .. } => "create",
            Command::Translate { .. } => "translate",
            Command::Orient { .. } => "orient",
            Command::Replicate { .. } => "replicate",
            Command::Spacing { .. } => "spacing",
            Command::Delete { .. } => "delete",
            Command::Connect { .. } => "connect",
            Command::RemovePending { .. } => "remove_pending",
            Command::ClearPending => "clear_pending",
            Command::Abut { .. } => "abut",
            Command::AbutInstances { .. } => "abut_instances",
            Command::Route { .. } => "route",
            Command::Stretch { .. } => "stretch",
            Command::BringOut { .. } => "bring_out",
            Command::Finish => "finish",
            Command::Undo => "undo",
            Command::Redo => "redo",
        }
    }

    /// The span name the engine opens while applying this command:
    /// `"cmd."` + [`Command::kind_name`]. Static so span fields stay
    /// allocation-free.
    pub fn span_name(&self) -> &'static str {
        match self {
            Command::Edit { .. } => "cmd.edit",
            Command::Create { .. } => "cmd.create",
            Command::Translate { .. } => "cmd.translate",
            Command::Orient { .. } => "cmd.orient",
            Command::Replicate { .. } => "cmd.replicate",
            Command::Spacing { .. } => "cmd.spacing",
            Command::Delete { .. } => "cmd.delete",
            Command::Connect { .. } => "cmd.connect",
            Command::RemovePending { .. } => "cmd.remove_pending",
            Command::ClearPending => "cmd.clear_pending",
            Command::Abut { .. } => "cmd.abut",
            Command::AbutInstances { .. } => "cmd.abut_instances",
            Command::Route { .. } => "cmd.route",
            Command::Stretch { .. } => "cmd.stretch",
            Command::BringOut { .. } => "cmd.bring_out",
            Command::Finish => "cmd.finish",
            Command::Undo => "cmd.undo",
            Command::Redo => "cmd.redo",
        }
    }

    /// Whether applying this command interleaves mutation with fallible
    /// work and therefore needs a transaction snapshot. Simple commands
    /// validate everything before mutating and need none.
    pub(crate) fn is_compound(&self) -> bool {
        matches!(
            self,
            Command::Abut { .. }
                | Command::AbutInstances { .. }
                | Command::Route { .. }
                | Command::Stretch { .. }
                | Command::BringOut { .. }
                | Command::Finish
        )
    }

    /// Applies the command to an editing session. Dispatches to the
    /// per-operation bodies in the `editor::ops_*` modules.
    pub(crate) fn apply(&self, ed: &mut Editor<'_>) -> Result<CommandEffect, RiotError> {
        match self {
            Command::Edit { .. } | Command::Undo | Command::Redo => {
                unreachable!("execute() intercepts edit/undo/redo before apply")
            }
            Command::Create { cell, instance } => ed.apply_create(cell, instance.clone()),
            Command::Translate { instance, d } => ed.apply_translate(instance, *d),
            Command::Orient { instance, orient } => ed.apply_orient(instance, *orient),
            Command::Replicate {
                instance,
                cols,
                rows,
            } => ed.apply_replicate(instance, *cols, *rows),
            Command::Spacing { instance, col, row } => ed.apply_spacing(instance, *col, *row),
            Command::Delete { instance } => ed.apply_delete(instance),
            Command::Connect {
                from,
                from_connector,
                to,
                to_connector,
            } => ed.apply_connect(from, from_connector, to, to_connector),
            Command::RemovePending { index } => ed.apply_remove_pending(*index),
            Command::ClearPending => ed.apply_clear_pending(),
            Command::Abut { overlap } => ed.apply_abut(*overlap),
            Command::AbutInstances { from, to } => ed.apply_abut_instances(from, to),
            Command::Route { move_from, router } => ed.apply_route(*move_from, *router),
            Command::Stretch { mode } => ed.apply_stretch(*mode),
            Command::BringOut {
                instance,
                connectors,
                side,
            } => ed.apply_bring_out(instance, connectors, *side),
            Command::Finish => ed.apply_finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_classification() {
        assert!(Command::Finish.is_compound());
        assert!(Command::Abut { overlap: false }.is_compound());
        assert!(Command::Stretch {
            mode: SolveMode::PreserveGaps
        }
        .is_compound());
        assert!(!Command::ClearPending.is_compound());
        assert!(!Command::Translate {
            instance: "I0".into(),
            d: Point::new(1, 2)
        }
        .is_compound());
        assert!(!Command::Undo.is_compound());
    }

    #[test]
    fn span_names_are_prefixed_kind_names() {
        let cmds = [
            Command::Finish,
            Command::Abut { overlap: true },
            Command::Route {
                move_from: true,
                router: RouterOptions::new(),
            },
            Command::Stretch {
                mode: SolveMode::PreserveGaps,
            },
            Command::Undo,
            Command::Translate {
                instance: "I0".into(),
                d: Point::new(0, 0),
            },
        ];
        for c in &cmds {
            assert_eq!(c.span_name(), format!("cmd.{}", c.kind_name()));
        }
        assert_eq!(Command::Abut { overlap: false }.kind_name(), "abut");
    }
}
