//! Mask generation: symbolic Sticks cells to CIF geometry.
//!
//! Riot writes composition-format files "which are converted to CIF for
//! mask generation". Leaf cells defined in Sticks need their symbolic
//! elements expanded into mask rectangles first; this module performs
//! that expansion with simple Mead & Conway NMOS rules:
//!
//! * wires become CIF `W` commands at `width × λ`;
//! * a transistor is a 2λ poly gate crossing a 2λ diffusion run, the
//!   gate extending 2λ past the diffusion on both sides; depletion
//!   devices add an implant box surrounding the gate by 2λ;
//! * a contact is a 2λ cut with 4λ landing pads on both joined layers;
//! * pins become `94` CIF connectors.

use crate::cell::{ContactKind, DeviceKind, SticksCell};
use riot_cif::model::{CifCell, CifConnector, CifFile};
use riot_cif::{Geometry, Shape};
use riot_geom::{Layer, Path, Point, Rect, Transform, LAMBDA};

/// Converts a symbolic cell to a CIF definition with symbol number `id`.
///
/// All lambda coordinates are scaled to centimicrons.
pub fn to_cif_cell(cell: &SticksCell, id: u32) -> CifCell {
    let mut shapes = Vec::new();

    for w in cell.wires() {
        let pts: Vec<Point> = w.path.points().iter().map(|&p| scale_point(p)).collect();
        shapes.push(Shape {
            layer: w.layer,
            geometry: Geometry::Wire {
                width: w.width * LAMBDA,
                path: Path::from_points(pts).expect("scaling preserves Manhattan paths"),
            },
        });
    }

    for d in cell.devices() {
        let t = Transform::new(d.orient, scale_point(d.position));
        // Local geometry for R0: poly gate vertical, diffusion horizontal.
        let gate = Rect::new(-LAMBDA, -3 * LAMBDA, LAMBDA, 3 * LAMBDA);
        let diff = Rect::new(-3 * LAMBDA, -LAMBDA, 3 * LAMBDA, LAMBDA);
        shapes.push(Shape {
            layer: Layer::Poly,
            geometry: Geometry::Box(t.apply_rect(gate)),
        });
        shapes.push(Shape {
            layer: Layer::Diffusion,
            geometry: Geometry::Box(t.apply_rect(diff)),
        });
        if d.kind == DeviceKind::Depletion {
            shapes.push(Shape {
                layer: Layer::Implant,
                geometry: Geometry::Box(t.apply_rect(gate.inflated(2 * LAMBDA))),
            });
        }
    }

    for c in cell.contacts() {
        let center = scale_point(c.position);
        let cut = Rect::from_center(center, 2 * LAMBDA, 2 * LAMBDA);
        let pad = Rect::from_center(center, 4 * LAMBDA, 4 * LAMBDA);
        let (a, b) = c.kind.layers();
        if c.kind != ContactKind::Buried {
            shapes.push(Shape {
                layer: Layer::Contact,
                geometry: Geometry::Box(cut),
            });
        } else {
            shapes.push(Shape {
                layer: Layer::Buried,
                geometry: Geometry::Box(pad),
            });
        }
        shapes.push(Shape {
            layer: a,
            geometry: Geometry::Box(pad),
        });
        shapes.push(Shape {
            layer: b,
            geometry: Geometry::Box(pad),
        });
    }

    let connectors = cell
        .pins()
        .iter()
        .map(|p| CifConnector {
            name: p.name.clone(),
            location: scale_point(p.position),
            layer: p.layer,
            width: p.width * LAMBDA,
        })
        .collect();

    CifCell {
        id,
        name: Some(cell.name().to_owned()),
        shapes,
        calls: vec![],
        connectors,
    }
}

/// Wraps a single symbolic cell as a standalone CIF file with one
/// top-level call.
pub fn to_cif_file(cell: &SticksCell) -> CifFile {
    let mut file = CifFile::new();
    let id = file.add_cell(to_cif_cell(cell, 1));
    file.push_top_call(riot_cif::model::CifCall {
        cell: id,
        transform: Transform::IDENTITY,
    });
    file
}

/// The cell's mask-level bounding box (its lambda bbox scaled to
/// centimicrons) — the box Riot displays and abuts.
pub fn mask_bbox(cell: &SticksCell) -> Rect {
    let bb = cell.bbox();
    Rect::new(
        bb.x0 * LAMBDA,
        bb.y0 * LAMBDA,
        bb.x1 * LAMBDA,
        bb.y1 * LAMBDA,
    )
}

fn scale_point(p: Point) -> Point {
    Point::new(p.x * LAMBDA, p.y * LAMBDA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const INV: &str = "\
sticks inv
bbox 0 0 10 16
pin IN left NP 0 6 2
pin OUT right NM 10 8 3
pin PWR top NM 5 16 3
pin GND bottom NM 5 0 3
wire NP 2 0 6 5 6
wire NM 3 5 0 5 4
wire NM 3 5 12 5 16
dev enh 5 6
dev dep 5 10 R0
contact md 5 8
wire NM 3 5 8 10 8
end
";

    #[test]
    fn converts_inverter() {
        let cell = parse(INV).unwrap();
        let cif = to_cif_cell(&cell, 7);
        assert_eq!(cif.id, 7);
        assert_eq!(cif.name.as_deref(), Some("inv"));
        assert_eq!(cif.connectors.len(), 4);
        // 4 wires + 2 devices (2 boxes each) + implant + contact (3 boxes)
        assert_eq!(cif.shapes.len(), 4 + 4 + 1 + 3);
    }

    #[test]
    fn connector_positions_scaled() {
        let cell = parse(INV).unwrap();
        let cif = to_cif_cell(&cell, 1);
        let out = cif.connector("OUT").unwrap();
        assert_eq!(out.location, Point::new(10 * LAMBDA, 8 * LAMBDA));
        assert_eq!(out.width, 3 * LAMBDA);
    }

    #[test]
    fn depletion_gets_implant() {
        let cell = parse(INV).unwrap();
        let cif = to_cif_cell(&cell, 1);
        let implants = cif
            .shapes
            .iter()
            .filter(|s| s.layer == Layer::Implant)
            .count();
        assert_eq!(implants, 1);
    }

    #[test]
    fn buried_contact_uses_buried_layer() {
        let text = "sticks t\nbbox 0 0 8 8\ncontact bur 4 4\nend\n";
        let cell = parse(text).unwrap();
        let cif = to_cif_cell(&cell, 1);
        assert!(cif.shapes.iter().any(|s| s.layer == Layer::Buried));
        assert!(!cif.shapes.iter().any(|s| s.layer == Layer::Contact));
    }

    #[test]
    fn device_rotation_rotates_gate() {
        let r0 = "sticks t\nbbox 0 0 10 10\ndev enh 5 5\nend\n";
        let r90 = "sticks t\nbbox 0 0 10 10\ndev enh 5 5 R90\nend\n";
        let g0 = to_cif_cell(&parse(r0).unwrap(), 1);
        let g90 = to_cif_cell(&parse(r90).unwrap(), 1);
        let gate0 = g0
            .shapes
            .iter()
            .find(|s| s.layer == Layer::Poly)
            .unwrap()
            .geometry
            .bounding_box();
        let gate90 = g90
            .shapes
            .iter()
            .find(|s| s.layer == Layer::Poly)
            .unwrap()
            .geometry
            .bounding_box();
        assert_eq!(gate0.width(), gate90.height());
        assert_eq!(gate0.height(), gate90.width());
    }

    #[test]
    fn cif_file_round_trips_through_text() {
        let cell = parse(INV).unwrap();
        let file = to_cif_file(&cell);
        let text = riot_cif::to_text(&file);
        let again = riot_cif::parse(&text).unwrap();
        assert_eq!(file, again);
    }

    #[test]
    fn mask_bbox_scales() {
        let cell = parse(INV).unwrap();
        assert_eq!(mask_bbox(&cell), Rect::new(0, 0, 10 * LAMBDA, 16 * LAMBDA));
    }
}
