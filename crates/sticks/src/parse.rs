//! Parser for the textual Sticks format.

use crate::cell::{Contact, ContactKind, Device, DeviceKind, Pin, SticksCell, SymWire};
use crate::error::ParseSticksError;
use riot_geom::{Layer, Orientation, Path, Point, Rect, Side};

/// Parses a Sticks cell from its textual form and validates it.
///
/// The format is line-oriented; `#` starts a comment. See the crate
/// docs for the grammar.
///
/// # Errors
///
/// Returns [`ParseSticksError`] on syntax errors or when the parsed cell
/// violates a [`SticksCell::validate`] invariant.
pub fn parse(text: &str) -> Result<SticksCell, ParseSticksError> {
    let mut name: Option<String> = None;
    let mut bbox: Option<Rect> = None;
    let mut pins = Vec::new();
    let mut wires = Vec::new();
    let mut devices = Vec::new();
    let mut contacts = Vec::new();
    let mut ended = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if ended {
            return Err(ParseSticksError::new(line, "content after `end`"));
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        let err = |msg: &str| ParseSticksError::new(line, msg);
        match fields[0] {
            "sticks" => {
                if name.is_some() {
                    return Err(err("duplicate `sticks` header"));
                }
                let n = fields.get(1).ok_or_else(|| err("missing cell name"))?;
                name = Some((*n).to_owned());
            }
            "bbox" => {
                if fields.len() != 5 {
                    return Err(err("bbox needs 4 coordinates"));
                }
                let v = parse_ints(&fields[1..], line)?;
                bbox = Some(Rect::new(v[0], v[1], v[2], v[3]));
            }
            "pin" => {
                // pin NAME SIDE LAYER X Y [WIDTH]
                if fields.len() < 6 || fields.len() > 7 {
                    return Err(err("pin needs: name side layer x y [width]"));
                }
                let side: Side = fields[2].parse().map_err(|_| err("bad pin side"))?;
                let layer: Layer = fields[3].parse().map_err(|_| err("bad pin layer"))?;
                let xy = parse_ints(&fields[4..6], line)?;
                let width = match fields.get(6) {
                    Some(w) => w.parse().map_err(|_| err("bad pin width"))?,
                    None => layer.default_width() / riot_geom::LAMBDA,
                };
                pins.push(Pin {
                    name: fields[1].to_owned(),
                    side,
                    layer,
                    position: Point::new(xy[0], xy[1]),
                    width,
                });
            }
            "wire" => {
                // wire LAYER WIDTH x1 y1 x2 y2 ...
                if fields.len() < 7 || !(fields.len() - 3).is_multiple_of(2) {
                    return Err(err("wire needs: layer width and at least 2 points"));
                }
                let layer: Layer = fields[1].parse().map_err(|_| err("bad wire layer"))?;
                let width: i64 = fields[2].parse().map_err(|_| err("bad wire width"))?;
                let coords = parse_ints(&fields[3..], line)?;
                let points: Vec<Point> = coords.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
                let path =
                    Path::from_points(points).map_err(|e| err(&format!("bad wire path: {e}")))?;
                wires.push(SymWire { layer, width, path });
            }
            "dev" => {
                // dev KIND X Y [ORIENT]
                if fields.len() < 4 || fields.len() > 5 {
                    return Err(err("dev needs: kind x y [orient]"));
                }
                let kind = match fields[1] {
                    "enh" => DeviceKind::Enhancement,
                    "dep" => DeviceKind::Depletion,
                    other => return Err(err(&format!("unknown device kind `{other}`"))),
                };
                let xy = parse_ints(&fields[2..4], line)?;
                let orient = match fields.get(4) {
                    Some(o) => o.parse().map_err(|_| err("bad device orientation"))?,
                    None => Orientation::R0,
                };
                devices.push(Device {
                    kind,
                    position: Point::new(xy[0], xy[1]),
                    orient,
                });
            }
            "contact" => {
                // contact KIND X Y
                if fields.len() != 4 {
                    return Err(err("contact needs: kind x y"));
                }
                let kind = match fields[1] {
                    "md" => ContactKind::MetalDiffusion,
                    "mp" => ContactKind::MetalPoly,
                    "bur" => ContactKind::Buried,
                    other => return Err(err(&format!("unknown contact kind `{other}`"))),
                };
                let xy = parse_ints(&fields[2..4], line)?;
                contacts.push(Contact {
                    kind,
                    position: Point::new(xy[0], xy[1]),
                });
            }
            "end" => ended = true,
            other => return Err(err(&format!("unknown directive `{other}`"))),
        }
    }

    if !ended {
        return Err(ParseSticksError::new(text.lines().count(), "missing `end`"));
    }
    let name = name.ok_or_else(|| ParseSticksError::new(1, "missing `sticks` header"))?;
    let bbox = bbox.ok_or_else(|| ParseSticksError::new(1, "missing `bbox`"))?;

    let mut cell = SticksCell::new(name, bbox);
    for p in pins {
        cell.push_pin(p);
    }
    for w in wires {
        cell.push_wire(w);
    }
    for d in devices {
        cell.push_device(d);
    }
    for c in contacts {
        cell.push_contact(c);
    }
    cell.validate()
        .map_err(|e| ParseSticksError::new(0, e.to_string()))?;
    Ok(cell)
}

fn parse_ints(fields: &[&str], line: usize) -> Result<Vec<i64>, ParseSticksError> {
    fields
        .iter()
        .map(|f| {
            f.parse()
                .map_err(|_| ParseSticksError::new(line, format!("bad integer `{f}`")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAND: &str = "\
# a two-input nand gate, symbolic
sticks nand2
bbox 0 0 14 20
pin PWR left NM 0 18 3
pin GND left NM 0 2 3
pin A bottom NP 4 0 2
pin B bottom NP 9 0 2
pin OUT right NM 14 10 3
wire NM 3  0 18  14 18   # power rail
wire NM 3  0 2   14 2
wire NP 2  4 0   4 12
wire NP 2  9 0   9 12
dev enh 4 8
dev enh 9 8 R0
dev dep 7 14 R90
contact md 12 10
end
";

    #[test]
    fn parses_nand() {
        let c = parse(NAND).unwrap();
        assert_eq!(c.name(), "nand2");
        assert_eq!(c.pins().len(), 5);
        assert_eq!(c.wires().len(), 4);
        assert_eq!(c.devices().len(), 3);
        assert_eq!(c.contacts().len(), 1);
        assert_eq!(c.pin("OUT").unwrap().side, Side::Right);
        assert_eq!(c.devices()[2].orient, Orientation::R90);
    }

    #[test]
    fn default_pin_width_from_layer() {
        let text = "sticks t\nbbox 0 0 4 4\npin P left NM 0 2\nend\n";
        let c = parse(text).unwrap();
        assert_eq!(c.pin("P").unwrap().width, 3); // metal default 3λ
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse("bbox 0 0 4 4\nend\n").is_err());
    }

    #[test]
    fn rejects_missing_end() {
        assert!(parse("sticks t\nbbox 0 0 4 4\n").is_err());
    }

    #[test]
    fn rejects_content_after_end() {
        assert!(parse("sticks t\nbbox 0 0 4 4\nend\nwire NM 3 0 0 4 0\n").is_err());
    }

    #[test]
    fn rejects_diagonal_wire() {
        let text = "sticks t\nbbox 0 0 9 9\nwire NM 3 0 0 5 5\nend\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("diagonal"));
    }

    #[test]
    fn rejects_invalid_cell_semantics() {
        // Pin declared on left side but placed mid-cell.
        let text = "sticks t\nbbox 0 0 9 9\npin P left NM 4 4\nend\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_directive() {
        assert!(parse("sticks t\nbbox 0 0 4 4\nfoo 1 2\nend\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# leading comment\nsticks t  # trailing\n\nbbox 0 0 4 4\nend\n";
        assert!(parse(text).is_ok());
    }
}
