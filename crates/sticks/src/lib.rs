//! The Sticks Standard symbolic layout format for the RIOT reproduction.
//!
//! Sticks (Trimberger 1980, "The Proposed Sticks Standard") is the
//! symbolic-layout interchange format Riot reads beside CIF. A Sticks
//! cell describes topology — wires, transistors, contacts and boundary
//! pins on a lambda grid — rather than final mask rectangles, which is
//! what makes Riot's **stretch** connection possible: pin positions can
//! be re-constrained and the cell re-solved.
//!
//! The Caltech technical report's exact grammar is lost; this crate
//! defines a documented line-oriented textual format carrying the same
//! information (see DESIGN.md §2 for the substitution note):
//!
//! ```text
//! sticks nand2
//! bbox 0 0 14 20
//! pin PWR left NM 0 18 3
//! wire NM 3 0 18 14 18
//! dev enh 4 10 R0
//! contact mp 7 14
//! end
//! ```
//!
//! Coordinates and widths are in **lambda**; [`mask`] converts a cell to
//! CIF mask geometry (λ = 2.5 µm, see [`riot_geom::units`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "sticks inv\nbbox 0 0 10 12\npin IN left NP 0 6\npin OUT right NM 10 6\nwire NP 2 0 6 10 6\nend\n";
//! let cell = riot_sticks::parse(text)?;
//! assert_eq!(cell.pins().len(), 2);
//! let cif = riot_sticks::mask::to_cif_cell(&cell, 1);
//! assert_eq!(cif.connectors.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod error;
pub mod mask;
pub mod parse;
pub mod write;

pub use cell::{Contact, ContactKind, Device, DeviceKind, Pin, SticksCell, SymWire};
pub use error::{ParseSticksError, ValidateSticksError};
pub use parse::parse;
pub use write::to_text;
