//! Sticks parse and validation errors.

use riot_geom::{Layer, Point, Side};
use std::fmt;

/// Error while parsing the textual Sticks format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSticksError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseSticksError {
    /// Builds an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseSticksError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSticksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sticks line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSticksError {}

/// Violation of a [`crate::SticksCell`] invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateSticksError {
    /// Two pins share a name.
    DuplicatePin(String),
    /// A pin does not lie on its declared bounding-box side.
    PinOffSide {
        /// Pin name.
        pin: String,
        /// Declared side.
        side: Side,
    },
    /// A pin on a layer wires cannot run on.
    BadPinLayer {
        /// Pin name.
        pin: String,
        /// Offending layer.
        layer: Layer,
    },
    /// A pin with non-positive width.
    BadPinWidth {
        /// Pin name.
        pin: String,
        /// Offending width.
        width: i64,
    },
    /// A wire with non-positive width.
    BadWireWidth {
        /// Index of the wire in the cell.
        index: usize,
        /// Offending width.
        width: i64,
    },
    /// Geometry outside the declared bounding box.
    OutsideBbox {
        /// What kind of element.
        what: &'static str,
        /// Offending location.
        at: Point,
    },
}

impl fmt::Display for ValidateSticksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateSticksError::DuplicatePin(name) => {
                write!(f, "duplicate pin name `{name}`")
            }
            ValidateSticksError::PinOffSide { pin, side } => {
                write!(
                    f,
                    "pin `{pin}` is not on the {side} side of the bounding box"
                )
            }
            ValidateSticksError::BadPinLayer { pin, layer } => {
                write!(f, "pin `{pin}` is on non-routable layer {layer}")
            }
            ValidateSticksError::BadPinWidth { pin, width } => {
                write!(f, "pin `{pin}` has non-positive width {width}")
            }
            ValidateSticksError::BadWireWidth { index, width } => {
                write!(f, "wire #{index} has non-positive width {width}")
            }
            ValidateSticksError::OutsideBbox { what, at } => {
                write!(f, "{what} at {at} lies outside the bounding box")
            }
        }
    }
}

impl std::error::Error for ValidateSticksError {}
