//! Writer for the textual Sticks format.

use crate::cell::SticksCell;
use riot_geom::Orientation;
use std::fmt::Write as _;

/// Renders a [`SticksCell`] as its textual form.
///
/// The output is accepted by [`crate::parse`] and round-trips to an
/// equal cell (property tested).
pub fn to_text(cell: &SticksCell) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sticks {}", cell.name());
    let bb = cell.bbox();
    let _ = writeln!(out, "bbox {} {} {} {}", bb.x0, bb.y0, bb.x1, bb.y1);
    for p in cell.pins() {
        let _ = writeln!(
            out,
            "pin {} {} {} {} {} {}",
            p.name, p.side, p.layer, p.position.x, p.position.y, p.width
        );
    }
    for w in cell.wires() {
        let _ = write!(out, "wire {} {}", w.layer, w.width);
        for pt in w.path.points() {
            let _ = write!(out, " {} {}", pt.x, pt.y);
        }
        out.push('\n');
    }
    for d in cell.devices() {
        let _ = write!(
            out,
            "dev {} {} {}",
            d.kind.keyword(),
            d.position.x,
            d.position.y
        );
        if d.orient != Orientation::R0 {
            let _ = write!(out, " {}", d.orient);
        }
        out.push('\n');
    }
    for c in cell.contacts() {
        let _ = writeln!(
            out,
            "contact {} {} {}",
            c.kind.keyword(),
            c.position.x,
            c.position.y
        );
    }
    out.push_str("end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Contact, ContactKind, Device, DeviceKind, Pin, SymWire};
    use crate::parse::parse;
    use riot_geom::{Layer, Path, Point, Rect, Side};

    fn sample() -> SticksCell {
        let mut c = SticksCell::new("demo", Rect::new(0, 0, 12, 16));
        c.push_pin(Pin {
            name: "IN".into(),
            side: Side::Left,
            layer: Layer::Poly,
            position: Point::new(0, 8),
            width: 2,
        });
        c.push_wire(SymWire {
            layer: Layer::Poly,
            width: 2,
            path: Path::from_points([Point::new(0, 8), Point::new(6, 8), Point::new(6, 12)])
                .unwrap(),
        });
        c.push_device(Device {
            kind: DeviceKind::Depletion,
            position: Point::new(6, 12),
            orient: riot_geom::Orientation::R90,
        });
        c.push_contact(Contact {
            kind: ContactKind::MetalPoly,
            position: Point::new(6, 14),
        });
        c
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let text = to_text(&c);
        let again = parse(&text).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn output_is_line_per_element() {
        let text = to_text(&sample());
        // header + bbox + 1 pin + 1 wire + 1 dev + 1 contact + end
        assert_eq!(text.lines().count(), 7);
    }
}
