//! The symbolic cell model.

use crate::error::ValidateSticksError;
use riot_geom::{Layer, Orientation, Path, Point, Rect, Side};

/// A boundary pin of a symbolic cell — what Riot sees as a connector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pin {
    /// Pin name, unique within the cell.
    pub name: String,
    /// Which bounding-box side the pin sits on.
    pub side: Side,
    /// Wire layer of the connection.
    pub layer: Layer,
    /// Position on the lambda grid (must lie on `side` of the bbox).
    pub position: Point,
    /// Wire width in lambda.
    pub width: i64,
}

/// A symbolic wire: a Manhattan centerline on one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymWire {
    /// Wire layer.
    pub layer: Layer,
    /// Width in lambda.
    pub width: i64,
    /// Centerline on the lambda grid.
    pub path: Path,
}

/// Transistor flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Enhancement-mode transistor.
    Enhancement,
    /// Depletion-mode (implanted) load.
    Depletion,
}

impl DeviceKind {
    /// Keyword used in the textual format.
    pub fn keyword(self) -> &'static str {
        match self {
            DeviceKind::Enhancement => "enh",
            DeviceKind::Depletion => "dep",
        }
    }
}

/// A transistor: poly crossing diffusion at a grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Flavor (enhancement/depletion).
    pub kind: DeviceKind,
    /// Channel center on the lambda grid.
    pub position: Point,
    /// Orientation: R0 = poly runs vertically (gate crosses a horizontal
    /// diffusion run); other orientations rotate the structure.
    pub orient: Orientation,
}

/// Contact flavor (which layers the cut joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactKind {
    /// Metal to diffusion.
    MetalDiffusion,
    /// Metal to poly.
    MetalPoly,
    /// Buried contact, poly to diffusion.
    Buried,
}

impl ContactKind {
    /// Keyword used in the textual format.
    pub fn keyword(self) -> &'static str {
        match self {
            ContactKind::MetalDiffusion => "md",
            ContactKind::MetalPoly => "mp",
            ContactKind::Buried => "bur",
        }
    }

    /// The two layers the contact joins.
    pub fn layers(self) -> (Layer, Layer) {
        match self {
            ContactKind::MetalDiffusion => (Layer::Metal, Layer::Diffusion),
            ContactKind::MetalPoly => (Layer::Metal, Layer::Poly),
            ContactKind::Buried => (Layer::Poly, Layer::Diffusion),
        }
    }
}

/// An inter-layer contact at a grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    /// Which layers are joined.
    pub kind: ContactKind,
    /// Cut center on the lambda grid.
    pub position: Point,
}

/// A symbolic (Sticks) cell on the lambda grid.
///
/// Use [`SticksCell::new`] then the `push_*` methods, or parse the
/// textual format with [`crate::parse`]. [`SticksCell::validate`] checks
/// the invariants Riot relies on (pins on the boundary, routable pin
/// layers, geometry inside the bbox).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SticksCell {
    name: String,
    bbox: Rect,
    pins: Vec<Pin>,
    wires: Vec<SymWire>,
    devices: Vec<Device>,
    contacts: Vec<Contact>,
}

impl SticksCell {
    /// Creates an empty cell with an explicit lambda-grid bounding box.
    pub fn new(name: impl Into<String>, bbox: Rect) -> Self {
        SticksCell {
            name: name.into(),
            bbox,
            pins: Vec::new(),
            wires: Vec::new(),
            devices: Vec::new(),
            contacts: Vec::new(),
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the cell (stretching derives `name'` cells).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Bounding box on the lambda grid.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Replaces the bounding box (stretching grows it).
    pub fn set_bbox(&mut self, bbox: Rect) {
        self.bbox = bbox;
    }

    /// The boundary pins.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Mutable access to the pins (REST moves them when stretching).
    pub fn pins_mut(&mut self) -> &mut [Pin] {
        &mut self.pins
    }

    /// The symbolic wires.
    pub fn wires(&self) -> &[SymWire] {
        &self.wires
    }

    /// Mutable access to the wires.
    pub fn wires_mut(&mut self) -> &mut Vec<SymWire> {
        &mut self.wires
    }

    /// The transistors.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable access to the transistors.
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// The contacts.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Mutable access to the contacts.
    pub fn contacts_mut(&mut self) -> &mut [Contact] {
        &mut self.contacts
    }

    /// Adds a pin.
    pub fn push_pin(&mut self, pin: Pin) {
        self.pins.push(pin);
    }

    /// Adds a wire.
    pub fn push_wire(&mut self, wire: SymWire) {
        self.wires.push(wire);
    }

    /// Adds a device.
    pub fn push_device(&mut self, device: Device) {
        self.devices.push(device);
    }

    /// Adds a contact.
    pub fn push_contact(&mut self, contact: Contact) {
        self.contacts.push(contact);
    }

    /// Looks up a pin by name.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Pins on one side, sorted by their coordinate along that side.
    pub fn pins_on_side(&self, side: Side) -> Vec<&Pin> {
        let mut pins: Vec<&Pin> = self.pins.iter().filter(|p| p.side == side).collect();
        pins.sort_by_key(|p| side.along(p.position));
        pins
    }

    /// Checks the invariants Riot relies on.
    ///
    /// # Errors
    ///
    /// * a pin not on its declared bounding-box side;
    /// * a pin on a non-routable layer, or with non-positive width;
    /// * duplicate pin names;
    /// * wires/devices/contacts outside the bounding box;
    /// * a wire with non-positive width.
    pub fn validate(&self) -> Result<(), ValidateSticksError> {
        let mut seen = std::collections::HashSet::new();
        for pin in &self.pins {
            if !seen.insert(pin.name.as_str()) {
                return Err(ValidateSticksError::DuplicatePin(pin.name.clone()));
            }
            if !pin.layer.is_routable() {
                return Err(ValidateSticksError::BadPinLayer {
                    pin: pin.name.clone(),
                    layer: pin.layer,
                });
            }
            if pin.width <= 0 {
                return Err(ValidateSticksError::BadPinWidth {
                    pin: pin.name.clone(),
                    width: pin.width,
                });
            }
            let on_side = match pin.side {
                Side::Left => pin.position.x == self.bbox.x0,
                Side::Right => pin.position.x == self.bbox.x1,
                Side::Bottom => pin.position.y == self.bbox.y0,
                Side::Top => pin.position.y == self.bbox.y1,
            };
            if !on_side || !self.bbox.contains(pin.position) {
                return Err(ValidateSticksError::PinOffSide {
                    pin: pin.name.clone(),
                    side: pin.side,
                });
            }
        }
        for (i, wire) in self.wires.iter().enumerate() {
            if wire.width <= 0 {
                return Err(ValidateSticksError::BadWireWidth {
                    index: i,
                    width: wire.width,
                });
            }
            for &p in wire.path.points() {
                if !self.bbox.contains(p) {
                    return Err(ValidateSticksError::OutsideBbox {
                        what: "wire vertex",
                        at: p,
                    });
                }
            }
        }
        for d in &self.devices {
            if !self.bbox.contains(d.position) {
                return Err(ValidateSticksError::OutsideBbox {
                    what: "device",
                    at: d.position,
                });
            }
        }
        for c in &self.contacts {
            if !self.bbox.contains(c.position) {
                return Err(ValidateSticksError::OutsideBbox {
                    what: "contact",
                    at: c.position,
                });
            }
        }
        Ok(())
    }

    /// Width and height of the cell in lambda.
    pub fn size(&self) -> (i64, i64) {
        (self.bbox.width(), self.bbox.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> SticksCell {
        let mut c = SticksCell::new("t", Rect::new(0, 0, 10, 10));
        c.push_pin(Pin {
            name: "A".into(),
            side: Side::Left,
            layer: Layer::Poly,
            position: Point::new(0, 5),
            width: 2,
        });
        c.push_wire(SymWire {
            layer: Layer::Poly,
            width: 2,
            path: Path::from_points([Point::new(0, 5), Point::new(10, 5)]).unwrap(),
        });
        c
    }

    #[test]
    fn valid_cell_passes() {
        assert!(cell().validate().is_ok());
    }

    #[test]
    fn pin_off_side_rejected() {
        let mut c = cell();
        c.pins_mut()[0].position = Point::new(1, 5);
        assert!(matches!(
            c.validate(),
            Err(ValidateSticksError::PinOffSide { .. })
        ));
    }

    #[test]
    fn duplicate_pin_rejected() {
        let mut c = cell();
        let dup = c.pins()[0].clone();
        c.push_pin(dup);
        assert!(matches!(
            c.validate(),
            Err(ValidateSticksError::DuplicatePin(_))
        ));
    }

    #[test]
    fn contact_layer_pin_rejected() {
        let mut c = cell();
        c.pins_mut()[0].layer = Layer::Contact;
        assert!(matches!(
            c.validate(),
            Err(ValidateSticksError::BadPinLayer { .. })
        ));
    }

    #[test]
    fn wire_outside_bbox_rejected() {
        let mut c = cell();
        c.push_wire(SymWire {
            layer: Layer::Metal,
            width: 3,
            path: Path::from_points([Point::new(0, 0), Point::new(0, 50)]).unwrap(),
        });
        assert!(matches!(
            c.validate(),
            Err(ValidateSticksError::OutsideBbox { .. })
        ));
    }

    #[test]
    fn pins_on_side_sorted() {
        let mut c = SticksCell::new("t", Rect::new(0, 0, 10, 10));
        for (name, y) in [("B", 8), ("A", 2), ("C", 5)] {
            c.push_pin(Pin {
                name: name.into(),
                side: Side::Left,
                layer: Layer::Metal,
                position: Point::new(0, y),
                width: 3,
            });
        }
        let names: Vec<_> = c
            .pins_on_side(Side::Left)
            .iter()
            .map(|p| p.name.clone())
            .collect();
        assert_eq!(names, ["A", "C", "B"]);
        assert!(c.pins_on_side(Side::Right).is_empty());
    }

    #[test]
    fn contact_kind_layers() {
        assert_eq!(
            ContactKind::Buried.layers(),
            (Layer::Poly, Layer::Diffusion)
        );
    }
}
