//! Property tests: generated Sticks cells survive write→parse round
//! trips, and mask generation stays inside the scaled bounding box.

use proptest::prelude::*;
use riot_geom::{Layer, Orientation, Path, Point, Rect, Side};
use riot_sticks::{
    parse, to_text, Contact, ContactKind, Device, DeviceKind, Pin, SticksCell, SymWire,
};

const W: i64 = 40;
const H: i64 = 32;

fn arb_routable() -> impl Strategy<Value = Layer> {
    prop::sample::select(Layer::ROUTABLE.to_vec())
}

fn arb_pin(i: usize) -> impl Strategy<Value = Pin> {
    (
        prop::sample::select(Side::ALL.to_vec()),
        arb_routable(),
        1i64..W - 1,
        1i64..H - 1,
        1i64..4,
    )
        .prop_map(move |(side, layer, x, y, w)| {
            let position = match side {
                Side::Left => Point::new(0, y),
                Side::Right => Point::new(W, y),
                Side::Bottom => Point::new(x, 0),
                Side::Top => Point::new(x, H),
            };
            Pin {
                name: format!("P{i}"),
                side,
                layer,
                position,
                width: w,
            }
        })
}

fn arb_wire() -> impl Strategy<Value = SymWire> {
    (
        arb_routable(),
        1i64..4,
        (0i64..W, 0i64..H),
        prop::collection::vec((1i64..8, prop::bool::ANY), 1..5),
    )
        .prop_map(|(layer, width, (x, y), steps)| {
            let mut path = Path::new(Point::new(x, y));
            for (d, horiz) in steps {
                let last = path.end();
                let next = if horiz {
                    Point::new((last.x + d).min(W), last.y)
                } else {
                    Point::new(last.x, (last.y + d).min(H))
                };
                path.push(next).expect("axis-aligned");
            }
            SymWire { layer, width, path }
        })
}

fn arb_device() -> impl Strategy<Value = Device> {
    (
        prop::bool::ANY,
        3i64..W - 3,
        3i64..H - 3,
        prop::sample::select(Orientation::ALL.to_vec()),
    )
        .prop_map(|(dep, x, y, orient)| Device {
            kind: if dep {
                DeviceKind::Depletion
            } else {
                DeviceKind::Enhancement
            },
            position: Point::new(x, y),
            orient,
        })
}

fn arb_contact() -> impl Strategy<Value = Contact> {
    (
        prop::sample::select(vec![
            ContactKind::MetalDiffusion,
            ContactKind::MetalPoly,
            ContactKind::Buried,
        ]),
        2i64..W - 2,
        2i64..H - 2,
    )
        .prop_map(|(kind, x, y)| Contact {
            kind,
            position: Point::new(x, y),
        })
}

fn arb_cell() -> impl Strategy<Value = SticksCell> {
    (
        prop::collection::vec((0usize..6).prop_flat_map(arb_pin), 0..4),
        prop::collection::vec(arb_wire(), 0..5),
        prop::collection::vec(arb_device(), 0..3),
        prop::collection::vec(arb_contact(), 0..3),
    )
        .prop_map(|(mut pins, wires, devices, contacts)| {
            pins.sort_by(|a, b| a.name.cmp(&b.name));
            pins.dedup_by(|a, b| a.name == b.name);
            let mut cell = SticksCell::new("gen", Rect::new(0, 0, W, H));
            for p in pins {
                cell.push_pin(p);
            }
            for w in wires {
                cell.push_wire(w);
            }
            for d in devices {
                cell.push_device(d);
            }
            for c in contacts {
                cell.push_contact(c);
            }
            cell
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_round_trip(cell in arb_cell()) {
        prop_assume!(cell.validate().is_ok());
        let text = to_text(&cell);
        let again = parse(&text).expect("writer output must parse");
        prop_assert_eq!(cell, again);
    }

    #[test]
    fn mask_connectors_match_pins(cell in arb_cell()) {
        prop_assume!(cell.validate().is_ok());
        let cif = riot_sticks::mask::to_cif_cell(&cell, 1);
        prop_assert_eq!(cif.connectors.len(), cell.pins().len());
        for pin in cell.pins() {
            let conn = cif.connector(&pin.name).expect("every pin becomes a connector");
            prop_assert_eq!(conn.layer, pin.layer);
            prop_assert_eq!(conn.width, pin.width * riot_geom::LAMBDA);
        }
    }

    #[test]
    fn mask_wire_geometry_inside_inflated_bbox(cell in arb_cell()) {
        prop_assume!(cell.validate().is_ok());
        let cif = riot_sticks::mask::to_cif_cell(&cell, 1);
        // Devices and contact pads may poke slightly past the symbolic
        // bbox (gate extension), but never by more than 5λ.
        let limit = riot_sticks::mask::mask_bbox(&cell).inflated(5 * riot_geom::LAMBDA);
        if let Some(bb) = cif.local_bounding_box() {
            prop_assert!(limit.contains_rect(bb), "bb {bb} exceeds {limit}");
        }
    }
}
