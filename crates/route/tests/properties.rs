//! Property tests for the river router: random order-preserving
//! problems always route, never violate clearance, and the route cell
//! is always a valid Sticks cell.

use proptest::prelude::*;
use riot_geom::Layer;
use riot_route::river::verify_clearance;
use riot_route::{river_route, RouteProblem, RouterOptions, Terminal};

/// Generates an order-preserving problem on one layer: both edges get
/// strictly increasing offsets with design-rule-respecting gaps.
fn arb_layer_problem(layer: Layer) -> impl Strategy<Value = (Vec<Terminal>, Vec<Terminal>)> {
    let width = if layer == Layer::Metal { 3i64 } else { 2 };
    let min_gap = width + 3; // >= w/2+w/2+spacing for our layers
    prop::collection::vec((0i64..20, 0i64..20), 1..8).prop_map(move |gaps| {
        let mut bottom = Vec::new();
        let mut top = Vec::new();
        let (mut xb, mut xt) = (0i64, 0i64);
        for (i, (gb, gt)) in gaps.iter().enumerate() {
            xb += min_gap + gb;
            xt += min_gap + gt;
            bottom.push(Terminal::new(format!("n{i}"), xb, layer, width));
            top.push(Terminal::new(format!("n{i}"), xt, layer, width));
        }
        (bottom, top)
    })
}

fn arb_problem() -> impl Strategy<Value = RouteProblem> {
    (
        arb_layer_problem(Layer::Metal),
        arb_layer_problem(Layer::Poly),
        1usize..6,
    )
        .prop_map(|((mb, mt), (pb, pt), cap)| {
            let mut bottom = mb;
            let mut top = mt;
            bottom.extend(pb);
            top.extend(pt);
            RouteProblem::new(bottom, top).with_options(RouterOptions {
                tracks_per_channel: cap,
                ..RouterOptions::new()
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn order_preserving_problems_always_route(p in arb_problem()) {
        let r = river_route(&p).expect("order-preserving problems are river routable");
        prop_assert_eq!(r.wires().len(), p.net_count());
    }

    #[test]
    fn routes_never_violate_clearance(p in arb_problem()) {
        let r = river_route(&p).expect("routable");
        verify_clearance(&r).expect("clearance respected");
    }

    #[test]
    fn wires_span_the_full_channel(p in arb_problem()) {
        let r = river_route(&p).expect("routable");
        for (i, w) in r.wires().iter().enumerate() {
            prop_assert_eq!(w.path.start().y, 0);
            prop_assert_eq!(w.path.end().y, r.height());
            prop_assert_eq!(w.path.start().x, p.bottom[i].offset);
            prop_assert_eq!(w.path.end().x, p.top[i].offset);
            prop_assert!(w.path.corner_count() <= 2, "at most one jog");
        }
    }

    #[test]
    fn route_cells_are_valid(p in arb_problem()) {
        let r = river_route(&p).expect("routable");
        let cell = r.to_sticks_cell("rc");
        cell.validate().expect("valid sticks");
        // Every net has a pin on each edge.
        prop_assert_eq!(cell.pins().len(), 2 * p.net_count());
        // Round trip through the textual format.
        let again = riot_sticks::parse(&riot_sticks::to_text(&cell)).expect("parse");
        prop_assert_eq!(cell, again);
    }

    #[test]
    fn channel_count_monotone_in_capacity(p in arb_problem()) {
        let r = river_route(&p).expect("routable");
        let loose = RouteProblem {
            options: RouterOptions {
                tracks_per_channel: p.options.tracks_per_channel + 4,
                ..p.options
            },
            ..p.clone()
        };
        let r2 = river_route(&loose).expect("routable");
        prop_assert!(r2.channels() <= r.channels());
        prop_assert!(r2.height() <= r.height());
    }
}
