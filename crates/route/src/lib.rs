//! The RIOT multi-layer river router.
//!
//! Riot's ROUTE command makes "simple multi-layer river-routed
//! connections: a routed connection between parallel sets of points
//! where no routes change layers and no two routes on the same layer
//! cross. The Riot river router cannot turn corners, and it ignores
//! objects in the path of the route. … The routing algorithm attempts to
//! route all wires to the desired locations in a single routing channel.
//! If some wires are blocked, another channel is added and the route is
//! continued in the new channel."
//!
//! This crate reproduces that router:
//!
//! * terminals live on two parallel edges of a **channel** (canonically
//!   bottom = the *to* instance, top = the *from* instance); nets are
//!   index-paired;
//! * each net stays on one layer and makes at most one horizontal jog;
//! * per layer, nets must be **order-preserving** (a river route) —
//!   otherwise [`RouteError::NotRiverRoutable`] names the crossing pair;
//! * jog tracks are assigned by overlap depth; when a channel's track
//!   capacity is exhausted, the route continues in an added channel
//!   (see [`RiverRoute::channels`]);
//! * the result converts to a Sticks **route cell** with pins on both
//!   edges, exactly what Riot instantiates next to the *to* instance.
//!
//! All coordinates are in lambda (the routers of this era worked on the
//! symbolic grid; Riot emitted route cells in Sticks form).
//!
//! # Example
//!
//! ```
//! use riot_route::{river_route, RouteProblem, Terminal};
//! use riot_geom::Layer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = RouteProblem::new(
//!     vec![
//!         Terminal::new("a", 0, Layer::Metal, 3),
//!         Terminal::new("b", 10, Layer::Metal, 3),
//!     ],
//!     vec![
//!         Terminal::new("a", 8, Layer::Metal, 3),
//!         Terminal::new("b", 18, Layer::Metal, 3),
//!     ],
//! );
//! let route = river_route(&problem)?;
//! assert_eq!(route.wires().len(), 2);
//! let cell = route.to_sticks_cell("route0");
//! cell.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellgen;
pub mod error;
pub mod grid;
pub mod river;
pub mod straight;
pub mod terminal;

pub use error::RouteError;
pub use grid::{grid_route, GridRoute, GridStats, GridVia, GridWire};
pub use river::{river_route, RiverRoute, RoutedWire};
pub use straight::straight_route;
pub use terminal::{RouteProblem, RouterEngine, RouterOptions, Terminal};

use riot_geom::{Layer, Point, Rect};
use riot_sticks::SticksCell;

/// A route produced by [`solve`]: whichever engine ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteResult {
    /// The river router solved it (fast path).
    River(RiverRoute),
    /// The grid router solved it (explicit choice or fallback).
    Grid(GridRoute),
}

impl RouteResult {
    /// Which engine produced the route.
    pub fn engine(&self) -> RouterEngine {
        match self {
            RouteResult::River(_) => RouterEngine::River,
            RouteResult::Grid(_) => RouterEngine::Grid,
        }
    }

    /// Channel height in lambda.
    pub fn height(&self) -> i64 {
        match self {
            RouteResult::River(r) => r.height(),
            RouteResult::Grid(g) => g.height(),
        }
    }

    /// Number of routed nets.
    pub fn net_count(&self) -> usize {
        match self {
            RouteResult::River(r) => r.wires().len(),
            RouteResult::Grid(g) => g.wires().len(),
        }
    }

    /// Where each net lands on the top channel edge, in net order.
    pub fn top_ends(&self) -> Vec<Point> {
        match self {
            RouteResult::River(r) => r.wires().iter().map(|w| w.path.end()).collect(),
            RouteResult::Grid(g) => g.wires().iter().map(|w| w.top_end()).collect(),
        }
    }

    /// Builds the Sticks route cell.
    pub fn to_sticks_cell(&self, name: impl Into<String>) -> SticksCell {
        match self {
            RouteResult::River(r) => r.to_sticks_cell(name),
            RouteResult::Grid(g) => g.to_sticks_cell(name),
        }
    }
}

/// Solves the problem with the engine named in
/// [`RouterOptions::engine`]. [`RouterEngine::River`] tries the river
/// router first and falls back to the grid router exactly when a river
/// *precondition* fails — a layer-changing net
/// ([`RouteError::LayerMismatch`]) or a same-layer crossing
/// ([`RouteError::NotRiverRoutable`]). Validation errors
/// (count/width/spacing) and [`RouteError::ChannelTooTight`] never fall
/// back: both engines would reject the same input, and a too-tight
/// exact height is a placement fact, not an engine limitation.
/// [`RouterEngine::Grid`] skips the river router entirely.
///
/// # Errors
///
/// Whatever the selected engine (or the fallback) reports.
pub fn solve(
    problem: &RouteProblem,
    obstacles: &[(Layer, Rect)],
) -> Result<RouteResult, RouteError> {
    match problem.options.engine {
        RouterEngine::Grid => grid_route(problem, obstacles).map(RouteResult::Grid),
        RouterEngine::River => match river_route(problem) {
            Ok(r) => Ok(RouteResult::River(r)),
            Err(RouteError::LayerMismatch { .. }) | Err(RouteError::NotRiverRoutable { .. }) => {
                grid_route(problem, obstacles).map(RouteResult::Grid)
            }
            Err(e) => Err(e),
        },
    }
}

#[cfg(test)]
mod solve_tests {
    use super::*;

    fn t(name: &str, offset: i64, layer: Layer) -> Terminal {
        Terminal::new(name, offset, layer, 3)
    }

    #[test]
    fn river_stays_the_fast_path() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
            vec![t("a", 8, Layer::Metal), t("b", 18, Layer::Metal)],
        );
        let r = solve(&p, &[]).unwrap();
        assert_eq!(r.engine(), RouterEngine::River);
        assert_eq!(r.net_count(), 2);
        assert_eq!(r.top_ends()[0], Point::new(8, r.height()));
    }

    #[test]
    fn falls_back_to_grid_on_layer_mismatch() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Poly)], vec![t("a", 0, Layer::Metal)]);
        let r = solve(&p, &[]).unwrap();
        assert_eq!(r.engine(), RouterEngine::Grid);
    }

    #[test]
    fn falls_back_to_grid_on_crossing() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 12, Layer::Metal)],
            vec![t("a", 12, Layer::Metal), t("b", 0, Layer::Metal)],
        );
        let r = solve(&p, &[]).unwrap();
        assert_eq!(r.engine(), RouterEngine::Grid);
        assert_eq!(r.top_ends().len(), 2);
    }

    #[test]
    fn explicit_grid_skips_the_river() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
            vec![t("a", 8, Layer::Metal), t("b", 18, Layer::Metal)],
        )
        .with_options(RouterOptions {
            engine: RouterEngine::Grid,
            ..RouterOptions::new()
        });
        let r = solve(&p, &[]).unwrap();
        assert_eq!(r.engine(), RouterEngine::Grid);
    }

    #[test]
    fn validation_errors_do_not_fall_back() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![]);
        assert!(matches!(
            solve(&p, &[]),
            Err(RouteError::CountMismatch { .. })
        ));
    }
}
