//! The RIOT multi-layer river router.
//!
//! Riot's ROUTE command makes "simple multi-layer river-routed
//! connections: a routed connection between parallel sets of points
//! where no routes change layers and no two routes on the same layer
//! cross. The Riot river router cannot turn corners, and it ignores
//! objects in the path of the route. … The routing algorithm attempts to
//! route all wires to the desired locations in a single routing channel.
//! If some wires are blocked, another channel is added and the route is
//! continued in the new channel."
//!
//! This crate reproduces that router:
//!
//! * terminals live on two parallel edges of a **channel** (canonically
//!   bottom = the *to* instance, top = the *from* instance); nets are
//!   index-paired;
//! * each net stays on one layer and makes at most one horizontal jog;
//! * per layer, nets must be **order-preserving** (a river route) —
//!   otherwise [`RouteError::NotRiverRoutable`] names the crossing pair;
//! * jog tracks are assigned by overlap depth; when a channel's track
//!   capacity is exhausted, the route continues in an added channel
//!   (see [`RiverRoute::channels`]);
//! * the result converts to a Sticks **route cell** with pins on both
//!   edges, exactly what Riot instantiates next to the *to* instance.
//!
//! All coordinates are in lambda (the routers of this era worked on the
//! symbolic grid; Riot emitted route cells in Sticks form).
//!
//! # Example
//!
//! ```
//! use riot_route::{river_route, RouteProblem, Terminal};
//! use riot_geom::Layer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = RouteProblem::new(
//!     vec![
//!         Terminal::new("a", 0, Layer::Metal, 3),
//!         Terminal::new("b", 10, Layer::Metal, 3),
//!     ],
//!     vec![
//!         Terminal::new("a", 8, Layer::Metal, 3),
//!         Terminal::new("b", 18, Layer::Metal, 3),
//!     ],
//! );
//! let route = river_route(&problem)?;
//! assert_eq!(route.wires().len(), 2);
//! let cell = route.to_sticks_cell("route0");
//! cell.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellgen;
pub mod error;
pub mod river;
pub mod straight;
pub mod terminal;

pub use error::RouteError;
pub use river::{river_route, RiverRoute, RoutedWire};
pub use straight::straight_route;
pub use terminal::{RouteProblem, RouterOptions, Terminal};
