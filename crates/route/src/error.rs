//! Routing errors.

use riot_geom::Layer;
use std::fmt;

/// Why a route could not be made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The bottom and top terminal lists have different lengths.
    CountMismatch {
        /// Bottom terminal count.
        bottom: usize,
        /// Top terminal count.
        top: usize,
    },
    /// A net's two terminals are on different layers (river routes never
    /// change layers).
    LayerMismatch {
        /// Net index.
        net: usize,
        /// Bottom terminal layer.
        bottom: Layer,
        /// Top terminal layer.
        top: Layer,
    },
    /// Two same-layer nets would have to cross — not a river route.
    NotRiverRoutable {
        /// Layer on which the crossing occurs.
        layer: Layer,
        /// First net (by index into the problem).
        first: usize,
        /// Second, crossing net.
        second: usize,
    },
    /// Two terminals on the same edge and layer sit closer than the
    /// design rules allow.
    TerminalsTooClose {
        /// Layer of both terminals.
        layer: Layer,
        /// The two offending offsets.
        offsets: (i64, i64),
    },
    /// A terminal has a non-positive width.
    BadWidth {
        /// Net index.
        net: usize,
        /// Offending width.
        width: i64,
    },
    /// There are no nets to route.
    Empty,
    /// An exact channel height was requested but the tracks need more.
    ChannelTooTight {
        /// Lambda the route needs.
        needed: i64,
        /// Lambda available.
        available: i64,
    },
    /// The grid router exhausted the maze: no obstacle-free path exists
    /// for the net inside the channel window (or the search hit its
    /// deterministic expansion cap).
    Unroutable {
        /// Net index.
        net: usize,
    },
    /// The grid router's options are unusable (non-positive pitch).
    BadPitch {
        /// Offending pitch.
        pitch: i64,
    },
    /// A router invariant failed while emitting geometry. This is a bug
    /// in the router, not in the input — but it surfaces as an error so
    /// a malformed problem can never panic an interactive session.
    Internal {
        /// Which invariant broke.
        context: &'static str,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::CountMismatch { bottom, top } => write!(
                f,
                "terminal count mismatch: {bottom} on the bottom edge, {top} on the top"
            ),
            RouteError::LayerMismatch { net, bottom, top } => write!(
                f,
                "net {net} changes layers ({bottom} to {top}); river routes cannot"
            ),
            RouteError::NotRiverRoutable {
                layer,
                first,
                second,
            } => write!(
                f,
                "nets {first} and {second} cross on layer {layer}; not a river route"
            ),
            RouteError::TerminalsTooClose { layer, offsets } => write!(
                f,
                "terminals at {} and {} too close on layer {layer}",
                offsets.0, offsets.1
            ),
            RouteError::BadWidth { net, width } => {
                write!(f, "net {net} has non-positive width {width}")
            }
            RouteError::Empty => f.write_str("no nets to route"),
            RouteError::ChannelTooTight { needed, available } => write!(
                f,
                "route needs a {needed} lambda channel but only {available} is available"
            ),
            RouteError::Unroutable { net } => {
                write!(f, "net {net} has no obstacle-free path through the channel")
            }
            RouteError::BadPitch { pitch } => {
                write!(f, "grid pitch must be positive, got {pitch}")
            }
            RouteError::Internal { context } => {
                write!(f, "router invariant violated ({context}); please report")
            }
        }
    }
}

impl std::error::Error for RouteError {}
