//! The obstacle-aware grid router.
//!
//! Where the paper's river router "cannot turn corners, and it ignores
//! objects in the path of the route", this module routes each net with
//! an A* maze search over a per-layer grid: the channel is rasterized
//! into node/edge blockage masks from the caller's obstacle rectangles
//! (queried through a per-layer [`SpatialIndex`], with a keep-out halo
//! of `width/2 + spacing` derived from the layer's design rule), and
//! the search walks `(layer, x, y)` states with Manhattan step costs, a
//! bend penalty, and a layer-change via cost. Layer changes emit real
//! contacts (`md`/`mp`/`bur` with their 4λ landing pads), so a grid
//! route can connect terminals on *different* layers and detour around
//! anything in the channel.
//!
//! Multi-net problems route with a two-phase **plan/commit** scheme:
//! every net first solves concurrently against the frozen obstacle-only
//! grid (via [`riot_geom::par::map_heavy`]), then commits sequentially
//! in net order — a commit that would violate spacing against an
//! earlier net's geometry is re-routed alone against the obstacles plus
//! everything already committed. Plans are independent and commits are
//! ordered, so the result is identical at any worker-thread count.
//!
//! The grid is **non-uniform**: node columns sit every
//! [`crate::RouterOptions::grid_pitch`] lambda *plus* a dedicated
//! column per terminal, so a coarse pitch never strands a pin. Edge
//! blockage is checked over the full span between adjacent columns,
//! keeping coarse grids exactly as safe as the 1λ default.
//!
//! All coordinates are channel-local lambda: the bottom edge is `y = 0`
//! (the *to* instance), the top edge is `y = height` (the *from*
//! instance), matching [`crate::river_route`].

use crate::error::RouteError;
use crate::river::{check_edge_spacing, spacing_lambda};
use crate::straight::unique_pin_name;
use crate::terminal::RouteProblem;
use riot_geom::{index::SpatialIndex, par, Layer, Path, Point, Rect};
use riot_sticks::{Contact, ContactKind, Pin, SticksCell, SymWire};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost of one lambda of wire.
const COST_STEP: u64 = 2;
/// Extra cost when a net changes direction (fewer jogs, cleaner masks).
const COST_BEND: u64 = 3;
/// Cost of a layer change (a via costs area on both layers).
const COST_VIA: u64 = 40;
/// Deterministic per-net expansion cap: the search gives up (and the
/// net reports [`RouteError::Unroutable`]) rather than running forever.
const MAX_EXPANSIONS: u64 = 4_000_000;
/// Commit-phase restart budget: each restart promotes one failed net
/// to the front of the commit order. Independent plans tend to pile
/// jogs into the same rows, so a late net can find its terminal region
/// sealed by earlier commits; promotion lets it route first and makes
/// the sealing nets detour instead. The front net can never fail (it
/// commits into an empty channel), so a handful of restarts settles
/// any realistic pile-up.
const MAX_RESTARTS: u64 = 8;
/// Columns kept free beyond the terminal extent so detours can swing
/// around edge obstacles (added on top of the widest wire).
const X_SLACK: i64 = 8;
/// Half-extent of the x-window a net searches first, in lambda beyond
/// its own terminal span. Keeps per-net A* state small (and therefore
/// cache-resident under parallel planning); a net that cannot route
/// inside its window deterministically retries over the full channel.
const X_WINDOW: i64 = 32;

/// Minimum legal wire width on a layer in lambda (Mead & Conway: 3λ
/// metal, 2λ everything else) — a net narrower than this widens to the
/// floor on that layer so emitted masks stay DRC-clean.
fn min_width_lambda(layer: Layer) -> i64 {
    match layer {
        Layer::Metal => 3,
        _ => 2,
    }
}

/// The wire width a net actually uses on `layer`.
fn eff_width(width: i64, layer: Layer) -> i64 {
    width.max(min_width_lambda(layer))
}

/// Lifts a lambda-frame rectangle into the **half-lambda** clearance
/// frame. Mask emission inflates a width-`w` centerline by the
/// physical `w/2`, which is not a whole lambda when `w` is odd (the 3λ
/// metal floor is the common case) — so every clearance computation in
/// this module doubles its coordinates and works in exact half-lambda
/// integers: a width-`w` wire's edges sit exactly `w` half-lambdas
/// from its center, and the spacing rule on a layer is
/// `2 * spacing_lambda(layer)`.
fn phys(r: Rect) -> Rect {
    Rect::new(2 * r.x0, 2 * r.y0, 2 * r.x1, 2 * r.y1)
}

/// The contact kind joining two distinct routable layers.
fn via_kind(a: Layer, b: Layer) -> ContactKind {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    match (lo, hi) {
        (Layer::Diffusion, Layer::Metal) => ContactKind::MetalDiffusion,
        (Layer::Poly, Layer::Metal) => ContactKind::MetalPoly,
        _ => ContactKind::Buried,
    }
}

/// A layer change on a routed net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridVia {
    /// Cut center (channel-local lambda).
    pub position: Point,
    /// Which layers the contact joins.
    pub kind: ContactKind,
}

/// One grid-routed net: same-layer runs separated by vias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridWire {
    /// Net name (from the bottom terminal).
    pub name: String,
    /// Index of the net in the problem.
    pub net: usize,
    /// Requested width (max of the two terminal widths); each segment
    /// widens to its layer's minimum where needed.
    pub width: i64,
    /// Same-layer centerline runs, in bottom-to-top order. The width is
    /// the effective width on that segment's layer.
    pub segments: Vec<(Layer, i64, Path)>,
    /// Layer changes between consecutive segments.
    pub vias: Vec<GridVia>,
}

impl GridWire {
    /// The wire's start on the bottom channel edge.
    pub fn bottom_end(&self) -> Point {
        self.segments
            .first()
            .map(|(_, _, p)| p.start())
            .unwrap_or(Point::new(0, 0))
    }

    /// The wire's end on the top channel edge.
    pub fn top_end(&self) -> Point {
        self.segments
            .last()
            .map(|(_, _, p)| p.end())
            .unwrap_or(Point::new(0, 0))
    }

    /// Every mask rectangle the net paints on routable layers, in
    /// **half-lambda** coordinates (exact physical extents): one rect
    /// per path segment inflated by its full width — a width-`w` wire's
    /// edges sit `w/2` lambda, i.e. `w` half-lambdas, from the
    /// centerline — plus the 4λ via landing pads on both joined layers.
    /// (Cut/buried boxes are concentric and strictly inside the pads'
    /// design-rule shadow, so they never add constraints.)
    pub fn rects(&self) -> Vec<(Layer, Rect)> {
        let mut out = Vec::new();
        for (layer, w, path) in &self.segments {
            for (a, b) in path.segments() {
                out.push((*layer, phys(Rect::from_points(a, b)).inflated(*w)));
            }
        }
        for v in &self.vias {
            let pad = phys(Rect::from_center(v.position, 0, 0)).inflated(4);
            let (a, b) = v.kind.layers();
            out.push((a, pad));
            out.push((b, pad));
        }
        out
    }
}

/// Solver counters for one [`grid_route`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridStats {
    /// A* states popped across every net (including re-routes).
    pub expansions: u64,
    /// Total vias placed.
    pub vias: u64,
    /// Commit-phase conflicts detected between planned nets.
    pub conflicts: u64,
    /// Single-net re-routes run to resolve those conflicts.
    pub retries: u64,
    /// Commit passes restarted with a failed net promoted to the front
    /// of the commit order (see [`MAX_RESTARTS`]).
    pub restarts: u64,
}

/// A completed grid route across one channel region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRoute {
    wires: Vec<GridWire>,
    height: i64,
    stats: GridStats,
    plan_expansions: Vec<u64>,
}

impl GridRoute {
    /// The routed nets, one per net, in problem order.
    pub fn wires(&self) -> &[GridWire] {
        &self.wires
    }

    /// Channel height in lambda (distance between the two edges).
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Solver counters (expansions, vias, conflicts, retries).
    pub fn stats(&self) -> GridStats {
        self.stats
    }

    /// Per-net A* expansion counts from the concurrent plan phase
    /// (before any conflict re-route), in net order. Identical at any
    /// worker-thread count, so benchmarks use them as a deterministic
    /// work model: total work over the heaviest worker chunk is the
    /// parallelism the plan phase exposes, independent of how many
    /// cores the measuring host happens to have.
    pub fn plan_expansions(&self) -> &[u64] {
        &self.plan_expansions
    }

    /// Builds the Sticks route cell for this route: wires per segment,
    /// a contact per via, pins on both channel edges (primed on name
    /// collision, like the river cell generator).
    pub fn to_sticks_cell(&self, name: impl Into<String>) -> SticksCell {
        let mut xmin = i64::MAX;
        let mut xmax = i64::MIN;
        let mut wmax: i64 = 0;
        for w in &self.wires {
            for (_, sw, path) in &w.segments {
                wmax = wmax.max(*sw);
                for &p in path.points() {
                    xmin = xmin.min(p.x);
                    xmax = xmax.max(p.x);
                }
            }
            for v in &w.vias {
                xmin = xmin.min(v.position.x);
                xmax = xmax.max(v.position.x);
            }
        }
        let pad = (wmax + 1) / 2 + 2;
        let bbox = Rect::new(xmin - pad, 0, xmax + pad, self.height);
        let mut cell = SticksCell::new(name, bbox);

        let mut used = std::collections::HashSet::new();
        for w in &self.wires {
            if let Some((layer, sw, path)) = w.segments.first() {
                cell.push_pin(Pin {
                    name: unique_pin_name(&w.name, &mut used),
                    side: riot_geom::Side::Bottom,
                    layer: *layer,
                    position: path.start(),
                    width: *sw,
                });
            }
            if let Some((layer, sw, path)) = w.segments.last() {
                cell.push_pin(Pin {
                    name: unique_pin_name(&w.name, &mut used),
                    side: riot_geom::Side::Top,
                    layer: *layer,
                    position: path.end(),
                    width: *sw,
                });
            }
            for (layer, sw, path) in &w.segments {
                cell.push_wire(SymWire {
                    layer: *layer,
                    width: *sw,
                    path: path.clone(),
                });
            }
            for v in &w.vias {
                cell.push_contact(Contact {
                    kind: v.kind,
                    position: v.position,
                });
            }
        }
        cell
    }
}

/// Checks a finished grid route for spacing violations: every pair of
/// rects from *different* nets, and every net rect against every
/// obstacle, must keep the layer's design-rule spacing (a net's own
/// geometry is contiguous and exempt, exactly as DRC merges connected
/// components). Obstacles are lambda-frame rects; the check runs in
/// the exact half-lambda frame.
///
/// # Errors
///
/// A human-readable description of the first violation (coordinates in
/// half-lambda).
pub fn verify_clearance(route: &GridRoute, obstacles: &[(Layer, Rect)]) -> Result<(), String> {
    let nets: Vec<Vec<(Layer, Rect)>> = route.wires.iter().map(|w| w.rects()).collect();
    let obstacles: Vec<(Layer, Rect)> = obstacles.iter().map(|&(l, r)| (l, phys(r))).collect();
    for i in 0..nets.len() {
        for j in i + 1..nets.len() {
            if let Some((layer, ra, rb)) = rect_sets_conflict(&nets[i], &nets[j]) {
                return Err(format!(
                    "nets {} and {} violate {layer} spacing (half-lambda): {ra} vs {rb}",
                    route.wires[i].name, route.wires[j].name
                ));
            }
        }
        if let Some((layer, ra, rb)) = rect_sets_conflict(&nets[i], &obstacles) {
            return Err(format!(
                "net {} violates {layer} spacing against an obstacle (half-lambda): {ra} vs {rb}",
                route.wires[i].name
            ));
        }
    }
    Ok(())
}

/// First same-layer spacing conflict between two **half-lambda** rect
/// sets, if any.
fn rect_sets_conflict(a: &[(Layer, Rect)], b: &[(Layer, Rect)]) -> Option<(Layer, Rect, Rect)> {
    for &(la, ra) in a {
        for &(lb, rb) in b {
            if la != lb {
                continue;
            }
            let s2 = 2 * spacing_lambda(la);
            let dx = (rb.x0 - ra.x1).max(ra.x0 - rb.x1).max(0);
            let dy = (rb.y0 - ra.y1).max(ra.y0 - rb.y1).max(0);
            if dx < s2 && dy < s2 {
                return Some((la, ra, rb));
            }
        }
    }
    None
}

/// One net's search inputs.
struct Spec {
    net: usize,
    name: String,
    width: i64,
    blayer: usize,
    tlayer: usize,
    bxi: usize,
    txi: usize,
}

/// A terminal keep-out: the vertical escape column reserved for one
/// net at its terminal. Other nets' searches must keep design-rule
/// spacing from it, so no commit can ever seal a later net's terminal
/// against the channel edge; the owning net is exempt (the stub *is*
/// its access path). `x`/`y0`/`y1` are lambda-frame; `w` is the full
/// effective wire width (the half-lambda half-extent).
struct Stub {
    x: i64,
    w: i64,
    layer: usize,
    owner: usize,
    y0: i64,
    y1: i64,
}

/// Per-(layer, half-width) blockage: nodes plus horizontal/vertical
/// edges between adjacent grid lines (edges are checked over their full
/// span, so coarse pitches stay safe).
struct Mask {
    node: Vec<bool>,
    hedge: Vec<bool>,
    vedge: Vec<bool>,
}

/// The rasterized channel: non-uniform axes and per-(layer, width)
/// blockage masks. Via pads share the `(layer, 2)` masks — a 4λ pad's
/// half-extent is exactly a half-width of 2 — so those keys always
/// exist.
struct Grid {
    xs: Vec<i64>,
    ys: Vec<i64>,
    nx: usize,
    ny: usize,
    height: i64,
    /// Keyed by `(layer index, half-width)`; few entries, linear scan.
    masks: Vec<((usize, i64), Mask)>,
    /// Terminal keep-outs, sorted by `x`.
    stubs: Vec<Stub>,
    /// Max x-distance (half-lambda) at which a stub can still matter.
    stub_reach: i64,
}

impl Grid {
    fn mask(&self, layer: usize, w2: i64) -> &Mask {
        self.masks
            .iter()
            .find(|((l, w), _)| *l == layer && *w == w2)
            .map(|(_, m)| m)
            .expect("mask prebuilt for every (layer, width) a net can use")
    }

    /// Marks one committed net rectangle (half-lambda frame) into every
    /// mask of its layer, so conflict re-routes see earlier commits
    /// without rebuilding the grid. Masks are pure ORs, so the marking
    /// order is irrelevant.
    fn commit_rect(&mut self, layer: Layer, rect: Rect) {
        let li = layer_idx(layer);
        let s2 = 2 * spacing_lambda(layer);
        for ((l, w), mask) in &mut self.masks {
            if *l == li {
                mark(mask, &self.xs, &self.ys, rect, *w, s2);
            }
        }
    }

    /// Whether painting `rect` (half-lambda frame) on `layer` would
    /// violate spacing against another net's terminal keep-out.
    fn stub_blocked(&self, owner: usize, layer: usize, rect: Rect) -> bool {
        let lo = self
            .stubs
            .partition_point(|st| 2 * st.x < rect.x0 - self.stub_reach);
        let s2 = 2 * spacing_lambda(layer_of(layer));
        for st in &self.stubs[lo..] {
            if 2 * st.x > rect.x1 + self.stub_reach {
                break;
            }
            if st.owner == owner || st.layer != layer {
                continue;
            }
            let sr = Rect::new(
                2 * st.x - st.w,
                2 * st.y0 - st.w,
                2 * st.x + st.w,
                2 * st.y1 + st.w,
            );
            let dx = (sr.x0 - rect.x1).max(rect.x0 - sr.x1).max(0);
            let dy = (sr.y0 - rect.y1).max(rect.y0 - sr.y1).max(0);
            if dx < s2 && dy < s2 {
                return true;
            }
        }
        false
    }
}

fn layer_of(idx: usize) -> Layer {
    Layer::ROUTABLE[idx]
}

fn layer_idx(layer: Layer) -> usize {
    Layer::ROUTABLE
        .iter()
        .position(|&l| l == layer)
        .unwrap_or(0)
}

/// Builds the sorted, deduped coordinate axis: every multiple of
/// `pitch` across `[lo, hi]` plus each required coordinate.
fn axis(lo: i64, hi: i64, pitch: i64, required: impl IntoIterator<Item = i64>) -> Vec<i64> {
    let mut xs: Vec<i64> = Vec::new();
    let mut x = lo;
    while x < hi {
        xs.push(x);
        x += pitch;
    }
    xs.push(hi);
    xs.extend(required);
    xs.sort_unstable();
    xs.dedup();
    xs
}

/// Marks one obstacle rect (half-lambda frame) into a mask for wires
/// of full width `w`. The blocked band on each axis is the open
/// interval `(r.lo - s2 - w, r.hi + s2 + w)` in half-lambda: a wire
/// center (lambda coordinate `x`, physical edges at `2x ± w`) inside
/// it has an axis gap `< s2` to the obstacle, the DRC spacing
/// predicate.
fn mark(mask: &mut Mask, xs: &[i64], ys: &[i64], r: Rect, w: i64, s2: i64) {
    let nx = xs.len();
    let (xlo, xhi) = (r.x0 - s2 - w, r.x1 + s2 + w);
    let (ylo, yhi) = (r.y0 - s2 - w, r.y1 + s2 + w);
    let ia = xs.partition_point(|&x| 2 * x <= xlo);
    let ib = xs.partition_point(|&x| 2 * x < xhi);
    let ja = ys.partition_point(|&y| 2 * y <= ylo);
    let jb = ys.partition_point(|&y| 2 * y < yhi);
    for j in ja..jb {
        for i in ia..ib {
            mask.node[j * nx + i] = true;
        }
        // Horizontal edges whose covered span [2*xs[i]-w, 2*xs[i+1]+w]
        // overlaps the obstacle's inflated x-range.
        let ea = ia.saturating_sub(1);
        let eb = ib.min(nx - 1);
        for i in ea..eb {
            mask.hedge[j * (nx - 1) + i] = true;
        }
    }
    // Vertical edges: the y-span test loosens by one row on each side.
    let ja_e = ja.saturating_sub(1);
    let jb_e = jb.min(ys.len() - 1);
    for j in ja_e..jb_e {
        for i in ia..ib {
            mask.vedge[j * nx + i] = true;
        }
    }
}

/// Rasterizes obstacles into a fresh mask for wires of full width `w`
/// by querying the layer's spatial index (lambda frame) over the
/// channel window.
fn rasterize(index: &SpatialIndex, xs: &[i64], ys: &[i64], w: i64, s2: i64) -> Mask {
    let (nx, ny) = (xs.len(), ys.len());
    let mut mask = Mask {
        node: vec![false; nx * ny],
        hedge: vec![false; (nx - 1) * ny],
        vedge: vec![false; nx * (ny - 1)],
    };
    if index.is_empty() {
        return mask;
    }
    let window = Rect::new(xs[0], ys[0], xs[nx - 1], ys[ny - 1]).inflated((w + s2 + 1) / 2);
    for id in index.query(window) {
        mark(&mut mask, xs, ys, phys(index.rect(id)), w, s2);
    }
    mask
}

fn build_grid(
    problem: &RouteProblem,
    obstacles: &[(Layer, Rect)],
    height: i64,
) -> Result<Grid, RouteError> {
    let pitch = problem.options.grid_pitch;
    let mut xlo = i64::MAX;
    let mut xhi = i64::MIN;
    let mut wmax: i64 = 2;
    let mut required = Vec::new();
    for t in problem.bottom.iter().chain(&problem.top) {
        xlo = xlo.min(t.offset);
        xhi = xhi.max(t.offset);
        wmax = wmax.max(t.width);
        required.push(t.offset);
    }
    let slack = X_SLACK + wmax;
    let xs = axis(xlo - slack, xhi + slack, pitch, required);
    let ys = axis(0, height.max(1), pitch, [0, height.max(1)]);
    let (nx, ny) = (xs.len(), ys.len());

    // Per-layer obstacle indexes (the rasterizer queries these).
    let mut per_layer: Vec<Vec<Rect>> = vec![Vec::new(); Layer::ROUTABLE.len()];
    for &(layer, rect) in obstacles {
        if let Some(i) = Layer::ROUTABLE.iter().position(|&l| l == layer) {
            per_layer[i].push(rect);
        }
    }
    let indexes: Vec<SpatialIndex> = per_layer.iter().map(|r| SpatialIndex::build(r)).collect();

    // Every (layer, width) combination any net can occupy, plus the
    // `(layer, 4)` keys the via-pad checks read (a 4λ pad's half-extent
    // is 2λ = 4 half-lambdas, the same clearance profile as a width-4
    // wire). Rasterization is the serial prologue to the parallel plan
    // phase, so the handful of independent masks build on the worker
    // pool too.
    let mut keys: Vec<(usize, i64)> = Vec::new();
    for li in 0..Layer::ROUTABLE.len() {
        keys.push((li, 4));
    }
    for (b, t) in problem.bottom.iter().zip(&problem.top) {
        let w = b.width.max(t.width);
        for li in 0..Layer::ROUTABLE.len() {
            let key = (li, eff_width(w, layer_of(li)));
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    let built = par::map_heavy(&keys, |&(li, w)| {
        let s2 = 2 * spacing_lambda(layer_of(li));
        rasterize(&indexes[li], &xs, &ys, w, s2)
    });
    let masks = keys.into_iter().zip(built).collect();

    // Terminal keep-outs: reserve a vertical escape column per terminal
    // so no net can seal another's terminal against a channel edge. The
    // stub is long enough that a via escaping over a run hugging its
    // tip still fits (pad + spacing + the widest crossing wire).
    let h = height.max(1);
    let wmax_eff = wmax.max(3);
    let stub_len = (wmax_eff + 7).min(h);
    let mut stubs: Vec<Stub> = Vec::new();
    for (i, (b, t)) in problem.bottom.iter().zip(&problem.top).enumerate() {
        let w = b.width.max(t.width);
        stubs.push(Stub {
            x: b.offset,
            w: eff_width(w, b.layer),
            layer: layer_idx(b.layer),
            owner: i,
            y0: 0,
            y1: stub_len,
        });
        stubs.push(Stub {
            x: t.offset,
            w: eff_width(w, t.layer),
            layer: layer_idx(t.layer),
            owner: i,
            y0: (h - stub_len).max(0),
            y1: h,
        });
    }
    stubs.sort_unstable_by_key(|st| st.x);

    Ok(Grid {
        xs,
        ys,
        nx,
        ny,
        height: h,
        masks,
        stubs,
        // A stub's clearance field reaches `w + s2` half-lambdas from
        // its center; bound with the widest wire and widest rule.
        stub_reach: wmax_eff + 6,
    })
}

/// Directions a state can be entered with (for the bend penalty).
const DIR_NONE: u8 = 0;
const DIR_X: u8 = 1;
const DIR_Y: u8 = 2;
const DIR_VIA: u8 = 3;

/// Routes one net: a windowed A* around the net's own terminal span
/// first (small state, cache-resident under parallel planning), then a
/// deterministic full-channel retry if the window has no path.
fn route_net(grid: &Grid, spec: &Spec) -> Result<(Vec<(usize, Point)>, u64), RouteError> {
    let (lo_x, hi_x) = {
        let (a, b) = (grid.xs[spec.bxi], grid.xs[spec.txi]);
        (a.min(b) - X_WINDOW, a.max(b) + X_WINDOW)
    };
    let clo = grid.xs.partition_point(|&x| x < lo_x);
    let chi = grid.xs.partition_point(|&x| x <= hi_x).saturating_sub(1);
    match astar(grid, spec, clo, chi) {
        Ok(r) => Ok(r),
        Err(_) if clo > 0 || chi < grid.nx - 1 => astar(grid, spec, 0, grid.nx - 1),
        Err(e) => Err(e),
    }
}

/// A* maze search for one net over the rasterized grid, restricted to
/// columns `clo..=chi`. Returns the `(layer, point)` node sequence from
/// the bottom terminal to the top terminal plus the number of
/// expansions, or [`RouteError::Unroutable`] when no path exists
/// inside the window.
fn astar(
    grid: &Grid,
    spec: &Spec,
    clo: usize,
    chi: usize,
) -> Result<(Vec<(usize, Point)>, u64), RouteError> {
    let (nx, ny) = (grid.nx, grid.ny);
    let wnx = chi - clo + 1;
    let nodes = wnx * ny;
    let states = Layer::ROUTABLE.len() * nodes;
    let unroutable = RouteError::Unroutable { net: spec.net };

    let wof = |li: usize| eff_width(spec.width, layer_of(li));
    let wmasks: Vec<&Mask> = (0..Layer::ROUTABLE.len())
        .map(|li| grid.mask(li, wof(li)))
        .collect();
    let vmasks: Vec<&Mask> = (0..Layer::ROUTABLE.len())
        .map(|li| grid.mask(li, 4))
        .collect();

    let start = spec.blayer * nodes + (spec.bxi - clo);
    let goal = spec.tlayer * nodes + (ny - 1) * wnx + (spec.txi - clo);
    let goal_x = grid.xs[spec.txi];

    if wmasks[spec.blayer].node[spec.bxi] || wmasks[spec.tlayer].node[(ny - 1) * nx + spec.txi] {
        return Err(unroutable);
    }

    let h = |state: usize| -> u64 {
        let li = state / nodes;
        let n = state % nodes;
        let (xi, yj) = (clo + n % wnx, n / wnx);
        let dist = (grid.xs[xi] - goal_x).unsigned_abs() + (grid.height - grid.ys[yj]) as u64;
        dist * COST_STEP + if li != spec.tlayer { COST_VIA } else { 0 }
    };

    let mut g: Vec<u64> = vec![u64::MAX; states];
    let mut came: Vec<u32> = vec![u32::MAX; states];
    let mut dir: Vec<u8> = vec![DIR_NONE; states];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    g[start] = 0;
    came[start] = start as u32;
    heap.push(Reverse((h(start), start as u32)));

    let mut expansions: u64 = 0;
    while let Some(Reverse((f, state))) = heap.pop() {
        let state = state as usize;
        if f != g[state].saturating_add(h(state)) {
            continue; // stale entry
        }
        if state == goal {
            break;
        }
        expansions += 1;
        if expansions > MAX_EXPANSIONS {
            return Err(unroutable);
        }

        let li = state / nodes;
        let n = state % nodes;
        let (ci, yj) = (n % wnx, n / wnx);
        let xi = clo + ci;
        let gn = yj * nx + xi;
        let mask = wmasks[li];
        let din = dir[state];
        let bend = move |d: u8| -> u64 {
            if din != DIR_NONE && din != DIR_VIA && d != din {
                COST_BEND
            } else {
                0
            }
        };

        let mut relax =
            |next: usize, cost: u64, d: u8, heap: &mut BinaryHeap<Reverse<(u64, u32)>>| {
                let t = g[state] + cost;
                if t < g[next] {
                    g[next] = t;
                    came[next] = state as u32;
                    dir[next] = d;
                    heap.push(Reverse((t + h(next), next as u32)));
                }
            };

        // Axis moves: blocked edges carry the full span between
        // columns, and the swept wire rect (half-lambda frame) must
        // clear other nets' terminal keep-outs.
        let (x, y) = (grid.xs[xi], grid.ys[yj]);
        let w = wof(li);
        if ci + 1 < wnx && !mask.hedge[yj * (nx - 1) + xi] {
            let swept = Rect::new(2 * x - w, 2 * y - w, 2 * grid.xs[xi + 1] + w, 2 * y + w);
            if !grid.stub_blocked(spec.net, li, swept) {
                let cost = (grid.xs[xi + 1] - x) as u64 * COST_STEP + bend(DIR_X);
                relax(state + 1, cost, DIR_X, &mut heap);
            }
        }
        if ci > 0 && !mask.hedge[yj * (nx - 1) + xi - 1] {
            let swept = Rect::new(2 * grid.xs[xi - 1] - w, 2 * y - w, 2 * x + w, 2 * y + w);
            if !grid.stub_blocked(spec.net, li, swept) {
                let cost = (x - grid.xs[xi - 1]) as u64 * COST_STEP + bend(DIR_X);
                relax(state - 1, cost, DIR_X, &mut heap);
            }
        }
        if yj + 1 < ny && !mask.vedge[yj * nx + xi] {
            let swept = Rect::new(2 * x - w, 2 * y - w, 2 * x + w, 2 * grid.ys[yj + 1] + w);
            if !grid.stub_blocked(spec.net, li, swept) {
                let cost = (grid.ys[yj + 1] - y) as u64 * COST_STEP + bend(DIR_Y);
                relax(state + wnx, cost, DIR_Y, &mut heap);
            }
        }
        if yj > 0 && !mask.vedge[(yj - 1) * nx + xi] {
            let swept = Rect::new(2 * x - w, 2 * grid.ys[yj - 1] - w, 2 * x + w, 2 * y + w);
            if !grid.stub_blocked(spec.net, li, swept) {
                let cost = (y - grid.ys[yj - 1]) as u64 * COST_STEP + bend(DIR_Y);
                relax(state - wnx, cost, DIR_Y, &mut heap);
            }
        }

        // Layer change: the 4λ landing pads must clear obstacles and
        // keep-outs on both layers and fit inside the channel.
        let pad = Rect::new(2 * x - 4, 2 * y - 4, 2 * x + 4, 2 * y + 4);
        if y >= 2
            && y <= grid.height - 2
            && !vmasks[li].node[gn]
            && !grid.stub_blocked(spec.net, li, pad)
        {
            for l2 in 0..Layer::ROUTABLE.len() {
                if l2 != li
                    && !vmasks[l2].node[gn]
                    && !wmasks[l2].node[gn]
                    && !grid.stub_blocked(spec.net, l2, pad)
                {
                    relax(l2 * nodes + n, COST_VIA, DIR_VIA, &mut heap);
                }
            }
        }
    }

    if g[goal] == u64::MAX {
        return Err(unroutable);
    }
    let mut path = Vec::new();
    let mut state = goal;
    loop {
        let li = state / nodes;
        let n = state % nodes;
        path.push((li, Point::new(grid.xs[clo + n % wnx], grid.ys[n / wnx])));
        if state == start {
            break;
        }
        state = came[state] as usize;
    }
    path.reverse();
    Ok((path, expansions))
}

/// Converts a node sequence to segments + vias, compressing collinear
/// runs.
fn wire_from_path(spec: &Spec, path: &[(usize, Point)]) -> Result<GridWire, RouteError> {
    let internal = |context| RouteError::Internal { context };
    let mut segments: Vec<(Layer, i64, Path)> = Vec::new();
    let mut vias: Vec<GridVia> = Vec::new();
    let mut run: Vec<Point> = Vec::new();
    let mut run_layer = path.first().ok_or(internal("empty grid path"))?.0;

    let flush = |run: &mut Vec<Point>,
                 layer: usize,
                 segments: &mut Vec<(Layer, i64, Path)>|
     -> Result<(), RouteError> {
        let mut pts: Vec<Point> = Vec::new();
        for &p in run.iter() {
            // Drop interior collinear points.
            while pts.len() >= 2 {
                let a = pts[pts.len() - 2];
                let b = pts[pts.len() - 1];
                if (a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y) {
                    pts.pop();
                } else {
                    break;
                }
            }
            pts.push(p);
        }
        let layer = layer_of(layer);
        let path = Path::from_points(pts).map_err(|_| internal("degenerate grid segment"))?;
        segments.push((layer, eff_width(spec.width, layer), path));
        run.clear();
        Ok(())
    };

    for &(li, p) in path {
        if li != run_layer {
            let junction = *run.last().ok_or(internal("via before any wire"))?;
            if junction != p {
                return Err(internal("via moved while changing layers"));
            }
            flush(&mut run, run_layer, &mut segments)?;
            vias.push(GridVia {
                position: p,
                kind: via_kind(layer_of(run_layer), layer_of(li)),
            });
            run.push(p);
            run_layer = li;
        } else {
            run.push(p);
        }
    }
    flush(&mut run, run_layer, &mut segments)?;

    Ok(GridWire {
        name: spec.name.clone(),
        net: spec.net,
        width: spec.width,
        segments,
        vias,
    })
}

/// Routes the problem against the obstacle set, producing Manhattan
/// wires with vias. Obstacles are `(layer, rect)` pairs in channel
/// coordinates; non-routable layers are ignored.
///
/// # Errors
///
/// Shares the river router's input validation
/// ([`RouteError::CountMismatch`], [`RouteError::Empty`],
/// [`RouteError::BadWidth`], [`RouteError::TerminalsTooClose`]) but
/// accepts layer-changing nets; adds [`RouteError::Unroutable`] when
/// the maze has no path and [`RouteError::BadPitch`] for a bad grid
/// pitch. With [`crate::RouterOptions::exact_height`] set, a route that
/// needs more room fails rather than growing the channel.
pub fn grid_route(
    problem: &RouteProblem,
    obstacles: &[(Layer, Rect)],
) -> Result<GridRoute, RouteError> {
    let mut sp = riot_trace::span!("route.grid", nets = problem.bottom.len() as u64);
    let RouteProblem {
        bottom,
        top,
        options,
    } = problem;
    if bottom.len() != top.len() {
        return Err(RouteError::CountMismatch {
            bottom: bottom.len(),
            top: top.len(),
        });
    }
    if bottom.is_empty() {
        return Err(RouteError::Empty);
    }
    if options.grid_pitch <= 0 {
        return Err(RouteError::BadPitch {
            pitch: options.grid_pitch,
        });
    }
    let mut wmax: i64 = 2;
    for (i, (b, t)) in bottom.iter().zip(top).enumerate() {
        if b.width <= 0 || t.width <= 0 {
            return Err(RouteError::BadWidth {
                net: i,
                width: b.width.min(t.width),
            });
        }
        wmax = wmax.max(b.width.max(t.width));
    }
    let mut layers: Vec<Layer> = bottom.iter().chain(top.iter()).map(|t| t.layer).collect();
    layers.sort_unstable();
    layers.dedup();
    for &layer in &layers {
        let spacing = spacing_lambda(layer);
        let edge = |ts: &[crate::Terminal]| {
            ts.iter()
                .filter(|t| t.layer == layer)
                .map(|t| (t.offset, t.width))
                .collect::<Vec<_>>()
        };
        check_edge_spacing(layer, spacing, edge(bottom))?;
        check_edge_spacing(layer, spacing, edge(top))?;
    }

    let heights: Vec<i64> = match options.exact_height {
        Some(h) => vec![h.max(1)],
        None => {
            let h0 = (2 * options.margin + 4 * (wmax + 3)).max(16);
            vec![h0, h0 * 2, h0 * 4]
        }
    };
    let mut last_err = RouteError::Empty;
    for &height in &heights {
        match solve_at(problem, obstacles, height) {
            Ok(route) => {
                let stats = route.stats;
                sp.field("expansions", stats.expansions);
                sp.field("vias", stats.vias);
                sp.field("conflicts", stats.conflicts);
                sp.field("retries", stats.retries);
                sp.field("restarts", stats.restarts);
                if riot_trace::enabled() {
                    let reg = riot_trace::registry();
                    reg.counter("route.grid.nets").add(route.wires.len() as u64);
                    reg.counter("route.grid.expansions").add(stats.expansions);
                    reg.counter("route.grid.vias").add(stats.vias);
                    reg.counter("route.grid.conflicts").add(stats.conflicts);
                    reg.counter("route.grid.retries").add(stats.retries);
                    reg.counter("route.grid.restarts").add(stats.restarts);
                    reg.histogram("route.grid.net_expansions")
                        .record(stats.expansions / route.wires.len().max(1) as u64);
                }
                return Ok(route);
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// One plan/commit pass at a fixed channel height.
fn solve_at(
    problem: &RouteProblem,
    obstacles: &[(Layer, Rect)],
    height: i64,
) -> Result<GridRoute, RouteError> {
    let grid = build_grid(problem, obstacles, height)?;
    let specs: Vec<Spec> = problem
        .bottom
        .iter()
        .zip(&problem.top)
        .enumerate()
        .map(|(i, (b, t))| Spec {
            net: i,
            name: b.name.clone(),
            width: b.width.max(t.width),
            blayer: layer_idx(b.layer),
            tlayer: layer_idx(t.layer),
            bxi: grid
                .xs
                .binary_search(&b.offset)
                .expect("terminal columns are grid lines"),
            txi: grid
                .xs
                .binary_search(&t.offset)
                .expect("terminal columns are grid lines"),
        })
        .collect();

    // Plan: every net solves concurrently against the frozen
    // obstacle-only grid. Results are positional, so the outcome is
    // identical at any thread count.
    let plans = par::map_heavy(&specs, |spec| route_net(&grid, spec));
    let mut paths: Vec<Vec<(usize, Point)>> = Vec::with_capacity(specs.len());
    let mut plan_expansions: Vec<u64> = Vec::with_capacity(specs.len());
    for plan in plans {
        let (path, expansions) = plan?;
        plan_expansions.push(expansions);
        paths.push(path);
    }

    // Commit: apply plans in order; a plan that violates spacing
    // against an earlier commit re-routes alone against the live grid.
    // When even that re-route fails — independent plans can pile up
    // and seal a late net's terminal region — the whole commit phase
    // restarts with the failed net promoted to the front of the order,
    // so it routes unconstrained and the earlier nets' retries route
    // around it instead. Promotion is deterministic and bounded by
    // [`MAX_RESTARTS`].
    let mut stats = GridStats {
        expansions: plan_expansions.iter().sum(),
        ..GridStats::default()
    };
    let mut promoted: Vec<usize> = Vec::new();
    let mut first_grid = Some(grid);
    loop {
        let grid = match first_grid.take() {
            Some(g) => g,
            None => build_grid(problem, obstacles, height)?,
        };
        let mut order: Vec<usize> = promoted.clone();
        order.extend((0..specs.len()).filter(|i| !promoted.contains(i)));
        match commit_pass(grid, &specs, &paths, &order, &mut stats) {
            Ok(mut wires) => {
                wires.sort_by_key(|w| w.net);
                stats.vias = wires.iter().map(|w| w.vias.len() as u64).sum();
                return Ok(GridRoute {
                    wires,
                    height: height.max(1),
                    stats,
                    plan_expansions,
                });
            }
            Err(RouteError::Unroutable { net }) if stats.restarts < MAX_RESTARTS => {
                stats.restarts += 1;
                promoted.retain(|&i| i != net);
                promoted.insert(0, net);
            }
            Err(e) => return Err(e),
        }
    }
}

/// One serial commit pass over `order`: applies each net's plan,
/// re-routing a net alone when its plan conflicts with earlier
/// commits. Every committed rect is marked into the (exclusively
/// owned) grid as it lands, so a re-route sees obstacles plus all
/// earlier geometry without rebuilding anything. Returns the wires in
/// commit order, or the error of the first net that cannot be placed.
fn commit_pass(
    mut grid: Grid,
    specs: &[Spec],
    paths: &[Vec<(usize, Point)>],
    order: &[usize],
    stats: &mut GridStats,
) -> Result<Vec<GridWire>, RouteError> {
    let mut committed: Vec<(Layer, Rect)> = Vec::new();
    let mut wires: Vec<GridWire> = Vec::with_capacity(order.len());
    for &i in order {
        let spec = &specs[i];
        let mut wire = wire_from_path(spec, &paths[i])?;
        if rect_sets_conflict(&wire.rects(), &committed).is_some() {
            stats.conflicts += 1;
            stats.retries += 1;
            let (path, expansions) = route_net(&grid, spec)?;
            stats.expansions += expansions;
            wire = wire_from_path(spec, &path)?;
        }
        let rects = wire.rects();
        for &(layer, rect) in &rects {
            grid.commit_rect(layer, rect);
        }
        committed.extend(rects);
        wires.push(wire);
    }
    Ok(wires)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terminal::{RouteProblem, RouterOptions, Terminal};

    fn t(name: &str, offset: i64, layer: Layer) -> Terminal {
        Terminal::new(
            name,
            offset,
            layer,
            if layer == Layer::Metal { 3 } else { 2 },
        )
    }

    #[test]
    fn straight_net_routes_clean() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![t("a", 0, Layer::Metal)]);
        let r = grid_route(&p, &[]).unwrap();
        assert_eq!(r.wires().len(), 1);
        assert_eq!(r.wires()[0].vias.len(), 0);
        assert_eq!(r.wires()[0].bottom_end(), Point::new(0, 0));
        assert_eq!(r.wires()[0].top_end(), Point::new(0, r.height()));
        verify_clearance(&r, &[]).unwrap();
    }

    #[test]
    fn layer_mismatch_gets_a_via() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Poly)], vec![t("a", 0, Layer::Metal)]);
        let r = grid_route(&p, &[]).unwrap();
        let w = &r.wires()[0];
        assert_eq!(w.vias.len(), 1);
        assert_eq!(w.vias[0].kind, ContactKind::MetalPoly);
        assert_eq!(w.segments.first().unwrap().0, Layer::Poly);
        assert_eq!(w.segments.last().unwrap().0, Layer::Metal);
        // The metal segment widened to the 3λ metal floor.
        assert_eq!(w.segments.last().unwrap().1, 3);
        verify_clearance(&r, &[]).unwrap();
    }

    #[test]
    fn obstacle_forces_a_detour() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![t("a", 0, Layer::Metal)]);
        let clear = grid_route(&p, &[]).unwrap();
        // A metal block sitting square on the straight path.
        let obstacles = vec![(Layer::Metal, Rect::new(-4, 6, 4, 10))];
        let r = grid_route(&p, &obstacles).unwrap();
        verify_clearance(&r, &obstacles).unwrap();
        let len: i64 = r.wires()[0]
            .segments
            .iter()
            .map(|(_, _, p)| p.length())
            .sum();
        let clear_len: i64 = clear.wires()[0]
            .segments
            .iter()
            .map(|(_, _, p)| p.length())
            .sum();
        assert!(
            len > clear_len,
            "detour must be longer: {len} vs {clear_len}"
        );
    }

    #[test]
    fn walled_channel_is_unroutable() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![t("a", 0, Layer::Metal)]);
        // Full-width walls on every routable layer, low enough to block
        // the channel at every escalated height.
        let obstacles: Vec<(Layer, Rect)> = Layer::ROUTABLE
            .iter()
            .map(|&l| (l, Rect::new(-100, 6, 100, 10)))
            .collect();
        let err = grid_route(&p, &obstacles).unwrap_err();
        assert_eq!(err, RouteError::Unroutable { net: 0 });
    }

    #[test]
    fn crossing_nets_resolve_by_layer_hop() {
        // The exact case the river router rejects as NotRiverRoutable.
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 12, Layer::Metal)],
            vec![t("a", 12, Layer::Metal), t("b", 0, Layer::Metal)],
        );
        assert!(matches!(
            crate::river_route(&p),
            Err(RouteError::NotRiverRoutable { .. })
        ));
        let r = grid_route(&p, &[]).unwrap();
        assert!(r.stats().conflicts >= 1, "crossing must conflict");
        let total_vias: usize = r.wires().iter().map(|w| w.vias.len()).sum();
        assert!(
            total_vias >= 2,
            "one net must hop layers: {total_vias} vias"
        );
        verify_clearance(&r, &[]).unwrap();
    }

    #[test]
    fn exact_height_is_respected() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Poly)], vec![t("a", 6, Layer::Poly)])
            .with_options(RouterOptions {
                exact_height: Some(21),
                ..RouterOptions::new()
            });
        let r = grid_route(&p, &[]).unwrap();
        assert_eq!(r.height(), 21);
        assert_eq!(r.wires()[0].top_end(), Point::new(6, 21));
    }

    #[test]
    fn coarse_pitch_still_reaches_odd_terminals() {
        let p = RouteProblem::new(vec![t("a", 3, Layer::Poly)], vec![t("a", 11, Layer::Poly)])
            .with_options(RouterOptions {
                grid_pitch: 4,
                ..RouterOptions::new()
            });
        let r = grid_route(&p, &[]).unwrap();
        assert_eq!(r.wires()[0].bottom_end().x, 3);
        assert_eq!(r.wires()[0].top_end().x, 11);
        verify_clearance(&r, &[]).unwrap();
    }

    #[test]
    fn bad_pitch_rejected() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Poly)], vec![t("a", 0, Layer::Poly)])
            .with_options(RouterOptions {
                grid_pitch: 0,
                ..RouterOptions::new()
            });
        assert_eq!(
            grid_route(&p, &[]).unwrap_err(),
            RouteError::BadPitch { pitch: 0 }
        );
    }

    #[test]
    fn validation_matches_river_for_bad_inputs() {
        let empty = RouteProblem::new(vec![], vec![]);
        assert_eq!(grid_route(&empty, &[]).unwrap_err(), RouteError::Empty);
        let mismatch = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![]);
        assert!(matches!(
            grid_route(&mismatch, &[]),
            Err(RouteError::CountMismatch { bottom: 1, top: 0 })
        ));
        let close = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 3, Layer::Metal)],
            vec![t("a", 0, Layer::Metal), t("b", 20, Layer::Metal)],
        );
        assert!(matches!(
            grid_route(&close, &[]),
            Err(RouteError::TerminalsTooClose { .. })
        ));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let bottom: Vec<Terminal> = (0..6)
            .map(|i| t(&format!("n{i}"), i * 8, Layer::Poly))
            .collect();
        let top: Vec<Terminal> = (0..6)
            .map(|i| t(&format!("n{i}"), (5 - i) * 8, Layer::Poly))
            .collect();
        let p = RouteProblem::new(bottom, top);
        let obstacles = vec![(Layer::Poly, Rect::new(10, 20, 18, 26))];
        par::set_threads(1);
        let serial = grid_route(&p, &obstacles).unwrap();
        par::set_threads(4);
        let parallel = grid_route(&p, &obstacles).unwrap();
        par::set_threads(0);
        assert_eq!(serial, parallel);
        verify_clearance(&serial, &obstacles).unwrap();
    }

    #[test]
    fn route_cell_is_valid_sticks_with_contacts() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Poly), t("b", 10, Layer::Diffusion)],
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
        );
        let r = grid_route(&p, &[]).unwrap();
        let cell = r.to_sticks_cell("g0");
        cell.validate().unwrap();
        assert!(cell.contacts().len() >= 2);
        let cif = riot_sticks::mask::to_cif_cell(&cell, 1);
        assert!(cif.shapes.len() >= 4);
        // Pins keep net names, primes on collision.
        assert!(cell.pin("a").is_some());
        assert!(cell.pin("a'").is_some());
    }
}
