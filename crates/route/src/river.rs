//! The river routing algorithm.

use crate::error::RouteError;
use crate::terminal::RouteProblem;
use riot_geom::{Layer, Path, Point};

/// Same-layer wire spacing on the lambda grid.
pub(crate) fn spacing_lambda(layer: Layer) -> i64 {
    match layer {
        Layer::Metal | Layer::Diffusion => 3,
        _ => 2,
    }
}

/// One routed net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedWire {
    /// Net name (from the bottom terminal).
    pub name: String,
    /// Index of the net in the problem.
    pub net: usize,
    /// Layer the whole wire runs on.
    pub layer: Layer,
    /// Wire width (max of the two terminal widths).
    pub width: i64,
    /// Centerline from the bottom edge to the top edge.
    pub path: Path,
    /// Jog track, if the net needed one (`None` = straight through).
    pub track: Option<usize>,
}

/// A completed river route across one channel region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiverRoute {
    wires: Vec<RoutedWire>,
    height: i64,
    tracks: usize,
    channels: usize,
}

impl RiverRoute {
    /// The routed wires, one per net, in problem order.
    pub fn wires(&self) -> &[RoutedWire] {
        &self.wires
    }

    /// Channel height in lambda (distance between the two edges).
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Jog tracks used on the busiest layer.
    pub fn tracks(&self) -> usize {
        self.tracks
    }

    /// Channels needed: 1 when every jog fit the first channel, more
    /// when blocked wires forced the route to continue in added
    /// channels (the paper's overflow behaviour).
    pub fn channels(&self) -> usize {
        self.channels
    }
}

struct Net {
    index: usize,
    xb: i64,
    xt: i64,
    width: i64,
}

/// Routes the problem, producing jogged Manhattan wires.
///
/// # Errors
///
/// See [`RouteError`] — mismatched counts/layers, crossing same-layer
/// nets (not a river route), terminals closer than design rules, bad
/// widths, or an empty problem.
pub fn river_route(problem: &RouteProblem) -> Result<RiverRoute, RouteError> {
    let mut sp = riot_trace::span!("route.river", nets = problem.bottom.len() as u64);
    let RouteProblem {
        bottom,
        top,
        options,
    } = problem;
    if bottom.len() != top.len() {
        return Err(RouteError::CountMismatch {
            bottom: bottom.len(),
            top: top.len(),
        });
    }
    if bottom.is_empty() {
        return Err(RouteError::Empty);
    }
    for (i, (b, t)) in bottom.iter().zip(top).enumerate() {
        if b.layer != t.layer {
            return Err(RouteError::LayerMismatch {
                net: i,
                bottom: b.layer,
                top: t.layer,
            });
        }
        if b.width <= 0 || t.width <= 0 {
            return Err(RouteError::BadWidth {
                net: i,
                width: b.width.min(t.width),
            });
        }
    }

    // Group nets by layer.
    let mut layers: Vec<Layer> = bottom.iter().map(|t| t.layer).collect();
    layers.sort_unstable();
    layers.dedup();

    let cap = options.tracks_per_channel.max(1);
    let mut assignments: Vec<(usize, Option<usize>)> = Vec::new(); // (net, track)
    let mut height = 2 * options.margin;
    let mut per_layer_geometry: Vec<(Layer, i64, i64)> = Vec::new(); // (layer, pitch, maxw)
    let mut tracks_max = 0usize;
    let mut channels_max = 1usize;

    for &layer in &layers {
        let mut nets: Vec<Net> = bottom
            .iter()
            .zip(top)
            .enumerate()
            .filter(|(_, (b, _))| b.layer == layer)
            .map(|(i, (b, t))| Net {
                index: i,
                xb: b.offset,
                xt: t.offset,
                width: b.width.max(t.width),
            })
            .collect();
        let spacing = spacing_lambda(layer);

        check_edge_spacing(layer, spacing, nets.iter().map(|n| (n.xb, n.width)))?;
        check_edge_spacing(layer, spacing, nets.iter().map(|n| (n.xt, n.width)))?;

        // Order preservation: sorting by bottom offset must sort the top
        // offsets too.
        nets.sort_by_key(|n| n.xb);
        for w in nets.windows(2) {
            if w[0].xt >= w[1].xt {
                return Err(RouteError::NotRiverRoutable {
                    layer,
                    first: w[0].index,
                    second: w[1].index,
                });
            }
        }

        let maxw = nets.iter().map(|n| n.width).max().unwrap_or(2);
        let pitch = maxw + spacing;

        // Split by jog direction and assign overlap depths.
        let rights: Vec<&Net> = nets.iter().filter(|n| n.xt > n.xb).collect();
        let lefts: Vec<&Net> = nets.iter().filter(|n| n.xt < n.xb).collect();
        let right_depths = overlap_depths(&rights, spacing);
        let left_depths = overlap_depths(&lefts, spacing);
        let r_max = right_depths.iter().copied().max().unwrap_or(0);
        let l_max = left_depths.iter().copied().max().unwrap_or(0);

        // Rights: the leftmost overlapping net must jog highest, so its
        // depth maps to the top of the right band. Lefts stack above.
        for (net, d) in rights.iter().zip(&right_depths) {
            assignments.push((net.index, Some(r_max - d + 1)));
        }
        for (net, d) in lefts.iter().zip(&left_depths) {
            assignments.push((net.index, Some(r_max + d)));
        }
        for net in nets.iter().filter(|n| n.xt == n.xb) {
            assignments.push((net.index, None));
        }

        let total_tracks = r_max + l_max;
        tracks_max = tracks_max.max(total_tracks);
        if total_tracks > 0 {
            let channels = total_tracks.div_ceil(cap);
            channels_max = channels_max.max(channels);
            let top_y = track_y(
                total_tracks,
                options.margin,
                pitch,
                maxw,
                cap,
                options.channel_gap,
            );
            height = height.max(top_y + maxw / 2 + options.margin);
        }
        per_layer_geometry.push((layer, pitch, maxw));
    }

    if let Some(exact) = options.exact_height {
        if exact < height {
            return Err(RouteError::ChannelTooTight {
                needed: height,
                available: exact,
            });
        }
        height = exact;
    }

    // Emit wires in problem order.
    let mut wires: Vec<Option<RoutedWire>> = vec![None; bottom.len()];
    for (index, track) in assignments {
        let b = &bottom[index];
        let t = &top[index];
        let (_, pitch, maxw) = per_layer_geometry
            .iter()
            .find(|(l, _, _)| *l == b.layer)
            .copied()
            .ok_or(RouteError::Internal {
                context: "layer geometry missing for a routed net",
            })?;
        let width = b.width.max(t.width);
        let path = match track {
            None => Path::from_points([Point::new(b.offset, 0), Point::new(b.offset, height)])
                .map_err(|_| RouteError::Internal {
                    context: "degenerate straight-through wire",
                })?,
            Some(tr) => {
                let y = track_y(tr, options.margin, pitch, maxw, cap, options.channel_gap);
                Path::from_points([
                    Point::new(b.offset, 0),
                    Point::new(b.offset, y),
                    Point::new(t.offset, y),
                    Point::new(t.offset, height),
                ])
                .map_err(|_| RouteError::Internal {
                    context: "non-Manhattan jog path",
                })?
            }
        };
        wires[index] = Some(RoutedWire {
            name: b.name.clone(),
            net: index,
            layer: b.layer,
            width,
            path,
            track,
        });
    }

    let wires = wires
        .into_iter()
        .map(|w| {
            w.ok_or(RouteError::Internal {
                context: "a net was never assigned a wire",
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    sp.field("tracks", tracks_max as u64);
    sp.field("channels", channels_max as u64);
    Ok(RiverRoute {
        wires,
        height,
        tracks: tracks_max,
        channels: channels_max,
    })
}

/// y coordinate of the center of jog track `t` (1-based).
fn track_y(t: usize, margin: i64, pitch: i64, maxw: i64, cap: usize, gap: i64) -> i64 {
    let t0 = (t - 1) as i64;
    let spills = ((t - 1) / cap) as i64;
    margin + maxw / 2 + t0 * pitch + spills * gap
}

/// Overlap-chain depths for same-direction nets, in the given order
/// (sorted by bottom offset). Two nets conflict when their jog spans,
/// inflated by clearance, overlap.
fn overlap_depths(nets: &[&Net], spacing: i64) -> Vec<usize> {
    let mut depths = vec![0usize; nets.len()];
    for i in 0..nets.len() {
        let (lo_i, hi_i) = span(nets[i]);
        let mut d = 1;
        for j in 0..i {
            let (lo_j, hi_j) = span(nets[j]);
            let clearance = nets[i].width / 2 + nets[j].width / 2 + spacing;
            if lo_i < hi_j + clearance && lo_j < hi_i + clearance {
                d = d.max(depths[j] + 1);
            }
        }
        depths[i] = d;
    }
    depths
}

fn span(n: &Net) -> (i64, i64) {
    (n.xb.min(n.xt), n.xb.max(n.xt))
}

pub(crate) fn check_edge_spacing<I: IntoIterator<Item = (i64, i64)>>(
    layer: Layer,
    spacing: i64,
    terminals: I,
) -> Result<(), RouteError> {
    let mut ts: Vec<(i64, i64)> = terminals.into_iter().collect();
    ts.sort_unstable();
    for w in ts.windows(2) {
        let ((a, wa), (b, wb)) = (w[0], w[1]);
        if b - a < wa / 2 + wb / 2 + spacing {
            return Err(RouteError::TerminalsTooClose {
                layer,
                offsets: (a, b),
            });
        }
    }
    Ok(())
}

/// Checks a finished route for same-layer design-rule violations:
/// every pair of distinct same-layer wires must keep `spacing` between
/// wire edges. Returns a description of the first violation.
///
/// # Errors
///
/// A human-readable description of the first violating wire pair.
pub fn verify_clearance(route: &RiverRoute) -> Result<(), String> {
    let wires = route.wires();
    for i in 0..wires.len() {
        for j in i + 1..wires.len() {
            let (a, b) = (&wires[i], &wires[j]);
            if a.layer != b.layer {
                continue;
            }
            let spacing = spacing_lambda(a.layer);
            for (a0, a1) in a.path.segments() {
                let ra = seg_rect(a0, a1, a.width);
                for (b0, b1) in b.path.segments() {
                    let rb = seg_rect(b0, b1, b.width);
                    let dx = (rb.x0 - ra.x1).max(ra.x0 - rb.x1).max(0);
                    let dy = (rb.y0 - ra.y1).max(ra.y0 - rb.y1).max(0);
                    if dx < spacing && dy < spacing {
                        return Err(format!(
                            "wires {} and {} violate {} spacing on {}: dx={dx} dy={dy}",
                            a.name, b.name, spacing, a.layer
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn seg_rect(a: Point, b: Point, width: i64) -> riot_geom::Rect {
    riot_geom::Rect::from_points(a, b).inflated(width / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terminal::{RouterOptions, Terminal};

    fn t(name: &str, offset: i64, layer: Layer) -> Terminal {
        Terminal::new(
            name,
            offset,
            layer,
            if layer == Layer::Metal { 3 } else { 2 },
        )
    }

    #[test]
    fn straight_nets_have_no_tracks() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
        );
        let r = river_route(&p).unwrap();
        assert_eq!(r.tracks(), 0);
        assert_eq!(r.channels(), 1);
        assert!(r.wires().iter().all(|w| w.track.is_none()));
        assert!(r.wires().iter().all(|w| w.path.segment_count() == 1));
        verify_clearance(&r).unwrap();
    }

    #[test]
    fn shifted_nets_jog_once() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
            vec![t("a", 20, Layer::Metal), t("b", 30, Layer::Metal)],
        );
        let r = river_route(&p).unwrap();
        assert!(r.tracks() >= 1);
        for w in r.wires() {
            assert_eq!(w.path.corner_count(), 2, "single jog per wire");
            assert_eq!(w.path.start().y, 0);
            assert_eq!(w.path.end().y, r.height());
        }
        verify_clearance(&r).unwrap();
    }

    #[test]
    fn overlapping_shifts_use_separate_tracks() {
        // Both shift right and their spans overlap: two tracks.
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
            vec![t("a", 15, Layer::Metal), t("b", 25, Layer::Metal)],
        );
        let r = river_route(&p).unwrap();
        assert_eq!(r.tracks(), 2);
        // The left net (a) jogs above the right net (b).
        let ya = r.wires()[0].path.points()[1].y;
        let yb = r.wires()[1].path.points()[1].y;
        assert!(ya > yb, "left net must jog above: {ya} vs {yb}");
        verify_clearance(&r).unwrap();
    }

    #[test]
    fn left_shifts_stack_the_other_way() {
        let p = RouteProblem::new(
            vec![t("a", 15, Layer::Metal), t("b", 25, Layer::Metal)],
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
        );
        let r = river_route(&p).unwrap();
        assert_eq!(r.tracks(), 2);
        let ya = r.wires()[0].path.points()[1].y;
        let yb = r.wires()[1].path.points()[1].y;
        assert!(ya < yb, "left net must jog below: {ya} vs {yb}");
        verify_clearance(&r).unwrap();
    }

    #[test]
    fn layers_route_independently() {
        // Metal and poly nets overlap in x freely.
        let p = RouteProblem::new(
            vec![t("m", 0, Layer::Metal), t("p", 2, Layer::Poly)],
            vec![t("m", 20, Layer::Metal), t("p", 22, Layer::Poly)],
        );
        let r = river_route(&p).unwrap();
        assert_eq!(r.tracks(), 1);
        verify_clearance(&r).unwrap();
    }

    #[test]
    fn crossing_nets_rejected() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 10, Layer::Metal)],
            vec![t("a", 30, Layer::Metal), t("b", 20, Layer::Metal)],
        );
        let err = river_route(&p).unwrap_err();
        assert!(matches!(err, RouteError::NotRiverRoutable { .. }));
    }

    #[test]
    fn count_and_layer_mismatches_rejected() {
        let p = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![]);
        assert!(matches!(
            river_route(&p),
            Err(RouteError::CountMismatch { .. })
        ));
        let p = RouteProblem::new(vec![t("a", 0, Layer::Metal)], vec![t("a", 0, Layer::Poly)]);
        assert!(matches!(
            river_route(&p),
            Err(RouteError::LayerMismatch { .. })
        ));
    }

    #[test]
    fn close_terminals_rejected() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 3, Layer::Metal)],
            vec![t("a", 0, Layer::Metal), t("b", 20, Layer::Metal)],
        );
        assert!(matches!(
            river_route(&p),
            Err(RouteError::TerminalsTooClose { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        let p = RouteProblem::new(vec![], vec![]);
        assert!(matches!(river_route(&p), Err(RouteError::Empty)));
    }

    #[test]
    fn channel_overflow_adds_channels() {
        // 6 mutually overlapping right-shifting nets with capacity 2.
        let n = 6;
        let shift = 200;
        let bottom: Vec<Terminal> = (0..n)
            .map(|i| t(&format!("n{i}"), i * 10, Layer::Metal))
            .collect();
        let top: Vec<Terminal> = (0..n)
            .map(|i| t(&format!("n{i}"), i * 10 + shift, Layer::Metal))
            .collect();
        let p = RouteProblem::new(bottom, top).with_options(RouterOptions {
            tracks_per_channel: 2,
            ..RouterOptions::new()
        });
        let r = river_route(&p).unwrap();
        assert_eq!(r.tracks(), 6);
        assert_eq!(r.channels(), 3);
        verify_clearance(&r).unwrap();
        // With default capacity everything fits one channel.
        let p1 = RouteProblem::new(p.bottom.clone(), p.top.clone());
        let r1 = river_route(&p1).unwrap();
        assert_eq!(r1.channels(), 1);
        assert!(r1.height() < r.height(), "overflow gaps cost height");
    }

    #[test]
    fn mixed_directions_share_the_channel() {
        let p = RouteProblem::new(
            vec![t("a", 0, Layer::Metal), t("b", 40, Layer::Metal)],
            vec![t("a", 10, Layer::Metal), t("b", 30, Layer::Metal)],
        );
        let r = river_route(&p).unwrap();
        assert_eq!(r.tracks(), 2); // one right band + one left band
        verify_clearance(&r).unwrap();
    }

    #[test]
    fn wire_width_is_max_of_terminals() {
        let p = RouteProblem::new(
            vec![Terminal::new("a", 0, Layer::Metal, 3)],
            vec![Terminal::new("a", 12, Layer::Metal, 5)],
        );
        let r = river_route(&p).unwrap();
        assert_eq!(r.wires()[0].width, 5);
    }
}
