//! Route terminals and router options.

use riot_geom::Layer;

/// One terminal of a route: a point on a channel edge.
///
/// Offsets are lambda coordinates along the edge; widths are in lambda.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Terminal {
    /// Net name (usually the connector name on the instance).
    pub name: String,
    /// Coordinate along the channel edge.
    pub offset: i64,
    /// Wire layer — routes never change layers.
    pub layer: Layer,
    /// Wire width in lambda.
    pub width: i64,
}

impl Terminal {
    /// Creates a terminal.
    pub fn new(name: impl Into<String>, offset: i64, layer: Layer, width: i64) -> Self {
        Terminal {
            name: name.into(),
            offset,
            layer,
            width,
        }
    }
}

/// Which routing engine a CONNECT should solve with.
///
/// The river router is the paper's fast path: one layer per net, no
/// corners, obstacles ignored. The grid router is the obstacle-aware
/// fallback: A* maze search over a per-layer grid with vias, reached
/// either explicitly or automatically when the river router's
/// preconditions (no layer change, no crossing) fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterEngine {
    /// The paper's river router ([`crate::river_route`]).
    #[default]
    River,
    /// The obstacle-aware A* grid router ([`crate::grid_route`]).
    Grid,
}

/// Router tuning knobs — Riot's textual commands "set defaults for
/// routing operations"; these are those defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterOptions {
    /// Jog tracks per channel before the router adds another channel.
    pub tracks_per_channel: usize,
    /// Clear margin between the channel edges and the first/last track,
    /// in lambda.
    pub margin: i64,
    /// Extra gap inserted between successive channels, in lambda.
    pub channel_gap: i64,
    /// Force the channel to exactly this height (lambda). Used when the
    /// *from* instance must not move: the route has to fill the existing
    /// gap. Routing fails when the tracks need more height than this.
    pub exact_height: Option<i64>,
    /// Which engine solves the problem ([`RouterEngine::River`] falls
    /// back to the grid when its preconditions fail).
    pub engine: RouterEngine,
    /// Grid-router node pitch in lambda (terminal columns always get a
    /// grid line of their own, so a coarse pitch never strands a pin).
    pub grid_pitch: i64,
}

impl RouterOptions {
    /// The defaults Riot-era channels used: 8 tracks per channel, 3λ
    /// margins (connector end caps poke half a wire width into the
    /// channel, and the poly spacing rule must still hold), 2λ between
    /// channels, river engine, 1λ grid pitch.
    pub fn new() -> Self {
        RouterOptions {
            tracks_per_channel: 8,
            margin: 3,
            channel_gap: 2,
            exact_height: None,
            engine: RouterEngine::River,
            grid_pitch: 1,
        }
    }
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions::new()
    }
}

/// A routing problem: terminals on the bottom edge (the *to* instance)
/// paired by index with terminals on the top edge (the *from* instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteProblem {
    /// Terminals on the bottom channel edge.
    pub bottom: Vec<Terminal>,
    /// Terminals on the top channel edge, paired with `bottom` by index.
    pub top: Vec<Terminal>,
    /// Router options.
    pub options: RouterOptions,
}

impl RouteProblem {
    /// Creates a problem with default options.
    pub fn new(bottom: Vec<Terminal>, top: Vec<Terminal>) -> Self {
        RouteProblem {
            bottom,
            top,
            options: RouterOptions::new(),
        }
    }

    /// Sets the options (builder style).
    pub fn with_options(mut self, options: RouterOptions) -> Self {
        self.options = options;
        self
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.bottom.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = RouterOptions::new();
        assert_eq!(o, RouterOptions::default());
        assert!(o.tracks_per_channel > 0);
        assert!(o.margin > 0);
    }

    #[test]
    fn problem_counts() {
        let p = RouteProblem::new(
            vec![Terminal::new("x", 0, Layer::Poly, 2)],
            vec![Terminal::new("x", 4, Layer::Poly, 2)],
        );
        assert_eq!(p.net_count(), 1);
    }
}
