//! Route-cell generation: turning a finished route into a Sticks cell.
//!
//! "Riot then makes a new Sticks cell containing the river route wires
//! and places an instance of that route cell next to the to instance."
//! Route cells are ordinary cells: they appear in the cell menu and can
//! be instantiated, moved and deleted like anything else.

use crate::river::RiverRoute;
use crate::straight::unique_pin_name;
use riot_geom::{Rect, Side};
use riot_sticks::{Pin, SticksCell, SymWire};

impl RiverRoute {
    /// Builds the Sticks route cell for this route.
    ///
    /// Bottom-edge pins keep the net names; top-edge pins get a prime
    /// (`'`) appended when the name would collide. The cell's bounding
    /// box spans the terminal extent plus a design-rule margin on each
    /// side.
    pub fn to_sticks_cell(&self, name: impl Into<String>) -> SticksCell {
        let mut xmin = i64::MAX;
        let mut xmax = i64::MIN;
        let mut wmax: i64 = 0;
        for w in self.wires() {
            for &p in w.path.points() {
                xmin = xmin.min(p.x);
                xmax = xmax.max(p.x);
            }
            wmax = wmax.max(w.width);
        }
        let pad = wmax / 2 + 2;
        let bbox = Rect::new(xmin - pad, 0, xmax + pad, self.height());
        let mut cell = SticksCell::new(name, bbox);

        let mut used = std::collections::HashSet::new();
        for w in self.wires() {
            let bottom_name = unique_pin_name(&w.name, &mut used);
            cell.push_pin(Pin {
                name: bottom_name,
                side: Side::Bottom,
                layer: w.layer,
                position: w.path.start(),
                width: w.width,
            });
            let top_name = unique_pin_name(&w.name, &mut used);
            cell.push_pin(Pin {
                name: top_name,
                side: Side::Top,
                layer: w.layer,
                position: w.path.end(),
                width: w.width,
            });
            cell.push_wire(SymWire {
                layer: w.layer,
                width: w.width,
                path: w.path.clone(),
            });
        }
        cell
    }
}

#[cfg(test)]
mod tests {
    use crate::river::river_route;
    use crate::terminal::{RouteProblem, Terminal};
    use riot_geom::{Layer, Side};

    fn route_cell() -> riot_sticks::SticksCell {
        let p = RouteProblem::new(
            vec![
                Terminal::new("a", 0, Layer::Metal, 3),
                Terminal::new("b", 10, Layer::Poly, 2),
            ],
            vec![
                Terminal::new("a", 8, Layer::Metal, 3),
                Terminal::new("b", 22, Layer::Poly, 2),
            ],
        );
        river_route(&p).unwrap().to_sticks_cell("r0")
    }

    #[test]
    fn route_cell_is_valid_sticks() {
        let cell = route_cell();
        cell.validate().unwrap();
        assert_eq!(cell.name(), "r0");
    }

    #[test]
    fn pins_on_both_edges() {
        let cell = route_cell();
        assert_eq!(cell.pins_on_side(Side::Bottom).len(), 2);
        assert_eq!(cell.pins_on_side(Side::Top).len(), 2);
        // Net names survive; top duplicates get primes.
        assert!(cell.pin("a").is_some());
        assert!(cell.pin("a'").is_some());
    }

    #[test]
    fn cell_round_trips_through_sticks_text() {
        let cell = route_cell();
        let text = riot_sticks::to_text(&cell);
        let again = riot_sticks::parse(&text).unwrap();
        assert_eq!(cell, again);
    }

    #[test]
    fn mask_generation_works_on_route_cells() {
        let cell = route_cell();
        let cif = riot_sticks::mask::to_cif_cell(&cell, 3);
        assert_eq!(cif.connectors.len(), 4);
        assert_eq!(cif.shapes.len(), 2);
    }
}
