//! Straight-line "bring out" routes.
//!
//! When connectors are routed *past* a composition cell's bounding box,
//! Riot makes "a simple straight-line route cell for those connectors to
//! the edge of the cell". This module builds that cell.

use crate::error::RouteError;
use crate::terminal::Terminal;
use riot_geom::{Path, Point, Rect, Side};
use riot_sticks::{Pin, SticksCell, SymWire};
use std::collections::HashSet;

/// Builds a straight-line route cell: every terminal is extended
/// perpendicular to its edge by `length` lambda.
///
/// The bottom edge keeps the terminal names; top pins get primes
/// appended on collision, exactly like river-route cells.
///
/// # Errors
///
/// [`RouteError::Empty`] with no terminals, [`RouteError::BadWidth`]
/// for non-positive widths, and [`RouteError::TerminalsTooClose`] when
/// two same-layer terminals violate spacing.
pub fn straight_route(
    terminals: &[Terminal],
    length: i64,
    name: impl Into<String>,
) -> Result<SticksCell, RouteError> {
    let _sp = riot_trace::span!("route.straight", terminals = terminals.len() as u64);
    if terminals.is_empty() {
        return Err(RouteError::Empty);
    }
    let length = length.max(1);
    for (i, t) in terminals.iter().enumerate() {
        if t.width <= 0 {
            return Err(RouteError::BadWidth {
                net: i,
                width: t.width,
            });
        }
    }
    // Same-layer spacing along the edge.
    let mut layers: Vec<_> = terminals.iter().map(|t| t.layer).collect();
    layers.sort_unstable();
    layers.dedup();
    for layer in layers {
        let mut ts: Vec<(i64, i64)> = terminals
            .iter()
            .filter(|t| t.layer == layer)
            .map(|t| (t.offset, t.width))
            .collect();
        ts.sort_unstable();
        let spacing = crate::river::spacing_lambda(layer);
        for w in ts.windows(2) {
            if w[1].0 - w[0].0 < w[0].1 / 2 + w[1].1 / 2 + spacing {
                return Err(RouteError::TerminalsTooClose {
                    layer,
                    offsets: (w[0].0, w[1].0),
                });
            }
        }
    }

    // The emptiness check above guarantees these; keep them typed so a
    // regression there can never panic a session.
    let xmin = terminals
        .iter()
        .map(|t| t.offset)
        .min()
        .ok_or(RouteError::Empty)?;
    let xmax = terminals
        .iter()
        .map(|t| t.offset)
        .max()
        .ok_or(RouteError::Empty)?;
    let wmax = terminals
        .iter()
        .map(|t| t.width)
        .max()
        .ok_or(RouteError::Empty)?;
    let pad = wmax / 2 + 2;
    let bbox = Rect::new(xmin - pad, 0, xmax + pad, length);
    let mut cell = SticksCell::new(name, bbox);
    let mut used = HashSet::new();
    for t in terminals {
        let bottom = unique_pin_name(&t.name, &mut used);
        let top = unique_pin_name(&t.name, &mut used);
        cell.push_pin(Pin {
            name: bottom,
            side: Side::Bottom,
            layer: t.layer,
            position: Point::new(t.offset, 0),
            width: t.width,
        });
        cell.push_pin(Pin {
            name: top,
            side: Side::Top,
            layer: t.layer,
            position: Point::new(t.offset, length),
            width: t.width,
        });
        cell.push_wire(SymWire {
            layer: t.layer,
            width: t.width,
            path: Path::from_points([Point::new(t.offset, 0), Point::new(t.offset, length)])
                .map_err(|_| RouteError::Internal {
                    context: "degenerate bring-out wire",
                })?,
        });
    }
    Ok(cell)
}

/// Returns `base` if unused, else `base` with primes appended until
/// unique, registering the result in `used`.
pub(crate) fn unique_pin_name(base: &str, used: &mut HashSet<String>) -> String {
    let mut name = base.to_owned();
    while !used.insert(name.clone()) {
        name.push('\'');
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::Layer;

    #[test]
    fn brings_out_connectors() {
        let ts = vec![
            Terminal::new("vdd", 0, Layer::Metal, 3),
            Terminal::new("clk", 10, Layer::Poly, 2),
        ];
        let cell = straight_route(&ts, 6, "out0").unwrap();
        cell.validate().unwrap();
        assert_eq!(cell.bbox().height(), 6);
        assert_eq!(cell.pins().len(), 4);
        assert_eq!(cell.wires().len(), 2);
        assert_eq!(cell.pin("vdd").unwrap().position.y, 0);
        assert_eq!(cell.pin("vdd'").unwrap().position.y, 6);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            straight_route(&[], 4, "x"),
            Err(RouteError::Empty)
        ));
    }

    #[test]
    fn close_same_layer_terminals_rejected() {
        let ts = vec![
            Terminal::new("a", 0, Layer::Metal, 3),
            Terminal::new("b", 4, Layer::Metal, 3),
        ];
        assert!(matches!(
            straight_route(&ts, 4, "x"),
            Err(RouteError::TerminalsTooClose { .. })
        ));
    }

    #[test]
    fn different_layers_may_sit_close() {
        let ts = vec![
            Terminal::new("a", 0, Layer::Metal, 3),
            Terminal::new("b", 2, Layer::Poly, 2),
        ];
        assert!(straight_route(&ts, 4, "x").is_ok());
    }

    #[test]
    fn unique_names() {
        let mut used = HashSet::new();
        assert_eq!(unique_pin_name("a", &mut used), "a");
        assert_eq!(unique_pin_name("a", &mut used), "a'");
        assert_eq!(unique_pin_name("a", &mut used), "a''");
    }

    #[test]
    fn zero_length_clamped() {
        let ts = vec![Terminal::new("a", 0, Layer::Metal, 3)];
        let cell = straight_route(&ts, 0, "x").unwrap();
        assert_eq!(cell.bbox().height(), 1);
    }
}
