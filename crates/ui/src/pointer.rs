//! The simulated pointing device (Xerox mouse / Summagraphics BitPad).

/// One pointing-device event: a button press at a screen pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerEvent {
    /// Screen x in pixels.
    pub x: i64,
    /// Screen y in pixels (y up, like the framebuffer).
    pub y: i64,
    /// Which button (0 = select; Riot used a single pick button).
    pub button: u8,
}

impl PointerEvent {
    /// A select click at `(x, y)`.
    pub fn click(x: i64, y: i64) -> Self {
        PointerEvent { x, y, button: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn click_builder() {
        let e = PointerEvent::click(10, 20);
        assert_eq!((e.x, e.y, e.button), (10, 20, 0));
    }
}
