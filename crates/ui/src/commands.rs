//! The graphical editing command set (the lower menu).

use std::fmt;

/// The commands in the editing-command menu: "commands to move, orient,
/// and connect instances as well as commands to modify the display
/// characteristics".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphicalCommand {
    /// Instantiate the selected menu cell at the next editing-area
    /// click.
    Create,
    /// Move a picked instance to the next click.
    Move,
    /// Rotate a picked instance 90° counter-clockwise.
    Rotate,
    /// Mirror a picked instance in x.
    Mirror,
    /// Delete a picked instance.
    Delete,
    /// Add a pending connection: pick a from connector, then a to
    /// connector.
    Connect,
    /// Make the pending connections by abutment.
    Abut,
    /// Make the pending connections by routing.
    Route,
    /// Make the pending connections by stretching.
    Stretch,
    /// Revert the most recent editing command.
    Undo,
    /// Re-apply the most recently undone command.
    Redo,
    /// Zoom the editing area in.
    ZoomIn,
    /// Zoom the editing area out.
    ZoomOut,
    /// Toggle cell/connector name display (figure 3's optional labels).
    Names,
}

impl GraphicalCommand {
    /// Menu order, top to bottom.
    pub const MENU: [GraphicalCommand; 14] = [
        GraphicalCommand::Create,
        GraphicalCommand::Move,
        GraphicalCommand::Rotate,
        GraphicalCommand::Mirror,
        GraphicalCommand::Delete,
        GraphicalCommand::Connect,
        GraphicalCommand::Abut,
        GraphicalCommand::Route,
        GraphicalCommand::Stretch,
        GraphicalCommand::Undo,
        GraphicalCommand::Redo,
        GraphicalCommand::ZoomIn,
        GraphicalCommand::ZoomOut,
        GraphicalCommand::Names,
    ];

    /// The label shown in the menu.
    pub fn label(self) -> &'static str {
        match self {
            GraphicalCommand::Create => "CREATE",
            GraphicalCommand::Move => "MOVE",
            GraphicalCommand::Rotate => "ROTATE",
            GraphicalCommand::Mirror => "MIRROR",
            GraphicalCommand::Delete => "DELETE",
            GraphicalCommand::Connect => "CONNECT",
            GraphicalCommand::Abut => "ABUT",
            GraphicalCommand::Route => "ROUTE",
            GraphicalCommand::Stretch => "STRETCH",
            GraphicalCommand::Undo => "UNDO",
            GraphicalCommand::Redo => "REDO",
            GraphicalCommand::ZoomIn => "ZOOM IN",
            GraphicalCommand::ZoomOut => "ZOOM OUT",
            GraphicalCommand::Names => "NAMES",
        }
    }
}

impl fmt::Display for GraphicalCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in GraphicalCommand::MENU {
            assert!(seen.insert(c.label()));
        }
    }

    #[test]
    fn menu_covers_all_commands() {
        assert_eq!(GraphicalCommand::MENU.len(), 14);
    }
}
