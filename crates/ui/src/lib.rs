//! RIOT's command interfaces: the screen, the menus, the pointing
//! device, and the textual command language.
//!
//! "Riot has two command interfaces: one textual, one graphical. The
//! textual command interface … is used primarily to modify the editing
//! environment. … The user edits a cell with the graphical command
//! interface by pointing at items on the graphic display."
//!
//! The workstation hardware (Xerox mouse, Summagraphics BitPad, the
//! Charles and GIGI terminals) is simulated: pointer events arrive as
//! scripted [`pointer::PointerEvent`]s, the screen renders into a
//! [`riot_graphics::Framebuffer`], and a whole interactive session can
//! be driven end-to-end from a test or example (DESIGN.md §2).
//!
//! * [`screen`] — the display organization of paper figure 2: a large
//!   editing area with the cell menu and editing-command menu on the
//!   right edge;
//! * [`render`] — building display lists from library/editor state
//!   (instance boxes, connector crosses, names — figure 3);
//! * [`commands`] — the graphical command set of the lower menu;
//! * [`textual`] — the textual interface (read/write/plot/set/edit…)
//!   over a virtual file store;
//! * [`session`] — the interactive state machine: menu picks and
//!   editing-area clicks become [`riot_core::Editor`] operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod pointer;
pub mod render;
pub mod screen;
pub mod session;
pub mod textual;

pub use commands::GraphicalCommand;
pub use pointer::PointerEvent;
pub use screen::ScreenLayout;
pub use session::InteractiveSession;
pub use textual::TextualInterface;
