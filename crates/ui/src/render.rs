//! Building display lists from library and editor state.
//!
//! "An instance is represented on the screen by the bounding box and
//! connectors of the defining cell positioned, oriented, and replicated
//! by the instance information. The size and color of the connector
//! crosses indicates width and layer of the wire making the connection
//! inside the cell. Optionally, instances can be displayed with their
//! cell names and connector names" (figure 3).

use riot_core::{CellKind, Editor, InstanceId, LeafSource, Library};
use riot_geom::{Point, LAMBDA};
use riot_graphics::{Color, DisplayList, DrawOp};

/// What the renderer labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderOptions {
    /// Draw the cell name inside each instance box.
    pub cell_names: bool,
    /// Draw connector names beside their crosses.
    pub connector_names: bool,
}

/// Draws one instance of the edited cell: bounding box, connector
/// crosses, optional labels.
///
/// # Errors
///
/// [`riot_core::RiotError`] lookup failures for stale ids.
pub fn instance_ops(
    ed: &Editor<'_>,
    id: InstanceId,
    options: RenderOptions,
    list: &mut DisplayList,
) -> Result<(), riot_core::RiotError> {
    let bbox = ed.instance_bbox(id)?;
    list.push(DrawOp::Rect {
        rect: bbox,
        color: Color::WHITE,
    });
    // Array gridding: internal element boundaries show through.
    let inst = ed.instance(id)?.clone();
    let cell = ed.instance_cell(id)?;
    if inst.is_array() {
        for c in 0..inst.cols {
            for r in 0..inst.rows {
                let t = inst.element_transform(c, r);
                list.push(DrawOp::Rect {
                    rect: t.apply_rect(cell.bbox),
                    color: Color::new(120, 120, 120),
                });
            }
        }
    }
    for wc in ed.world_connectors(id)? {
        list.push(DrawOp::Cross {
            center: wc.location,
            arm: (wc.width / 2).max(LAMBDA),
            color: Color::of_layer(wc.layer),
        });
        if options.connector_names {
            list.push(DrawOp::Text {
                at: wc.location + Point::new(LAMBDA, LAMBDA),
                text: wc.name.clone(),
                color: Color::of_layer(wc.layer),
            });
        }
    }
    if options.cell_names {
        list.push(DrawOp::Text {
            at: bbox.center(),
            text: cell.name.clone(),
            color: Color::WHITE,
        });
    }
    Ok(())
}

/// Draws the whole cell under edit: every instance, plus a marker line
/// for each pending connection (the list "is shown on the screen
/// constantly").
///
/// # Errors
///
/// As [`instance_ops`].
pub fn editor_ops(
    ed: &Editor<'_>,
    options: RenderOptions,
) -> Result<DisplayList, riot_core::RiotError> {
    let mut list = DisplayList::new();
    for (id, _) in ed.instances() {
        instance_ops(ed, id, options, &mut list)?;
    }
    for p in ed.pending() {
        let fc = ed.world_connector(p.from, &p.from_connector)?;
        let tc = ed.world_connector(p.to, &p.to_connector)?;
        list.push(DrawOp::Line {
            from: fc.location,
            to: tc.location,
            color: Color::new(255, 255, 0),
        });
    }
    Ok(list)
}

/// Draws a leaf cell's full mask geometry (used for figure 8's cell
/// gallery and figure 10's chip plot). Sticks leafs are expanded
/// through mask generation.
pub fn leaf_geometry_ops(lib: &Library, cell: riot_core::CellId) -> DisplayList {
    let mut list = DisplayList::new();
    let Ok(cell) = lib.cell(cell) else {
        return list;
    };
    let shapes: Vec<riot_cif::Shape> = match &cell.kind {
        CellKind::Leaf(LeafSource::Cif { shapes }) => shapes.clone(),
        CellKind::Leaf(LeafSource::Sticks(sticks)) => {
            riot_sticks::mask::to_cif_cell(sticks, 1).shapes
        }
        CellKind::Composition(_) => Vec::new(),
    };
    for s in &shapes {
        shape_ops(s, Point::ORIGIN, &mut list);
    }
    list
}

/// Draws a fully-flattened CIF file (the mask plot of the whole chip).
pub fn flat_cif_ops(shapes: &[riot_cif::FlatShape]) -> DisplayList {
    let mut list = DisplayList::new();
    for s in shapes {
        let shape = riot_cif::Shape {
            layer: s.layer,
            geometry: s.geometry.clone(),
        };
        shape_ops(&shape, Point::ORIGIN, &mut list);
    }
    list
}

fn shape_ops(s: &riot_cif::Shape, offset: Point, list: &mut DisplayList) {
    let color = Color::of_layer(s.layer);
    match &s.geometry {
        riot_cif::Geometry::Box(r) => list.push(DrawOp::FillRect {
            rect: r.translated(offset),
            color,
        }),
        riot_cif::Geometry::Polygon(pts) => {
            for w in pts.windows(2) {
                list.push(DrawOp::Line {
                    from: w[0] + offset,
                    to: w[1] + offset,
                    color,
                });
            }
            if pts.len() > 2 {
                list.push(DrawOp::Line {
                    from: pts[pts.len() - 1] + offset,
                    to: pts[0] + offset,
                    color,
                });
            }
        }
        riot_cif::Geometry::Wire { width, path } => {
            for (a, b) in path.segments() {
                let r = riot_geom::Rect::from_points(a + offset, b + offset).inflated(width / 2);
                list.push(DrawOp::FillRect { rect: r, color });
            }
        }
        riot_cif::Geometry::Flash { diameter, center } => list.push(DrawOp::FillRect {
            rect: riot_geom::Rect::from_center(*center + offset, *diameter, *diameter),
            color,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_core::Editor;

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 6 4
wire NP 2 6 10 12 10
end
";

    #[test]
    fn instance_rendering_has_box_and_crosses() {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let i = ed.create_instance(gate).unwrap();
        let mut list = DisplayList::new();
        instance_ops(&ed, i, RenderOptions::default(), &mut list).unwrap();
        let rects = list
            .ops()
            .iter()
            .filter(|o| matches!(o, DrawOp::Rect { .. }))
            .count();
        let crosses = list
            .ops()
            .iter()
            .filter(|o| matches!(o, DrawOp::Cross { .. }))
            .count();
        assert_eq!(rects, 1);
        assert_eq!(crosses, 2);
    }

    #[test]
    fn labels_appear_when_enabled() {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let i = ed.create_instance(gate).unwrap();
        let mut list = DisplayList::new();
        instance_ops(
            &ed,
            i,
            RenderOptions {
                cell_names: true,
                connector_names: true,
            },
            &mut list,
        )
        .unwrap();
        let texts = list
            .ops()
            .iter()
            .filter(|o| matches!(o, DrawOp::Text { .. }))
            .count();
        assert_eq!(texts, 3); // 2 connectors + the cell name
    }

    #[test]
    fn pending_connections_drawn() {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let a = ed.create_instance(gate).unwrap();
        let b = ed.create_instance(gate).unwrap();
        ed.translate_instance(b, Point::new(30 * LAMBDA, 0))
            .unwrap();
        ed.connect(b, "A", a, "OUT").unwrap();
        let list = editor_ops(&ed, RenderOptions::default()).unwrap();
        let lines = list
            .ops()
            .iter()
            .filter(|o| matches!(o, DrawOp::Line { .. }))
            .count();
        assert_eq!(lines, 1);
    }

    #[test]
    fn array_shows_gridding() {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let mut ed = Editor::open(&mut lib, "TOP").unwrap();
        let i = ed.create_instance(gate).unwrap();
        ed.replicate_instance(i, 3, 1).unwrap();
        let mut list = DisplayList::new();
        instance_ops(&ed, i, RenderOptions::default(), &mut list).unwrap();
        let rects = list
            .ops()
            .iter()
            .filter(|o| matches!(o, DrawOp::Rect { .. }))
            .count();
        assert_eq!(rects, 4); // outer box + 3 element boxes
    }

    #[test]
    fn leaf_geometry_renders_mask() {
        let mut lib = Library::new();
        let gate = lib.load_sticks(GATE).unwrap();
        let list = leaf_geometry_ops(&lib, gate);
        assert!(!list.is_empty());
    }
}
