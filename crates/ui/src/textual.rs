//! The textual command interface.
//!
//! "Textual commands store and retrieve cells on disk, set plotting
//! parameters, generate hardcopy plots of cells, set defaults for
//! routing operations, and invoke the graphical command editor to
//! modify a composition cell."
//!
//! Disk is a virtual file store (name → text), so sessions are fully
//! scriptable from tests.

use riot_core::{CellKind, Library, RiotError};
use riot_graphics::plotter;
use riot_graphics::{Color, DisplayList, DrawOp};
use riot_route::RouterOptions;
use std::collections::HashMap;
use std::fmt::Write as _;

/// What a textual command produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A status/info message.
    Message(String),
    /// The `edit` command: enter the graphical editor on this cell.
    EnterEditor(String),
}

/// The textual interface: a library, routing defaults and a virtual
/// file store.
#[derive(Debug, Default)]
pub struct TextualInterface {
    library: Library,
    files: HashMap<String, String>,
    router: RouterOptions,
}

impl TextualInterface {
    /// Creates an empty environment.
    pub fn new() -> Self {
        TextualInterface {
            library: Library::new(),
            files: HashMap::new(),
            router: RouterOptions::new(),
        }
    }

    /// The cell menu.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Mutable access to the cell menu (the graphical editor needs it).
    pub fn library_mut(&mut self) -> &mut Library {
        &mut self.library
    }

    /// Current routing defaults (`set` commands change them).
    pub fn router_options(&self) -> RouterOptions {
        self.router
    }

    /// Stores a file in the virtual store (a "disk" write).
    pub fn put_file(&mut self, name: impl Into<String>, text: impl Into<String>) {
        self.files.insert(name.into(), text.into());
    }

    /// Reads a file back from the virtual store.
    pub fn file(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(String::as_str)
    }

    /// Executes one textual command line.
    ///
    /// # Errors
    ///
    /// [`RiotError`] for unknown commands/files/cells or import errors.
    pub fn execute(&mut self, line: &str) -> Result<Response, RiotError> {
        let f: Vec<&str> = line.split_whitespace().collect();
        let usage = |msg: &str| RiotError::Parse {
            line: 1,
            message: msg.to_owned(),
        };
        match f.as_slice() {
            ["read", file] => {
                let text = self
                    .files
                    .get(*file)
                    .cloned()
                    .ok_or_else(|| usage(&format!("no file `{file}`")))?;
                let what = if text.starts_with("riot composition v1") {
                    let ids = riot_core::compose::load(&text, &mut self.library)?;
                    format!("{} composition cell(s)", ids.len())
                } else if text.trim_start().starts_with("sticks") {
                    self.library.load_sticks(&text)?;
                    "1 sticks cell".to_owned()
                } else {
                    let ids = self.library.load_cif(&text)?;
                    format!("{} CIF cell(s)", ids.len())
                };
                Ok(Response::Message(format!("read {what} from {file}")))
            }
            ["write", file] => {
                let text = riot_core::compose::save(&self.library);
                self.files.insert((*file).to_owned(), text);
                Ok(Response::Message(format!("wrote composition to {file}")))
            }
            ["writecif", cell, file] => {
                let cif = riot_core::export::to_cif(&self.library, cell)?;
                self.files
                    .insert((*file).to_owned(), riot_cif::to_text(&cif));
                Ok(Response::Message(format!("wrote {cell} as CIF to {file}")))
            }
            ["plot", cell, file] => {
                let list = self.plot_list(cell)?;
                let plot = plotter::plot(&list);
                self.files.insert((*file).to_owned(), plot.commands);
                Ok(Response::Message(format!(
                    "plotted {cell} to {file} ({} pen-down strokes)",
                    plot.strokes_per_pen.iter().sum::<usize>()
                )))
            }
            ["set", "tracks", n] => {
                self.router.tracks_per_channel = n.parse().map_err(|_| usage("bad track count"))?;
                Ok(Response::Message(format!("tracks per channel = {n}")))
            }
            ["set", "margin", n] => {
                self.router.margin = n.parse().map_err(|_| usage("bad margin"))?;
                Ok(Response::Message(format!("channel margin = {n}")))
            }
            ["set", "gap", n] => {
                self.router.channel_gap = n.parse().map_err(|_| usage("bad gap"))?;
                Ok(Response::Message(format!("channel gap = {n}")))
            }
            ["list"] => {
                let mut out = String::new();
                for (_, cell) in self.library.iter() {
                    let kind = match &cell.kind {
                        CellKind::Leaf(_) => "leaf",
                        CellKind::Composition(_) => "comp",
                    };
                    let _ = writeln!(out, "{:4} {}", kind, cell.name);
                }
                Ok(Response::Message(out))
            }
            ["delete", cell] => {
                let id = self
                    .library
                    .find(cell)
                    .ok_or_else(|| RiotError::UnknownCell((*cell).to_owned()))?;
                self.library.delete_cell(id)?;
                Ok(Response::Message(format!("deleted {cell}")))
            }
            ["rename", old, new] => {
                let id = self
                    .library
                    .find(old)
                    .ok_or_else(|| RiotError::UnknownCell((*old).to_owned()))?;
                self.library.rename(id, *new)?;
                Ok(Response::Message(format!("renamed {old} to {new}")))
            }
            ["check", cell] => {
                // The "extensive checking" Riot left to its users, as a
                // command: design-rule check the cell's mask geometry.
                let cif = riot_core::export::to_cif(&self.library, cell)?;
                let flat = riot_cif::flatten(&cif)?;
                let violations = riot_drc::check(&flat, &riot_drc::RuleSet::nmos());
                if violations.is_empty() {
                    Ok(Response::Message(format!("{cell} is clean")))
                } else {
                    let mut out = format!("{} violation(s) in {cell}:\n", violations.len());
                    for v in violations.iter().take(20) {
                        let _ = writeln!(out, "  {v}");
                    }
                    Ok(Response::Message(out))
                }
            }
            ["edit", cell] => Ok(Response::EnterEditor((*cell).to_owned())),
            ["stats"] => {
                // The riot-trace session summary: engine counters and
                // per-span latency percentiles. Reports "(no metrics
                // recorded)" until tracing is enabled via RIOT_TRACE or
                // riot_trace::enable.
                Ok(Response::Message(riot_trace::summary()))
            }
            ["trace", "on"] => {
                riot_trace::enable(true);
                Ok(Response::Message("tracing enabled".to_owned()))
            }
            ["trace", "off"] => {
                riot_trace::enable(false);
                Ok(Response::Message("tracing disabled".to_owned()))
            }
            _ => Err(usage(&format!("unknown command `{line}`"))),
        }
    }

    /// A plot display list for any cell: mask geometry for leafs,
    /// instance boxes + connector crosses for compositions.
    fn plot_list(&self, name: &str) -> Result<DisplayList, RiotError> {
        let id = self
            .library
            .find(name)
            .ok_or_else(|| RiotError::UnknownCell(name.to_owned()))?;
        let cell = self.library.cell(id)?;
        match &cell.kind {
            CellKind::Leaf(_) => Ok(crate::render::leaf_geometry_ops(&self.library, id)),
            CellKind::Composition(comp) => {
                let mut list = DisplayList::new();
                for (_, inst) in comp.instances() {
                    let sub = self.library.cell(inst.cell)?;
                    list.push(DrawOp::Rect {
                        rect: inst.world_bbox(sub),
                        color: Color::BLACK,
                    });
                    for wc in inst.world_connectors(sub) {
                        list.push(DrawOp::Cross {
                            center: wc.location,
                            arm: (wc.width / 2).max(riot_geom::LAMBDA),
                            color: Color::of_layer(wc.layer),
                        });
                    }
                }
                Ok(list)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 12 4
end
";

    fn env() -> TextualInterface {
        let mut t = TextualInterface::new();
        t.put_file("gate.st", GATE);
        t.put_file("pads.cif", riot_cells::pads_cif());
        t
    }

    #[test]
    fn read_dispatches_by_content() {
        let mut t = env();
        t.execute("read gate.st").unwrap();
        t.execute("read pads.cif").unwrap();
        assert!(t.library().find("gate").is_some());
        assert!(t.library().find("padin").is_some());
        assert!(t.library().find("padout").is_some());
    }

    #[test]
    fn write_and_read_composition() {
        let mut t = env();
        t.execute("read gate.st").unwrap();
        {
            let mut ed = riot_core::Editor::open(t.library_mut(), "TOP").unwrap();
            let g = ed.library().find("gate").unwrap();
            ed.create_instance(g).unwrap();
            ed.finish().unwrap();
        }
        t.execute("write session.comp").unwrap();
        assert!(t.file("session.comp").unwrap().contains("cell TOP"));
        // Fresh environment restores from the file.
        let mut t2 = env();
        t2.execute("read gate.st").unwrap();
        t2.put_file("session.comp", t.file("session.comp").unwrap().to_owned());
        t2.execute("read session.comp").unwrap();
        assert!(t2.library().find("TOP").is_some());
    }

    #[test]
    fn plot_produces_pen_commands() {
        let mut t = env();
        t.execute("read gate.st").unwrap();
        t.execute("plot gate gate.hpgl").unwrap();
        let hpgl = t.file("gate.hpgl").unwrap();
        assert!(hpgl.starts_with("IN;"));
        assert!(hpgl.contains("PD"));
    }

    #[test]
    fn set_commands_update_defaults() {
        let mut t = env();
        t.execute("set tracks 4").unwrap();
        t.execute("set margin 3").unwrap();
        t.execute("set gap 5").unwrap();
        let o = t.router_options();
        assert_eq!(o.tracks_per_channel, 4);
        assert_eq!(o.margin, 3);
        assert_eq!(o.channel_gap, 5);
    }

    #[test]
    fn list_rename_delete() {
        let mut t = env();
        t.execute("read gate.st").unwrap();
        let Response::Message(listing) = t.execute("list").unwrap() else {
            panic!("expected message");
        };
        assert!(listing.contains("gate"));
        t.execute("rename gate nand").unwrap();
        assert!(t.library().find("nand").is_some());
        t.execute("delete nand").unwrap();
        assert!(t.library().find("nand").is_none());
    }

    #[test]
    fn edit_enters_editor() {
        let mut t = env();
        assert_eq!(
            t.execute("edit TOP").unwrap(),
            Response::EnterEditor("TOP".into())
        );
    }

    #[test]
    fn unknown_command_rejected() {
        let mut t = env();
        assert!(t.execute("frobnicate").is_err());
        assert!(t.execute("read missing.cif").is_err());
    }

    #[test]
    fn stats_reports_trace_summary() {
        let mut t = env();
        let Response::Message(msg) = t.execute("stats").unwrap() else {
            panic!("expected message");
        };
        assert!(msg.starts_with("== riot-trace session summary =="));
    }

    #[test]
    fn trace_toggle() {
        let mut t = env();
        t.execute("trace on").unwrap();
        assert!(riot_trace::enabled());
        t.execute("trace off").unwrap();
        assert!(!riot_trace::enabled());
    }

    #[test]
    fn check_reports_drc_status() {
        let mut t = env();
        t.execute("read gate.st").unwrap();
        {
            let mut ed = riot_core::Editor::open(t.library_mut(), "TOP").unwrap();
            let g = ed.library().find("gate").unwrap();
            ed.create_instance(g).unwrap();
            ed.finish().unwrap();
        }
        let Response::Message(msg) = t.execute("check TOP").unwrap() else {
            panic!("expected message");
        };
        assert!(msg.contains("clean") || msg.contains("violation"));
    }

    #[test]
    fn writecif_exports_mask() {
        let mut t = env();
        t.execute("read gate.st").unwrap();
        {
            let mut ed = riot_core::Editor::open(t.library_mut(), "TOP").unwrap();
            let g = ed.library().find("gate").unwrap();
            ed.create_instance(g).unwrap();
            ed.finish().unwrap();
        }
        t.execute("writecif TOP chip.cif").unwrap();
        let cif = t.file("chip.cif").unwrap();
        riot_cif::parse(cif).unwrap();
    }
}
