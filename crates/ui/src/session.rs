//! The interactive graphical session: pointer events drive the editor.
//!
//! "The user edits a cell with the graphical command interface by
//! pointing at items on the graphic display." This module is that
//! loop: a pick in the cell menu selects a cell, a pick in the command
//! menu arms a command, picks in the editing area identify instances,
//! connectors and placement points.

use crate::commands::GraphicalCommand;
use crate::pointer::PointerEvent;
use crate::render::{editor_ops, RenderOptions};
use crate::screen::{HitRegion, ScreenLayout};
use riot_core::{AbutOptions, CellId, Editor, InstanceId, RiotError, RouteOptions, StretchOptions};
use riot_geom::{Orientation, Point, Rect, LAMBDA};
use riot_graphics::{Color, DisplayList, DrawOp, Framebuffer, Viewport};

/// Multi-click commands track what was picked first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum PickState {
    #[default]
    Idle,
    MovePicked(InstanceId),
    ConnectFrom(InstanceId, String),
}

/// An interactive editing session over an [`Editor`].
#[derive(Debug)]
pub struct InteractiveSession<'a> {
    editor: Editor<'a>,
    layout: ScreenLayout,
    viewport: Viewport,
    selected_cell: Option<CellId>,
    command: Option<GraphicalCommand>,
    picks: PickState,
    show_names: bool,
    status: String,
}

impl<'a> InteractiveSession<'a> {
    /// Starts a session on `editor` with a screen of the given pixel
    /// size. The initial view shows a 200λ square at the origin.
    pub fn new(editor: Editor<'a>, width: usize, height: usize) -> Self {
        let layout = ScreenLayout::new(width, height);
        let edit = layout.editing_area();
        let viewport = Viewport::fit(
            Rect::new(-20 * LAMBDA, -20 * LAMBDA, 200 * LAMBDA, 200 * LAMBDA),
            edit.width() as usize,
            edit.height() as usize,
        );
        InteractiveSession {
            editor,
            layout,
            viewport,
            selected_cell: None,
            command: None,
            picks: PickState::Idle,
            show_names: false,
            status: String::new(),
        }
    }

    /// The underlying editor (for assertions and finishing).
    pub fn editor(&self) -> &Editor<'a> {
        &self.editor
    }

    /// Mutable access to the editor (finish, journal save…).
    pub fn editor_mut(&mut self) -> &mut Editor<'a> {
        &mut self.editor
    }

    /// The screen layout in use.
    pub fn layout(&self) -> &ScreenLayout {
        &self.layout
    }

    /// The world-to-editing-area viewport.
    pub fn viewport(&self) -> &Viewport {
        &self.viewport
    }

    /// Pans the view by a fraction of the window (Riot's panning
    /// commands): positive `dx` pans right, positive `dy` pans up.
    pub fn pan(&mut self, dx_eighths: i64, dy_eighths: i64) {
        let win = self.viewport.window();
        self.viewport = self.viewport.panned(riot_geom::Point::new(
            win.width() * dx_eighths / 8,
            win.height() * dy_eighths / 8,
        ));
    }

    /// Re-fits the view to the current contents (a HOME command).
    pub fn fit_view(&mut self) {
        if let Ok(extent) = self.editor.current_extent() {
            if extent.width() > 0 || extent.height() > 0 {
                let edit = self.layout.editing_area();
                self.viewport =
                    Viewport::fit(extent, edit.width() as usize, edit.height() as usize);
            }
        }
    }

    /// Last status message (for the session transcript).
    pub fn status(&self) -> &str {
        &self.status
    }

    /// The currently armed command.
    pub fn command(&self) -> Option<GraphicalCommand> {
        self.command
    }

    /// Cell-menu rows, top to bottom: every menu cell except the one
    /// under edit.
    pub fn cell_menu(&self) -> Vec<(CellId, String)> {
        self.editor
            .library()
            .iter()
            .filter(|(id, cell)| *id != self.editor.cell_id() && !cell.name.starts_with("(deleted"))
            .map(|(id, cell)| (id, cell.name.clone()))
            .collect()
    }

    /// Handles one pointer event.
    ///
    /// # Errors
    ///
    /// Editor errors bubble up (layer mismatches, routing failures…);
    /// the session state survives, matching the interactive tool.
    pub fn handle(&mut self, event: PointerEvent) -> Result<(), RiotError> {
        match self.layout.hit(event.x, event.y) {
            HitRegion::CellMenu { index } => {
                let menu = self.cell_menu();
                if let Some((id, name)) = menu.get(index) {
                    self.selected_cell = Some(*id);
                    self.status = format!("cell {name} selected");
                } else {
                    self.status = "empty menu row".into();
                }
                Ok(())
            }
            HitRegion::CommandMenu { index } => {
                let Some(cmd) = GraphicalCommand::MENU.get(index).copied() else {
                    self.status = "empty menu row".into();
                    return Ok(());
                };
                self.arm(cmd)
            }
            HitRegion::Editing { x, y } => {
                let world = self.viewport.to_world(x, y);
                self.editing_click(world)
            }
            HitRegion::Nothing => Ok(()),
        }
    }

    /// Arms (or immediately executes) a command, exactly as pointing at
    /// the command menu does.
    ///
    /// # Errors
    ///
    /// As [`InteractiveSession::handle`].
    pub fn arm(&mut self, cmd: GraphicalCommand) -> Result<(), RiotError> {
        self.picks = PickState::Idle;
        match cmd {
            GraphicalCommand::Abut => {
                self.editor.abut(AbutOptions::default())?;
                self.status = "abutted".into();
                self.command = None;
            }
            GraphicalCommand::Route => {
                self.editor.route(RouteOptions::default())?;
                self.status = "routed".into();
                self.command = None;
            }
            GraphicalCommand::Stretch => {
                self.editor.stretch(StretchOptions::default())?;
                self.status = "stretched".into();
                self.command = None;
            }
            GraphicalCommand::Undo => {
                self.status = if self.editor.undo()? {
                    "undone".into()
                } else {
                    "nothing to undo".into()
                };
                self.command = None;
            }
            GraphicalCommand::Redo => {
                self.status = if self.editor.redo()? {
                    "redone".into()
                } else {
                    "nothing to redo".into()
                };
                self.command = None;
            }
            GraphicalCommand::ZoomIn => {
                self.viewport = self.viewport.zoomed(2, 1);
                self.status = "zoomed in".into();
            }
            GraphicalCommand::ZoomOut => {
                self.viewport = self.viewport.zoomed(1, 2);
                self.status = "zoomed out".into();
            }
            GraphicalCommand::Names => {
                self.show_names = !self.show_names;
                self.status = format!("names {}", if self.show_names { "on" } else { "off" });
            }
            other => {
                self.command = Some(other);
                self.status = format!("{other} armed");
            }
        }
        Ok(())
    }

    fn editing_click(&mut self, world: Point) -> Result<(), RiotError> {
        let snapped = Point::new(snap(world.x), snap(world.y));
        match self.command {
            Some(GraphicalCommand::Create) => {
                let Some(cell) = self.selected_cell else {
                    self.status = "no cell selected".into();
                    return Ok(());
                };
                let id = self.editor.create_instance(cell)?;
                let bb = self.editor.instance_bbox(id)?;
                self.editor
                    .translate_instance(id, snapped - bb.lower_left())?;
                self.status = format!("created {}", self.editor.instance(id)?.name);
            }
            Some(GraphicalCommand::Move) => match self.picks.clone() {
                PickState::MovePicked(id) => {
                    let bb = self.editor.instance_bbox(id)?;
                    self.editor
                        .translate_instance(id, snapped - bb.lower_left())?;
                    self.picks = PickState::Idle;
                    self.status = "moved".into();
                }
                _ => {
                    if let Some(id) = self.pick_instance(world) {
                        self.picks = PickState::MovePicked(id);
                        self.status = format!("picked {}", self.editor.instance(id)?.name);
                    } else {
                        self.status = "nothing there".into();
                    }
                }
            },
            Some(GraphicalCommand::Rotate) => {
                if let Some(id) = self.pick_instance(world) {
                    self.editor.orient_instance(id, Orientation::R90)?;
                    self.status = "rotated".into();
                }
            }
            Some(GraphicalCommand::Mirror) => {
                if let Some(id) = self.pick_instance(world) {
                    self.editor.orient_instance(id, Orientation::MX)?;
                    self.status = "mirrored".into();
                }
            }
            Some(GraphicalCommand::Delete) => {
                if let Some(id) = self.pick_instance(world) {
                    self.editor.delete_instance(id)?;
                    self.status = "deleted".into();
                }
            }
            Some(GraphicalCommand::Connect) => {
                let Some((id, name)) = self.pick_connector(world) else {
                    self.status = "no connector there".into();
                    return Ok(());
                };
                match self.picks.clone() {
                    PickState::ConnectFrom(from, from_conn) => {
                        self.editor.connect(from, &from_conn, id, &name)?;
                        self.picks = PickState::Idle;
                        self.status = format!("pending {from_conn} -> {name}");
                    }
                    _ => {
                        self.picks = PickState::ConnectFrom(id, name.clone());
                        self.status = format!("from connector {name}");
                    }
                }
            }
            _ => {
                self.status = "no command armed".into();
            }
        }
        Ok(())
    }

    /// The topmost (smallest) instance whose world box contains `p`.
    pub fn pick_instance(&self, p: Point) -> Option<InstanceId> {
        self.editor
            .instances()
            .into_iter()
            .filter_map(|(id, _)| {
                let bb = self.editor.instance_bbox(id).ok()?;
                bb.contains(p).then_some((id, bb.area()))
            })
            .min_by_key(|&(_, area)| area)
            .map(|(id, _)| id)
    }

    /// The nearest connector within the pick tolerance (a few pixels in
    /// world units).
    pub fn pick_connector(&self, p: Point) -> Option<(InstanceId, String)> {
        let tolerance = self.viewport.window().width() / 60 + 2 * LAMBDA;
        let mut best: Option<(i64, InstanceId, String)> = None;
        for (id, _) in self.editor.instances() {
            let Ok(conns) = self.editor.world_connectors(id) else {
                continue;
            };
            for wc in conns {
                let d = wc.location.manhattan(p);
                if d <= tolerance && best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                    best = Some((d, id, wc.name));
                }
            }
        }
        best.map(|(_, id, name)| (id, name))
    }

    /// Renders the whole screen — editing area plus the two menus — to
    /// a framebuffer (figure 2's organization).
    pub fn render(&self) -> Framebuffer {
        let _sp = riot_trace::span!("ui.frame");
        let mut fb = Framebuffer::new(self.layout.width(), self.layout.height());
        // Editing area content.
        if let Ok(list) = editor_ops(
            &self.editor,
            RenderOptions {
                cell_names: self.show_names,
                connector_names: self.show_names,
            },
        ) {
            list.render(&self.viewport, &mut fb);
        }
        // Menu panel separators.
        let mut chrome = DisplayList::new();
        let cm = self.layout.cell_menu_area();
        let km = self.layout.command_menu_area();
        chrome.push(DrawOp::Rect {
            rect: cm,
            color: Color::WHITE,
        });
        chrome.push(DrawOp::Rect {
            rect: km,
            color: Color::WHITE,
        });
        // Chrome coordinates are already pixels: identity viewport.
        let identity = Viewport::new(
            Rect::new(
                0,
                0,
                self.layout.width() as i64,
                self.layout.height() as i64,
            ),
            self.layout.width(),
            self.layout.height(),
        );
        chrome.render(&identity, &mut fb);
        // Menu labels (direct pixel text).
        for (i, (_, name)) in self.cell_menu().iter().enumerate() {
            let row = self.layout.cell_menu_row(i);
            if row.y0 < cm.y0 {
                break;
            }
            fb.draw_text(row.x0 + 2, row.y0 + 2, name, Color::WHITE);
        }
        for (i, cmd) in GraphicalCommand::MENU.iter().enumerate() {
            let row = self.layout.command_menu_row(i);
            if row.y0 < km.y0 {
                break;
            }
            let color = if Some(*cmd) == self.command {
                Color::new(255, 255, 0)
            } else {
                Color::WHITE
            };
            fb.draw_text(row.x0 + 2, row.y0 + 2, cmd.label(), color);
        }
        fb
    }

    /// Convenience for scripted tests: a click at the screen position
    /// of a world point.
    ///
    /// # Errors
    ///
    /// As [`InteractiveSession::handle`].
    pub fn click_world(&mut self, world: Point) -> Result<(), RiotError> {
        let (x, y) = self.viewport.to_screen(world);
        self.handle(PointerEvent::click(x, y))
    }

    /// Convenience: a click on a command-menu row.
    ///
    /// # Errors
    ///
    /// As [`InteractiveSession::handle`].
    pub fn click_command(&mut self, cmd: GraphicalCommand) -> Result<(), RiotError> {
        let index = GraphicalCommand::MENU
            .iter()
            .position(|c| *c == cmd)
            .expect("command in menu");
        let row = self.layout.command_menu_row(index);
        let c = row.center();
        self.handle(PointerEvent::click(c.x, c.y))
    }

    /// Convenience: a click on the cell-menu row for `name`.
    ///
    /// # Errors
    ///
    /// [`RiotError::UnknownCell`] when `name` is not in the menu.
    pub fn click_cell(&mut self, name: &str) -> Result<(), RiotError> {
        let index = self
            .cell_menu()
            .iter()
            .position(|(_, n)| n == name)
            .ok_or_else(|| RiotError::UnknownCell(name.to_owned()))?;
        let row = self.layout.cell_menu_row(index);
        let c = row.center();
        self.handle(PointerEvent::click(c.x, c.y))
    }
}

fn snap(v: i64) -> i64 {
    (v + LAMBDA / 2).div_euclid(LAMBDA) * LAMBDA
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_core::Library;

    const GATE: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin OUT right NP 12 10 2
wire NP 2 0 4 12 4
end
";

    fn with_session<R>(f: impl FnOnce(InteractiveSession<'_>) -> R) -> R {
        let mut lib = Library::new();
        lib.load_sticks(GATE).unwrap();
        let ed = Editor::open(&mut lib, "TOP").unwrap();
        let s = InteractiveSession::new(ed, 512, 480);
        f(s)
    }

    #[test]
    fn create_via_menu_clicks() {
        with_session(|mut s| {
            s.click_cell("gate").unwrap();
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(10 * LAMBDA, 10 * LAMBDA)).unwrap();
            assert_eq!(s.editor().instances().len(), 1);
            let bb = s
                .editor()
                .instance_bbox(s.editor().find_instance("I0").unwrap())
                .unwrap();
            // Lower-left snapped near the click.
            assert!(
                bb.lower_left()
                    .manhattan(Point::new(10 * LAMBDA, 10 * LAMBDA))
                    <= 2 * LAMBDA
            );
        });
    }

    #[test]
    fn create_without_selection_is_noop() {
        with_session(|mut s| {
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(0, 0)).unwrap();
            assert_eq!(s.editor().instances().len(), 0);
            assert_eq!(s.status(), "no cell selected");
        });
    }

    #[test]
    fn move_two_click_flow() {
        with_session(|mut s| {
            s.click_cell("gate").unwrap();
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(0, 0)).unwrap();
            s.click_command(GraphicalCommand::Move).unwrap();
            s.click_world(Point::new(6 * LAMBDA, 10 * LAMBDA)).unwrap(); // pick
            s.click_world(Point::new(50 * LAMBDA, 50 * LAMBDA)).unwrap(); // place
            let id = s.editor().find_instance("I0").unwrap();
            let bb = s.editor().instance_bbox(id).unwrap();
            assert!(
                bb.lower_left()
                    .manhattan(Point::new(50 * LAMBDA, 50 * LAMBDA))
                    <= 2 * LAMBDA
            );
        });
    }

    #[test]
    fn connect_and_abut_through_ui() {
        with_session(|mut s| {
            s.click_cell("gate").unwrap();
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(0, 0)).unwrap();
            s.click_world(Point::new(40 * LAMBDA, 8 * LAMBDA)).unwrap();
            // Connect I1.A (from) to I0.OUT (to).
            s.click_command(GraphicalCommand::Connect).unwrap();
            s.click_world(Point::new(40 * LAMBDA, 12 * LAMBDA)).unwrap(); // I1.A
            s.click_world(Point::new(12 * LAMBDA, 10 * LAMBDA)).unwrap(); // I0.OUT
            assert_eq!(s.editor().pending().len(), 1, "status: {}", s.status());
            s.click_command(GraphicalCommand::Abut).unwrap();
            assert!(s.editor().pending().is_empty());
            let i0 = s.editor().find_instance("I0").unwrap();
            let i1 = s.editor().find_instance("I1").unwrap();
            let out = s.editor().world_connector(i0, "OUT").unwrap();
            let a = s.editor().world_connector(i1, "A").unwrap();
            assert_eq!(out.location, a.location);
        });
    }

    #[test]
    fn rotate_and_delete_by_pointing() {
        with_session(|mut s| {
            s.click_cell("gate").unwrap();
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(0, 0)).unwrap();
            s.click_command(GraphicalCommand::Rotate).unwrap();
            s.click_world(Point::new(6 * LAMBDA, 10 * LAMBDA)).unwrap();
            let id = s.editor().find_instance("I0").unwrap();
            assert_eq!(
                s.editor().instance(id).unwrap().transform.orient,
                Orientation::R90
            );
            s.click_command(GraphicalCommand::Delete).unwrap();
            // The rotated box covers different ground; pick its center.
            let bb = s.editor().instance_bbox(id).unwrap();
            s.click_world(bb.center()).unwrap();
            assert_eq!(s.editor().instances().len(), 0);
        });
    }

    #[test]
    fn zoom_toggles_window() {
        with_session(|mut s| {
            let before = s.viewport().window().width();
            s.click_command(GraphicalCommand::ZoomIn).unwrap();
            assert!(s.viewport().window().width() < before);
            s.click_command(GraphicalCommand::ZoomOut).unwrap();
            assert_eq!(s.viewport().window().width(), before);
        });
    }

    #[test]
    fn render_produces_screen() {
        with_session(|mut s| {
            s.click_cell("gate").unwrap();
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(10 * LAMBDA, 10 * LAMBDA)).unwrap();
            let fb = s.render();
            assert!(fb.lit_pixels() > 200, "screen mostly dark");
        });
    }

    #[test]
    fn pan_shifts_window() {
        with_session(|mut s| {
            let before = s.viewport().window();
            s.pan(8, 0); // one full window right
            let after = s.viewport().window();
            assert_eq!(after.x0 - before.x0, before.width());
            assert_eq!(after.y0, before.y0);
            s.pan(-8, 0);
            assert_eq!(s.viewport().window(), before);
        });
    }

    #[test]
    fn undo_redo_via_menu() {
        with_session(|mut s| {
            s.click_cell("gate").unwrap();
            s.click_command(GraphicalCommand::Create).unwrap();
            s.click_world(Point::new(10 * LAMBDA, 10 * LAMBDA)).unwrap();
            assert_eq!(s.editor().instances().len(), 1);
            // The create click issued two commands (create + place).
            s.click_command(GraphicalCommand::Undo).unwrap();
            s.click_command(GraphicalCommand::Undo).unwrap();
            assert_eq!(s.editor().instances().len(), 0);
            assert_eq!(s.status(), "undone");
            s.click_command(GraphicalCommand::Redo).unwrap();
            s.click_command(GraphicalCommand::Redo).unwrap();
            assert_eq!(s.editor().instances().len(), 1);
            s.click_command(GraphicalCommand::Redo).unwrap();
            assert_eq!(s.status(), "nothing to redo");
        });
    }

    #[test]
    fn names_toggle() {
        with_session(|mut s| {
            s.click_command(GraphicalCommand::Names).unwrap();
            assert_eq!(s.status(), "names on");
            s.click_command(GraphicalCommand::Names).unwrap();
            assert_eq!(s.status(), "names off");
        });
    }
}
