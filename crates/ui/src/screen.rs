//! The display organization of paper figure 2.

use riot_geom::Rect;

/// Pixel regions of the Riot screen: "a large editing area next to two
/// small menu areas along the right edge of the screen. … The upper
/// menu area contains the names of the cells … The lower menu contains
/// graphical editing commands."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenLayout {
    width: usize,
    height: usize,
    editing: Rect,
    cell_menu: Rect,
    command_menu: Rect,
    row_height: usize,
}

/// Which part of the screen a pixel landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitRegion {
    /// Inside the editing area; coordinates are editing-area-relative.
    Editing {
        /// x within the editing area.
        x: i64,
        /// y within the editing area.
        y: i64,
    },
    /// On entry `index` of the cell menu.
    CellMenu {
        /// 0-based menu row.
        index: usize,
    },
    /// On entry `index` of the command menu.
    CommandMenu {
        /// 0-based menu row.
        index: usize,
    },
    /// Dead space (menu borders).
    Nothing,
}

impl ScreenLayout {
    /// Splits a `width`×`height` screen: the right 25% (minimum 96 px)
    /// holds the menus, cell menu on top, command menu below.
    ///
    /// # Panics
    ///
    /// Panics for screens too small to split (under 160×80).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 160 && height >= 80, "screen too small");
        let menu_w = (width / 4).max(96);
        let edit_w = width - menu_w;
        let half = height / 2;
        ScreenLayout {
            width,
            height,
            editing: Rect::new(0, 0, edit_w as i64, height as i64),
            cell_menu: Rect::new(edit_w as i64, half as i64, width as i64, height as i64),
            command_menu: Rect::new(edit_w as i64, 0, width as i64, half as i64),
            row_height: 12,
        }
    }

    /// Screen width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Screen height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The editing area, in screen pixels.
    pub fn editing_area(&self) -> Rect {
        self.editing
    }

    /// The cell menu area (upper right).
    pub fn cell_menu_area(&self) -> Rect {
        self.cell_menu
    }

    /// The command menu area (lower right).
    pub fn command_menu_area(&self) -> Rect {
        self.command_menu
    }

    /// Pixel height of one menu row.
    pub fn row_height(&self) -> usize {
        self.row_height
    }

    /// Pixel rectangle of cell-menu row `index` (top row is index 0).
    pub fn cell_menu_row(&self, index: usize) -> Rect {
        let top = self.cell_menu.y1 - (index as i64) * self.row_height as i64;
        Rect::new(
            self.cell_menu.x0,
            top - self.row_height as i64,
            self.cell_menu.x1,
            top,
        )
    }

    /// Pixel rectangle of command-menu row `index` (top row is 0).
    pub fn command_menu_row(&self, index: usize) -> Rect {
        let top = self.command_menu.y1 - (index as i64) * self.row_height as i64;
        Rect::new(
            self.command_menu.x0,
            top - self.row_height as i64,
            self.command_menu.x1,
            top,
        )
    }

    /// Hit test: which region a screen pixel lands in.
    pub fn hit(&self, x: i64, y: i64) -> HitRegion {
        let p = riot_geom::Point::new(x, y);
        if self.editing.contains(p) && x < self.editing.x1 {
            return HitRegion::Editing { x, y };
        }
        if self.cell_menu.contains(p) {
            let index = ((self.cell_menu.y1 - y) / self.row_height as i64).max(0) as usize;
            return HitRegion::CellMenu { index };
        }
        if self.command_menu.contains(p) {
            let index = ((self.command_menu.y1 - y) / self.row_height as i64).max(0) as usize;
            return HitRegion::CommandMenu { index };
        }
        HitRegion::Nothing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_screen() {
        let l = ScreenLayout::new(512, 480);
        assert_eq!(l.editing_area().x0, 0);
        assert!(l.editing_area().width() >= 512 * 3 / 4 - 1);
        assert_eq!(l.cell_menu_area().x0, l.command_menu_area().x0);
        assert!(l.cell_menu_area().y0 >= l.command_menu_area().y1 - 1);
    }

    #[test]
    fn hits_dispatch_to_regions() {
        let l = ScreenLayout::new(512, 480);
        assert!(matches!(l.hit(10, 10), HitRegion::Editing { .. }));
        assert!(matches!(l.hit(500, 470), HitRegion::CellMenu { index: 0 }));
        assert!(matches!(l.hit(500, 10), HitRegion::CommandMenu { .. }));
        assert!(matches!(l.hit(-5, -5), HitRegion::Nothing));
    }

    #[test]
    fn menu_rows_count_downward() {
        let l = ScreenLayout::new(512, 480);
        let r0 = l.cell_menu_row(0);
        let r1 = l.cell_menu_row(1);
        assert_eq!(r0.y0, r1.y1);
        let c = r1.center();
        assert_eq!(l.hit(c.x, c.y), HitRegion::CellMenu { index: 1 });
    }

    #[test]
    #[should_panic]
    fn tiny_screen_panics() {
        let _ = ScreenLayout::new(100, 50);
    }
}
