//! Random pointer events never panic the interactive session, and the
//! screen always renders.

use proptest::prelude::*;
use riot_core::{Editor, Library};
use riot_ui::{InteractiveSession, PointerEvent};

fn library() -> Library {
    let mut lib = Library::new();
    lib.add_sticks_cell(riot_cells::shift_register()).unwrap();
    lib.add_sticks_cell(riot_cells::nand2()).unwrap();
    lib
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_clicks_never_panic(
        clicks in prop::collection::vec((-20i64..540, -20i64..500), 1..40)
    ) {
        let mut lib = library();
        let ed = Editor::open(&mut lib, "FUZZ").unwrap();
        let mut s = InteractiveSession::new(ed, 512, 480);
        for (x, y) in clicks {
            // Errors are legitimate (e.g. ABUT with nothing pending);
            // panics are not.
            let _ = s.handle(PointerEvent::click(x, y));
        }
        let fb = s.render();
        prop_assert_eq!(fb.width(), 512);
    }

    #[test]
    fn random_commands_with_undo_never_panic(
        steps in prop::collection::vec((0usize..16, -20i64..540, -20i64..500), 1..30)
    ) {
        let mut lib = library();
        let ed = Editor::open(&mut lib, "UNDO").unwrap();
        let mut s = InteractiveSession::new(ed, 512, 480);
        for (cmd, x, y) in steps {
            // Arm a menu command (UNDO and REDO execute immediately),
            // then click somewhere in the editing area.
            let menu = riot_ui::GraphicalCommand::MENU;
            let _ = s.arm(menu[cmd % menu.len()]);
            let _ = s.handle(PointerEvent::click(x, y));
        }
        // Unwind whatever the random session did; the editor must
        // survive a full rewind followed by a full replay.
        let ed = s.editor_mut();
        while ed.undo().unwrap() {}
        while ed.redo().unwrap() {}
        let fb = s.render();
        prop_assert_eq!(fb.width(), 512);
    }

    #[test]
    fn zoom_sequences_keep_view_usable(zooms in prop::collection::vec(prop::bool::ANY, 1..12)) {
        let mut lib = library();
        let ed = Editor::open(&mut lib, "Z").unwrap();
        let mut s = InteractiveSession::new(ed, 512, 480);
        for z in zooms {
            let cmd = if z {
                riot_ui::GraphicalCommand::ZoomIn
            } else {
                riot_ui::GraphicalCommand::ZoomOut
            };
            s.arm(cmd).unwrap();
            prop_assert!(s.viewport().window().width() > 0);
            prop_assert!(s.viewport().window().height() > 0);
        }
    }
}
