//! Caltech Intermediate Form (CIF 2.0) for the RIOT reproduction.
//!
//! CIF is the geometrical interchange format of Riot's era (Sproull &
//! Lyon 1980, in Mead & Conway). Riot reads leaf cells in CIF, writes CIF
//! for mask generation, and extends CIF with a user extension that marks
//! **connector locations** so its logical connection operations can be
//! performed on CIF cells.
//!
//! This crate provides:
//!
//! * a faithful lexer/parser for CIF 2.0 ([`parse`]): `DS`/`DF`/`DD`
//!   definitions, `C` calls with `T`/`M`/`R` transforms, `B` boxes, `P`
//!   polygons, `W` wires, `R` round flashes, `L` layers, comments, and
//!   numbered user extensions;
//! * the Riot connector extension: `94 name x y layer [width];`
//!   (the historical Caltech label extension, carrying layer and width);
//! * extension `9 name;` naming a cell definition;
//! * a semantic model ([`model::CifFile`], [`model::CifCell`]) with
//!   resolved layers, transforms and connectors;
//! * a writer ([`write`]) producing canonical CIF text;
//! * a flattener ([`flatten`]) instantiating the hierarchy into painted
//!   geometry for rendering and area accounting.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "DS 1 1 1;\n9 inv;\nL NM; B 400 250 200 125;\n94 in 0 125 NM 250;\nDF;\nC 1 T 1000 0;\nE";
//! let file = riot_cif::parse(text)?;
//! let cell = file.cell_by_name("inv").expect("named cell");
//! assert_eq!(cell.connectors.len(), 1);
//! let out = riot_cif::to_text(&file);
//! let again = riot_cif::parse(&out)?;
//! assert_eq!(again.cells().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod flatten;
pub mod lex;
pub mod model;
pub mod parse;
pub mod write;

pub use ast::{CifCommand, TransformPrimitive};
pub use error::ParseCifError;
pub use flatten::{
    flatten, flatten_counted, flatten_recursive, FlatShape, FlattenCache, FlattenDelta,
    FlattenStats,
};
pub use model::{CifCell, CifConnector, CifFile, Geometry, Shape};
pub use parse::{parse, parse_commands};
pub use write::{to_text, write_commands};
