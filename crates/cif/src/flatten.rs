//! Hierarchy flattening: instantiate every call down to painted shapes.
//!
//! Riot renders and measures cells by walking the hierarchy; the
//! flattener produces the fully-instantiated shape list used for
//! plotting, mask generation checks and area accounting.
//!
//! Flatten runs after essentially every editor command (the checking
//! pipeline is flatten → DRC → render), so it is a hot path. The
//! production entry points ([`flatten`], [`flatten_counted`]) therefore
//! **memoize**: each symbol's flattened local-coordinate shape list is
//! computed once — DAG-sized tree-walking — and every further
//! instantiation is a flat pass applying one transform per shape, with
//! translation-only placements taking a validation-free fast path.
//! Large instantiations are spread across the [`riot_geom::par`]
//! worker pool. The original recursive walker is retained as
//! [`flatten_recursive`] / [`flatten_cell`] for differential tests and
//! benchmarks.
//!
//! # Memoization invariants
//!
//! The memo is only correct because CIF hierarchies are *separated*:
//! a symbol's geometry is fixed at definition time and a call can only
//! reference already-defined symbols, so a cached local-coordinate
//! expansion can never be invalidated mid-flatten. The depth-64 cycle
//! guard is preserved exactly: every memo entry records its call-chain
//! *height*, and an instantiation at depth `d` of a cell with height
//! `h` fails iff `d + h` exceeds the limit — the same condition the
//! recursive walker checks one call at a time.

use crate::error::{ErrorKind, ParseCifError};
use crate::model::{CifFile, Geometry};
use riot_geom::{par, Layer, Orientation, Path, Point, Rect, Transform};
use std::borrow::Cow;
use std::collections::HashMap;

/// A shape instantiated into top-level coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatShape {
    /// Mask layer.
    pub layer: Layer,
    /// Geometry in absolute coordinates.
    pub geometry: Geometry,
    /// Instantiation depth (0 = drawn at top level).
    pub depth: usize,
}

/// Counters from one memoized flatten, also mirrored into the
/// `riot-trace` registry (`cif.flatten.memo.hits` / `.misses`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlattenStats {
    /// Shapes in the flattened output.
    pub shapes: usize,
    /// Distinct symbols expanded into the memo (= cache misses).
    pub memo_cells: usize,
    /// Calls served from the memo instead of re-walking a subtree.
    pub memo_hits: usize,
    /// Calls that had to expand their symbol (first encounters).
    pub memo_misses: usize,
}

/// Maximum instantiation depth; deeper means a definition cycle in a
/// well-formed separated hierarchy.
const MAX_DEPTH: usize = 64;

/// Instantiation jobs below this many output shapes stay serial — the
/// scoped pool's spawn latency would dominate tiny flattens.
const PAR_SHAPE_CUTOFF: usize = 8192;

/// Shapes per parallel instantiation job.
const PAR_CHUNK: usize = 4096;

/// Flattens the file's top-level content (shapes and calls) into
/// absolute-coordinate shapes.
///
/// # Errors
///
/// Returns an error if a call references an undefined symbol or the
/// hierarchy is deeper than 64 levels (which in a well-formed separated
/// hierarchy means a definition cycle).
pub fn flatten(file: &CifFile) -> Result<Vec<FlatShape>, ParseCifError> {
    let mut sp = riot_trace::span!("cif.flatten");
    let (shapes, stats) = flatten_counted(file)?;
    sp.field("shapes", stats.shapes as u64);
    Ok(shapes)
}

/// One symbol's flattened expansion in its own coordinate system.
struct MemoEntry {
    /// Subtree shapes; `depth` is *relative* (0 = the symbol's own).
    shapes: Vec<FlatShape>,
    /// Longest call chain below this symbol (leaf = 0).
    height: usize,
}

#[derive(Default)]
struct Memo {
    cells: HashMap<u32, MemoEntry>,
    hits: usize,
    misses: usize,
}

/// Memoized flatten returning the shape list plus cache statistics.
///
/// Identical output (including order and `depth` values) to
/// [`flatten_recursive`]; see the module docs for why the memo is
/// sound and how the depth guard is preserved.
///
/// # Errors
///
/// Same conditions as [`flatten`].
pub fn flatten_counted(file: &CifFile) -> Result<(Vec<FlatShape>, FlattenStats), ParseCifError> {
    let mut sp = riot_trace::span!("cif.flatten.memo");
    let mut memo = Memo::default();
    for call in file.top_calls() {
        build_memo(file, call.cell, 1, &mut memo)?;
    }

    // Exact output size up front (the counted stats): no growth
    // reallocations while instantiating.
    let total: usize = file.top_shapes().len()
        + file
            .top_calls()
            .iter()
            .map(|c| memo.cells[&c.cell].shapes.len())
            .sum::<usize>();
    let mut out = Vec::with_capacity(total);

    // Top-level shapes pass through untransformed: `Cow::Borrowed`
    // until the single clone into the output.
    for shape in file.top_shapes() {
        out.push(FlatShape {
            layer: shape.layer,
            geometry: transform_geometry_cow(&shape.geometry, Transform::IDENTITY).into_owned(),
            depth: 0,
        });
    }

    // Instantiate each top call from its memo entry: one transform
    // application per shape, no tree left to walk. Large outputs are
    // chunked across the worker pool.
    if total < PAR_SHAPE_CUTOFF || par::threads() == 1 {
        for call in file.top_calls() {
            let entry = &memo.cells[&call.cell];
            instantiate_into(&entry.shapes, call.transform, &mut out);
        }
    } else {
        let jobs: Vec<(Transform, &[FlatShape])> = file
            .top_calls()
            .iter()
            .flat_map(|call| {
                memo.cells[&call.cell]
                    .shapes
                    .chunks(PAR_CHUNK)
                    .map(|chunk| (call.transform, chunk))
            })
            .collect();
        let produced = par::map_heavy(&jobs, |(t, chunk)| {
            let mut part = Vec::with_capacity(chunk.len());
            instantiate_into(chunk, *t, &mut part);
            part
        });
        for part in produced {
            out.extend(part);
        }
    }
    debug_assert_eq!(out.len(), total);

    let stats = FlattenStats {
        shapes: out.len(),
        memo_cells: memo.cells.len(),
        memo_hits: memo.hits,
        memo_misses: memo.misses,
    };
    let registry = riot_trace::registry();
    registry
        .counter("cif.flatten.memo.hits")
        .add(stats.memo_hits as u64);
    registry
        .counter("cif.flatten.memo.misses")
        .add(stats.memo_misses as u64);
    sp.field("shapes", stats.shapes as u64);
    sp.field("memo_hits", stats.memo_hits as u64);
    Ok((out, stats))
}

/// Applies `t` to a memoized local-coordinate slice, pushing shapes one
/// instantiation level deeper. The translation-only check is hoisted
/// out of the loop: placements in assembled layouts are overwhelmingly
/// pure translations, and the fast path is a branch-free shift per
/// shape with no path re-validation.
fn instantiate_into(local: &[FlatShape], t: Transform, out: &mut Vec<FlatShape>) {
    if t.orient == Orientation::R0 {
        out.extend(local.iter().map(|fs| FlatShape {
            layer: fs.layer,
            geometry: fs.geometry.translated(t.offset),
            depth: fs.depth + 1,
        }));
    } else {
        out.extend(local.iter().map(|fs| FlatShape {
            layer: fs.layer,
            geometry: transform_geometry(&fs.geometry, t),
            depth: fs.depth + 1,
        }));
    }
}

/// Ensures `memo` holds the expansion of symbol `id`, returning the
/// symbol's call-chain height. `chain` is the instantiation depth this
/// call occurs at, mirroring the recursive walker's depth counter so
/// undefined-symbol and too-deep errors fire under exactly the same
/// conditions.
fn build_memo(
    file: &CifFile,
    id: u32,
    chain: usize,
    memo: &mut Memo,
) -> Result<usize, ParseCifError> {
    if let Some(entry) = memo.cells.get(&id) {
        memo.hits += 1;
        // The recursive walker would have re-entered every level of
        // this subtree; its deepest entry is `chain + height`.
        if chain + entry.height > MAX_DEPTH {
            return Err(ParseCifError::new(0, ErrorKind::UnbalancedDefinition));
        }
        return Ok(entry.height);
    }
    memo.misses += 1;
    if chain > MAX_DEPTH {
        return Err(ParseCifError::new(0, ErrorKind::UnbalancedDefinition));
    }
    let cell = file
        .cell(id)
        .ok_or_else(|| ParseCifError::new(0, ErrorKind::UndefinedSymbol(id)))?;

    // Expand children first (DAG post-order), accumulating the exact
    // output size so composition allocates once.
    let mut height = 0usize;
    let mut total = cell.shapes.len();
    for call in &cell.calls {
        let child_height = build_memo(file, call.cell, chain + 1, memo)?;
        height = height.max(1 + child_height);
        total += memo.cells[&call.cell].shapes.len();
    }

    let mut shapes = Vec::with_capacity(total);
    for shape in &cell.shapes {
        shapes.push(FlatShape {
            layer: shape.layer,
            geometry: shape.geometry.clone(),
            depth: 0,
        });
    }
    for call in &cell.calls {
        let child = &memo.cells[&call.cell];
        instantiate_into(&child.shapes, call.transform, &mut shapes);
    }
    memo.cells.insert(id, MemoEntry { shapes, height });
    Ok(height)
}

/// What one [`FlattenCache::update`] did, and where.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlattenDelta {
    /// First sync (or top-structure churn): everything is new and
    /// `dirty` is empty — callers treat the whole output as damaged.
    pub full: bool,
    /// World-space rects covering every output shape that changed
    /// (old and new positions). Empty when nothing changed.
    pub dirty: Vec<Rect>,
    /// Symbols whose expansions were recomputed.
    pub reexpanded_symbols: usize,
    /// Top-level segments (calls or the top-shape prefix) patched.
    pub patched_segments: usize,
}

/// A persistent, incrementally-maintained flatten.
///
/// Where [`flatten_counted`] memoizes *within* one call, this cache
/// survives across edits: [`update`](Self::update) diffs the file
/// against the last-synced definitions, re-expands only symbols whose
/// definition changed — or that transitively call one that did, found
/// through a reverse-dependency map — and patches the retained output
/// in place, splicing only the top-level segments whose content moved.
/// It returns the world rects those segments covered before and after,
/// which is exactly the damage the downstream incremental DRC and
/// dirty-band render need.
///
/// The retained output is always bit-identical (order, depth values)
/// to what [`flatten_counted`] would produce from scratch — the
/// differential property tests in `tests/flatten_differential.rs`
/// prove it under random edit sequences.
#[derive(Default)]
pub struct FlattenCache {
    /// Symbol definitions as of the last sync, for diffing.
    defs: HashMap<u32, crate::model::CifCell>,
    memo: Memo,
    /// Top-level structure as of the last sync.
    top_shapes: Vec<crate::model::Shape>,
    top_calls: Vec<crate::model::CifCall>,
    /// The retained flattened output: top-shape prefix, then one
    /// contiguous segment per top call, in call order.
    output: Vec<FlatShape>,
    /// Per-top-call segment starts (segment `i` ends where `i + 1`
    /// starts; the last ends at `output.len()`). The top-shape prefix
    /// occupies `0..starts.first()`.
    starts: Vec<usize>,
    synced: bool,
    updates: u64,
    patched_segments: u64,
}

impl FlattenCache {
    /// An empty cache; the first [`update`](Self::update) is a full
    /// flatten.
    pub fn new() -> FlattenCache {
        FlattenCache::default()
    }

    /// The retained flattened output for the last synced file.
    pub fn shapes(&self) -> &[FlatShape] {
        &self.output
    }

    /// Memo statistics over the cache's lifetime (hits accumulate
    /// across updates — the cache-hit-rate numerator riot-serve
    /// reports per session).
    pub fn stats(&self) -> FlattenStats {
        FlattenStats {
            shapes: self.output.len(),
            memo_cells: self.memo.cells.len(),
            memo_hits: self.memo.hits,
            memo_misses: self.memo.misses,
        }
    }

    /// Updates performed and top-level segments patched (rather than
    /// rebuilt) over the cache's lifetime.
    pub fn patch_counts(&self) -> (u64, u64) {
        (self.updates, self.patched_segments)
    }

    /// Syncs the cache to `file`, returning the damage the edit
    /// caused.
    ///
    /// # Errors
    ///
    /// Same conditions as [`flatten`]; the cache is left cleared on
    /// error (the next update rebuilds fully).
    pub fn update(&mut self, file: &CifFile) -> Result<FlattenDelta, ParseCifError> {
        let mut sp = riot_trace::span!("cif.flatten.update");
        self.updates += 1;
        match self.update_inner(file) {
            Ok(delta) => {
                self.patched_segments += delta.patched_segments as u64;
                sp.field("dirty", delta.dirty.len() as u64);
                sp.field("patched", delta.patched_segments as u64);
                debug_assert_eq!(
                    self.output,
                    flatten_counted(file)?.0,
                    "cache must match a from-scratch flatten"
                );
                Ok(delta)
            }
            Err(e) => {
                *self = FlattenCache {
                    updates: self.updates,
                    patched_segments: self.patched_segments,
                    ..FlattenCache::default()
                };
                Err(e)
            }
        }
    }

    fn update_inner(&mut self, file: &CifFile) -> Result<FlattenDelta, ParseCifError> {
        // 1. Which symbol definitions changed since the last sync?
        let mut dirty_syms: Vec<u32> = Vec::new();
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for cell in file.cells() {
            seen.insert(cell.id);
            if self.defs.get(&cell.id) != Some(cell) {
                dirty_syms.push(cell.id);
            }
        }
        for &id in self.defs.keys() {
            if !seen.contains(&id) {
                dirty_syms.push(id); // removed definition
            }
        }

        // 2. Close over reverse dependencies: a symbol calling a dirty
        // symbol is itself dirty — its cached expansion embeds the
        // callee's shapes.
        let mut rev: HashMap<u32, Vec<u32>> = HashMap::new();
        for cell in file.cells() {
            for call in &cell.calls {
                rev.entry(call.cell).or_default().push(cell.id);
            }
        }
        let mut dirty_set: std::collections::HashSet<u32> = dirty_syms.iter().copied().collect();
        let mut work = dirty_syms;
        while let Some(id) = work.pop() {
            for &caller in rev.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                if dirty_set.insert(caller) {
                    work.push(caller);
                }
            }
        }
        for id in &dirty_set {
            self.memo.cells.remove(id);
        }
        let reexpanded = dirty_set.len();

        // 3. Re-expand what the top calls need (memo hits for clean
        // symbols, rebuilds for dirty ones — the same depth guard as
        // flatten_counted).
        for call in file.top_calls() {
            build_memo(file, call.cell, 1, &mut self.memo)?;
        }

        // 4. Patch the retained output. Segment 0 is the top-shape
        // prefix; segment i+1 is top call i. A segment is stale when
        // its call changed or its symbol was re-expanded.
        if !self.synced {
            return self.rebuild_all(file, reexpanded);
        }
        let old_calls = std::mem::take(&mut self.top_calls);
        let n_old = old_calls.len();
        let n_new = file.top_calls().len();
        let mut dirty: Vec<Rect> = Vec::new();
        let mut patched = 0usize;

        // Stale segments, new content computed up front (splices are
        // applied back-to-front so earlier ranges stay valid).
        let mut splices: Vec<(usize, Vec<FlatShape>)> = Vec::new();
        if file.top_shapes() != self.top_shapes.as_slice() {
            let mut seg = Vec::with_capacity(file.top_shapes().len());
            for shape in file.top_shapes() {
                seg.push(FlatShape {
                    layer: shape.layer,
                    geometry: shape.geometry.clone(),
                    depth: 0,
                });
            }
            splices.push((0, seg));
        }
        for i in 0..n_old.max(n_new) {
            let old = old_calls.get(i);
            let new = file.top_calls().get(i);
            let stale = match (old, new) {
                (Some(o), Some(n)) => o != n || dirty_set.contains(&n.cell),
                _ => true, // added or removed call
            };
            if !stale {
                continue;
            }
            let mut seg = Vec::new();
            if let Some(n) = new {
                let entry = &self.memo.cells[&n.cell];
                seg.reserve(entry.shapes.len());
                instantiate_into(&entry.shapes, n.transform, &mut seg);
            }
            if let Some(bb) = bounding_box_of(&seg) {
                dirty.push(bb);
            }
            splices.push((i + 1, seg));
        }

        // Back-to-front, with ranges fixed against the pre-splice
        // layout: a splice only moves content at higher positions, so
        // every earlier (smaller) range stays valid — including
        // multiple appends at the old end, which reverse application
        // re-orders correctly.
        let old_len = self.output.len();
        for (seg_idx, new_seg) in splices.into_iter().rev() {
            let (start, end) = self.segment_range(seg_idx, n_old, old_len);
            if let Some(bb) = bounding_box_of(&self.output[start..end]) {
                dirty.push(bb);
            }
            patched += 1;
            self.output.splice(start..end, new_seg);
        }

        // Recompute segment starts from the synced sizes.
        self.top_shapes = file.top_shapes().to_vec();
        self.top_calls = file.top_calls().to_vec();
        self.defs = file
            .cells()
            .into_iter()
            .map(|c| (c.id, c.clone()))
            .collect();
        self.starts.clear();
        let mut at = self.top_shapes.len();
        for call in &self.top_calls {
            self.starts.push(at);
            at += self.memo.cells[&call.cell].shapes.len();
        }
        debug_assert_eq!(at, self.output.len());

        Ok(FlattenDelta {
            full: false,
            dirty,
            reexpanded_symbols: reexpanded,
            patched_segments: patched,
        })
    }

    /// `[start, end)` of segment `seg_idx` in the *old* output of
    /// length `old_len` (0 = top-shape prefix, `i + 1` = old top call
    /// `i`; a segment past the old call count is empty at the old
    /// end).
    fn segment_range(&self, seg_idx: usize, n_old_calls: usize, old_len: usize) -> (usize, usize) {
        if seg_idx == 0 {
            return (0, self.starts.first().copied().unwrap_or(old_len));
        }
        let i = seg_idx - 1;
        if i >= n_old_calls {
            return (old_len, old_len);
        }
        let start = self.starts[i];
        let end = self.starts.get(i + 1).copied().unwrap_or(old_len);
        (start, end)
    }

    fn rebuild_all(
        &mut self,
        file: &CifFile,
        reexpanded: usize,
    ) -> Result<FlattenDelta, ParseCifError> {
        self.output.clear();
        self.starts.clear();
        for shape in file.top_shapes() {
            self.output.push(FlatShape {
                layer: shape.layer,
                geometry: shape.geometry.clone(),
                depth: 0,
            });
        }
        for call in file.top_calls() {
            self.starts.push(self.output.len());
            let entry = &self.memo.cells[&call.cell];
            instantiate_into(&entry.shapes, call.transform, &mut self.output);
        }
        self.top_shapes = file.top_shapes().to_vec();
        self.top_calls = file.top_calls().to_vec();
        self.defs = file
            .cells()
            .into_iter()
            .map(|c| (c.id, c.clone()))
            .collect();
        self.synced = true;
        Ok(FlattenDelta {
            full: true,
            dirty: Vec::new(),
            reexpanded_symbols: reexpanded,
            patched_segments: 0,
        })
    }
}

/// The original recursive flatten, retained as the reference
/// implementation for differential tests and the spatial benchmark.
/// Walks the full instantiation *tree* (re-expanding shared symbols at
/// every call) where [`flatten`] walks the definition *DAG* once.
///
/// # Errors
///
/// Same conditions as [`flatten`].
pub fn flatten_recursive(file: &CifFile) -> Result<Vec<FlatShape>, ParseCifError> {
    let mut out = Vec::new();
    for shape in file.top_shapes() {
        out.push(FlatShape {
            layer: shape.layer,
            geometry: shape.geometry.clone(),
            depth: 0,
        });
    }
    for call in file.top_calls() {
        flatten_cell(file, call.cell, call.transform, 1, &mut out)?;
    }
    Ok(out)
}

/// Flattens one definition (and everything below it) under `transform`
/// by direct recursion.
///
/// # Errors
///
/// Same conditions as [`flatten`].
pub fn flatten_cell(
    file: &CifFile,
    id: u32,
    transform: Transform,
    depth: usize,
    out: &mut Vec<FlatShape>,
) -> Result<(), ParseCifError> {
    if depth > MAX_DEPTH {
        return Err(ParseCifError::new(0, ErrorKind::UnbalancedDefinition));
    }
    let cell = file
        .cell(id)
        .ok_or_else(|| ParseCifError::new(0, ErrorKind::UndefinedSymbol(id)))?;
    for shape in &cell.shapes {
        out.push(FlatShape {
            layer: shape.layer,
            geometry: transform_geometry(&shape.geometry, transform),
            depth,
        });
    }
    for call in &cell.calls {
        flatten_cell(
            file,
            call.cell,
            call.transform.then(transform),
            depth + 1,
            out,
        )?;
    }
    Ok(())
}

/// Maps geometry through a Manhattan transform.
///
/// Pure translations (the overwhelmingly common placement in assembled
/// layouts) take a fast path through [`Geometry::translated`], which
/// shifts wire vertices without re-validating the path.
pub fn transform_geometry(g: &Geometry, t: Transform) -> Geometry {
    if t.orient == Orientation::R0 {
        return g.translated(t.offset);
    }
    match g {
        Geometry::Box(r) => Geometry::Box(t.apply_rect(*r)),
        Geometry::Polygon(pts) => Geometry::Polygon(pts.iter().map(|&p| t.apply(p)).collect()),
        Geometry::Wire { width, path } => {
            let pts: Vec<Point> = path.points().iter().map(|&p| t.apply(p)).collect();
            Geometry::Wire {
                width: *width,
                path: Path::from_points(pts)
                    .expect("Manhattan transform preserves Manhattan paths"),
            }
        }
        Geometry::Flash { diameter, center } => Geometry::Flash {
            diameter: *diameter,
            center: t.apply(*center),
        },
    }
}

/// Like [`transform_geometry`] but allocation-free for the identity
/// transform: callers that only *read* the result (bounding boxes,
/// area sums) never pay for a clone, and owned output is cloned only
/// at the final `into_owned`.
pub fn transform_geometry_cow(g: &Geometry, t: Transform) -> Cow<'_, Geometry> {
    if t == Transform::IDENTITY {
        Cow::Borrowed(g)
    } else {
        Cow::Owned(transform_geometry(g, t))
    }
}

/// Bounding box of a cell **including** everything it instantiates.
///
/// Served from the memoized expansion: nothing is cloned or
/// re-transformed just to take a bounding box.
///
/// # Errors
///
/// Same conditions as [`flatten`]. Returns `Ok(None)` for a cell that
/// paints nothing anywhere in its subtree.
pub fn deep_bounding_box(file: &CifFile, id: u32) -> Result<Option<Rect>, ParseCifError> {
    let mut memo = Memo::default();
    build_memo(file, id, 1, &mut memo)?;
    Ok(bounding_box_of(&memo.cells[&id].shapes))
}

/// Bounding box of a flattened shape list.
pub fn bounding_box_of(shapes: &[FlatShape]) -> Option<Rect> {
    let mut bb: Option<Rect> = None;
    for s in shapes {
        let b = s.geometry.bounding_box();
        bb = Some(match bb {
            Some(acc) => acc.union(b),
            None => b,
        });
    }
    bb
}

/// Sum of painted bounding-box areas per layer, for area accounting.
/// Overlaps are counted twice; Riot-era area comparisons used cell
/// bounding boxes, so this is a diagnostic, not a mask-area integral.
pub fn painted_area_by_layer(shapes: &[FlatShape]) -> Vec<(Layer, i128)> {
    let mut totals: Vec<(Layer, i128)> = Vec::new();
    for s in shapes {
        let area = s.geometry.bounding_box().area();
        match totals.iter_mut().find(|(l, _)| *l == s.layer) {
            Some((_, t)) => *t += area,
            None => totals.push((s.layer, area)),
        }
    }
    totals.sort_by_key(|&(l, _)| l);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const HIER: &str = "\
DS 1;
L NM; B 10 10 5 5;
DF;
DS 2;
C 1 T 0 0;
C 1 T 20 0;
DF;
C 2 T 100 100;
E";

    #[test]
    fn flattens_two_levels() {
        let f = parse(HIER).unwrap();
        let shapes = flatten(&f).unwrap();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].depth, 2);
        assert_eq!(
            shapes[0].geometry.bounding_box(),
            Rect::new(100, 100, 110, 110)
        );
        assert_eq!(
            shapes[1].geometry.bounding_box(),
            Rect::new(120, 100, 130, 110)
        );
    }

    #[test]
    fn memo_output_equals_recursive_output() {
        let f = parse(HIER).unwrap();
        let (memoized, stats) = flatten_counted(&f).unwrap();
        let recursive = flatten_recursive(&f).unwrap();
        assert_eq!(memoized, recursive, "same shapes in the same order");
        assert_eq!(stats.shapes, 2);
        assert_eq!(stats.memo_cells, 2);
        // Symbol 1 is called twice by symbol 2: one miss, one hit.
        assert_eq!(stats.memo_hits, 1);
        assert_eq!(stats.memo_misses, 2);
    }

    #[test]
    fn deep_bbox() {
        let f = parse(HIER).unwrap();
        assert_eq!(
            deep_bounding_box(&f, 2).unwrap(),
            Some(Rect::new(0, 0, 30, 10))
        );
        assert_eq!(
            deep_bounding_box(&f, 1).unwrap(),
            Some(Rect::new(0, 0, 10, 10))
        );
    }

    #[test]
    fn empty_cell_has_no_bbox() {
        let f = parse("DS 1;DF;E").unwrap();
        assert_eq!(deep_bounding_box(&f, 1).unwrap(), None);
    }

    #[test]
    fn rotation_applies_through_hierarchy() {
        let text = "DS 1;L NM;B 10 4 5 2;DF;DS 2;C 1 R 0 1;DF;C 2;E";
        let f = parse(text).unwrap();
        let shapes = flatten(&f).unwrap();
        // The 10x4 box rotated 90° becomes 4x10.
        let bb = shapes[0].geometry.bounding_box();
        assert_eq!(bb.width(), 4);
        assert_eq!(bb.height(), 10);
    }

    #[test]
    fn cycle_detected() {
        // A cycle cannot be written in strict CIF (definition before
        // call), but the model can be constructed programmatically.
        use crate::model::{CifCall, CifCell, CifFile};
        let mut f = CifFile::new();
        f.insert_cell(CifCell {
            id: 1,
            calls: vec![CifCall {
                cell: 1,
                transform: Transform::IDENTITY,
            }],
            ..CifCell::default()
        });
        f.push_top_call(CifCall {
            cell: 1,
            transform: Transform::IDENTITY,
        });
        assert!(flatten(&f).is_err());
        assert!(flatten_recursive(&f).is_err());
    }

    #[test]
    fn depth_guard_applies_to_memo_hits() {
        // A 64-deep linear chain: each cell calls the next. Flattening
        // the whole chain exceeds MAX_DEPTH both recursively and
        // through the memo (entry height check), even though no single
        // memo build recurses past the guard.
        use crate::model::{CifCall, CifCell, CifFile, Shape};
        let mut f = CifFile::new();
        f.insert_cell(CifCell {
            id: 1,
            shapes: vec![Shape {
                layer: Layer::Metal,
                geometry: Geometry::Box(Rect::new(0, 0, 10, 10)),
            }],
            ..CifCell::default()
        });
        for id in 2..=65 {
            f.insert_cell(CifCell {
                id,
                calls: vec![CifCall {
                    cell: id - 1,
                    transform: Transform::IDENTITY,
                }],
                ..CifCell::default()
            });
        }
        // Depth 64 from the top: still legal.
        f.push_top_call(CifCall {
            cell: 64,
            transform: Transform::IDENTITY,
        });
        assert_eq!(flatten(&f).unwrap().len(), 1);
        // One level deeper: both implementations reject.
        f.push_top_call(CifCall {
            cell: 65,
            transform: Transform::IDENTITY,
        });
        assert!(flatten_recursive(&f).is_err());
        assert!(flatten(&f).is_err());
    }

    #[test]
    fn translation_fast_path_matches_full_apply() {
        let path =
            Path::from_points([Point::new(0, 0), Point::new(30, 0), Point::new(30, 20)]).unwrap();
        let wire = Geometry::Wire { width: 4, path };
        let t = Transform::translate(Point::new(7, -3));
        let fast = transform_geometry(&wire, t);
        // Reference: the pre-fast-path application through `apply`.
        let Geometry::Wire { path: p, .. } = &wire else {
            unreachable!()
        };
        let full = Geometry::Wire {
            width: 4,
            path: Path::from_points(p.points().iter().map(|&q| t.apply(q)).collect::<Vec<_>>())
                .unwrap(),
        };
        assert_eq!(fast, full);
    }

    #[test]
    fn cow_transform_borrows_identity() {
        let g = Geometry::Box(Rect::new(0, 0, 5, 5));
        assert!(matches!(
            transform_geometry_cow(&g, Transform::IDENTITY),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            transform_geometry_cow(&g, Transform::translate(Point::new(1, 0))),
            Cow::Owned(_)
        ));
    }

    #[test]
    fn cache_first_update_is_full_then_patches() {
        let f = parse(HIER).unwrap();
        let mut cache = FlattenCache::new();
        let delta = cache.update(&f).unwrap();
        assert!(delta.full);
        assert_eq!(cache.shapes(), flatten_counted(&f).unwrap().0.as_slice());

        // No edit: a clean update touches nothing.
        let delta = cache.update(&f).unwrap();
        assert_eq!(delta, FlattenDelta::default());

        // Move the single top call: one segment patched, dirty covers
        // the old and new positions.
        let mut f2 = f.clone();
        f2.top_calls_mut()[0].transform = Transform::translate(Point::new(500, 500));
        let delta = cache.update(&f2).unwrap();
        assert!(!delta.full);
        assert_eq!(delta.patched_segments, 1);
        assert_eq!(delta.reexpanded_symbols, 0);
        assert_eq!(
            delta.dirty,
            vec![Rect::new(500, 500, 530, 510), Rect::new(100, 100, 130, 110)]
        );
        assert_eq!(cache.shapes(), flatten_counted(&f2).unwrap().0.as_slice());
    }

    #[test]
    fn symbol_edit_reexpands_only_transitive_callers() {
        // 1 ← 2 ← 3 (top), and an unrelated 4 (top): editing 1 must
        // re-expand {1, 2, 3} but serve 4 from the retained memo.
        let text = "\
DS 1;L NM;B 10 10 5 5;DF;
DS 2;C 1 T 0 0;DF;
DS 3;C 2 T 0 0;DF;
DS 4;L NP;B 10 10 5 5;DF;
C 3 T 0 0;
C 4 T 100 0;
E";
        let f = parse(text).unwrap();
        let mut cache = FlattenCache::new();
        cache.update(&f).unwrap();
        let misses_before = cache.stats().memo_misses;

        let mut f2 = f.clone();
        let mut leaf = f2.cell(1).unwrap().clone();
        leaf.shapes[0].geometry = Geometry::Box(Rect::new(0, 0, 20, 20));
        f2.insert_cell(leaf);
        let delta = cache.update(&f2).unwrap();
        assert_eq!(delta.reexpanded_symbols, 3, "1, 2, 3 — not 4");
        assert_eq!(delta.patched_segments, 1, "only the C 3 segment");
        assert_eq!(
            cache.stats().memo_misses - misses_before,
            3,
            "symbol 4's entry survived the edit"
        );
        assert_eq!(cache.shapes(), flatten_counted(&f2).unwrap().0.as_slice());
    }

    #[test]
    fn cache_recovers_after_an_error() {
        let f = parse(HIER).unwrap();
        let mut cache = FlattenCache::new();
        cache.update(&f).unwrap();

        // Point the top call at an undefined symbol: the update fails
        // and clears the cache.
        let mut broken = f.clone();
        broken.top_calls_mut()[0].cell = 99;
        assert!(cache.update(&broken).is_err());
        assert!(cache.shapes().is_empty());

        // The next good update rebuilds from scratch.
        let delta = cache.update(&f).unwrap();
        assert!(delta.full);
        assert_eq!(cache.shapes(), flatten_counted(&f).unwrap().0.as_slice());
    }

    #[test]
    fn cache_tracks_added_and_removed_top_calls() {
        let f = parse(HIER).unwrap();
        let mut cache = FlattenCache::new();
        cache.update(&f).unwrap();

        let mut f2 = f.clone();
        f2.push_top_call(crate::model::CifCall {
            cell: 2,
            transform: Transform::translate(Point::new(1000, 0)),
        });
        f2.push_top_call(crate::model::CifCall {
            cell: 1,
            transform: Transform::translate(Point::new(2000, 0)),
        });
        let delta = cache.update(&f2).unwrap();
        assert!(!delta.full);
        assert_eq!(delta.patched_segments, 2);
        assert_eq!(cache.shapes(), flatten_counted(&f2).unwrap().0.as_slice());

        let mut f3 = f2.clone();
        f3.top_calls_mut().remove(0);
        let delta = cache.update(&f3).unwrap();
        assert!(!delta.full);
        assert_eq!(cache.shapes(), flatten_counted(&f3).unwrap().0.as_slice());
        assert!(
            delta.dirty.iter().any(|d| d.x0 == 100),
            "old position damaged"
        );
    }

    #[test]
    fn area_by_layer() {
        let f = parse("DS 1;L NM;B 10 10 5 5;L NP;B 2 2 1 1;B 2 2 5 5;DF;C 1;E").unwrap();
        let shapes = flatten(&f).unwrap();
        let areas = painted_area_by_layer(&shapes);
        assert_eq!(areas.len(), 2);
        let poly = areas
            .iter()
            .find(|(l, _)| *l == Layer::Poly)
            .map(|&(_, a)| a);
        assert_eq!(poly, Some(8));
    }
}
