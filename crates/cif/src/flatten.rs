//! Hierarchy flattening: instantiate every call down to painted shapes.
//!
//! Riot renders and measures cells by walking the hierarchy; the
//! flattener produces the fully-instantiated shape list used for
//! plotting, mask generation checks and area accounting.

use crate::error::{ErrorKind, ParseCifError};
use crate::model::{CifFile, Geometry};
use riot_geom::{Layer, Path, Point, Rect, Transform};

/// A shape instantiated into top-level coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatShape {
    /// Mask layer.
    pub layer: Layer,
    /// Geometry in absolute coordinates.
    pub geometry: Geometry,
    /// Instantiation depth (0 = drawn at top level).
    pub depth: usize,
}

/// Flattens the file's top-level content (shapes and calls) into
/// absolute-coordinate shapes.
///
/// # Errors
///
/// Returns an error if a call references an undefined symbol or the
/// hierarchy is deeper than 64 levels (which in a well-formed separated
/// hierarchy means a definition cycle).
pub fn flatten(file: &CifFile) -> Result<Vec<FlatShape>, ParseCifError> {
    let mut sp = riot_trace::span!("cif.flatten");
    let mut out = Vec::new();
    for shape in file.top_shapes() {
        out.push(FlatShape {
            layer: shape.layer,
            geometry: shape.geometry.clone(),
            depth: 0,
        });
    }
    for call in file.top_calls() {
        flatten_cell(file, call.cell, call.transform, 1, &mut out)?;
    }
    sp.field("shapes", out.len() as u64);
    Ok(out)
}

/// Flattens one definition (and everything below it) under `transform`.
///
/// # Errors
///
/// Same conditions as [`flatten`].
pub fn flatten_cell(
    file: &CifFile,
    id: u32,
    transform: Transform,
    depth: usize,
    out: &mut Vec<FlatShape>,
) -> Result<(), ParseCifError> {
    const MAX_DEPTH: usize = 64;
    if depth > MAX_DEPTH {
        return Err(ParseCifError::new(0, ErrorKind::UnbalancedDefinition));
    }
    let cell = file
        .cell(id)
        .ok_or_else(|| ParseCifError::new(0, ErrorKind::UndefinedSymbol(id)))?;
    for shape in &cell.shapes {
        out.push(FlatShape {
            layer: shape.layer,
            geometry: transform_geometry(&shape.geometry, transform),
            depth,
        });
    }
    for call in &cell.calls {
        flatten_cell(
            file,
            call.cell,
            call.transform.then(transform),
            depth + 1,
            out,
        )?;
    }
    Ok(())
}

/// Maps geometry through a Manhattan transform.
pub fn transform_geometry(g: &Geometry, t: Transform) -> Geometry {
    match g {
        Geometry::Box(r) => Geometry::Box(t.apply_rect(*r)),
        Geometry::Polygon(pts) => Geometry::Polygon(pts.iter().map(|&p| t.apply(p)).collect()),
        Geometry::Wire { width, path } => {
            let pts: Vec<Point> = path.points().iter().map(|&p| t.apply(p)).collect();
            Geometry::Wire {
                width: *width,
                path: Path::from_points(pts)
                    .expect("Manhattan transform preserves Manhattan paths"),
            }
        }
        Geometry::Flash { diameter, center } => Geometry::Flash {
            diameter: *diameter,
            center: t.apply(*center),
        },
    }
}

/// Bounding box of a cell **including** everything it instantiates.
///
/// # Errors
///
/// Same conditions as [`flatten`]. Returns `Ok(None)` for a cell that
/// paints nothing anywhere in its subtree.
pub fn deep_bounding_box(file: &CifFile, id: u32) -> Result<Option<Rect>, ParseCifError> {
    let mut shapes = Vec::new();
    flatten_cell(file, id, Transform::IDENTITY, 1, &mut shapes)?;
    Ok(bounding_box_of(&shapes))
}

/// Bounding box of a flattened shape list.
pub fn bounding_box_of(shapes: &[FlatShape]) -> Option<Rect> {
    let mut bb: Option<Rect> = None;
    for s in shapes {
        let b = s.geometry.bounding_box();
        bb = Some(match bb {
            Some(acc) => acc.union(b),
            None => b,
        });
    }
    bb
}

/// Sum of painted bounding-box areas per layer, for area accounting.
/// Overlaps are counted twice; Riot-era area comparisons used cell
/// bounding boxes, so this is a diagnostic, not a mask-area integral.
pub fn painted_area_by_layer(shapes: &[FlatShape]) -> Vec<(Layer, i128)> {
    let mut totals: Vec<(Layer, i128)> = Vec::new();
    for s in shapes {
        let area = s.geometry.bounding_box().area();
        match totals.iter_mut().find(|(l, _)| *l == s.layer) {
            Some((_, t)) => *t += area,
            None => totals.push((s.layer, area)),
        }
    }
    totals.sort_by_key(|&(l, _)| l);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const HIER: &str = "\
DS 1;
L NM; B 10 10 5 5;
DF;
DS 2;
C 1 T 0 0;
C 1 T 20 0;
DF;
C 2 T 100 100;
E";

    #[test]
    fn flattens_two_levels() {
        let f = parse(HIER).unwrap();
        let shapes = flatten(&f).unwrap();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].depth, 2);
        assert_eq!(
            shapes[0].geometry.bounding_box(),
            Rect::new(100, 100, 110, 110)
        );
        assert_eq!(
            shapes[1].geometry.bounding_box(),
            Rect::new(120, 100, 130, 110)
        );
    }

    #[test]
    fn deep_bbox() {
        let f = parse(HIER).unwrap();
        assert_eq!(
            deep_bounding_box(&f, 2).unwrap(),
            Some(Rect::new(0, 0, 30, 10))
        );
        assert_eq!(
            deep_bounding_box(&f, 1).unwrap(),
            Some(Rect::new(0, 0, 10, 10))
        );
    }

    #[test]
    fn empty_cell_has_no_bbox() {
        let f = parse("DS 1;DF;E").unwrap();
        assert_eq!(deep_bounding_box(&f, 1).unwrap(), None);
    }

    #[test]
    fn rotation_applies_through_hierarchy() {
        let text = "DS 1;L NM;B 10 4 5 2;DF;DS 2;C 1 R 0 1;DF;C 2;E";
        let f = parse(text).unwrap();
        let shapes = flatten(&f).unwrap();
        // The 10x4 box rotated 90° becomes 4x10.
        let bb = shapes[0].geometry.bounding_box();
        assert_eq!(bb.width(), 4);
        assert_eq!(bb.height(), 10);
    }

    #[test]
    fn cycle_detected() {
        // A cycle cannot be written in strict CIF (definition before
        // call), but the model can be constructed programmatically.
        use crate::model::{CifCall, CifCell, CifFile};
        let mut f = CifFile::new();
        f.insert_cell(CifCell {
            id: 1,
            calls: vec![CifCall {
                cell: 1,
                transform: Transform::IDENTITY,
            }],
            ..CifCell::default()
        });
        f.push_top_call(CifCall {
            cell: 1,
            transform: Transform::IDENTITY,
        });
        assert!(flatten(&f).is_err());
    }

    #[test]
    fn area_by_layer() {
        let f = parse("DS 1;L NM;B 10 10 5 5;L NP;B 2 2 1 1;B 2 2 5 5;DF;C 1;E").unwrap();
        let shapes = flatten(&f).unwrap();
        let areas = painted_area_by_layer(&shapes);
        assert_eq!(areas.len(), 2);
        let poly = areas
            .iter()
            .find(|(l, _)| *l == Layer::Poly)
            .map(|&(_, a)| a);
        assert_eq!(poly, Some(8));
    }
}
