//! CIF parser: text to command list to semantic model.

use crate::ast::{CifCommand, TransformPrimitive};
use crate::error::{ErrorKind, ParseCifError};
use crate::lex::Lexer;
use crate::model::CifFile;
use riot_geom::Point;

/// Parses CIF text into a semantic [`CifFile`].
///
/// # Errors
///
/// Returns [`ParseCifError`] on any lexical, syntactic or semantic
/// violation (unknown layer, undefined symbol, non-Manhattan rotation…).
pub fn parse(text: &str) -> Result<CifFile, ParseCifError> {
    let mut sp = riot_trace::span!("cif.parse", bytes = text.len() as u64);
    let commands = parse_commands(text)?;
    sp.field("commands", commands.len() as u64);
    CifFile::from_commands(commands)
}

/// Parses CIF text into its raw command list, without semantic checks.
///
/// # Errors
///
/// Returns [`ParseCifError`] on lexical or syntactic violations.
pub fn parse_commands(text: &str) -> Result<Vec<CifCommand>, ParseCifError> {
    let mut lx = Lexer::new(text);
    let mut commands = Vec::new();
    let mut ended = false;
    while let Some(c) = lx.next_char()? {
        if ended {
            return Err(lx.error(ErrorKind::TrailingAfterEnd));
        }
        match c {
            ';' => {} // null command
            'B' => commands.push(parse_box(&mut lx)?),
            'P' => commands.push(parse_polygon(&mut lx)?),
            'W' => commands.push(parse_wire(&mut lx)?),
            'R' => commands.push(parse_round_flash(&mut lx)?),
            'L' => {
                let name = lx.short_name()?;
                lx.expect_semicolon()?;
                commands.push(CifCommand::Layer(name));
            }
            'D' => commands.push(parse_definition(&mut lx)?),
            'C' => commands.push(parse_call(&mut lx)?),
            'E' => {
                commands.push(CifCommand::End);
                ended = true;
            }
            '0'..='9' | '-' => {
                // User extension: the command "letter" is the leading
                // number itself.
                let code = parse_extension_code(&mut lx, c)?;
                let text = lx.raw_until_semicolon()?;
                commands.push(CifCommand::UserExtension { code, text });
            }
            other => return Err(lx.error(ErrorKind::UnexpectedChar(other))),
        }
    }
    Ok(commands)
}

fn parse_extension_code(lx: &mut Lexer<'_>, first: char) -> Result<u32, ParseCifError> {
    if first == '-' {
        return Err(lx.error(ErrorKind::UnexpectedChar('-')));
    }
    let mut code = first.to_digit(10).expect("digit");
    // Extend the command number with *contiguous* digits only (`94`),
    // peeking raw so the uninterpreted extension body — where lower-case
    // text is meaningful — is left untouched.
    while let Some(c) = lx.peek_raw_char() {
        match c.to_digit(10) {
            Some(d) if code < 10 => {
                lx.next_char()?;
                code = code * 10 + d;
            }
            _ => break,
        }
    }
    Ok(code)
}

fn parse_point(lx: &mut Lexer<'_>) -> Result<Point, ParseCifError> {
    let x = lx.integer()?;
    let y = lx.integer()?;
    Ok(Point::new(x, y))
}

fn parse_box(lx: &mut Lexer<'_>) -> Result<CifCommand, ParseCifError> {
    let length = lx.integer()?;
    let width = lx.integer()?;
    let center = parse_point(lx)?;
    let direction = if lx.at_integer()? {
        let dx = lx.integer()?;
        let dy = lx.integer()?;
        Some((dx, dy))
    } else {
        None
    };
    lx.expect_semicolon()?;
    if length < 0 {
        return Err(lx.error(ErrorKind::NonPositiveDimension("box length", length)));
    }
    if width < 0 {
        return Err(lx.error(ErrorKind::NonPositiveDimension("box width", width)));
    }
    Ok(CifCommand::BoxCmd {
        length,
        width,
        center,
        direction,
    })
}

fn parse_polygon(lx: &mut Lexer<'_>) -> Result<CifCommand, ParseCifError> {
    let mut points = Vec::new();
    while lx.at_integer()? {
        points.push(parse_point(lx)?);
    }
    lx.expect_semicolon()?;
    if points.len() < 3 {
        return Err(lx.error(ErrorKind::DegeneratePolygon));
    }
    Ok(CifCommand::Polygon(points))
}

fn parse_wire(lx: &mut Lexer<'_>) -> Result<CifCommand, ParseCifError> {
    let width = lx.integer()?;
    if width <= 0 {
        return Err(lx.error(ErrorKind::NonPositiveDimension("wire width", width)));
    }
    let mut points = Vec::new();
    while lx.at_integer()? {
        points.push(parse_point(lx)?);
    }
    lx.expect_semicolon()?;
    if points.is_empty() {
        return Err(lx.error(ErrorKind::EmptyWire));
    }
    Ok(CifCommand::Wire { width, points })
}

fn parse_round_flash(lx: &mut Lexer<'_>) -> Result<CifCommand, ParseCifError> {
    let diameter = lx.integer()?;
    if diameter <= 0 {
        return Err(lx.error(ErrorKind::NonPositiveDimension("flash diameter", diameter)));
    }
    let center = parse_point(lx)?;
    lx.expect_semicolon()?;
    Ok(CifCommand::RoundFlash { diameter, center })
}

fn parse_definition(lx: &mut Lexer<'_>) -> Result<CifCommand, ParseCifError> {
    match lx.next_char()? {
        Some('S') => {
            let id = lx.integer()?;
            let (a, b) = if lx.at_integer()? {
                let a = lx.integer()?;
                let b = lx.integer()?;
                (a, b)
            } else {
                (1, 1)
            };
            lx.expect_semicolon()?;
            if id < 0 || a <= 0 || b <= 0 {
                return Err(lx.error(ErrorKind::MissingArguments("DS")));
            }
            Ok(CifCommand::DefStart {
                id: id as u32,
                a,
                b,
            })
        }
        Some('F') => {
            lx.expect_semicolon()?;
            Ok(CifCommand::DefFinish)
        }
        Some('D') => {
            let id = lx.integer()?;
            lx.expect_semicolon()?;
            if id < 0 {
                return Err(lx.error(ErrorKind::MissingArguments("DD")));
            }
            Ok(CifCommand::DefDelete(id as u32))
        }
        Some(c) => Err(lx.error(ErrorKind::UnexpectedChar(c))),
        None => Err(lx.error(ErrorKind::UnexpectedEnd)),
    }
}

fn parse_call(lx: &mut Lexer<'_>) -> Result<CifCommand, ParseCifError> {
    let id = lx.integer()?;
    if id < 0 {
        return Err(lx.error(ErrorKind::MissingArguments("C")));
    }
    let mut transforms = Vec::new();
    loop {
        match lx.peek()? {
            Some('T') => {
                lx.next_char()?;
                transforms.push(TransformPrimitive::Translate(parse_point(lx)?));
            }
            Some('M') => {
                lx.next_char()?;
                match lx.next_char()? {
                    Some('X') => transforms.push(TransformPrimitive::MirrorX),
                    Some('Y') => transforms.push(TransformPrimitive::MirrorY),
                    Some(c) => return Err(lx.error(ErrorKind::UnexpectedChar(c))),
                    None => return Err(lx.error(ErrorKind::UnexpectedEnd)),
                }
            }
            Some('R') => {
                lx.next_char()?;
                let a = lx.integer()?;
                let b = lx.integer()?;
                transforms.push(TransformPrimitive::Rotate(a, b));
            }
            Some(';') => {
                lx.next_char()?;
                break;
            }
            Some(c) => return Err(lx.error(ErrorKind::UnexpectedChar(c))),
            None => return Err(lx.error(ErrorKind::UnexpectedEnd)),
        }
    }
    Ok(CifCommand::Call {
        id: id as u32,
        transforms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_box_with_and_without_direction() {
        let cmds = parse_commands("B 25 60 80 40; B 10 20 0 0 0 1;").unwrap();
        assert_eq!(
            cmds[0],
            CifCommand::BoxCmd {
                length: 25,
                width: 60,
                center: Point::new(80, 40),
                direction: None
            }
        );
        assert_eq!(
            cmds[1],
            CifCommand::BoxCmd {
                length: 10,
                width: 20,
                center: Point::new(0, 0),
                direction: Some((0, 1))
            }
        );
    }

    #[test]
    fn parses_call_transforms_in_order() {
        let cmds = parse_commands("C 7 T 10 20 M X R 0 -1;").unwrap();
        assert_eq!(
            cmds[0],
            CifCommand::Call {
                id: 7,
                transforms: vec![
                    TransformPrimitive::Translate(Point::new(10, 20)),
                    TransformPrimitive::MirrorX,
                    TransformPrimitive::Rotate(0, -1),
                ]
            }
        );
    }

    #[test]
    fn parses_wire_and_polygon() {
        let cmds = parse_commands("W 250 0 0 0 100 50 100; P 0 0 10 0 10 10;").unwrap();
        match &cmds[0] {
            CifCommand::Wire { width, points } => {
                assert_eq!(*width, 250);
                assert_eq!(points.len(), 3);
            }
            other => panic!("expected wire, got {other:?}"),
        }
        match &cmds[1] {
            CifCommand::Polygon(points) => assert_eq!(points.len(), 3),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn rejects_degenerate_polygon() {
        let err = parse_commands("P 0 0 10 0;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DegeneratePolygon);
    }

    #[test]
    fn rejects_zero_width_wire() {
        assert!(parse_commands("W 0 0 0 5 5;").is_err());
    }

    #[test]
    fn definition_brackets() {
        let cmds = parse_commands("DS 1 100 1; DF; DD 5;").unwrap();
        assert_eq!(
            cmds[0],
            CifCommand::DefStart {
                id: 1,
                a: 100,
                b: 1
            }
        );
        assert_eq!(cmds[1], CifCommand::DefFinish);
        assert_eq!(cmds[2], CifCommand::DefDelete(5));
    }

    #[test]
    fn ds_scale_defaults_to_unity() {
        let cmds = parse_commands("DS 3; DF;").unwrap();
        assert_eq!(cmds[0], CifCommand::DefStart { id: 3, a: 1, b: 1 });
    }

    #[test]
    fn user_extension_two_digits() {
        let cmds = parse_commands("94 VDD 0 10 NM 250;").unwrap();
        assert_eq!(
            cmds[0],
            CifCommand::UserExtension {
                code: 94,
                text: "VDD 0 10 NM 250".to_owned()
            }
        );
    }

    #[test]
    fn user_extension_single_digit_name() {
        let cmds = parse_commands("9 shiftcell;").unwrap();
        assert_eq!(
            cmds[0],
            CifCommand::UserExtension {
                code: 9,
                text: "shiftcell".to_owned()
            }
        );
    }

    #[test]
    fn rejects_commands_after_end() {
        let err = parse_commands("E B 1 1 0 0;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TrailingAfterEnd);
    }

    #[test]
    fn null_commands_and_comments_ignored() {
        let cmds = parse_commands("; (hello) ;; B 2 2 0 0; E").unwrap();
        assert_eq!(cmds.len(), 2);
    }

    #[test]
    fn lowercase_noise_tolerated() {
        // CIF blanks include lower-case letters.
        let cmds = parse_commands("Box 4 4 1 1; Call 2 Translated 5 5;").unwrap();
        assert_eq!(cmds.len(), 2);
        match &cmds[1] {
            CifCommand::Call { id, transforms } => {
                assert_eq!(*id, 2);
                assert_eq!(transforms.len(), 1);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }
}
