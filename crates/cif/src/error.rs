//! CIF parse and semantic errors.

use std::fmt;

/// Error produced while lexing, parsing or semantically resolving CIF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCifError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// Categories of CIF errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The input ended in the middle of a command.
    UnexpectedEnd,
    /// A character that cannot start or continue the current command.
    UnexpectedChar(char),
    /// An integer was required.
    ExpectedInteger,
    /// A command needed more numeric arguments than were supplied.
    MissingArguments(&'static str),
    /// `DF` without a matching `DS`, nested `DS`, or trailing open `DS`.
    UnbalancedDefinition,
    /// A `C` call referenced a symbol number never defined.
    UndefinedSymbol(u32),
    /// The same symbol number was defined twice.
    DuplicateSymbol(u32),
    /// An `R` rotation that is not one of the four Manhattan directions.
    NonManhattanRotation(i64, i64),
    /// A `B` box direction that is not Manhattan.
    NonManhattanBoxDirection(i64, i64),
    /// A layer short name not in the NMOS layer set.
    UnknownLayer(String),
    /// Geometry appeared before any `L` layer command.
    NoCurrentLayer,
    /// A connector extension (`94`) that could not be parsed.
    BadConnector(String),
    /// A negative or zero dimension where a positive one is required.
    NonPositiveDimension(&'static str, i64),
    /// A polygon with fewer than three vertices.
    DegeneratePolygon,
    /// A wire path with no vertices.
    EmptyWire,
    /// Commands after the `E` end command.
    TrailingAfterEnd,
}

impl fmt::Display for ParseCifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CIF line {}: {}", self.line, self.kind)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::UnexpectedEnd => f.write_str("unexpected end of input"),
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ErrorKind::ExpectedInteger => f.write_str("expected an integer"),
            ErrorKind::MissingArguments(cmd) => {
                write!(f, "missing arguments for `{cmd}` command")
            }
            ErrorKind::UnbalancedDefinition => f.write_str("unbalanced DS/DF definition structure"),
            ErrorKind::UndefinedSymbol(id) => write!(f, "call of undefined symbol {id}"),
            ErrorKind::DuplicateSymbol(id) => write!(f, "symbol {id} defined twice"),
            ErrorKind::NonManhattanRotation(a, b) => {
                write!(f, "rotation direction ({a}, {b}) is not Manhattan")
            }
            ErrorKind::NonManhattanBoxDirection(a, b) => {
                write!(f, "box direction ({a}, {b}) is not Manhattan")
            }
            ErrorKind::UnknownLayer(name) => write!(f, "unknown layer `{name}`"),
            ErrorKind::NoCurrentLayer => f.write_str("geometry before any L layer command"),
            ErrorKind::BadConnector(text) => {
                write!(f, "malformed connector extension `94 {text}`")
            }
            ErrorKind::NonPositiveDimension(what, v) => {
                write!(f, "non-positive {what} {v}")
            }
            ErrorKind::DegeneratePolygon => f.write_str("polygon with fewer than 3 vertices"),
            ErrorKind::EmptyWire => f.write_str("wire with no path vertices"),
            ErrorKind::TrailingAfterEnd => f.write_str("commands after E end marker"),
        }
    }
}

impl std::error::Error for ParseCifError {}

impl ParseCifError {
    /// Builds an error at a given input line.
    pub fn new(line: usize, kind: ErrorKind) -> Self {
        ParseCifError { line, kind }
    }
}
