//! Semantic CIF model: cells, shapes, calls and connectors.

use crate::ast::{CifCommand, TransformPrimitive};
use crate::error::{ErrorKind, ParseCifError};
use riot_geom::{Layer, Orientation, Path, Point, Rect, Transform};
use std::collections::BTreeMap;

/// A connector declared with the Riot `94` user extension:
/// `94 name x y layer [width];`.
///
/// Riot uses connectors for its logical connection operations; the size
/// and color of the connector cross on screen indicate the width and
/// layer of the wire making the connection inside the cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CifConnector {
    /// Connector name, unique within its cell.
    pub name: String,
    /// Location in the cell's coordinates.
    pub location: Point,
    /// Wire layer.
    pub layer: Layer,
    /// Wire width in centimicrons.
    pub width: i64,
}

/// One piece of painted geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Geometry {
    /// An axis-aligned box (CIF `B`, after direction resolution).
    Box(Rect),
    /// A polygon (CIF `P`).
    Polygon(Vec<Point>),
    /// A wire along a Manhattan path (CIF `W`).
    Wire {
        /// Wire width.
        width: i64,
        /// Centerline.
        path: Path,
    },
    /// A round flash (CIF `R`).
    Flash {
        /// Diameter.
        diameter: i64,
        /// Center point.
        center: Point,
    },
}

impl Geometry {
    /// Bounding box of the painted extent.
    pub fn bounding_box(&self) -> Rect {
        match self {
            Geometry::Box(r) => *r,
            Geometry::Polygon(pts) => {
                let mut bb = Rect::at_point(pts[0]);
                for &p in &pts[1..] {
                    bb = bb.union_point(p);
                }
                bb
            }
            Geometry::Wire { width, path } => path.bounding_box(*width),
            Geometry::Flash { diameter, center } => {
                Rect::from_center(*center, *diameter, *diameter)
            }
        }
    }

    /// Returns the geometry translated by `d`.
    pub fn translated(&self, d: Point) -> Geometry {
        match self {
            Geometry::Box(r) => Geometry::Box(r.translated(d)),
            Geometry::Polygon(pts) => Geometry::Polygon(pts.iter().map(|&p| p + d).collect()),
            Geometry::Wire { width, path } => Geometry::Wire {
                width: *width,
                path: path.translated(d),
            },
            Geometry::Flash { diameter, center } => Geometry::Flash {
                diameter: *diameter,
                center: *center + d,
            },
        }
    }
}

/// Geometry on a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    /// Mask layer.
    pub layer: Layer,
    /// Painted geometry.
    pub geometry: Geometry,
}

/// An instantiation of another cell (CIF `C` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CifCall {
    /// Symbol number of the called cell.
    pub cell: u32,
    /// Placement transform.
    pub transform: Transform,
}

/// One CIF symbol definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CifCell {
    /// Symbol number.
    pub id: u32,
    /// Name from the `9 name;` extension, if present.
    pub name: Option<String>,
    /// Painted geometry.
    pub shapes: Vec<Shape>,
    /// Calls of other symbols.
    pub calls: Vec<CifCall>,
    /// Connectors from `94` extensions.
    pub connectors: Vec<CifConnector>,
}

impl CifCell {
    /// Bounding box of this cell's **own** geometry (not its calls).
    /// `None` when the cell paints nothing itself.
    pub fn local_bounding_box(&self) -> Option<Rect> {
        let mut bb: Option<Rect> = None;
        for s in &self.shapes {
            let b = s.geometry.bounding_box();
            bb = Some(match bb {
                Some(acc) => acc.union(b),
                None => b,
            });
        }
        bb
    }

    /// Looks up a connector by name.
    pub fn connector(&self, name: &str) -> Option<&CifConnector> {
        self.connectors.iter().find(|c| c.name == name)
    }
}

/// A parsed CIF file: symbol definitions plus top-level calls/shapes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CifFile {
    cells: BTreeMap<u32, CifCell>,
    top_calls: Vec<CifCall>,
    top_shapes: Vec<Shape>,
}

impl CifFile {
    /// Creates an empty CIF file.
    pub fn new() -> Self {
        CifFile::default()
    }

    /// The symbol definitions, ordered by symbol number.
    pub fn cells(&self) -> Vec<&CifCell> {
        self.cells.values().collect()
    }

    /// Looks up a definition by symbol number.
    pub fn cell(&self, id: u32) -> Option<&CifCell> {
        self.cells.get(&id)
    }

    /// Looks up a definition by its `9`-extension name.
    pub fn cell_by_name(&self, name: &str) -> Option<&CifCell> {
        self.cells
            .values()
            .find(|c| c.name.as_deref() == Some(name))
    }

    /// Top-level calls (the "root" instantiations).
    pub fn top_calls(&self) -> &[CifCall] {
        &self.top_calls
    }

    /// Top-level painted geometry.
    pub fn top_shapes(&self) -> &[Shape] {
        &self.top_shapes
    }

    /// Adds (or replaces) a definition, returning its symbol number.
    pub fn insert_cell(&mut self, cell: CifCell) -> u32 {
        let id = cell.id;
        self.cells.insert(id, cell);
        id
    }

    /// Adds a definition under the next free symbol number.
    pub fn add_cell(&mut self, mut cell: CifCell) -> u32 {
        let id = self.cells.keys().max().map_or(1, |m| m + 1);
        cell.id = id;
        self.cells.insert(id, cell);
        id
    }

    /// Appends a top-level call.
    pub fn push_top_call(&mut self, call: CifCall) {
        self.top_calls.push(call);
    }

    /// Mutable access to the top-level calls, for incremental editing
    /// flows ([`crate::FlattenCache`]) that reposition or remove
    /// instantiations in place.
    pub fn top_calls_mut(&mut self) -> &mut Vec<CifCall> {
        &mut self.top_calls
    }

    /// Mutable access to the top-level painted geometry.
    pub fn top_shapes_mut(&mut self) -> &mut Vec<Shape> {
        &mut self.top_shapes
    }

    /// Builds the semantic model from a raw command list.
    ///
    /// # Errors
    ///
    /// Fails on unbalanced `DS`/`DF`, duplicate or undefined symbols,
    /// unknown layers, geometry before a layer selection, non-Manhattan
    /// rotations or box directions, and malformed connector extensions.
    pub fn from_commands(commands: Vec<CifCommand>) -> Result<Self, ParseCifError> {
        Builder::default().run(commands)
    }
}

#[derive(Debug, Default)]
struct Scope {
    shapes: Vec<Shape>,
    calls: Vec<CifCall>,
    connectors: Vec<CifConnector>,
    name: Option<String>,
    layer: Option<Layer>,
    scale: (i64, i64),
}

#[derive(Debug, Default)]
struct Builder {
    file: CifFile,
    current: Option<(u32, Scope)>,
    top: Scope,
    line: usize,
}

impl Builder {
    fn err(&self, kind: ErrorKind) -> ParseCifError {
        // Command-level position info was consumed by the parser; report
        // the ordinal of the offending command instead of a text line.
        ParseCifError::new(self.line, kind)
    }

    fn scope(&mut self) -> &mut Scope {
        match &mut self.current {
            Some((_, s)) => s,
            None => &mut self.top,
        }
    }

    fn scale(&mut self, v: i64) -> i64 {
        let (a, b) = self.scope().scale;
        v * a / b
    }

    fn scale_point(&mut self, p: Point) -> Point {
        Point::new(self.scale(p.x), self.scale(p.y))
    }

    fn run(mut self, commands: Vec<CifCommand>) -> Result<CifFile, ParseCifError> {
        self.top.scale = (1, 1);
        for (i, cmd) in commands.into_iter().enumerate() {
            self.line = i + 1;
            self.command(cmd)?;
        }
        if self.current.is_some() {
            return Err(self.err(ErrorKind::UnbalancedDefinition));
        }
        // Resolve calls: every called symbol must exist.
        let all_calls = self
            .file
            .cells
            .values()
            .flat_map(|c| c.calls.iter())
            .chain(self.top.calls.iter());
        for call in all_calls {
            if !self.file.cells.contains_key(&call.cell) {
                return Err(ParseCifError::new(
                    self.line,
                    ErrorKind::UndefinedSymbol(call.cell),
                ));
            }
        }
        self.file.top_calls = std::mem::take(&mut self.top.calls);
        self.file.top_shapes = std::mem::take(&mut self.top.shapes);
        Ok(self.file)
    }

    fn command(&mut self, cmd: CifCommand) -> Result<(), ParseCifError> {
        match cmd {
            CifCommand::DefStart { id, a, b } => {
                if self.current.is_some() {
                    return Err(self.err(ErrorKind::UnbalancedDefinition));
                }
                if self.file.cells.contains_key(&id) {
                    return Err(self.err(ErrorKind::DuplicateSymbol(id)));
                }
                let scope = Scope {
                    scale: (a, b),
                    ..Scope::default()
                };
                self.current = Some((id, scope));
            }
            CifCommand::DefFinish => {
                let Some((id, scope)) = self.current.take() else {
                    return Err(self.err(ErrorKind::UnbalancedDefinition));
                };
                self.file.cells.insert(
                    id,
                    CifCell {
                        id,
                        name: scope.name,
                        shapes: scope.shapes,
                        calls: scope.calls,
                        connectors: scope.connectors,
                    },
                );
            }
            CifCommand::DefDelete(id) => {
                self.file.cells.retain(|&k, _| k < id);
            }
            CifCommand::Layer(name) => {
                let layer = Layer::from_cif_name(&name)
                    .ok_or_else(|| self.err(ErrorKind::UnknownLayer(name)))?;
                self.scope().layer = Some(layer);
            }
            CifCommand::BoxCmd {
                length,
                width,
                center,
                direction,
            } => {
                let layer = self.current_layer()?;
                let length = self.scale(length);
                let width = self.scale(width);
                let center = self.scale_point(center);
                let (length, width) = match direction.unwrap_or((1, 0)) {
                    (dx, 0) if dx != 0 => (length, width),
                    (0, dy) if dy != 0 => (width, length),
                    (dx, dy) => return Err(self.err(ErrorKind::NonManhattanBoxDirection(dx, dy))),
                };
                let rect = Rect::from_center(center, length, width);
                self.scope().shapes.push(Shape {
                    layer,
                    geometry: Geometry::Box(rect),
                });
            }
            CifCommand::Polygon(points) => {
                let layer = self.current_layer()?;
                let pts = points.into_iter().map(|p| self.scale_point(p)).collect();
                self.scope().shapes.push(Shape {
                    layer,
                    geometry: Geometry::Polygon(pts),
                });
            }
            CifCommand::Wire { width, points } => {
                let layer = self.current_layer()?;
                let width = self.scale(width);
                let pts: Vec<Point> = points.into_iter().map(|p| self.scale_point(p)).collect();
                let path = Path::from_points(pts).map_err(|_| self.err(ErrorKind::EmptyWire))?;
                self.scope().shapes.push(Shape {
                    layer,
                    geometry: Geometry::Wire { width, path },
                });
            }
            CifCommand::RoundFlash { diameter, center } => {
                let layer = self.current_layer()?;
                let diameter = self.scale(diameter);
                let center = self.scale_point(center);
                self.scope().shapes.push(Shape {
                    layer,
                    geometry: Geometry::Flash { diameter, center },
                });
            }
            CifCommand::Call { id, transforms } => {
                let transform = self.fold_transforms(&transforms)?;
                self.scope().calls.push(CifCall {
                    cell: id,
                    transform,
                });
            }
            CifCommand::UserExtension { code: 9, text } => {
                self.scope().name = Some(text);
            }
            CifCommand::UserExtension { code: 94, text } => {
                let conn = self.parse_connector(&text)?;
                self.scope().connectors.push(conn);
            }
            CifCommand::UserExtension { .. } => {
                // Other extensions pass through unused, as CIF requires.
            }
            CifCommand::End => {}
        }
        Ok(())
    }

    fn current_layer(&mut self) -> Result<Layer, ParseCifError> {
        self.scope()
            .layer
            .ok_or_else(|| ParseCifError::new(self.line, ErrorKind::NoCurrentLayer))
    }

    fn fold_transforms(&self, prims: &[TransformPrimitive]) -> Result<Transform, ParseCifError> {
        let mut t = Transform::IDENTITY;
        for prim in prims {
            let step = match *prim {
                TransformPrimitive::Translate(p) => Transform::translate(p),
                TransformPrimitive::MirrorX => Transform::orient(Orientation::MX),
                TransformPrimitive::MirrorY => Transform::orient(Orientation::MY),
                TransformPrimitive::Rotate(a, b) => {
                    let o = match (a.signum(), b.signum()) {
                        (1, 0) => Orientation::R0,
                        (0, 1) => Orientation::R90,
                        (-1, 0) => Orientation::R180,
                        (0, -1) => Orientation::R270,
                        _ => {
                            return Err(ParseCifError::new(
                                self.line,
                                ErrorKind::NonManhattanRotation(a, b),
                            ))
                        }
                    };
                    Transform::orient(o)
                }
            };
            t = t.then(step);
        }
        Ok(t)
    }

    fn parse_connector(&mut self, text: &str) -> Result<CifConnector, ParseCifError> {
        let fields: Vec<&str> = text.split_whitespace().collect();
        let bad = || ParseCifError::new(self.line, ErrorKind::BadConnector(text.to_owned()));
        if fields.len() < 4 || fields.len() > 5 {
            return Err(bad());
        }
        let name = fields[0].to_owned();
        let x: i64 = fields[1].parse().map_err(|_| bad())?;
        let y: i64 = fields[2].parse().map_err(|_| bad())?;
        let layer = Layer::from_cif_name(fields[3]).ok_or_else(bad)?;
        let width: i64 = match fields.get(4) {
            Some(w) => w.parse().map_err(|_| bad())?,
            None => layer.default_width(),
        };
        if width <= 0 {
            return Err(bad());
        }
        Ok(CifConnector {
            name,
            location: self.scale_point(Point::new(x, y)),
            layer,
            width: self.scale(width),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SAMPLE: &str = "\
DS 1 2 1;
9 cellA;
L NM;
B 10 4 5 2;
94 out 10 2 NM 3;
DF;
DS 2;
9 cellB;
L NP;
W 2 0 0 0 10;
C 1 T 20 0;
DF;
C 2 R 0 1;
E";

    #[test]
    fn builds_cells_with_scale() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.cells().len(), 2);
        let a = f.cell_by_name("cellA").unwrap();
        // Scale 2/1 doubles all distances.
        assert_eq!(a.shapes[0].geometry, Geometry::Box(Rect::new(0, 0, 20, 8)));
        assert_eq!(a.connectors[0].location, Point::new(20, 4));
        assert_eq!(a.connectors[0].width, 6);
    }

    #[test]
    fn calls_resolved() {
        let f = parse(SAMPLE).unwrap();
        let b = f.cell_by_name("cellB").unwrap();
        assert_eq!(b.calls.len(), 1);
        assert_eq!(b.calls[0].cell, 1);
        assert_eq!(
            b.calls[0].transform,
            Transform::translate(Point::new(20, 0))
        );
        assert_eq!(f.top_calls().len(), 1);
        assert_eq!(f.top_calls()[0].transform.orient, Orientation::R90);
    }

    #[test]
    fn undefined_call_rejected() {
        let err = parse("C 9;E").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UndefinedSymbol(9));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let err = parse("DS 1;DF;DS 1;DF;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateSymbol(1));
    }

    #[test]
    fn nested_definition_rejected() {
        let err = parse("DS 1;DS 2;DF;DF;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnbalancedDefinition);
    }

    #[test]
    fn unterminated_definition_rejected() {
        let err = parse("DS 1;L NM;B 2 2 0 0;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnbalancedDefinition);
    }

    #[test]
    fn geometry_without_layer_rejected() {
        let err = parse("DS 1;B 2 2 0 0;DF;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::NoCurrentLayer);
    }

    #[test]
    fn unknown_layer_rejected() {
        let err = parse("DS 1;L QQ;DF;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownLayer("QQ".to_owned()));
    }

    #[test]
    fn box_direction_rotates() {
        let f = parse("DS 1;L NM;B 10 4 0 0 0 1;DF;").unwrap();
        let c = f.cell(1).unwrap();
        // Rotated 90°: length runs along y.
        assert_eq!(c.shapes[0].geometry, Geometry::Box(Rect::new(-2, -5, 2, 5)));
    }

    #[test]
    fn non_manhattan_rotation_rejected() {
        let err = parse("DS 1;DF;C 1 R 1 1;E").unwrap_err();
        assert_eq!(err.kind, ErrorKind::NonManhattanRotation(1, 1));
    }

    #[test]
    fn def_delete_removes_higher_symbols() {
        let f = parse("DS 1;DF;DS 2;DF;DD 2;DS 2;DF;E").unwrap();
        assert_eq!(f.cells().len(), 2);
    }

    #[test]
    fn connector_default_width() {
        let f = parse("DS 1;94 a 0 0 NP;DF;").unwrap();
        let c = f.cell(1).unwrap();
        assert_eq!(c.connectors[0].width, Layer::Poly.default_width());
        assert_eq!(c.connector("a").unwrap().layer, Layer::Poly);
        assert!(c.connector("b").is_none());
    }

    #[test]
    fn malformed_connector_rejected() {
        assert!(parse("DS 1;94 a 0 NP;DF;").is_err());
        assert!(parse("DS 1;94 a 0 0 QQ;DF;").is_err());
        assert!(parse("DS 1;94 a 0 0 NM -5;DF;").is_err());
    }

    #[test]
    fn local_bounding_box() {
        let f = parse("DS 1;L NM;B 10 4 5 2;W 2 0 0 0 20;DF;").unwrap();
        let c = f.cell(1).unwrap();
        assert_eq!(c.local_bounding_box(), Some(Rect::new(-1, -1, 10, 21)));
    }

    #[test]
    fn unknown_extension_ignored() {
        let f = parse("DS 1;42 whatever text;DF;").unwrap();
        assert_eq!(f.cells().len(), 1);
    }
}
