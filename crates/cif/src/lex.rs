//! The CIF character-level lexer.
//!
//! CIF's lexical rules are unusual: the only significant characters are
//! digits, upper-case letters, `-`, `(`, `)` and `;`. *Everything else —
//! including lower-case letters — is blank.* So `Box 25 60 80 40;` is the
//! same command as `B 25 60 80 40;`. Comments are parenthesized and nest.

use crate::error::{ErrorKind, ParseCifError};

/// A cursor over CIF text that skips blanks and comments and hands out
/// significant characters and integers.
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `text`.
    pub fn new(text: &'a str) -> Self {
        Lexer {
            src: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Current 1-based line number (for error reporting).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Builds an error at the current line.
    pub fn error(&self, kind: ErrorKind) -> ParseCifError {
        ParseCifError::new(self.line, kind)
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        c
    }

    fn peek_raw(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn is_significant(c: u8) -> bool {
        c.is_ascii_digit() || c.is_ascii_uppercase() || matches!(c, b'-' | b'(' | b')' | b';')
    }

    /// Skips blanks and (nested) comments.
    ///
    /// # Errors
    ///
    /// Returns an error for an unbalanced `)` left lying around — the
    /// caller sees it as an unexpected character instead, so this only
    /// fails on a comment that never closes.
    pub fn skip_blanks(&mut self) -> Result<(), ParseCifError> {
        loop {
            match self.peek_raw() {
                Some(b'(') => {
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.bump() {
                            Some(b'(') => depth += 1,
                            Some(b')') => depth -= 1,
                            Some(_) => {}
                            None => return Err(self.error(ErrorKind::UnexpectedEnd)),
                        }
                    }
                }
                Some(c) if !Self::is_significant(c) => {
                    self.bump();
                }
                _ => return Ok(()),
            }
        }
    }

    /// Peeks the next significant character without consuming it.
    pub fn peek(&mut self) -> Result<Option<char>, ParseCifError> {
        self.skip_blanks()?;
        Ok(self.peek_raw().map(|c| c as char))
    }

    /// Consumes and returns the next significant character.
    pub fn next_char(&mut self) -> Result<Option<char>, ParseCifError> {
        self.skip_blanks()?;
        Ok(self.bump().map(|c| c as char))
    }

    /// Reads a (possibly signed) integer. Digits must be contiguous.
    ///
    /// # Errors
    ///
    /// Fails when the next significant character does not start an
    /// integer.
    pub fn integer(&mut self) -> Result<i64, ParseCifError> {
        self.skip_blanks()?;
        let mut neg = false;
        if self.peek_raw() == Some(b'-') {
            neg = true;
            self.bump();
        }
        let start = self.pos;
        while matches!(self.peek_raw(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error(ErrorKind::ExpectedInteger));
        }
        let digits = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let mut v: i64 = 0;
        for d in digits.bytes() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((d - b'0') as i64))
                .ok_or_else(|| self.error(ErrorKind::ExpectedInteger))?;
        }
        Ok(if neg { -v } else { v })
    }

    /// True when the next significant characters begin an integer.
    pub fn at_integer(&mut self) -> Result<bool, ParseCifError> {
        self.skip_blanks()?;
        Ok(matches!(self.peek_raw(), Some(c) if c.is_ascii_digit() || c == b'-'))
    }

    /// Reads a CIF short name: up to four digits/upper-case characters,
    /// contiguous.
    pub fn short_name(&mut self) -> Result<String, ParseCifError> {
        self.skip_blanks()?;
        let mut name = String::new();
        while name.len() < 4 {
            match self.peek_raw() {
                Some(c) if c.is_ascii_digit() || c.is_ascii_uppercase() => {
                    name.push(c as char);
                    self.bump();
                }
                _ => break,
            }
        }
        if name.is_empty() {
            return Err(self.error(ErrorKind::UnexpectedEnd));
        }
        Ok(name)
    }

    /// Peeks the immediately next raw character, without skipping blanks
    /// or comments. Used where contiguity matters (multi-digit user
    /// extension codes).
    pub fn peek_raw_char(&self) -> Option<char> {
        self.peek_raw().map(|c| c as char)
    }

    /// Consumes raw text (blanks significant, comments *not* interpreted)
    /// until the terminating `;`, which is consumed. Used for user
    /// extensions, whose body CIF leaves uninterpreted.
    pub fn raw_until_semicolon(&mut self) -> Result<String, ParseCifError> {
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b';') => break,
                Some(c) => text.push(c as char),
                None => return Err(self.error(ErrorKind::UnexpectedEnd)),
            }
        }
        Ok(text.trim().to_owned())
    }

    /// Consumes the `;` ending the current command.
    ///
    /// # Errors
    ///
    /// Fails when something other than `;` appears first.
    pub fn expect_semicolon(&mut self) -> Result<(), ParseCifError> {
        match self.next_char()? {
            Some(';') => Ok(()),
            Some(c) => Err(self.error(ErrorKind::UnexpectedChar(c))),
            None => Err(self.error(ErrorKind::UnexpectedEnd)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_is_blank() {
        let mut lx = Lexer::new("Box 25 60;");
        assert_eq!(lx.next_char().unwrap(), Some('B'));
        assert_eq!(lx.integer().unwrap(), 25);
        assert_eq!(lx.integer().unwrap(), 60);
        lx.expect_semicolon().unwrap();
    }

    #[test]
    fn nested_comments_skipped() {
        let mut lx = Lexer::new("(outer (inner) still) B 1;");
        assert_eq!(lx.next_char().unwrap(), Some('B'));
        assert_eq!(lx.integer().unwrap(), 1);
    }

    #[test]
    fn unterminated_comment_errors() {
        let mut lx = Lexer::new("(never closes B 1;");
        assert!(lx.next_char().is_err());
    }

    #[test]
    fn negative_integers() {
        let mut lx = Lexer::new(" -42 7 -0;");
        assert_eq!(lx.integer().unwrap(), -42);
        assert_eq!(lx.integer().unwrap(), 7);
        assert_eq!(lx.integer().unwrap(), 0);
    }

    #[test]
    fn integer_requires_digits() {
        let mut lx = Lexer::new("- ;");
        assert!(lx.integer().is_err());
    }

    #[test]
    fn line_tracking() {
        let mut lx = Lexer::new("\n\nB 1;");
        lx.next_char().unwrap();
        assert_eq!(lx.line(), 3);
    }

    #[test]
    fn short_name_max_four() {
        let mut lx = Lexer::new("NMXYZ");
        assert_eq!(lx.short_name().unwrap(), "NMXY");
    }

    #[test]
    fn raw_until_semicolon_preserves_case() {
        let mut lx = Lexer::new("9 MyCell ;rest");
        assert_eq!(lx.next_char().unwrap(), Some('9'));
        assert_eq!(lx.raw_until_semicolon().unwrap(), "MyCell");
        assert_eq!(lx.next_char().unwrap(), None); // 'rest' is all blanks
    }
}
