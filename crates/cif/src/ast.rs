//! Command-level CIF syntax tree.

use riot_geom::Point;

/// A single CIF transform primitive, as written after a `C` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformPrimitive {
    /// `T x y` — translate.
    Translate(Point),
    /// `M X` — mirror in x (negate x).
    MirrorX,
    /// `M Y` — mirror in y (negate y).
    MirrorY,
    /// `R a b` — rotate so the x axis points along `(a, b)`.
    Rotate(i64, i64),
}

/// One CIF command.
///
/// The parser produces a flat command list; [`crate::model`] folds the
/// `DS`/`DF` brackets into a cell hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CifCommand {
    /// `DS id a b;` — start definition, with scale factor `a/b`.
    DefStart {
        /// Symbol number.
        id: u32,
        /// Scale numerator.
        a: i64,
        /// Scale denominator.
        b: i64,
    },
    /// `DF;` — finish definition.
    DefFinish,
    /// `DD id;` — delete definitions numbered >= id.
    DefDelete(u32),
    /// `C id <transforms>;` — call (instantiate) a symbol.
    Call {
        /// Symbol number of the called cell.
        id: u32,
        /// Transform primitives, applied left to right.
        transforms: Vec<TransformPrimitive>,
    },
    /// `L name;` — select the current layer.
    Layer(String),
    /// `B length width cx cy [dx dy];` — box.
    BoxCmd {
        /// Extent along the direction vector.
        length: i64,
        /// Extent perpendicular to the direction vector.
        width: i64,
        /// Box center.
        center: Point,
        /// Direction of the length axis; `None` means `(1, 0)`.
        direction: Option<(i64, i64)>,
    },
    /// `P p1 p2 ... pn;` — polygon.
    Polygon(Vec<Point>),
    /// `W width p1 ... pn;` — wire.
    Wire {
        /// Wire width.
        width: i64,
        /// Centerline vertices.
        points: Vec<Point>,
    },
    /// `R diameter cx cy;` — round flash.
    RoundFlash {
        /// Flash diameter.
        diameter: i64,
        /// Flash center.
        center: Point,
    },
    /// `<digit> raw-text;` — user extension. Digit 9 names cells, 94 is
    /// the Riot connector extension; both are also kept raw here.
    UserExtension {
        /// The extension digit (the full leading number, e.g. 94).
        code: u32,
        /// Uninterpreted body text (trimmed).
        text: String,
    },
    /// `E` — end of file.
    End,
}

impl CifCommand {
    /// True for the commands that may only appear inside a definition in
    /// Riot's separated hierarchy (geometry and layer selection).
    pub fn is_geometry(&self) -> bool {
        matches!(
            self,
            CifCommand::BoxCmd { .. }
                | CifCommand::Polygon(_)
                | CifCommand::Wire { .. }
                | CifCommand::RoundFlash { .. }
        )
    }
}
