//! CIF writer: semantic model (or raw commands) back to CIF text.

use crate::ast::{CifCommand, TransformPrimitive};
use crate::model::{CifFile, Geometry, Shape};
use riot_geom::{Orientation, Transform};
use std::fmt::Write as _;

/// Renders a semantic [`CifFile`] as canonical CIF text.
///
/// Definitions are written in symbol-number order with unit scale,
/// followed by top-level geometry and calls, and the `E` end marker.
/// The output parses back to an equal model (round-trip property tested).
pub fn to_text(file: &CifFile) -> String {
    let mut sp = riot_trace::span!("cif.write", cells = file.cells().len() as u64);
    let mut out = String::new();
    for cell in file.cells() {
        let _ = writeln!(out, "DS {} 1 1;", cell.id);
        if let Some(name) = &cell.name {
            let _ = writeln!(out, "9 {name};");
        }
        write_shapes(&mut out, &cell.shapes);
        for conn in &cell.connectors {
            let _ = writeln!(
                out,
                "94 {} {} {} {} {};",
                conn.name, conn.location.x, conn.location.y, conn.layer, conn.width
            );
        }
        for call in &cell.calls {
            let _ = writeln!(out, "C {}{};", call.cell, transform_text(call.transform));
        }
        let _ = writeln!(out, "DF;");
    }
    write_shapes(&mut out, file.top_shapes());
    for call in file.top_calls() {
        let _ = writeln!(out, "C {}{};", call.cell, transform_text(call.transform));
    }
    out.push_str("E\n");
    sp.field("bytes", out.len() as u64);
    out
}

/// Renders a raw command list as CIF text.
pub fn write_commands(commands: &[CifCommand]) -> String {
    let mut out = String::new();
    for cmd in commands {
        match cmd {
            CifCommand::DefStart { id, a, b } => {
                let _ = writeln!(out, "DS {id} {a} {b};");
            }
            CifCommand::DefFinish => out.push_str("DF;\n"),
            CifCommand::DefDelete(id) => {
                let _ = writeln!(out, "DD {id};");
            }
            CifCommand::Call { id, transforms } => {
                let _ = write!(out, "C {id}");
                for t in transforms {
                    match t {
                        TransformPrimitive::Translate(p) => {
                            let _ = write!(out, " T {} {}", p.x, p.y);
                        }
                        TransformPrimitive::MirrorX => out.push_str(" M X"),
                        TransformPrimitive::MirrorY => out.push_str(" M Y"),
                        TransformPrimitive::Rotate(a, b) => {
                            let _ = write!(out, " R {a} {b}");
                        }
                    }
                }
                out.push_str(";\n");
            }
            CifCommand::Layer(name) => {
                let _ = writeln!(out, "L {name};");
            }
            CifCommand::BoxCmd {
                length,
                width,
                center,
                direction,
            } => {
                let _ = write!(out, "B {length} {width} {} {}", center.x, center.y);
                if let Some((dx, dy)) = direction {
                    let _ = write!(out, " {dx} {dy}");
                }
                out.push_str(";\n");
            }
            CifCommand::Polygon(points) => {
                out.push('P');
                for p in points {
                    let _ = write!(out, " {} {}", p.x, p.y);
                }
                out.push_str(";\n");
            }
            CifCommand::Wire { width, points } => {
                let _ = write!(out, "W {width}");
                for p in points {
                    let _ = write!(out, " {} {}", p.x, p.y);
                }
                out.push_str(";\n");
            }
            CifCommand::RoundFlash { diameter, center } => {
                let _ = writeln!(out, "R {diameter} {} {};", center.x, center.y);
            }
            CifCommand::UserExtension { code, text } => {
                let _ = writeln!(out, "{code} {text};");
            }
            CifCommand::End => out.push_str("E\n"),
        }
    }
    out
}

fn write_shapes(out: &mut String, shapes: &[Shape]) {
    let mut current: Option<riot_geom::Layer> = None;
    for s in shapes {
        if current != Some(s.layer) {
            let _ = writeln!(out, "L {};", s.layer);
            current = Some(s.layer);
        }
        match &s.geometry {
            Geometry::Box(r) => {
                let c = r.center();
                // Centers round down, so rebuild from the exact corners
                // when the extent is odd: emit via length/width/center
                // only when exact, else as a 4-point polygon.
                if r.x0 + r.x1 == 2 * c.x && r.y0 + r.y1 == 2 * c.y {
                    let _ = writeln!(out, "B {} {} {} {};", r.width(), r.height(), c.x, c.y);
                } else {
                    let _ = writeln!(
                        out,
                        "P {} {} {} {} {} {} {} {};",
                        r.x0, r.y0, r.x1, r.y0, r.x1, r.y1, r.x0, r.y1
                    );
                }
            }
            Geometry::Polygon(points) => {
                out.push('P');
                for p in points {
                    let _ = write!(out, " {} {}", p.x, p.y);
                }
                out.push_str(";\n");
            }
            Geometry::Wire { width, path } => {
                let _ = write!(out, "W {width}");
                for p in path.points() {
                    let _ = write!(out, " {} {}", p.x, p.y);
                }
                out.push_str(";\n");
            }
            Geometry::Flash { diameter, center } => {
                let _ = writeln!(out, "R {diameter} {} {};", center.x, center.y);
            }
        }
    }
}

fn transform_text(t: Transform) -> String {
    let mut s = String::new();
    match t.orient {
        Orientation::R0 => {}
        Orientation::R90 => s.push_str(" R 0 1"),
        Orientation::R180 => s.push_str(" R -1 0"),
        Orientation::R270 => s.push_str(" R 0 -1"),
        Orientation::MX => s.push_str(" M X"),
        Orientation::MX90 => s.push_str(" M X R 0 1"),
        Orientation::MY => s.push_str(" M Y"),
        Orientation::MY90 => s.push_str(" M Y R 0 1"),
    }
    if t.offset != riot_geom::Point::ORIGIN {
        let _ = write!(s, " T {} {}", t.offset.x, t.offset.y);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CifCall, CifCell, CifConnector};
    use crate::parse::parse;
    use riot_geom::{Layer, Point, Rect};

    fn sample_file() -> CifFile {
        let mut f = CifFile::new();
        f.insert_cell(CifCell {
            id: 1,
            name: Some("leaf".to_owned()),
            shapes: vec![Shape {
                layer: Layer::Metal,
                geometry: Geometry::Box(Rect::new(0, 0, 100, 40)),
            }],
            calls: vec![],
            connectors: vec![CifConnector {
                name: "in".to_owned(),
                location: Point::new(0, 20),
                layer: Layer::Metal,
                width: 250,
            }],
        });
        f.insert_cell(CifCell {
            id: 2,
            name: None,
            shapes: vec![],
            calls: vec![CifCall {
                cell: 1,
                transform: Transform::new(Orientation::R90, Point::new(500, 0)),
            }],
            connectors: vec![],
        });
        f.push_top_call(CifCall {
            cell: 2,
            transform: Transform::IDENTITY,
        });
        f
    }

    #[test]
    fn round_trip_model() {
        let f = sample_file();
        let text = to_text(&f);
        let again = parse(&text).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn every_orientation_round_trips() {
        for o in Orientation::ALL {
            let mut f = CifFile::new();
            f.insert_cell(CifCell {
                id: 1,
                ..CifCell::default()
            });
            f.push_top_call(CifCall {
                cell: 1,
                transform: Transform::new(o, Point::new(17, -9)),
            });
            let again = parse(&to_text(&f)).unwrap();
            assert_eq!(f, again, "orientation {o}");
        }
    }

    #[test]
    fn odd_extent_box_written_as_polygon() {
        let mut f = CifFile::new();
        f.insert_cell(CifCell {
            id: 1,
            shapes: vec![Shape {
                layer: Layer::Poly,
                geometry: Geometry::Box(Rect::new(0, 0, 5, 4)),
            }],
            ..CifCell::default()
        });
        let text = to_text(&f);
        let again = parse(&text).unwrap();
        let bb = again.cell(1).unwrap().local_bounding_box().unwrap();
        assert_eq!(bb, Rect::new(0, 0, 5, 4));
    }

    #[test]
    fn writes_layer_switch_once_per_run() {
        let mut f = CifFile::new();
        f.insert_cell(CifCell {
            id: 1,
            shapes: vec![
                Shape {
                    layer: Layer::Metal,
                    geometry: Geometry::Box(Rect::new(0, 0, 2, 2)),
                },
                Shape {
                    layer: Layer::Metal,
                    geometry: Geometry::Box(Rect::new(4, 0, 6, 2)),
                },
            ],
            ..CifCell::default()
        });
        let text = to_text(&f);
        assert_eq!(text.matches("L NM;").count(), 1);
    }
}
