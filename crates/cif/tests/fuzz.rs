//! Robustness: the CIF parser never panics, whatever bytes arrive, and
//! always either parses or reports a located error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC*") {
        let _ = riot_cif::parse(&text);
    }

    #[test]
    fn parser_never_panics_on_cif_like_soup(
        text in "(DS|DF|DD|C|B|P|W|R|L|E|T|M|X|Y|NM|NP|94|9|;|\\(|\\)|-| |[0-9]{1,5}|\n){0,64}"
    ) {
        let _ = riot_cif::parse(&text);
    }

    #[test]
    fn errors_carry_a_line_number(garbage in "[a-z ]{0,20}&[a-z ]{0,20}") {
        // `&` is never a legal significant character.
        if let Err(e) = riot_cif::parse(&format!("B 2 2 0 0;\n{garbage};")) {
            prop_assert!(e.line >= 1);
        }
    }

    #[test]
    fn overflow_sized_integers_error_cleanly(digits in "[1-9][0-9]{18,40}") {
        // Larger than i64: must be a clean error, not a panic.
        let text = format!("B {digits} 2 0 0;");
        prop_assert!(riot_cif::parse(&text).is_err());
    }
}
