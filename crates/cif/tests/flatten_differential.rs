//! Differential property test: the memoized flattener must produce
//! exactly the same shape list (order included) as the retained
//! recursive reference walker, on random DAG hierarchies that mix
//! translations, mirrors and Manhattan rotations.

use proptest::prelude::*;
use riot_cif::{flatten_counted, flatten_recursive};

/// Renders a random CIF hierarchy as text. Symbol `k` may only call
/// symbols `< k`, so the file is a DAG by construction; the top level
/// instantiates the last (deepest) symbol several times.
fn arb_cif_hierarchy() -> impl Strategy<Value = String> {
    (1u64..1_000_000, 2usize..7).prop_map(|(seed, symbols)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut text = String::new();
        for id in 1..=symbols {
            text.push_str(&format!("DS {id} 1 1;\n"));
            // One to three local primitives.
            for _ in 0..(next() % 3 + 1) {
                let layer = ["NM", "NP", "ND", "NC"][(next() % 4) as usize];
                let x = (next() % 40) as i64 * 25 - 500;
                let y = (next() % 40) as i64 * 25 - 500;
                if next() % 4 == 0 {
                    let w = (next() % 4 + 1) as i64 * 25;
                    let len = (next() % 8 + 1) as i64 * 25;
                    text.push_str(&format!(
                        "L {layer}; W {w} {x} {y} {} {y} {} {};\n",
                        x + len,
                        x + len,
                        y + len
                    ));
                } else {
                    let w = (next() % 6 + 1) as i64 * 25;
                    let h = (next() % 6 + 1) as i64 * 25;
                    text.push_str(&format!("L {layer}; B {w} {h} {x} {y};\n"));
                }
            }
            // Up to three calls to strictly earlier symbols, each with a
            // random transform chain (translate / mirror / rotate).
            if id > 1 {
                for _ in 0..(next() % 3 + 1) {
                    let callee = next() as usize % (id - 1) + 1;
                    let mut call = format!("C {callee}");
                    for _ in 0..(next() % 3) {
                        match next() % 4 {
                            0 => {
                                let tx = (next() % 20) as i64 * 25 - 250;
                                let ty = (next() % 20) as i64 * 25 - 250;
                                call.push_str(&format!(" T {tx} {ty}"));
                            }
                            1 => call.push_str(" M X"),
                            2 => call.push_str(" M Y"),
                            _ => {
                                let (rx, ry) =
                                    [(1, 0), (0, 1), (-1, 0), (0, -1)][(next() % 4) as usize];
                                call.push_str(&format!(" R {rx} {ry}"));
                            }
                        }
                    }
                    call.push_str(";\n");
                    text.push_str(&call);
                }
            }
            text.push_str("DF;\n");
        }
        // Top level: several displaced instantiations of the deepest
        // symbol plus one direct box.
        for i in 0..(next() % 4 + 1) {
            text.push_str(&format!("C {symbols} T {} 0;\n", i as i64 * 2000));
        }
        text.push_str("L NM; B 100 100 0 0;\nE");
        text
    })
}

/// A shallow hierarchy whose call translations and primitive
/// coordinates sit near `i32::MIN`/`i32::MAX` — the magnitudes 32-bit
/// CIF emitters produce — mixed with zero-area boxes. Exercises the
/// transform chain and bbox accumulation far from the origin.
fn arb_extreme_hierarchy() -> impl Strategy<Value = String> {
    (1u64..1_000_000, 2usize..5).prop_map(|(seed, symbols)| {
        const ANCHORS: [i64; 5] = [
            i32::MIN as i64,
            -(1_i64 << 24),
            0,
            1_i64 << 24,
            i32::MAX as i64,
        ];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut text = String::new();
        for id in 1..=symbols {
            text.push_str(&format!("DS {id} 1 1;\n"));
            for _ in 0..(next() % 3 + 1) {
                let layer = ["NM", "NP", "ND", "NC"][(next() % 4) as usize];
                let x = ANCHORS[(next() % 5) as usize] + (next() % 40) as i64 * 25;
                let y = ANCHORS[(next() % 5) as usize] + (next() % 40) as i64 * 25;
                if next() % 5 == 0 {
                    // A zero-area box.
                    text.push_str(&format!("L {layer}; B 0 0 {x} {y};\n"));
                } else {
                    let w = (next() % 6 + 1) as i64 * 25;
                    let h = (next() % 6 + 1) as i64 * 25;
                    text.push_str(&format!("L {layer}; B {w} {h} {x} {y};\n"));
                }
            }
            if id > 1 {
                for _ in 0..(next() % 2 + 1) {
                    let callee = next() as usize % (id - 1) + 1;
                    let tx = ANCHORS[(next() % 5) as usize];
                    let ty = ANCHORS[(next() % 5) as usize];
                    let mut call = format!("C {callee} T {tx} {ty}");
                    match next() % 4 {
                        0 => call.push_str(" M X"),
                        1 => call.push_str(" M Y"),
                        2 => call.push_str(" R 0 1"),
                        _ => {}
                    }
                    call.push_str(";\n");
                    text.push_str(&call);
                }
            }
            text.push_str("DF;\n");
        }
        text.push_str(&format!("C {symbols} T {} {};\nE", i32::MAX, i32::MIN));
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memoized_flatten_equals_recursive_reference(text in arb_cif_hierarchy()) {
        let file = riot_cif::parse(&text).expect("generated CIF parses");
        let reference = flatten_recursive(&file).expect("reference flatten succeeds");
        let (memoized, stats) = flatten_counted(&file).expect("memoized flatten succeeds");
        prop_assert_eq!(&memoized, &reference);
        prop_assert_eq!(stats.shapes, memoized.len());
        prop_assert!(stats.memo_hits + stats.memo_misses >= stats.memo_cells);
    }

    #[test]
    fn flatten_agrees_at_extreme_coordinates(text in arb_extreme_hierarchy()) {
        let file = riot_cif::parse(&text).expect("generated CIF parses");
        let reference = flatten_recursive(&file).expect("reference flatten succeeds");
        let (memoized, stats) = flatten_counted(&file).expect("memoized flatten succeeds");
        prop_assert_eq!(&memoized, &reference);
        prop_assert_eq!(stats.shapes, memoized.len());
    }

    /// The incremental cache tracks random edit sequences exactly —
    /// same shapes in the same order as the recursive reference after
    /// every edit — and its reported damage covers every shape that
    /// actually changed.
    #[test]
    fn flatten_cache_tracks_edits_and_reports_covering_damage(
        text in arb_cif_hierarchy(),
        edit_seed in 1u64..1_000_000,
        edits in 1usize..6,
    ) {
        use riot_cif::model::CifCall;
        use riot_geom::{Point, Rect, Transform};

        let mut file = riot_cif::parse(&text).expect("generated CIF parses");
        let symbols = file.cells().len() as u64;
        let mut cache = riot_cif::FlattenCache::new();
        let delta = cache.update(&file).expect("first sync");
        prop_assert!(delta.full);

        let mut s = edit_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..edits {
            let before = cache.shapes().to_vec();
            match next() % 4 {
                0 if !file.top_calls().is_empty() => {
                    // Move a top call.
                    let i = (next() as usize) % file.top_calls().len();
                    let dx = (next() % 80) as i64 * 25;
                    let dy = (next() % 80) as i64 * 25;
                    file.top_calls_mut()[i].transform =
                        Transform::translate(Point::new(dx, dy));
                }
                1 => {
                    // Add a top call to a random symbol.
                    let callee = (next() % symbols + 1) as u32;
                    let dx = (next() % 80) as i64 * 25;
                    file.push_top_call(CifCall {
                        cell: callee,
                        transform: Transform::translate(Point::new(dx, -dx)),
                    });
                }
                2 if file.top_calls().len() > 1 => {
                    // Remove a top call.
                    let i = (next() as usize) % file.top_calls().len();
                    file.top_calls_mut().remove(i);
                }
                _ => {
                    // Edit a random symbol definition: displace its
                    // first shape (every generated symbol has one).
                    let id = (next() % symbols + 1) as u32;
                    let mut cell = file.cell(id).expect("ids are dense").clone();
                    if let Some(shape) = cell.shapes.first_mut() {
                        shape.geometry = shape.geometry.translated(Point::new(25, 25));
                    }
                    file.insert_cell(cell);
                }
            }
            let delta = cache.update(&file).expect("incremental sync");
            prop_assert!(!delta.full, "edits never degrade to a full rebuild");
            let reference = flatten_recursive(&file).expect("reference flatten");
            prop_assert_eq!(cache.shapes(), reference.as_slice());

            // Damage coverage: every shape present on only one side of
            // the edit lies inside some dirty rect.
            let mut counts: std::collections::HashMap<String, (i64, Rect)> =
                std::collections::HashMap::new();
            for s in &before {
                let e = counts
                    .entry(format!("{s:?}"))
                    .or_insert((0, s.geometry.bounding_box()));
                e.0 += 1;
            }
            for s in cache.shapes() {
                let e = counts
                    .entry(format!("{s:?}"))
                    .or_insert((0, s.geometry.bounding_box()));
                e.0 -= 1;
            }
            for (count, bb) in counts.values() {
                if *count != 0 {
                    prop_assert!(
                        delta.dirty.iter().any(|d| d.contains_rect(*bb)),
                        "changed shape {:?} not covered by damage {:?}",
                        bb,
                        delta.dirty
                    );
                }
            }
        }
    }
}
