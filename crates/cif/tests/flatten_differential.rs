//! Differential property test: the memoized flattener must produce
//! exactly the same shape list (order included) as the retained
//! recursive reference walker, on random DAG hierarchies that mix
//! translations, mirrors and Manhattan rotations.

use proptest::prelude::*;
use riot_cif::{flatten_counted, flatten_recursive};

/// Renders a random CIF hierarchy as text. Symbol `k` may only call
/// symbols `< k`, so the file is a DAG by construction; the top level
/// instantiates the last (deepest) symbol several times.
fn arb_cif_hierarchy() -> impl Strategy<Value = String> {
    (1u64..1_000_000, 2usize..7).prop_map(|(seed, symbols)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut text = String::new();
        for id in 1..=symbols {
            text.push_str(&format!("DS {id} 1 1;\n"));
            // One to three local primitives.
            for _ in 0..(next() % 3 + 1) {
                let layer = ["NM", "NP", "ND", "NC"][(next() % 4) as usize];
                let x = (next() % 40) as i64 * 25 - 500;
                let y = (next() % 40) as i64 * 25 - 500;
                if next() % 4 == 0 {
                    let w = (next() % 4 + 1) as i64 * 25;
                    let len = (next() % 8 + 1) as i64 * 25;
                    text.push_str(&format!(
                        "L {layer}; W {w} {x} {y} {} {y} {} {};\n",
                        x + len,
                        x + len,
                        y + len
                    ));
                } else {
                    let w = (next() % 6 + 1) as i64 * 25;
                    let h = (next() % 6 + 1) as i64 * 25;
                    text.push_str(&format!("L {layer}; B {w} {h} {x} {y};\n"));
                }
            }
            // Up to three calls to strictly earlier symbols, each with a
            // random transform chain (translate / mirror / rotate).
            if id > 1 {
                for _ in 0..(next() % 3 + 1) {
                    let callee = next() as usize % (id - 1) + 1;
                    let mut call = format!("C {callee}");
                    for _ in 0..(next() % 3) {
                        match next() % 4 {
                            0 => {
                                let tx = (next() % 20) as i64 * 25 - 250;
                                let ty = (next() % 20) as i64 * 25 - 250;
                                call.push_str(&format!(" T {tx} {ty}"));
                            }
                            1 => call.push_str(" M X"),
                            2 => call.push_str(" M Y"),
                            _ => {
                                let (rx, ry) =
                                    [(1, 0), (0, 1), (-1, 0), (0, -1)][(next() % 4) as usize];
                                call.push_str(&format!(" R {rx} {ry}"));
                            }
                        }
                    }
                    call.push_str(";\n");
                    text.push_str(&call);
                }
            }
            text.push_str("DF;\n");
        }
        // Top level: several displaced instantiations of the deepest
        // symbol plus one direct box.
        for i in 0..(next() % 4 + 1) {
            text.push_str(&format!("C {symbols} T {} 0;\n", i as i64 * 2000));
        }
        text.push_str("L NM; B 100 100 0 0;\nE");
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memoized_flatten_equals_recursive_reference(text in arb_cif_hierarchy()) {
        let file = riot_cif::parse(&text).expect("generated CIF parses");
        let reference = flatten_recursive(&file).expect("reference flatten succeeds");
        let (memoized, stats) = flatten_counted(&file).expect("memoized flatten succeeds");
        prop_assert_eq!(&memoized, &reference);
        prop_assert_eq!(stats.shapes, memoized.len());
        prop_assert!(stats.memo_hits + stats.memo_misses >= stats.memo_cells);
    }
}
