//! Property tests: generated CIF models survive write→parse round trips.

use proptest::prelude::*;
use riot_cif::model::{CifCall, CifCell, CifConnector, CifFile};
use riot_cif::{flatten, parse, to_text, Geometry, Shape};
use riot_geom::{Layer, Orientation, Path, Point, Rect, Transform};

fn arb_layer() -> impl Strategy<Value = Layer> {
    prop::sample::select(Layer::ALL.to_vec())
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-100_000i64..100_000, -100_000i64..100_000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_even_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 1i64..500, 1i64..500)
        .prop_map(|(c, w2, h2)| Rect::from_center(Point::new(c.x, c.y), w2 * 2, h2 * 2))
}

fn arb_manhattan_path() -> impl Strategy<Value = Path> {
    (
        arb_point(),
        prop::collection::vec((-400i64..400, prop::bool::ANY), 1..6),
    )
        .prop_map(|(start, steps)| {
            let mut path = Path::new(start);
            for (d, horiz) in steps {
                let d = if d == 0 { 10 } else { d };
                let last = path.end();
                let next = if horiz {
                    Point::new(last.x + d, last.y)
                } else {
                    Point::new(last.x, last.y + d)
                };
                path.push(next).expect("axis-aligned step");
            }
            path
        })
}

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        arb_even_rect().prop_map(Geometry::Box),
        (arb_manhattan_path(), 1i64..300)
            .prop_map(|(path, w)| Geometry::Wire { width: w * 2, path }),
        (arb_point(), 1i64..200).prop_map(|(c, d)| Geometry::Flash {
            diameter: d * 2,
            center: c
        }),
        prop::collection::vec(arb_point(), 3..8).prop_map(Geometry::Polygon),
    ]
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (arb_layer(), arb_geometry()).prop_map(|(layer, geometry)| Shape { layer, geometry })
}

fn arb_connector(i: usize) -> impl Strategy<Value = CifConnector> {
    (
        arb_point(),
        prop::sample::select(Layer::ROUTABLE.to_vec()),
        1i64..300,
    )
        .prop_map(move |(p, layer, w)| CifConnector {
            name: format!("C{i}"),
            location: p,
            layer,
            width: w,
        })
}

fn arb_cell(id: u32) -> impl Strategy<Value = CifCell> {
    (
        prop::collection::vec(arb_shape(), 0..6),
        prop::collection::vec((0usize..4).prop_flat_map(arb_connector), 0..3),
        prop::option::of("[A-Za-z][A-Za-z0-9]{0,8}"),
    )
        .prop_map(move |(shapes, mut connectors, name)| {
            // Connector names must be unique within a cell.
            connectors.dedup_by(|a, b| a.name == b.name);
            connectors.sort_by(|a, b| a.name.cmp(&b.name));
            connectors.dedup_by(|a, b| a.name == b.name);
            CifCell {
                id,
                name,
                shapes,
                calls: vec![],
                connectors,
            }
        })
}

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    prop::sample::select(Orientation::ALL.to_vec())
}

fn arb_file() -> impl Strategy<Value = CifFile> {
    (
        prop::collection::vec(arb_cell(0), 1..4),
        prop::collection::vec((arb_orientation(), arb_point()), 0..4),
    )
        .prop_map(|(cells, calls)| {
            let mut file = CifFile::new();
            let mut ids = Vec::new();
            for c in cells {
                ids.push(file.add_cell(c));
            }
            for (i, (o, p)) in calls.into_iter().enumerate() {
                file.push_top_call(CifCall {
                    cell: ids[i % ids.len()],
                    transform: Transform::new(o, p),
                });
            }
            file
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_round_trip(file in arb_file()) {
        let text = to_text(&file);
        let reparsed = parse(&text).expect("writer output must parse");
        prop_assert_eq!(&file, &reparsed);
    }

    #[test]
    fn flatten_is_stable_across_round_trip(file in arb_file()) {
        let reparsed = parse(&to_text(&file)).expect("writer output must parse");
        let a = flatten(&file).expect("flatten original");
        let b = flatten(&reparsed).expect("flatten reparsed");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn flattened_shapes_within_transformed_bbox(file in arb_file()) {
        let shapes = flatten(&file).expect("flatten");
        if let Some(bb) = riot_cif::flatten::bounding_box_of(&shapes) {
            for s in &shapes {
                prop_assert!(bb.contains_rect(s.geometry.bounding_box()));
            }
        }
    }
}
