//! Solver errors with infeasibility diagnosis.

use std::fmt;

/// Why a constraint system could not be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveRestError {
    /// A named target refers to a pin the cell does not have.
    UnknownPin(String),
    /// Two targets pin the same column to different coordinates.
    ConflictingTargets {
        /// Column's original coordinate.
        column: i64,
        /// First requested target.
        first: i64,
        /// Second, conflicting target.
        second: i64,
    },
    /// A target cannot be met: spacing/ordering constraints force the
    /// column at least to `needed`, but the target asks for less.
    TargetTooTight {
        /// Column's original coordinate.
        column: i64,
        /// Requested coordinate.
        target: i64,
        /// Minimum feasible coordinate given the constraints.
        needed: i64,
    },
    /// The rebuilt cell failed validation (internal invariant breach).
    Rebuild(String),
}

impl fmt::Display for SolveRestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveRestError::UnknownPin(name) => write!(f, "unknown pin `{name}`"),
            SolveRestError::ConflictingTargets {
                column,
                first,
                second,
            } => write!(
                f,
                "column at {column} pinned to both {first} and {second}"
            ),
            SolveRestError::TargetTooTight {
                column,
                target,
                needed,
            } => write!(
                f,
                "target {target} for column at {column} is infeasible; constraints need at least {needed}"
            ),
            SolveRestError::Rebuild(msg) => write!(f, "stretched cell invalid: {msg}"),
        }
    }
}

impl std::error::Error for SolveRestError {}
