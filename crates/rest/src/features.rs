//! Feature extraction: projecting symbolic elements onto one axis.

use crate::solve::Axis;
use riot_geom::{Layer, Rect, Transform};
use riot_sticks::SticksCell;

/// One element's footprint as seen by the 1-D solver: a column
/// coordinate, an extent along the axis, a span across it, and a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feature {
    /// Center coordinate along the solve axis (a column).
    pub coord: i64,
    /// Half-extent along the solve axis, in lambda.
    pub half: i64,
    /// Lower bound of the perpendicular span.
    pub perp_lo: i64,
    /// Upper bound of the perpendicular span.
    pub perp_hi: i64,
    /// The layer the footprint paints.
    pub layer: Layer,
}

impl Feature {
    fn from_rect(r: Rect, axis: Axis, layer: Layer) -> Feature {
        let (coord, half, perp_lo, perp_hi) = match axis {
            Axis::X => (r.center().x, r.width() / 2, r.y0, r.y1),
            Axis::Y => (r.center().y, r.height() / 2, r.x0, r.x1),
        };
        Feature {
            coord,
            half,
            perp_lo,
            perp_hi,
            layer,
        }
    }

    /// True when two features sit side by side along the axis (their
    /// perpendicular spans overlap) and therefore constrain each other.
    pub fn interacts_across(self, other: Feature) -> bool {
        self.perp_lo < other.perp_hi && other.perp_lo < self.perp_hi
    }
}

/// Minimum center-to-center *extra* spacing (beyond the half-extents)
/// required between features on the given layers, in lambda. `None`
/// means the pair is unconstrained.
pub fn rule_spacing(a: Layer, b: Layer) -> Option<i64> {
    use Layer::*;
    match (a.min(b), a.max(b)) {
        (Diffusion, Diffusion) => Some(3),
        (Poly, Poly) => Some(2),
        (Metal, Metal) => Some(3),
        (Diffusion, Poly) => Some(1),
        _ => None,
    }
}

/// Device mask footprints in local lambda coordinates (gate, diffusion).
fn device_rects(d: &riot_sticks::Device) -> [(Rect, Layer); 2] {
    let t = Transform::new(d.orient, d.position);
    [
        (t.apply_rect(Rect::new(-1, -3, 1, 3)), Layer::Poly),
        (t.apply_rect(Rect::new(-3, -1, 3, 1)), Layer::Diffusion),
    ]
}

/// Extracts every feature of `cell` along `axis`, plus the full set of
/// column coordinates that must be remapped (every coordinate any
/// element uses along the axis, whether or not it grows a feature).
pub fn extract(cell: &SticksCell, axis: Axis) -> (Vec<Feature>, Vec<i64>) {
    let mut features = Vec::new();
    let mut columns = Vec::new();
    let along = |p: riot_geom::Point| match axis {
        Axis::X => p.x,
        Axis::Y => p.y,
    };
    let across = |p: riot_geom::Point| match axis {
        Axis::X => p.y,
        Axis::Y => p.x,
    };

    for w in cell.wires() {
        let half = (w.width + 1) / 2;
        for &p in w.path.points() {
            columns.push(along(p));
        }
        for (a, b) in w.path.segments() {
            if along(a) == along(b) {
                // Segment runs across the axis: a full-height feature at
                // one column.
                let (lo, hi) = (across(a).min(across(b)), across(a).max(across(b)));
                features.push(Feature {
                    coord: along(a),
                    half,
                    perp_lo: lo - half,
                    perp_hi: hi + half,
                    layer: w.layer,
                });
            } else {
                // Segment runs along the axis: its two endpoints are
                // thin features (the wire end caps).
                for p in [a, b] {
                    features.push(Feature {
                        coord: along(p),
                        half,
                        perp_lo: across(p) - half,
                        perp_hi: across(p) + half,
                        layer: w.layer,
                    });
                }
            }
        }
    }

    for d in cell.devices() {
        columns.push(along(d.position));
        for (rect, layer) in device_rects(d) {
            features.push(Feature::from_rect(rect, axis, layer));
        }
    }

    for c in cell.contacts() {
        columns.push(along(c.position));
        let pad = Rect::from_center(c.position, 4, 4);
        let (a, b) = c.kind.layers();
        features.push(Feature::from_rect(pad, axis, a));
        features.push(Feature::from_rect(pad, axis, b));
    }

    for p in cell.pins() {
        columns.push(along(p.position));
        let half = (p.width + 1) / 2;
        features.push(Feature {
            coord: along(p.position),
            half,
            perp_lo: across(p.position) - half,
            perp_hi: across(p.position) + half,
            layer: p.layer,
        });
    }

    for f in &features {
        columns.push(f.coord);
    }
    columns.sort_unstable();
    columns.dedup();
    (features, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::{Orientation, Point};
    use riot_sticks::{Device, DeviceKind};

    #[test]
    fn rule_spacing_symmetric() {
        for a in Layer::ALL {
            for b in Layer::ALL {
                assert_eq!(rule_spacing(a, b), rule_spacing(b, a));
            }
        }
        assert_eq!(rule_spacing(Layer::Metal, Layer::Metal), Some(3));
        assert_eq!(rule_spacing(Layer::Poly, Layer::Diffusion), Some(1));
        assert_eq!(rule_spacing(Layer::Metal, Layer::Poly), None);
    }

    #[test]
    fn interaction_requires_perp_overlap() {
        let a = Feature {
            coord: 0,
            half: 1,
            perp_lo: 0,
            perp_hi: 10,
            layer: Layer::Metal,
        };
        let b = Feature {
            perp_lo: 10,
            perp_hi: 20,
            ..a
        };
        assert!(!a.interacts_across(b)); // touching spans do not overlap
        let c = Feature {
            perp_lo: 9,
            perp_hi: 20,
            ..a
        };
        assert!(a.interacts_across(c));
    }

    #[test]
    fn wire_segment_features() {
        let text = "sticks t\nbbox 0 0 20 20\nwire NM 3 0 5 10 5 10 15\nend\n";
        let cell = riot_sticks::parse(text).unwrap();
        let (features, columns) = extract(&cell, Axis::X);
        // Horizontal segment contributes 2 endpoint features, vertical
        // segment contributes 1 column feature.
        assert_eq!(features.len(), 3);
        assert_eq!(columns, vec![0, 10]);
        let (features_y, columns_y) = extract(&cell, Axis::Y);
        assert_eq!(features_y.len(), 3);
        assert_eq!(columns_y, vec![5, 15]);
    }

    #[test]
    fn device_rotation_swaps_extents() {
        let d0 = Device {
            kind: DeviceKind::Enhancement,
            position: Point::new(10, 10),
            orient: Orientation::R0,
        };
        let d90 = Device {
            orient: Orientation::R90,
            ..d0
        };
        let r0 = device_rects(&d0);
        let r90 = device_rects(&d90);
        assert_eq!(r0[0].0.width(), r90[0].0.height());
        assert_eq!(r0[0].0.height(), r90[0].0.width());
    }

    #[test]
    fn pins_and_contacts_become_columns() {
        let text = "sticks t\nbbox 0 0 20 20\npin A left NM 0 10 3\ncontact md 7 9\nend\n";
        let cell = riot_sticks::parse(text).unwrap();
        let (features, columns) = extract(&cell, Axis::X);
        assert_eq!(columns, vec![0, 7]);
        assert_eq!(features.len(), 3); // pin + two contact pad layers
    }
}
