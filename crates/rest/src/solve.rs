//! The one-dimensional column constraint solver.

use crate::error::SolveRestError;
use std::collections::BTreeMap;

/// Which axis a solve runs along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Solve x coordinates (stretch horizontally).
    X,
    /// Solve y coordinates (stretch vertically).
    Y,
}

impl Axis {
    /// The other axis.
    pub fn perpendicular(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Axis::X => "x",
            Axis::Y => "y",
        })
    }
}

/// How separations between columns are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// Consecutive columns keep at least their **original** separation:
    /// the cell only grows. This is Riot's stretch for cells that must
    /// not be re-compacted.
    PreserveGaps,
    /// Consecutive columns may move closer, down to the design-rule
    /// separations between interacting features — full REST behaviour
    /// (the optimizer may shrink as well as grow).
    DesignRules,
}

/// A 1-D constraint system over the distinct coordinates ("columns")
/// used along one axis.
///
/// Build with [`ColumnSolver::new`], add separation constraints and
/// equality targets, then [`ColumnSolver::solve`] to obtain the mapping
/// from old to new coordinates.
#[derive(Debug, Clone)]
pub struct ColumnSolver {
    columns: Vec<i64>,
    index: BTreeMap<i64, usize>,
    /// Minimum separation constraints `new[j] - new[i] >= sep`, i < j.
    edges: Vec<(usize, usize, i64)>,
    /// Equality targets `new[i] == t`.
    targets: BTreeMap<usize, i64>,
}

impl ColumnSolver {
    /// Creates a solver over the given coordinates (duplicates collapse
    /// into one column; order edges of weight 0 keep columns monotone).
    pub fn new<I: IntoIterator<Item = i64>>(coords: I) -> Self {
        let mut columns: Vec<i64> = coords.into_iter().collect();
        columns.sort_unstable();
        columns.dedup();
        let index = columns.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut edges = Vec::new();
        for i in 1..columns.len() {
            edges.push((i - 1, i, 0));
        }
        ColumnSolver {
            columns,
            index,
            edges,
            targets: BTreeMap::new(),
        }
    }

    /// The column coordinates, sorted ascending.
    pub fn columns(&self) -> &[i64] {
        &self.columns
    }

    /// Index of the column holding original coordinate `coord`.
    pub fn column_of(&self, coord: i64) -> Option<usize> {
        self.index.get(&coord).copied()
    }

    /// Requires `new[b] - new[a] >= sep` for original coordinates
    /// `a < b`. Constraints between equal or reversed coordinates are
    /// ignored (they are inside one column).
    pub fn require_separation(&mut self, a: i64, b: i64, sep: i64) {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return;
        };
        if ia < ib {
            self.edges.push((ia, ib, sep));
        }
    }

    /// Adds a gap-preserving floor: every consecutive pair keeps at
    /// least its original separation.
    pub fn preserve_gaps(&mut self) {
        for i in 1..self.columns.len() {
            let gap = self.columns[i] - self.columns[i - 1];
            self.edges.push((i - 1, i, gap));
        }
    }

    /// Pins the column at original coordinate `coord` to `target`.
    ///
    /// # Errors
    ///
    /// [`SolveRestError::ConflictingTargets`] when the column is already
    /// pinned elsewhere; [`SolveRestError::UnknownPin`] when `coord` is
    /// not a column.
    pub fn pin(&mut self, coord: i64, target: i64) -> Result<(), SolveRestError> {
        let idx = self
            .column_of(coord)
            .ok_or_else(|| SolveRestError::UnknownPin(format!("coordinate {coord}")))?;
        if let Some(&existing) = self.targets.get(&idx) {
            if existing != target {
                return Err(SolveRestError::ConflictingTargets {
                    column: coord,
                    first: existing,
                    second: target,
                });
            }
            return Ok(());
        }
        self.targets.insert(idx, target);
        Ok(())
    }

    /// Solves the system by a forward longest-path pass, returning the
    /// new coordinate of every column (same order as [`columns`]).
    ///
    /// Unpinned prefixes keep their original coordinates (the cell's
    /// left/bottom margin is an anchor); every other column sits at the
    /// lowest coordinate satisfying all separations and targets.
    ///
    /// # Errors
    ///
    /// [`SolveRestError::TargetTooTight`] when a pinned column cannot be
    /// pushed down to its target.
    ///
    /// [`columns`]: ColumnSolver::columns
    pub fn solve(&self) -> Result<Vec<i64>, SolveRestError> {
        let _sp = riot_trace::span!(
            "rest.solve",
            columns = self.columns.len() as u64,
            edges = self.edges.len() as u64,
        );
        let n = self.columns.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Group incoming edges per destination for the forward pass.
        let mut incoming: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
        for &(a, b, sep) in &self.edges {
            incoming[b].push((a, sep));
        }
        let mut new_pos = vec![i64::MIN; n];
        for i in 0..n {
            // Lower bound from predecessors; an unconstrained column
            // would drift to -inf, so anchor it at its original spot.
            let mut low = i64::MIN;
            for &(a, sep) in &incoming[i] {
                low = low.max(new_pos[a] + sep);
            }
            if low == i64::MIN {
                low = self.columns[i];
            }
            let pos = match self.targets.get(&i) {
                Some(&t) => {
                    if t < low {
                        return Err(SolveRestError::TargetTooTight {
                            column: self.columns[i],
                            target: t,
                            needed: low,
                        });
                    }
                    t
                }
                None => low,
            };
            new_pos[i] = pos;
        }
        Ok(new_pos)
    }

    /// Builds a piecewise-linear mapping from original to new
    /// coordinates out of a solve result, usable for coordinates between
    /// and beyond the columns (bounding-box corners).
    pub fn mapping(&self, solution: &[i64]) -> CoordMap {
        CoordMap {
            old: self.columns.clone(),
            new: solution.to_vec(),
        }
    }
}

/// Piecewise-linear coordinate remapping produced by a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordMap {
    old: Vec<i64>,
    new: Vec<i64>,
}

impl CoordMap {
    /// The identity mapping.
    pub fn identity() -> Self {
        CoordMap {
            old: Vec::new(),
            new: Vec::new(),
        }
    }

    /// Maps one coordinate. Exact column hits map exactly; coordinates
    /// before the first / after the last column shift rigidly with it;
    /// in-between coordinates interpolate linearly.
    pub fn map(&self, x: i64) -> i64 {
        if self.old.is_empty() {
            return x;
        }
        match self.old.binary_search(&x) {
            Ok(i) => self.new[i],
            Err(0) => x + (self.new[0] - self.old[0]),
            Err(i) if i == self.old.len() => x + (self.new[i - 1] - self.old[i - 1]),
            Err(i) => {
                let (x0, x1) = (self.old[i - 1], self.old[i]);
                let (y0, y1) = (self.new[i - 1], self.new[i]);
                y0 + (x - x0) * (y1 - y0) / (x1 - x0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_columns_collapse_onto_anchor() {
        // Without gap or rule edges the solver is a pure compactor:
        // only the order (weight-0) edges remain, so everything packs
        // against the anchored first column.
        let s = ColumnSolver::new([0, 5, 12]);
        assert_eq!(s.solve().unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn preserve_gaps_identity_without_targets() {
        let mut s = ColumnSolver::new([0, 5, 12]);
        s.preserve_gaps();
        assert_eq!(s.solve().unwrap(), vec![0, 5, 12]);
    }

    #[test]
    fn stretch_pushes_downstream_columns() {
        let mut s = ColumnSolver::new([0, 5, 12]);
        s.preserve_gaps();
        s.pin(5, 20).unwrap();
        // Gap 5→12 of 7 is preserved after the pinned column.
        assert_eq!(s.solve().unwrap(), vec![0, 20, 27]);
    }

    #[test]
    fn target_below_floor_is_infeasible() {
        let mut s = ColumnSolver::new([0, 5, 12]);
        s.preserve_gaps();
        let err = s.pin(5, 2).and_then(|_| s.solve().map(|_| ()));
        assert_eq!(
            err,
            Err(SolveRestError::TargetTooTight {
                column: 5,
                target: 2,
                needed: 5
            })
        );
    }

    #[test]
    fn design_rule_edges_allow_shrink() {
        let mut s = ColumnSolver::new([0, 10, 30]);
        s.require_separation(0, 10, 4);
        s.require_separation(10, 30, 4);
        s.pin(30, 9).unwrap();
        // Column 10 keeps its anchor (original position) unless pushed;
        // pin at 9 is above 0+4: wait, 10 anchors at 10 > 9 - must the
        // middle column move? Order edge only forces monotonicity, so
        // target 9 for the last column conflicts with anchor 10 of the
        // middle one... anchoring only applies to columns with no
        // incoming constraint, and column 10 has one (from 0), so its
        // floor is 4: the solve yields [0, 4, 9].
        let solved = s.solve().unwrap();
        assert_eq!(solved, vec![0, 4, 9]);
    }

    #[test]
    fn conflicting_targets_rejected() {
        let mut s = ColumnSolver::new([0, 5]);
        s.pin(5, 10).unwrap();
        assert!(matches!(
            s.pin(5, 11),
            Err(SolveRestError::ConflictingTargets { .. })
        ));
        // Same target twice is fine.
        assert!(s.pin(5, 10).is_ok());
    }

    #[test]
    fn unknown_coordinate_rejected() {
        let mut s = ColumnSolver::new([0, 5]);
        assert!(matches!(s.pin(3, 10), Err(SolveRestError::UnknownPin(_))));
    }

    #[test]
    fn duplicate_coords_collapse() {
        let s = ColumnSolver::new([4, 4, 4, 9]);
        assert_eq!(s.columns(), &[4, 9]);
    }

    #[test]
    fn mapping_interpolates_and_extends() {
        let mut s = ColumnSolver::new([0, 10]);
        s.preserve_gaps();
        s.pin(10, 30).unwrap();
        let m = s.mapping(&s.solve().unwrap());
        assert_eq!(m.map(0), 0);
        assert_eq!(m.map(10), 30);
        assert_eq!(m.map(5), 15); // linear interpolation
        assert_eq!(m.map(-3), -3); // rigid shift before first column
        assert_eq!(m.map(13), 33); // rigid shift after last column
    }

    #[test]
    fn empty_solver() {
        let s = ColumnSolver::new([]);
        assert!(s.solve().unwrap().is_empty());
        assert_eq!(CoordMap::identity().map(42), 42);
    }
}
