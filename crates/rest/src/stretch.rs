//! Stretching and compacting symbolic cells.

use crate::error::SolveRestError;
use crate::features::{extract, rule_spacing};
use crate::solve::{Axis, ColumnSolver, CoordMap, SolveMode};
use riot_geom::{Path, Point, Rect};
use riot_sticks::{SticksCell, SymWire};

/// A stretch request: an axis plus target coordinates for named pins.
///
/// Riot derives the targets from the connector locations on the *to*
/// instance of a stretch connection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StretchSpec {
    axis_is_y: bool,
    targets: Vec<(String, i64)>,
}

impl StretchSpec {
    /// Creates an empty spec for the given axis.
    pub fn new(axis: Axis) -> Self {
        StretchSpec {
            axis_is_y: axis == Axis::Y,
            targets: Vec::new(),
        }
    }

    /// The solve axis.
    pub fn axis(&self) -> Axis {
        if self.axis_is_y {
            Axis::Y
        } else {
            Axis::X
        }
    }

    /// Adds a pin target (builder style).
    pub fn target(mut self, pin: impl Into<String>, coord: i64) -> Self {
        self.targets.push((pin.into(), coord));
        self
    }

    /// Adds a pin target in place.
    pub fn push_target(&mut self, pin: impl Into<String>, coord: i64) {
        self.targets.push((pin.into(), coord));
    }

    /// The requested `(pin, coordinate)` pairs.
    pub fn targets(&self) -> &[(String, i64)] {
        &self.targets
    }
}

/// Stretches `cell` so each named pin lands on its target coordinate,
/// preserving all original separations (the cell only grows). This is
/// the conservative mode Riot uses for stretch connections.
///
/// # Errors
///
/// [`SolveRestError::UnknownPin`] for a target naming no pin, and
/// [`SolveRestError::TargetTooTight`] when targets would force two
/// original coordinates closer together.
pub fn stretch(cell: &SticksCell, spec: &StretchSpec) -> Result<SticksCell, SolveRestError> {
    stretch_with_mode(cell, spec, SolveMode::PreserveGaps)
}

/// Stretches or re-compacts `cell` under the given solve mode.
///
/// [`SolveMode::DesignRules`] is full REST behaviour: elements may also
/// move closer, down to design-rule separations, so targets *smaller*
/// than the current coordinates can succeed.
///
/// # Errors
///
/// As [`stretch`].
pub fn stretch_with_mode(
    cell: &SticksCell,
    spec: &StretchSpec,
    mode: SolveMode,
) -> Result<SticksCell, SolveRestError> {
    let _sp = riot_trace::span!("rest.stretch", targets = spec.targets().len() as u64);
    let axis = spec.axis();
    let mut solver = build_solver(cell, axis, mode);
    for (pin_name, target) in spec.targets() {
        let pin = cell
            .pin(pin_name)
            .ok_or_else(|| SolveRestError::UnknownPin(pin_name.clone()))?;
        let coord = match axis {
            Axis::X => pin.position.x,
            Axis::Y => pin.position.y,
        };
        solver.pin(coord, *target)?;
    }
    let solution = solver.solve()?;
    let map = solver.mapping(&solution);
    let out = rebuild(cell, axis, &map)?;
    out.validate()
        .map_err(|e| SolveRestError::Rebuild(e.to_string()))?;
    Ok(out)
}

/// Compacts `cell` along `axis` to design-rule separations (no pin
/// targets). Returns the compacted cell; the bounding box shrinks with
/// its contents.
///
/// # Errors
///
/// Only [`SolveRestError::Rebuild`] — a rule set that breaks the cell's
/// own invariants, which indicates a bug rather than a user error.
pub fn compact(cell: &SticksCell, axis: Axis) -> Result<SticksCell, SolveRestError> {
    let _sp = riot_trace::span!("rest.compact");
    let solver = build_solver(cell, axis, SolveMode::DesignRules);
    let solution = solver.solve()?;
    let map = solver.mapping(&solution);
    let out = rebuild(cell, axis, &map)?;
    out.validate()
        .map_err(|e| SolveRestError::Rebuild(e.to_string()))?;
    Ok(out)
}

fn build_solver(cell: &SticksCell, axis: Axis, mode: SolveMode) -> ColumnSolver {
    let (features, columns) = extract(cell, axis);
    let mut solver = ColumnSolver::new(columns);
    match mode {
        SolveMode::PreserveGaps => solver.preserve_gaps(),
        SolveMode::DesignRules => {
            for (i, a) in features.iter().enumerate() {
                for b in &features[i + 1..] {
                    if a.coord == b.coord || !a.interacts_across(*b) {
                        continue;
                    }
                    if let Some(space) = rule_spacing(a.layer, b.layer) {
                        let sep = a.half + b.half + space;
                        let (lo, hi) = if a.coord < b.coord {
                            (a.coord, b.coord)
                        } else {
                            (b.coord, a.coord)
                        };
                        solver.require_separation(lo, hi, sep);
                    }
                }
            }
        }
    }
    solver
}

fn rebuild(cell: &SticksCell, axis: Axis, map: &CoordMap) -> Result<SticksCell, SolveRestError> {
    let mp = |p: Point| match axis {
        Axis::X => Point::new(map.map(p.x), p.y),
        Axis::Y => Point::new(p.x, map.map(p.y)),
    };
    let bb = cell.bbox();
    let new_bbox = match axis {
        Axis::X => Rect::new(map.map(bb.x0), bb.y0, map.map(bb.x1), bb.y1),
        Axis::Y => Rect::new(bb.x0, map.map(bb.y0), bb.x1, map.map(bb.y1)),
    };
    let mut out = SticksCell::new(cell.name().to_owned(), new_bbox);
    for pin in cell.pins() {
        let mut p = pin.clone();
        p.position = mp(p.position);
        out.push_pin(p);
    }
    for wire in cell.wires() {
        let pts: Vec<Point> = wire.path.points().iter().map(|&p| mp(p)).collect();
        // A monotone remap preserves Manhattan paths; a failure here is
        // a solver bug, surfaced as a typed error rather than a panic.
        let path = Path::from_points(pts)
            .map_err(|e| SolveRestError::Rebuild(format!("remapped wire is invalid: {e}")))?;
        out.push_wire(SymWire {
            layer: wire.layer,
            width: wire.width,
            path,
        });
    }
    for d in cell.devices() {
        let mut d = *d;
        d.position = mp(d.position);
        out.push_device(d);
    }
    for c in cell.contacts() {
        let mut c = *c;
        c.position = mp(c.position);
        out.push_contact(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_geom::Side;

    const CELL: &str = "\
sticks gate
bbox 0 0 12 20
pin A left NP 0 4 2
pin B left NP 0 10 2
pin C left NP 0 16 2
pin OUT right NM 12 10 3
wire NP 2 0 4 6 4
wire NP 2 0 10 6 10
wire NP 2 0 16 6 16
wire NM 3 6 2 6 18
wire NM 3 6 10 12 10
end
";

    fn cell() -> SticksCell {
        riot_sticks::parse(CELL).unwrap()
    }

    #[test]
    fn stretch_moves_pins_to_targets() {
        let spec = StretchSpec::new(Axis::Y)
            .target("A", 4)
            .target("B", 14)
            .target("C", 26);
        let out = stretch(&cell(), &spec).unwrap();
        assert_eq!(out.pin("A").unwrap().position.y, 4);
        assert_eq!(out.pin("B").unwrap().position.y, 14);
        assert_eq!(out.pin("C").unwrap().position.y, 26);
        // The cell grew to keep the top margin.
        assert_eq!(out.bbox().y1, 30);
        out.validate().unwrap();
    }

    #[test]
    fn stretch_keeps_wires_attached_to_pins() {
        let spec = StretchSpec::new(Axis::Y).target("B", 14);
        let out = stretch(&cell(), &spec).unwrap();
        // The wire that started at B's original position follows it.
        let wire_at_b = out
            .wires()
            .iter()
            .find(|w| w.path.start() == out.pin("B").unwrap().position)
            .expect("wire still starts at pin B");
        assert_eq!(wire_at_b.path.end().y, 14);
    }

    #[test]
    fn stretch_identity_when_targets_match() {
        let c = cell();
        let spec = StretchSpec::new(Axis::Y)
            .target("A", 4)
            .target("B", 10)
            .target("C", 16);
        let out = stretch(&c, &spec).unwrap();
        assert_eq!(out, c);
    }

    #[test]
    fn stretch_cannot_shrink_in_preserve_mode() {
        let spec = StretchSpec::new(Axis::Y).target("B", 6); // orig 10, A at 4
        let err = stretch(&cell(), &spec).unwrap_err();
        assert!(matches!(err, SolveRestError::TargetTooTight { .. }));
    }

    #[test]
    fn design_rules_mode_can_shrink() {
        // Metal-metal spacing (wire ends at y=2, width 3) floors B's row
        // at 2 + 2+2+3 = 9, below its original 10.
        let spec = StretchSpec::new(Axis::Y).target("B", 9);
        let out = stretch_with_mode(&cell(), &spec, SolveMode::DesignRules).unwrap();
        assert_eq!(out.pin("B").unwrap().position.y, 9);
        out.validate().unwrap();
        // One step tighter is exactly infeasible, with the floor reported.
        let spec = StretchSpec::new(Axis::Y).target("B", 8);
        let err = stretch_with_mode(&cell(), &spec, SolveMode::DesignRules).unwrap_err();
        assert_eq!(
            err,
            SolveRestError::TargetTooTight {
                column: 10,
                target: 8,
                needed: 9
            }
        );
    }

    #[test]
    fn unknown_pin_rejected() {
        let spec = StretchSpec::new(Axis::Y).target("NOPE", 8);
        assert!(matches!(
            stretch(&cell(), &spec),
            Err(SolveRestError::UnknownPin(_))
        ));
    }

    #[test]
    fn x_axis_stretch() {
        let spec = StretchSpec::new(Axis::X).target("OUT", 20);
        let out = stretch(&cell(), &spec).unwrap();
        assert_eq!(out.pin("OUT").unwrap().position.x, 20);
        assert_eq!(out.bbox().x1, 20);
        // Left-side pins stay put.
        assert_eq!(out.pin("A").unwrap().position.x, 0);
        out.validate().unwrap();
    }

    #[test]
    fn compact_shrinks_but_stays_legal() {
        // A sparse cell with two parallel metal wires far apart.
        let text = "\
sticks sparse
bbox 0 0 30 10
wire NM 3 5 0 5 10
wire NM 3 25 0 25 10
end
";
        let c = riot_sticks::parse(text).unwrap();
        let out = compact(&c, Axis::X).unwrap();
        let xs: Vec<i64> = out.wires().iter().map(|w| w.path.start().x).collect();
        // Metal min spacing 3 + half-widths 2+2 => centers 7 apart? The
        // half used is ceil(3/2)=2 per side, so separation 2+2+3 = 7.
        assert_eq!(xs[1] - xs[0], 7);
        assert!(out.bbox().width() < 30);
        out.validate().unwrap();
    }

    #[test]
    fn stretch_preserves_side_membership() {
        let spec = StretchSpec::new(Axis::Y).target("C", 40);
        let out = stretch(&cell(), &spec).unwrap();
        for pin in out.pins() {
            let on = match pin.side {
                Side::Left => pin.position.x == out.bbox().x0,
                Side::Right => pin.position.x == out.bbox().x1,
                Side::Bottom => pin.position.y == out.bbox().y0,
                Side::Top => pin.position.y == out.bbox().y1,
            };
            assert!(on, "pin {} left its side", pin.name);
        }
    }
}
