//! REST-style symbolic-layout optimizer for the RIOT reproduction.
//!
//! Riot's **stretch** connection "passes the cell through the Stick
//! optimizer in REST (Mosteller 1981), which moves the connectors to the
//! constrained locations". Mosteller's thesis software is not available,
//! so this crate implements the canonical algorithm of that era for the
//! published interface: **one-dimensional constraint-graph solving**.
//!
//! A [`riot_sticks::SticksCell`] is projected onto one axis; every
//! distinct coordinate used by an element becomes a *column*. Edges
//! between columns carry minimum separations:
//!
//! * order edges between consecutive columns keep the symbolic topology
//!   (elements never reorder);
//! * design-rule edges keep interacting features (same-layer wires,
//!   poly against diffusion…) legally spaced;
//! * in gap-preserving mode, consecutive columns also keep their original
//!   separation, so a cell only ever grows.
//!
//! Pin targets are equality constraints. A single forward longest-path
//! pass over the (topologically ordered) column DAG solves the system or
//! reports exactly which target is infeasible and why.
//!
//! # Example: stretch an inverter so its output pin moves up
//!
//! ```
//! use riot_rest::{stretch, Axis, StretchSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inv = riot_sticks::parse(
//!     "sticks inv\nbbox 0 0 10 12\npin IN left NP 0 6\npin OUT right NM 10 8 3\nwire NP 2 0 6 6 6\nwire NM 3 6 8 10 8\nend\n",
//! )?;
//! let spec = StretchSpec::new(Axis::Y).target("OUT", 20);
//! let stretched = stretch(&inv, &spec)?;
//! assert_eq!(stretched.pin("OUT").unwrap().position.y, 20);
//! stretched.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod solve;
pub mod stretch;

pub use error::SolveRestError;
pub use solve::{Axis, ColumnSolver, SolveMode};
pub use stretch::{compact, stretch, stretch_with_mode, StretchSpec};
