//! Property tests for the REST stretcher/compactor.

use proptest::prelude::*;
use riot_geom::{Layer, Path, Point, Rect, Side};
use riot_rest::{compact, stretch, Axis, StretchSpec};
use riot_sticks::{Pin, SticksCell, SymWire};

/// A comb cell: `n` horizontal poly fingers entering from the left, a
/// vertical metal spine on the right. Finger rows are the prop inputs.
fn comb_cell(rows: &[i64]) -> SticksCell {
    let height = rows.iter().max().copied().unwrap_or(0) + 4;
    let mut cell = SticksCell::new("comb", Rect::new(0, 0, 20, height));
    for (i, &y) in rows.iter().enumerate() {
        cell.push_pin(Pin {
            name: format!("F{i}"),
            side: Side::Left,
            layer: Layer::Poly,
            position: Point::new(0, y),
            width: 2,
        });
        cell.push_wire(SymWire {
            layer: Layer::Poly,
            width: 2,
            path: Path::from_points([Point::new(0, y), Point::new(16, y)]).unwrap(),
        });
    }
    cell.push_wire(SymWire {
        layer: Layer::Metal,
        width: 3,
        path: Path::from_points([Point::new(18, 0), Point::new(18, height)]).unwrap(),
    });
    cell
}

/// Strictly increasing rows within the cell body.
fn arb_rows() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(2i64..9, 1..6).prop_map(|gaps| {
        let mut rows = Vec::new();
        let mut y = 2;
        for g in gaps {
            rows.push(y);
            y += g;
        }
        rows
    })
}

/// Target offsets that only ever grow the gaps.
fn arb_growth(len: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..12, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stretch_hits_all_targets((rows, growth) in arb_rows().prop_flat_map(|r| {
        let n = r.len();
        (Just(r), arb_growth(n))
    })) {
        let cell = comb_cell(&rows);
        let mut spec = StretchSpec::new(Axis::Y);
        let mut cum = 0;
        let mut targets = Vec::new();
        for (i, (&y, &g)) in rows.iter().zip(&growth).enumerate() {
            cum += g;
            let t = y + cum;
            spec.push_target(format!("F{i}"), t);
            targets.push(t);
        }
        let out = stretch(&cell, &spec).expect("monotone growth is always feasible");
        for (i, &t) in targets.iter().enumerate() {
            prop_assert_eq!(out.pin(&format!("F{i}")).unwrap().position.y, t);
        }
        out.validate().expect("stretched cell stays valid");
    }

    #[test]
    fn stretch_to_current_positions_is_identity(rows in arb_rows()) {
        let cell = comb_cell(&rows);
        let mut spec = StretchSpec::new(Axis::Y);
        for (i, &y) in rows.iter().enumerate() {
            spec.push_target(format!("F{i}"), y);
        }
        let out = stretch(&cell, &spec).expect("identity targets");
        prop_assert_eq!(out, cell);
    }

    #[test]
    fn stretch_never_shrinks_any_gap((rows, growth) in arb_rows().prop_flat_map(|r| {
        let n = r.len();
        (Just(r), arb_growth(n))
    })) {
        let cell = comb_cell(&rows);
        let mut spec = StretchSpec::new(Axis::Y);
        let mut cum = 0;
        for (i, (&y, &g)) in rows.iter().zip(&growth).enumerate() {
            cum += g;
            spec.push_target(format!("F{i}"), y + cum);
        }
        let out = stretch(&cell, &spec).expect("feasible");
        // Every consecutive pin gap is at least its original value.
        for i in 1..rows.len() {
            let orig = rows[i] - rows[i - 1];
            let new = out.pin(&format!("F{i}")).unwrap().position.y
                - out.pin(&format!("F{}", i - 1)).unwrap().position.y;
            prop_assert!(new >= orig, "gap {i} shrank: {new} < {orig}");
        }
        // The bounding box never shrinks either.
        prop_assert!(out.bbox().height() >= cell.bbox().height());
    }

    #[test]
    fn compact_is_idempotent(rows in arb_rows()) {
        let cell = comb_cell(&rows);
        let once = compact(&cell, Axis::Y).expect("compact");
        let twice = compact(&once, Axis::Y).expect("compact again");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn compact_respects_poly_spacing(rows in arb_rows()) {
        let cell = comb_cell(&rows);
        let out = compact(&cell, Axis::Y).expect("compact");
        // Poly fingers all span the same x range, so they must stay
        // half+half+spacing = 1+1+2 = 4 apart.
        let mut ys: Vec<i64> = out
            .wires()
            .iter()
            .filter(|w| w.layer == Layer::Poly)
            .map(|w| w.path.start().y)
            .collect();
        ys.sort_unstable();
        for pair in ys.windows(2) {
            prop_assert!(pair[1] - pair[0] >= 4, "poly rows {} and {} too close", pair[0], pair[1]);
        }
        out.validate().expect("compacted cell stays valid");
    }
}
