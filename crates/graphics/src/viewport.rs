//! Zoom/pan mapping from layout coordinates to screen pixels.
//!
//! "Since Riot is an interactive graphical tool, commands exist for
//! zooming and panning the display."

use riot_geom::{Point, Rect};

/// The window-to-viewport mapping: a world rectangle (centimicrons)
/// shown in a pixel area. Zoom and pan adjust the world window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Viewport {
    window: Rect,
    screen_w: usize,
    screen_h: usize,
}

impl Viewport {
    /// Shows exactly `window`, anisotropically stretched to the screen.
    /// Prefer [`Viewport::fit`] which preserves aspect ratio.
    ///
    /// # Panics
    ///
    /// Panics if the window or screen is degenerate.
    pub fn new(window: Rect, screen_w: usize, screen_h: usize) -> Self {
        assert!(window.width() > 0 && window.height() > 0, "empty window");
        assert!(screen_w > 0 && screen_h > 0, "empty screen");
        Viewport {
            window,
            screen_w,
            screen_h,
        }
    }

    /// Fits `content` into the screen preserving aspect ratio, with a
    /// small margin, centering the content.
    pub fn fit(content: Rect, screen_w: usize, screen_h: usize) -> Self {
        let content = if content.width() == 0 || content.height() == 0 {
            content.inflated(content.width().max(content.height()).max(100) / 2 + 50)
        } else {
            content
        };
        let margin_w = content.width() / 20 + 1;
        let margin_h = content.height() / 20 + 1;
        let padded = Rect::new(
            content.x0 - margin_w,
            content.y0 - margin_h,
            content.x1 + margin_w,
            content.y1 + margin_h,
        );
        // Grow the window in the direction the screen is wider, so the
        // scale is isotropic.
        let sw = screen_w as i64;
        let sh = screen_h as i64;
        let (mut w, mut h) = (padded.width(), padded.height());
        if w * sh < h * sw {
            w = h * sw / sh;
        } else {
            h = w * sh / sw;
        }
        let c = padded.center();
        Viewport::new(
            Rect::new(c.x - w / 2, c.y - h / 2, c.x - w / 2 + w, c.y - h / 2 + h),
            screen_w,
            screen_h,
        )
    }

    /// The world window currently displayed.
    pub fn window(&self) -> Rect {
        self.window
    }

    /// Screen size in pixels.
    pub fn screen_size(&self) -> (usize, usize) {
        (self.screen_w, self.screen_h)
    }

    /// Maps a world point to screen pixels.
    pub fn to_screen(&self, p: Point) -> (i64, i64) {
        let x = (p.x - self.window.x0) * self.screen_w as i64 / self.window.width();
        let y = (p.y - self.window.y0) * self.screen_h as i64 / self.window.height();
        (x, y)
    }

    /// Maps a screen pixel back to world coordinates (the pointing
    /// device path: the mouse/BitPad cursor picks world objects).
    pub fn to_world(&self, x: i64, y: i64) -> Point {
        Point::new(
            self.window.x0 + x * self.window.width() / self.screen_w as i64,
            self.window.y0 + y * self.window.height() / self.screen_h as i64,
        )
    }

    /// A world length in screen pixels (x scale).
    pub fn scale_length(&self, len: i64) -> i64 {
        len * self.screen_w as i64 / self.window.width()
    }

    /// Zooms by a rational factor about the window center: factor > 1
    /// zooms in (smaller window).
    pub fn zoomed(&self, num: i64, den: i64) -> Viewport {
        assert!(num > 0 && den > 0, "zoom factor must be positive");
        let c = self.window.center();
        let w = (self.window.width() * den / num).max(2);
        let h = (self.window.height() * den / num).max(2);
        Viewport::new(
            Rect::new(c.x - w / 2, c.y - h / 2, c.x - w / 2 + w, c.y - h / 2 + h),
            self.screen_w,
            self.screen_h,
        )
    }

    /// Pans by a world displacement.
    pub fn panned(&self, d: Point) -> Viewport {
        Viewport::new(self.window.translated(d), self.screen_w, self.screen_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_map_to_screen_extent() {
        let vp = Viewport::new(Rect::new(0, 0, 100, 200), 50, 100);
        assert_eq!(vp.to_screen(Point::new(0, 0)), (0, 0));
        assert_eq!(vp.to_screen(Point::new(100, 200)), (50, 100));
        assert_eq!(vp.to_screen(Point::new(50, 100)), (25, 50));
    }

    #[test]
    fn world_round_trip_within_pixel() {
        let vp = Viewport::new(Rect::new(-500, -500, 1500, 1500), 200, 200);
        for p in [Point::new(0, 0), Point::new(123, 456), Point::new(-77, 900)] {
            let (sx, sy) = vp.to_screen(p);
            let q = vp.to_world(sx, sy);
            assert!(p.manhattan(q) <= 2 * vp.window().width() / 200 + 2);
        }
    }

    #[test]
    fn fit_preserves_aspect() {
        let vp = Viewport::fit(Rect::new(0, 0, 1000, 100), 100, 100);
        let win = vp.window();
        // Window must be square for a square screen.
        assert_eq!(win.width(), win.height());
        assert!(win.width() >= 1000);
    }

    #[test]
    fn fit_handles_degenerate_content() {
        let vp = Viewport::fit(Rect::new(5, 5, 5, 5), 100, 100);
        assert!(vp.window().width() > 0);
    }

    #[test]
    fn zoom_in_shrinks_window() {
        let vp = Viewport::new(Rect::new(0, 0, 1000, 1000), 100, 100);
        let z = vp.zoomed(2, 1);
        assert_eq!(z.window().width(), 500);
        assert_eq!(z.window().center(), vp.window().center());
        let out = z.zoomed(1, 2);
        assert_eq!(out.window().width(), 1000);
    }

    #[test]
    fn pan_shifts_window() {
        let vp = Viewport::new(Rect::new(0, 0, 100, 100), 10, 10);
        let p = vp.panned(Point::new(50, -20));
        assert_eq!(p.window(), Rect::new(50, -20, 150, 80));
    }
}
