//! Resolution-independent draw operations in layout coordinates.

use crate::color::Color;
use crate::font;
use crate::framebuffer::Framebuffer;
use crate::raster::{self, PixelSink};
use crate::viewport::Viewport;
use riot_geom::{par, Point, Rect, SpatialIndex};

/// One drawing operation in world (centimicron) coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrawOp {
    /// A straight line between world points.
    Line {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
        /// Stroke color.
        color: Color,
    },
    /// A rectangle outline.
    Rect {
        /// The rectangle.
        rect: Rect,
        /// Stroke color.
        color: Color,
    },
    /// A filled rectangle.
    FillRect {
        /// The rectangle.
        rect: Rect,
        /// Fill color.
        color: Color,
    },
    /// A connector cross; `arm` is the world half-arm length (scaled
    /// with the connector's wire width).
    Cross {
        /// Cross center.
        center: Point,
        /// Half-arm length in world units.
        arm: i64,
        /// Stroke color.
        color: Color,
    },
    /// A text label anchored at its lower-left corner. Text renders at
    /// fixed pixel size (labels stay readable at any zoom).
    Text {
        /// Lower-left anchor in world coordinates.
        at: Point,
        /// The label.
        text: String,
        /// Text color.
        color: Color,
    },
}

impl DrawOp {
    /// The operation's color.
    pub fn color(&self) -> Color {
        match self {
            DrawOp::Line { color, .. }
            | DrawOp::Rect { color, .. }
            | DrawOp::FillRect { color, .. }
            | DrawOp::Cross { color, .. }
            | DrawOp::Text { color, .. } => *color,
        }
    }

    /// The same operation painted in a different color (the device
    /// palette-quantization path).
    pub fn with_color(&self, color: Color) -> DrawOp {
        let mut op = self.clone();
        match &mut op {
            DrawOp::Line { color: c, .. }
            | DrawOp::Rect { color: c, .. }
            | DrawOp::FillRect { color: c, .. }
            | DrawOp::Cross { color: c, .. }
            | DrawOp::Text { color: c, .. } => *c = color,
        }
        op
    }
}

/// An ordered list of draw operations — Riot's per-screen display list,
/// rebuilt on every edit and rendered to whichever device is attached.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DisplayList {
    ops: Vec<DrawOp>,
}

impl DisplayList {
    /// Creates an empty display list.
    pub fn new() -> Self {
        DisplayList::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: DrawOp) {
        self.ops.push(op);
    }

    /// The operations, in draw order.
    pub fn ops(&self) -> &[DrawOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// World bounding box of everything drawn (text extends are
    /// approximated by their anchor points).
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut bb: Option<Rect> = None;
        let mut grow = |r: Rect| {
            bb = Some(match bb {
                Some(acc) => acc.union(r),
                None => r,
            });
        };
        for op in &self.ops {
            match op {
                DrawOp::Line { from, to, .. } => grow(Rect::from_points(*from, *to)),
                DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => grow(*rect),
                DrawOp::Cross { center, arm, .. } => {
                    grow(Rect::from_center(*center, 2 * arm, 2 * arm))
                }
                DrawOp::Text { at, .. } => grow(Rect::at_point(*at)),
            }
        }
        bb
    }

    /// Renders into a framebuffer through a viewport.
    pub fn render(&self, viewport: &Viewport, fb: &mut Framebuffer) {
        self.render_into(viewport, fb);
    }

    /// Renders into any [`PixelSink`] through a viewport — the sink may
    /// be a whole [`Framebuffer`] or a single horizontal
    /// [`Band`](crate::raster::Band) of one.
    pub fn render_into<S: PixelSink>(&self, viewport: &Viewport, sink: &mut S) {
        for op in &self.ops {
            render_op(op, viewport, sink);
        }
    }
}

/// Rasterizes one draw operation into a sink.
fn render_op(op: &DrawOp, viewport: &Viewport, sink: &mut impl PixelSink) {
    match op {
        DrawOp::Line { from, to, color } => {
            let (x0, y0) = viewport.to_screen(*from);
            let (x1, y1) = viewport.to_screen(*to);
            raster::draw_line(sink, x0, y0, x1, y1, *color);
        }
        DrawOp::Rect { rect, color } => {
            let (x0, y0) = viewport.to_screen(rect.lower_left());
            let (x1, y1) = viewport.to_screen(rect.upper_right());
            raster::draw_rect(sink, x0, y0, x1, y1, *color);
        }
        DrawOp::FillRect { rect, color } => {
            let (x0, y0) = viewport.to_screen(rect.lower_left());
            let (x1, y1) = viewport.to_screen(rect.upper_right());
            raster::fill_rect(sink, x0, y0, x1, y1, *color);
        }
        DrawOp::Cross { center, arm, color } => {
            let (x, y) = viewport.to_screen(*center);
            let a = viewport.scale_length(*arm).max(2);
            raster::draw_cross(sink, x, y, a, *color);
        }
        DrawOp::Text { at, text, color } => {
            let (x, y) = viewport.to_screen(*at);
            raster::draw_text(sink, x, y, text, *color);
        }
    }
}

/// A conservative **screen-space** bounding box of everything an op can
/// paint (a one-pixel safety margin covers rounding at the edges).
/// Used to clip ops against render bands.
fn op_screen_bbox(op: &DrawOp, viewport: &Viewport) -> Rect {
    let bbox = match op {
        DrawOp::Line { from, to, .. } => {
            let (x0, y0) = viewport.to_screen(*from);
            let (x1, y1) = viewport.to_screen(*to);
            Rect::new(x0, y0, x1, y1)
        }
        DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => {
            let (x0, y0) = viewport.to_screen(rect.lower_left());
            let (x1, y1) = viewport.to_screen(rect.upper_right());
            Rect::new(x0, y0, x1, y1)
        }
        DrawOp::Cross { center, arm, .. } => {
            let (x, y) = viewport.to_screen(*center);
            let a = viewport.scale_length(*arm).max(2);
            Rect::new(x - a, y - a, x + a, y + a)
        }
        DrawOp::Text { at, text, .. } => {
            let (x, y) = viewport.to_screen(*at);
            Rect::new(
                x,
                y,
                x + font::text_width(text) as i64,
                y + font::GLYPH_HEIGHT as i64 - 1,
            )
        }
    };
    bbox.inflated(1)
}

/// Renders `ops` into the framebuffer in parallel horizontal bands.
///
/// A [`SpatialIndex`] over the ops' screen bounding boxes clips each
/// band to the ops that can actually touch it; every band paints its
/// candidates in ascending op order and owns a disjoint row range, so
/// the result is pixel-identical to the sequential
/// [`DisplayList::render`] path at any thread count. Emits one
/// `gfx.render.band` span per band (also when running serially).
pub fn render_ops_banded(ops: &[DrawOp], viewport: &Viewport, fb: &mut Framebuffer) {
    if ops.is_empty() {
        return;
    }
    let width = fb.width();
    let height = fb.height();
    let boxes: Vec<Rect> = ops.iter().map(|op| op_screen_bbox(op, viewport)).collect();
    let index = SpatialIndex::build(&boxes);
    let band_count = par::threads().clamp(1, height);
    let mut bands = fb.bands_mut(height.div_ceil(band_count));
    riot_trace::registry()
        .counter("gfx.render.bands")
        .add(bands.len() as u64);
    par::for_each_mut(&mut bands, |_, band| {
        let candidates: Vec<usize> = index
            .query(Rect::new(0, band.y_min(), width as i64 - 1, band.y_max()))
            .collect();
        let _sp = riot_trace::span!(
            "gfx.render.band",
            y0 = band.y_start() as u64,
            rows = band.rows() as u64,
            ops = candidates.len() as u64,
        );
        for i in candidates {
            render_op(&ops[i], viewport, band);
        }
    });
}

/// A pixel sink restricted to one screen-space clip rectangle: writes
/// outside the rect are dropped, everything else passes through to the
/// wrapped sink (which applies its own row clipping). This is what lets
/// a damage repaint re-render an op that *overhangs* the dirty region
/// without disturbing the retained pixels around it.
struct ClipSink<'s, S: PixelSink> {
    inner: &'s mut S,
    clip: Rect,
}

impl<S: PixelSink> PixelSink for ClipSink<'_, S> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn height(&self) -> usize {
        self.inner.height()
    }

    fn y_min(&self) -> i64 {
        self.inner.y_min().max(self.clip.y0)
    }

    fn y_max(&self) -> i64 {
        self.inner.y_max().min(self.clip.y1)
    }

    fn set(&mut self, x: i64, y: i64, color: Color) {
        if x < self.clip.x0 || x > self.clip.x1 || y < self.clip.y0 || y > self.clip.y1 {
            return;
        }
        self.inner.set(x, y, color);
    }
}

/// Worst-case *pixel* overhang of one op beyond its world anchor: text
/// renders at fixed pixel size, crosses have a two-pixel minimum arm.
fn op_pad(op: &DrawOp, viewport: &Viewport) -> i64 {
    match op {
        DrawOp::Text { text, .. } => (font::text_width(text) as i64).max(font::GLYPH_HEIGHT as i64),
        DrawOp::Cross { arm, .. } => viewport.scale_length(*arm).max(2),
        _ => 0,
    }
}

/// The world-space rectangle whose screen image covers everything `op`
/// can paint under `viewport`: the op's screen bounding box (which
/// already includes fixed-pixel overhang — text renders at a
/// zoom-independent size, crosses have a two-pixel minimum arm) mapped
/// back to world coordinates with a one-world-pixel safety margin.
///
/// Damage reporters need this when an op is **removed** before a
/// one-shot [`render_ops_damaged`]: the stateless repaint can no
/// longer see the removed op, so its pixel overhang must be baked into
/// the damage rect itself. (A long-lived [`RenderCache`] does not need
/// it — its pad never shrinks, so it remembers the overhang of every
/// op it has ever indexed.)
pub fn op_damage_bbox(op: &DrawOp, viewport: &Viewport) -> Rect {
    let screen = op_screen_bbox(op, viewport);
    let a = viewport.to_world(screen.x0, screen.y0);
    let b = viewport.to_world(screen.x1 + 1, screen.y1 + 1);
    let (sw, sh) = viewport.screen_size();
    // One screen pixel in world units, rounded up — covers the
    // truncation in `to_world` at any zoom.
    let wppx = viewport.window().width() / sw as i64 + 1;
    let wppy = viewport.window().height() / sh as i64 + 1;
    let r = Rect::from_points(a, b);
    Rect::new(r.x0 - wppx, r.y0 - wppy, r.x1 + wppx, r.y1 + wppy)
}

/// When the overlay of changed-but-unindexed ops grows past this, the
/// spatial index is rebuilt (same policy as the incremental DRC state).
const OVERLAY_REBUILD: usize = 2048;

/// Retained acceleration state for damage repaints: each op's
/// screen-space bounding box, a [`SpatialIndex`] over them, and an
/// overlay of op indices edited since the index was last built. With a
/// long-lived cache a single-op edit repaints in O(damage), not O(ops):
/// [`RenderCache::sync`] refreshes only the changed boxes, and
/// [`RenderCache::render`] finds candidates through the index plus a
/// linear scan of the (small) overlay.
#[derive(Debug)]
pub struct RenderCache {
    viewport: Viewport,
    boxes: Vec<Rect>,
    index: SpatialIndex,
    overlay: Vec<usize>,
    pad: i64,
}

impl RenderCache {
    /// Builds the retained state from scratch — O(ops log ops).
    pub fn build(ops: &[DrawOp], viewport: &Viewport) -> RenderCache {
        let boxes: Vec<Rect> = ops.iter().map(|op| op_screen_bbox(op, viewport)).collect();
        let index = SpatialIndex::build(&boxes);
        let pad = ops.iter().fold(0i64, |p, op| p.max(op_pad(op, viewport)));
        RenderCache {
            viewport: viewport.clone(),
            boxes,
            index,
            overlay: Vec::new(),
            pad,
        }
    }

    /// Re-syncs after `ops` was edited **in place** at the given
    /// indices. A length change or a viewport change falls back to a
    /// full [`RenderCache::build`]; otherwise only the changed boxes
    /// are recomputed and queued on the overlay (the pad only ever
    /// grows, which is conservative and therefore safe).
    pub fn sync(&mut self, ops: &[DrawOp], viewport: &Viewport, changed: &[usize]) {
        if ops.len() != self.boxes.len() || *viewport != self.viewport {
            // Keep the larger pad across same-viewport rebuilds: a
            // removed text op's pixels may still sit in the retained
            // framebuffer, and later damage near them must repaint a
            // region wide enough to clear that overhang.
            let pad = if *viewport == self.viewport {
                self.pad
            } else {
                0
            };
            *self = RenderCache::build(ops, viewport);
            self.pad = self.pad.max(pad);
            return;
        }
        for &i in changed {
            self.boxes[i] = op_screen_bbox(&ops[i], viewport);
            self.pad = self.pad.max(op_pad(&ops[i], viewport));
            self.overlay.push(i);
        }
        if self.overlay.len() >= OVERLAY_REBUILD {
            self.index = SpatialIndex::build(&self.boxes);
            self.overlay.clear();
        }
    }

    /// Ops whose **current** box touches `window`, ascending. Index
    /// hits are re-filtered against the live boxes (entries for edited
    /// ops are stale); edited ops are found through the overlay.
    fn candidates(&self, window: Rect) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .index
            .query(window)
            .filter(|&i| self.boxes[i].touches(window))
            .collect();
        out.extend(
            self.overlay
                .iter()
                .copied()
                .filter(|&i| self.boxes[i].touches(window)),
        );
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Repaints only the pixels the world-space dirty rects can touch,
    /// leaving every other retained pixel of `fb` untouched.
    ///
    /// Each padded dirty rect is cleared to black and re-composed from
    /// every op whose screen box touches it, in ascending op order,
    /// clipped to the rect — so under the damage contract (every
    /// changed op's old and new world bounding box is covered by
    /// `dirty_world`) the result is pixel-identical to a full render of
    /// `ops`. The band partition is [`render_ops_banded`]'s, so the
    /// repaint parallelizes without overlapping writes.
    ///
    /// Returns the number of bands touched (0 when `dirty_world` is
    /// empty or entirely off-screen); also counted in the
    /// `gfx.render.damage.bands` metric.
    pub fn render(&self, ops: &[DrawOp], fb: &mut Framebuffer, dirty_world: &[Rect]) -> usize {
        assert_eq!(
            ops.len(),
            self.boxes.len(),
            "sync the cache before rendering"
        );
        if dirty_world.is_empty() {
            return 0;
        }
        let width = fb.width();
        let height = fb.height();
        let viewport = &self.viewport;
        let mut sp = riot_trace::span!("gfx.render.damaged", dirty = dirty_world.len() as u64);
        let pad = self.pad + 1; // +1 for edge rounding

        let dirty_screen: Vec<Rect> = dirty_world
            .iter()
            .map(|r| {
                let (x0, y0) = viewport.to_screen(r.lower_left());
                let (x1, y1) = viewport.to_screen(r.upper_right());
                Rect::new(x0 - pad, y0 - pad, x1 + pad, y1 + pad)
            })
            .filter(|d| d.x1 >= 0 && d.x0 < width as i64 && d.y1 >= 0 && d.y0 < height as i64)
            .collect();
        if dirty_screen.is_empty() {
            return 0; // all damage is off-screen
        }

        let cands: Vec<Vec<usize>> = dirty_screen.iter().map(|d| self.candidates(*d)).collect();
        let band_count = par::threads().clamp(1, height);
        let mut bands: Vec<_> = fb
            .bands_mut(height.div_ceil(band_count))
            .into_iter()
            .filter(|band| {
                dirty_screen
                    .iter()
                    .any(|d| d.y0 <= band.y_max() && d.y1 >= band.y_min())
            })
            .collect();
        riot_trace::registry()
            .counter("gfx.render.damage.bands")
            .add(bands.len() as u64);
        par::for_each_mut(&mut bands, |_, band| {
            // Overlapping dirty rects recompose the shared pixels more
            // than once — idempotent, since every pass alone produces
            // the final composite inside its own rect.
            for (d, cand) in dirty_screen.iter().zip(&cands) {
                if d.y0 > band.y_max() || d.y1 < band.y_min() {
                    continue;
                }
                let _sp = riot_trace::span!(
                    "gfx.render.band",
                    y0 = band.y_start() as u64,
                    rows = band.rows() as u64,
                    ops = cand.len() as u64,
                );
                let mut clip = ClipSink {
                    inner: band,
                    clip: *d,
                };
                raster::fill_rect(&mut clip, d.x0, d.y0, d.x1, d.y1, Color::BLACK);
                for &i in cand {
                    render_op(&ops[i], viewport, &mut clip);
                }
            }
        });
        sp.field("bands", bands.len() as u64);
        bands.len()
    }
}

/// One-shot damage repaint: builds a throwaway [`RenderCache`] and
/// renders through it. Callers repainting after every edit should hold
/// a [`RenderCache`] instead and pay the index build once.
///
/// Being stateless, this path only knows the pixel overhang of the ops
/// **currently** in `ops`. When reporting damage for a *removed* op
/// with fixed-pixel extent (text, minimum-arm crosses), cover its
/// former pixels with [`op_damage_bbox`] instead of its world bounding
/// box — or hold a [`RenderCache`], whose pad remembers removed ops.
///
/// Returns the number of bands touched (0 when `dirty_world` is empty
/// or entirely off-screen).
pub fn render_ops_damaged(
    ops: &[DrawOp],
    viewport: &Viewport,
    fb: &mut Framebuffer,
    dirty_world: &[Rect],
) -> usize {
    if dirty_world.is_empty() {
        return 0;
    }
    RenderCache::build(ops, viewport).render(ops, fb, dirty_world)
}

impl Extend<DrawOp> for DisplayList {
    fn extend<T: IntoIterator<Item = DrawOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<DrawOp> for DisplayList {
    fn from_iter<T: IntoIterator<Item = DrawOp>>(iter: T) -> Self {
        DisplayList {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DisplayList {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Rect {
            rect: Rect::new(0, 0, 1000, 500),
            color: Color::WHITE,
        });
        dl.push(DrawOp::Cross {
            center: Point::new(500, 250),
            arm: 100,
            color: Color::new(255, 0, 0),
        });
        dl.push(DrawOp::Text {
            at: Point::new(10, 10),
            text: "CELL".into(),
            color: Color::WHITE,
        });
        dl
    }

    #[test]
    fn bounding_box_covers_ops() {
        let dl = sample();
        let bb = dl.bounding_box().unwrap();
        assert!(bb.contains_rect(Rect::new(0, 0, 1000, 500)));
        assert!(bb.contains(Point::new(600, 350)));
    }

    #[test]
    fn render_lights_pixels() {
        let dl = sample();
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 128, 128);
        let mut fb = Framebuffer::new(128, 128);
        dl.render(&vp, &mut fb);
        assert!(fb.lit_pixels() > 100);
    }

    #[test]
    fn empty_list() {
        let dl = DisplayList::new();
        assert!(dl.is_empty());
        assert_eq!(dl.bounding_box(), None);
    }

    #[test]
    fn collect_from_iterator() {
        let dl: DisplayList = sample().ops().to_vec().into_iter().collect();
        assert_eq!(dl.len(), 3);
    }

    #[test]
    fn color_accessors_round_trip() {
        for op in sample().ops() {
            let tinted = op.with_color(Color::new(1, 2, 3));
            assert_eq!(tinted.color(), Color::new(1, 2, 3));
            assert_eq!(op.with_color(op.color()), *op);
        }
    }

    #[test]
    fn damaged_render_repaints_only_dirty_bands() {
        let mut dl = sample();
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 96, 96);
        let mut retained = Framebuffer::new(96, 96);
        dl.render(&vp, &mut retained);

        // Nothing dirty: nothing repainted.
        assert_eq!(render_ops_damaged(dl.ops(), &vp, &mut retained, &[]), 0);

        // Move the cross; damage covers its old and new extents.
        let old = Rect::from_center(Point::new(500, 250), 200, 200);
        dl = sample();
        let moved = DrawOp::Cross {
            center: Point::new(200, 400),
            arm: 100,
            color: Color::new(255, 0, 0),
        };
        let ops: Vec<DrawOp> = dl
            .ops()
            .iter()
            .map(|op| {
                if matches!(op, DrawOp::Cross { .. }) {
                    moved.clone()
                } else {
                    op.clone()
                }
            })
            .collect();
        let new = Rect::from_center(Point::new(200, 400), 200, 200);
        let repainted = render_ops_damaged(&ops, &vp, &mut retained, &[old, new]);
        assert!(repainted > 0);

        let mut full = Framebuffer::new(96, 96);
        let fresh: DisplayList = ops.iter().cloned().collect();
        fresh.render(&vp, &mut full);
        assert_eq!(retained, full, "partial repaint is pixel-identical");

        // Fully off-screen damage touches nothing.
        let far = Rect::new(1_000_000, 1_000_000, 1_000_100, 1_000_100);
        assert_eq!(render_ops_damaged(&ops, &vp, &mut retained, &[far]), 0);
    }

    #[test]
    fn retained_render_cache_tracks_in_place_edits() {
        let dl = sample();
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 96, 96);
        let mut ops: Vec<DrawOp> = dl.ops().to_vec();
        let mut cache = RenderCache::build(&ops, &vp);
        let mut retained = Framebuffer::new(96, 96);
        render_ops_banded(&ops, &vp, &mut retained);

        // Edit op 0 in place many times; sync only that index.
        for step in 0..3 {
            let rect = Rect::new(step * 120, 40, step * 120 + 350, 320);
            ops[0] = DrawOp::FillRect {
                rect,
                color: Color::new(40, 200, (40 * step) as u8),
            };
            cache.sync(&ops, &vp, &[0]);
            // Damage as the editor would report it: a rect covering the
            // op's old and new world extents (both fit in the frame).
            let dirty = [Rect::new(0, 0, 1000, 500)];
            assert!(cache.render(&ops, &mut retained, &dirty) > 0);
            let mut full = Framebuffer::new(96, 96);
            render_ops_banded(&ops, &vp, &mut full);
            assert_eq!(retained, full, "step {step}");
        }

        // A length change falls back to a rebuild and stays exact.
        ops.push(DrawOp::Cross {
            center: Point::new(700, 100),
            arm: 60,
            color: Color::WHITE,
        });
        cache.sync(&ops, &vp, &[]);
        let dirty = [Rect::from_center(Point::new(700, 100), 200, 200)];
        assert!(cache.render(&ops, &mut retained, &dirty) > 0);
        let mut full = Framebuffer::new(96, 96);
        render_ops_banded(&ops, &vp, &mut full);
        assert_eq!(retained, full, "after append + rebuild");
    }

    #[test]
    fn banded_render_matches_sequential_at_any_thread_count() {
        let mut dl = sample();
        // Add overlapping ops so draw order matters across bands.
        for i in 0..24 {
            dl.push(DrawOp::FillRect {
                rect: Rect::new(i * 37, i * 23, i * 37 + 400, i * 23 + 300),
                color: Color::new((i * 11) as u8, 128, (255 - i * 9) as u8),
            });
            dl.push(DrawOp::Line {
                from: Point::new(0, i * 40),
                to: Point::new(1000, 500 - i * 17),
                color: Color::WHITE,
            });
        }
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 96, 96);
        let mut reference = Framebuffer::new(96, 96);
        dl.render(&vp, &mut reference);
        for t in [1usize, 2, 3, 8] {
            par::set_threads(t);
            let mut fb = Framebuffer::new(96, 96);
            render_ops_banded(dl.ops(), &vp, &mut fb);
            par::set_threads(0);
            assert_eq!(fb, reference, "threads = {t}");
        }
    }
}
