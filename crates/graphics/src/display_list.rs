//! Resolution-independent draw operations in layout coordinates.

use crate::color::Color;
use crate::framebuffer::Framebuffer;
use crate::viewport::Viewport;
use riot_geom::{Point, Rect};

/// One drawing operation in world (centimicron) coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrawOp {
    /// A straight line between world points.
    Line {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
        /// Stroke color.
        color: Color,
    },
    /// A rectangle outline.
    Rect {
        /// The rectangle.
        rect: Rect,
        /// Stroke color.
        color: Color,
    },
    /// A filled rectangle.
    FillRect {
        /// The rectangle.
        rect: Rect,
        /// Fill color.
        color: Color,
    },
    /// A connector cross; `arm` is the world half-arm length (scaled
    /// with the connector's wire width).
    Cross {
        /// Cross center.
        center: Point,
        /// Half-arm length in world units.
        arm: i64,
        /// Stroke color.
        color: Color,
    },
    /// A text label anchored at its lower-left corner. Text renders at
    /// fixed pixel size (labels stay readable at any zoom).
    Text {
        /// Lower-left anchor in world coordinates.
        at: Point,
        /// The label.
        text: String,
        /// Text color.
        color: Color,
    },
}

/// An ordered list of draw operations — Riot's per-screen display list,
/// rebuilt on every edit and rendered to whichever device is attached.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DisplayList {
    ops: Vec<DrawOp>,
}

impl DisplayList {
    /// Creates an empty display list.
    pub fn new() -> Self {
        DisplayList::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: DrawOp) {
        self.ops.push(op);
    }

    /// The operations, in draw order.
    pub fn ops(&self) -> &[DrawOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// World bounding box of everything drawn (text extends are
    /// approximated by their anchor points).
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut bb: Option<Rect> = None;
        let mut grow = |r: Rect| {
            bb = Some(match bb {
                Some(acc) => acc.union(r),
                None => r,
            });
        };
        for op in &self.ops {
            match op {
                DrawOp::Line { from, to, .. } => grow(Rect::from_points(*from, *to)),
                DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => grow(*rect),
                DrawOp::Cross { center, arm, .. } => {
                    grow(Rect::from_center(*center, 2 * arm, 2 * arm))
                }
                DrawOp::Text { at, .. } => grow(Rect::at_point(*at)),
            }
        }
        bb
    }

    /// Renders into a framebuffer through a viewport.
    pub fn render(&self, viewport: &Viewport, fb: &mut Framebuffer) {
        for op in &self.ops {
            match op {
                DrawOp::Line { from, to, color } => {
                    let (x0, y0) = viewport.to_screen(*from);
                    let (x1, y1) = viewport.to_screen(*to);
                    fb.draw_line(x0, y0, x1, y1, *color);
                }
                DrawOp::Rect { rect, color } => {
                    let (x0, y0) = viewport.to_screen(rect.lower_left());
                    let (x1, y1) = viewport.to_screen(rect.upper_right());
                    fb.draw_rect(x0, y0, x1, y1, *color);
                }
                DrawOp::FillRect { rect, color } => {
                    let (x0, y0) = viewport.to_screen(rect.lower_left());
                    let (x1, y1) = viewport.to_screen(rect.upper_right());
                    fb.fill_rect(x0, y0, x1, y1, *color);
                }
                DrawOp::Cross { center, arm, color } => {
                    let (x, y) = viewport.to_screen(*center);
                    let a = viewport.scale_length(*arm).max(2);
                    fb.draw_cross(x, y, a, *color);
                }
                DrawOp::Text { at, text, color } => {
                    let (x, y) = viewport.to_screen(*at);
                    fb.draw_text(x, y, text, *color);
                }
            }
        }
    }
}

impl Extend<DrawOp> for DisplayList {
    fn extend<T: IntoIterator<Item = DrawOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<DrawOp> for DisplayList {
    fn from_iter<T: IntoIterator<Item = DrawOp>>(iter: T) -> Self {
        DisplayList {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DisplayList {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Rect {
            rect: Rect::new(0, 0, 1000, 500),
            color: Color::WHITE,
        });
        dl.push(DrawOp::Cross {
            center: Point::new(500, 250),
            arm: 100,
            color: Color::new(255, 0, 0),
        });
        dl.push(DrawOp::Text {
            at: Point::new(10, 10),
            text: "CELL".into(),
            color: Color::WHITE,
        });
        dl
    }

    #[test]
    fn bounding_box_covers_ops() {
        let dl = sample();
        let bb = dl.bounding_box().unwrap();
        assert!(bb.contains_rect(Rect::new(0, 0, 1000, 500)));
        assert!(bb.contains(Point::new(600, 350)));
    }

    #[test]
    fn render_lights_pixels() {
        let dl = sample();
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 128, 128);
        let mut fb = Framebuffer::new(128, 128);
        dl.render(&vp, &mut fb);
        assert!(fb.lit_pixels() > 100);
    }

    #[test]
    fn empty_list() {
        let dl = DisplayList::new();
        assert!(dl.is_empty());
        assert_eq!(dl.bounding_box(), None);
    }

    #[test]
    fn collect_from_iterator() {
        let dl: DisplayList = sample().ops().to_vec().into_iter().collect();
        assert_eq!(dl.len(), 3);
    }
}
