//! Resolution-independent draw operations in layout coordinates.

use crate::color::Color;
use crate::font;
use crate::framebuffer::Framebuffer;
use crate::raster::{self, PixelSink};
use crate::viewport::Viewport;
use riot_geom::{par, Point, Rect, SpatialIndex};

/// One drawing operation in world (centimicron) coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrawOp {
    /// A straight line between world points.
    Line {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
        /// Stroke color.
        color: Color,
    },
    /// A rectangle outline.
    Rect {
        /// The rectangle.
        rect: Rect,
        /// Stroke color.
        color: Color,
    },
    /// A filled rectangle.
    FillRect {
        /// The rectangle.
        rect: Rect,
        /// Fill color.
        color: Color,
    },
    /// A connector cross; `arm` is the world half-arm length (scaled
    /// with the connector's wire width).
    Cross {
        /// Cross center.
        center: Point,
        /// Half-arm length in world units.
        arm: i64,
        /// Stroke color.
        color: Color,
    },
    /// A text label anchored at its lower-left corner. Text renders at
    /// fixed pixel size (labels stay readable at any zoom).
    Text {
        /// Lower-left anchor in world coordinates.
        at: Point,
        /// The label.
        text: String,
        /// Text color.
        color: Color,
    },
}

impl DrawOp {
    /// The operation's color.
    pub fn color(&self) -> Color {
        match self {
            DrawOp::Line { color, .. }
            | DrawOp::Rect { color, .. }
            | DrawOp::FillRect { color, .. }
            | DrawOp::Cross { color, .. }
            | DrawOp::Text { color, .. } => *color,
        }
    }

    /// The same operation painted in a different color (the device
    /// palette-quantization path).
    pub fn with_color(&self, color: Color) -> DrawOp {
        let mut op = self.clone();
        match &mut op {
            DrawOp::Line { color: c, .. }
            | DrawOp::Rect { color: c, .. }
            | DrawOp::FillRect { color: c, .. }
            | DrawOp::Cross { color: c, .. }
            | DrawOp::Text { color: c, .. } => *c = color,
        }
        op
    }
}

/// An ordered list of draw operations — Riot's per-screen display list,
/// rebuilt on every edit and rendered to whichever device is attached.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DisplayList {
    ops: Vec<DrawOp>,
}

impl DisplayList {
    /// Creates an empty display list.
    pub fn new() -> Self {
        DisplayList::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: DrawOp) {
        self.ops.push(op);
    }

    /// The operations, in draw order.
    pub fn ops(&self) -> &[DrawOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// World bounding box of everything drawn (text extends are
    /// approximated by their anchor points).
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut bb: Option<Rect> = None;
        let mut grow = |r: Rect| {
            bb = Some(match bb {
                Some(acc) => acc.union(r),
                None => r,
            });
        };
        for op in &self.ops {
            match op {
                DrawOp::Line { from, to, .. } => grow(Rect::from_points(*from, *to)),
                DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => grow(*rect),
                DrawOp::Cross { center, arm, .. } => {
                    grow(Rect::from_center(*center, 2 * arm, 2 * arm))
                }
                DrawOp::Text { at, .. } => grow(Rect::at_point(*at)),
            }
        }
        bb
    }

    /// Renders into a framebuffer through a viewport.
    pub fn render(&self, viewport: &Viewport, fb: &mut Framebuffer) {
        self.render_into(viewport, fb);
    }

    /// Renders into any [`PixelSink`] through a viewport — the sink may
    /// be a whole [`Framebuffer`] or a single horizontal
    /// [`Band`](crate::raster::Band) of one.
    pub fn render_into<S: PixelSink>(&self, viewport: &Viewport, sink: &mut S) {
        for op in &self.ops {
            render_op(op, viewport, sink);
        }
    }
}

/// Rasterizes one draw operation into a sink.
fn render_op(op: &DrawOp, viewport: &Viewport, sink: &mut impl PixelSink) {
    match op {
        DrawOp::Line { from, to, color } => {
            let (x0, y0) = viewport.to_screen(*from);
            let (x1, y1) = viewport.to_screen(*to);
            raster::draw_line(sink, x0, y0, x1, y1, *color);
        }
        DrawOp::Rect { rect, color } => {
            let (x0, y0) = viewport.to_screen(rect.lower_left());
            let (x1, y1) = viewport.to_screen(rect.upper_right());
            raster::draw_rect(sink, x0, y0, x1, y1, *color);
        }
        DrawOp::FillRect { rect, color } => {
            let (x0, y0) = viewport.to_screen(rect.lower_left());
            let (x1, y1) = viewport.to_screen(rect.upper_right());
            raster::fill_rect(sink, x0, y0, x1, y1, *color);
        }
        DrawOp::Cross { center, arm, color } => {
            let (x, y) = viewport.to_screen(*center);
            let a = viewport.scale_length(*arm).max(2);
            raster::draw_cross(sink, x, y, a, *color);
        }
        DrawOp::Text { at, text, color } => {
            let (x, y) = viewport.to_screen(*at);
            raster::draw_text(sink, x, y, text, *color);
        }
    }
}

/// A conservative **screen-space** bounding box of everything an op can
/// paint (a one-pixel safety margin covers rounding at the edges).
/// Used to clip ops against render bands.
fn op_screen_bbox(op: &DrawOp, viewport: &Viewport) -> Rect {
    let bbox = match op {
        DrawOp::Line { from, to, .. } => {
            let (x0, y0) = viewport.to_screen(*from);
            let (x1, y1) = viewport.to_screen(*to);
            Rect::new(x0, y0, x1, y1)
        }
        DrawOp::Rect { rect, .. } | DrawOp::FillRect { rect, .. } => {
            let (x0, y0) = viewport.to_screen(rect.lower_left());
            let (x1, y1) = viewport.to_screen(rect.upper_right());
            Rect::new(x0, y0, x1, y1)
        }
        DrawOp::Cross { center, arm, .. } => {
            let (x, y) = viewport.to_screen(*center);
            let a = viewport.scale_length(*arm).max(2);
            Rect::new(x - a, y - a, x + a, y + a)
        }
        DrawOp::Text { at, text, .. } => {
            let (x, y) = viewport.to_screen(*at);
            Rect::new(
                x,
                y,
                x + font::text_width(text) as i64,
                y + font::GLYPH_HEIGHT as i64 - 1,
            )
        }
    };
    bbox.inflated(1)
}

/// Renders `ops` into the framebuffer in parallel horizontal bands.
///
/// A [`SpatialIndex`] over the ops' screen bounding boxes clips each
/// band to the ops that can actually touch it; every band paints its
/// candidates in ascending op order and owns a disjoint row range, so
/// the result is pixel-identical to the sequential
/// [`DisplayList::render`] path at any thread count. Emits one
/// `gfx.render.band` span per band (also when running serially).
pub fn render_ops_banded(ops: &[DrawOp], viewport: &Viewport, fb: &mut Framebuffer) {
    if ops.is_empty() {
        return;
    }
    let width = fb.width();
    let height = fb.height();
    let boxes: Vec<Rect> = ops.iter().map(|op| op_screen_bbox(op, viewport)).collect();
    let index = SpatialIndex::build(&boxes);
    let band_count = par::threads().clamp(1, height);
    let mut bands = fb.bands_mut(height.div_ceil(band_count));
    riot_trace::registry()
        .counter("gfx.render.bands")
        .add(bands.len() as u64);
    par::for_each_mut(&mut bands, |_, band| {
        let candidates: Vec<usize> = index
            .query(Rect::new(0, band.y_min(), width as i64 - 1, band.y_max()))
            .collect();
        let _sp = riot_trace::span!(
            "gfx.render.band",
            y0 = band.y_start() as u64,
            rows = band.rows() as u64,
            ops = candidates.len() as u64,
        );
        for i in candidates {
            render_op(&ops[i], viewport, band);
        }
    });
}

impl Extend<DrawOp> for DisplayList {
    fn extend<T: IntoIterator<Item = DrawOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<DrawOp> for DisplayList {
    fn from_iter<T: IntoIterator<Item = DrawOp>>(iter: T) -> Self {
        DisplayList {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DisplayList {
        let mut dl = DisplayList::new();
        dl.push(DrawOp::Rect {
            rect: Rect::new(0, 0, 1000, 500),
            color: Color::WHITE,
        });
        dl.push(DrawOp::Cross {
            center: Point::new(500, 250),
            arm: 100,
            color: Color::new(255, 0, 0),
        });
        dl.push(DrawOp::Text {
            at: Point::new(10, 10),
            text: "CELL".into(),
            color: Color::WHITE,
        });
        dl
    }

    #[test]
    fn bounding_box_covers_ops() {
        let dl = sample();
        let bb = dl.bounding_box().unwrap();
        assert!(bb.contains_rect(Rect::new(0, 0, 1000, 500)));
        assert!(bb.contains(Point::new(600, 350)));
    }

    #[test]
    fn render_lights_pixels() {
        let dl = sample();
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 128, 128);
        let mut fb = Framebuffer::new(128, 128);
        dl.render(&vp, &mut fb);
        assert!(fb.lit_pixels() > 100);
    }

    #[test]
    fn empty_list() {
        let dl = DisplayList::new();
        assert!(dl.is_empty());
        assert_eq!(dl.bounding_box(), None);
    }

    #[test]
    fn collect_from_iterator() {
        let dl: DisplayList = sample().ops().to_vec().into_iter().collect();
        assert_eq!(dl.len(), 3);
    }

    #[test]
    fn color_accessors_round_trip() {
        for op in sample().ops() {
            let tinted = op.with_color(Color::new(1, 2, 3));
            assert_eq!(tinted.color(), Color::new(1, 2, 3));
            assert_eq!(op.with_color(op.color()), *op);
        }
    }

    #[test]
    fn banded_render_matches_sequential_at_any_thread_count() {
        let mut dl = sample();
        // Add overlapping ops so draw order matters across bands.
        for i in 0..24 {
            dl.push(DrawOp::FillRect {
                rect: Rect::new(i * 37, i * 23, i * 37 + 400, i * 23 + 300),
                color: Color::new((i * 11) as u8, 128, (255 - i * 9) as u8),
            });
            dl.push(DrawOp::Line {
                from: Point::new(0, i * 40),
                to: Point::new(1000, 500 - i * 17),
                color: Color::WHITE,
            });
        }
        let vp = Viewport::fit(dl.bounding_box().unwrap(), 96, 96);
        let mut reference = Framebuffer::new(96, 96);
        dl.render(&vp, &mut reference);
        for t in [1usize, 2, 3, 8] {
            par::set_threads(t);
            let mut fb = Framebuffer::new(96, 96);
            render_ops_banded(dl.ops(), &vp, &mut fb);
            par::set_threads(0);
            assert_eq!(fb, reference, "threads = {t}");
        }
    }
}
